#include "wire/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <utility>

#include "support/buffer_pool.h"
#include "support/logging.h"
#include "support/trace.h"
#include "wire/connection.h"
#include "wire/protocol.h"

namespace mobivine::wire {

namespace {

/// Free-space floor a read pass keeps in the input ring: each read()
/// lands directly in the ring's writable tail, so this is also the
/// per-syscall read granularity.
constexpr std::size_t kReadReserve = 16 * 1024;
/// Encoded-response bytes beyond the body (header, CRC, varint fields).
constexpr std::size_t kResponseOverhead = 64;
/// iovec entries per writev. Linux caps at IOV_MAX (1024); 64 covers a
/// flush run comfortably — longer runs just loop.
constexpr int kMaxIov = 64;
/// Compact the loop-side write run when this many released front slots
/// accumulate behind a long-lived partial write.
constexpr std::size_t kWriteRunCompactAt = 64;

void AddU64(std::atomic<std::uint64_t>& counter, std::uint64_t n) {
  counter.fetch_add(n, std::memory_order_relaxed);
}

}  // namespace

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

struct WireServer::Counters {
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> connections_closed{0};
  std::atomic<std::uint64_t> frames_in{0};
  std::atomic<std::uint64_t> frames_out{0};
  std::atomic<std::uint64_t> bytes_in{0};
  std::atomic<std::uint64_t> bytes_out{0};
  std::atomic<std::uint64_t> decode_errors{0};
  std::atomic<std::uint64_t> protocol_errors{0};
  std::atomic<std::uint64_t> wrong_worker{0};
  std::atomic<std::uint64_t> unsupported_frames{0};
  std::atomic<std::uint64_t> backpressure_stalls{0};
  std::atomic<std::uint64_t> requests_dispatched{0};
  std::atomic<std::uint64_t> writev_calls{0};
  std::atomic<std::uint64_t> epollout_arms{0};
};

// ---------------------------------------------------------------------------
// EventLoop
// ---------------------------------------------------------------------------

class WireServer::EventLoop
    : public std::enable_shared_from_this<WireServer::EventLoop> {
 public:
  EventLoop(WireServer& server, int index)
      : server_(server), index_(index) {}

  ~EventLoop() {
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
  }

  bool Start(std::string* error) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) {
      if (error != nullptr) *error = "epoll_create1 failed";
      return false;
    }
    wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (wake_fd_ < 0) {
      if (error != nullptr) *error = "eventfd failed";
      return false;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wake_fd_;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
      if (error != nullptr) *error = "epoll_ctl(eventfd) failed";
      return false;
    }
    thread_ = std::thread([this] { Run(); });
    return true;
  }

  /// Acceptor thread: hand a freshly accepted (nonblocking) socket to
  /// this loop. Closed immediately if the loop is already stopping.
  void Adopt(int fd) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!stopping_) {
        pending_fds_.push_back(fd);
        Wake();
        return;
      }
    }
    ::close(fd);
  }

  /// Any thread (gateway workers): this connection has output queued.
  void NotifyWritable(std::shared_ptr<Connection> conn) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      conn->ClearNotify();
      return;
    }
    notified_.push_back(std::move(conn));
    Wake();
  }

  void RequestStop() {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    Wake();
  }

  void Join() {
    if (thread_.joinable()) thread_.join();
  }

 private:
  void Wake() const {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
  }

  void Run() {
    support::trace::SetCurrentThreadName("wire-loop-" +
                                         std::to_string(index_));
    epoll_event events[64];
    bool stopping = false;
    while (!stopping) {
      const int n = ::epoll_wait(epoll_fd_, events, 64, -1);
      if (n < 0) {
        if (errno == EINTR) continue;
        MOBIVINE_LOG_ERROR << "wire: epoll_wait failed: "
                           << std::strerror(errno);
        break;
      }
      for (int i = 0; i < n; ++i) {
        const epoll_event& ev = events[i];
        if (ev.data.fd == wake_fd_) {
          std::uint64_t drained = 0;
          [[maybe_unused]] const ssize_t r =
              ::read(wake_fd_, &drained, sizeof drained);
          continue;
        }
        const auto it = conns_.find(ev.data.fd);
        if (it == conns_.end()) continue;  // closed earlier this batch
        std::shared_ptr<Connection> conn = it->second;
        if ((ev.events & (EPOLLERR | EPOLLHUP)) != 0) {
          Close(conn);
          continue;
        }
        if ((ev.events & EPOLLOUT) != 0) Flush(conn);
        if ((ev.events & (EPOLLIN | EPOLLRDHUP)) != 0 && !conn->paused &&
            !conn->closed()) {
          ReadPass(conn);
        }
      }
      // Drain cross-thread work: new connections and write notifications.
      std::vector<int> pending_fds;
      std::vector<std::shared_ptr<Connection>> notified;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        pending_fds.swap(pending_fds_);
        notified.swap(notified_);
        stopping = stopping_;
      }
      for (int fd : pending_fds) {
        if (stopping) {
          ::close(fd);
          continue;
        }
        Register(fd);
      }
      for (auto& conn : notified) {
        if (!conn->closed()) Flush(conn);
      }
    }
    // Close everything still open; in-flight gateway completions hold
    // their own shared_ptrs and will see closed().
    std::vector<std::shared_ptr<Connection>> remaining;
    remaining.reserve(conns_.size());
    for (auto& [fd, conn] : conns_) remaining.push_back(conn);
    for (auto& conn : remaining) Close(conn);
  }

  void Register(int fd) {
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    auto conn = std::make_shared<Connection>(fd, server_.stats_->
        connections_accepted.fetch_add(1, std::memory_order_relaxed));
    epoll_event ev{};
    // No EPOLLOUT at rest: write interest is armed only when the kernel
    // refuses bytes (see SetWriteInterest), so an idle or keeping-up
    // connection never generates writability events.
    ev.events = EPOLLIN | EPOLLET | EPOLLRDHUP;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      MOBIVINE_LOG_ERROR << "wire: epoll_ctl(add) failed: "
                         << std::strerror(errno);
      conn->MarkClosed();
      ::close(fd);
      AddU64(server_.stats_->connections_closed, 1);
      return;
    }
    conns_.emplace(fd, std::move(conn));
  }

  void Close(const std::shared_ptr<Connection>& conn) {
    if (conn->closed()) return;
    conn->MarkClosed();
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd(), nullptr);
    ::close(conn->fd());
    conns_.erase(conn->fd());
    AddU64(server_.stats_->connections_closed, 1);
  }

  /// Edge-triggered read pass: drain the socket to EAGAIN, then decode
  /// and dispatch. Each read() lands directly in the ring's writable
  /// tail window — no intermediate stack chunk, no second memcpy.
  void ReadPass(const std::shared_ptr<Connection>& conn) {
    support::trace::Span span("wire.read");
    ByteRing& ring = conn->input();
    std::size_t total = 0;
    bool peer_closed = false;
    while (true) {
      std::size_t available = 0;
      std::uint8_t* window = ring.WriteWindow(kReadReserve, &available);
      const ssize_t n = ::read(conn->fd(), window, available);
      if (n > 0) {
        ring.CommitWrite(static_cast<std::size_t>(n));
        total += static_cast<std::size_t>(n);
        continue;
      }
      if (n == 0) {
        peer_closed = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      peer_closed = true;  // hard socket error
      break;
    }
    span.Tag("bytes", static_cast<std::int64_t>(total));
    AddU64(server_.stats_->bytes_in, total);
    if (total > 0) DecodePass(conn);
    if (peer_closed && !conn->closed()) Close(conn);
  }

  /// Decode every complete frame in the ring and dispatch it. Pipelining
  /// is free here: each request becomes an independent gateway::Submit.
  ///
  /// Linearization is hoisted out of the loop: nothing inside it touches
  /// the ring (dispatch borrows views and materializes before returning),
  /// so `base` stays valid across frames. The generation stamp makes that
  /// contract checkable — HandleRequest asserts it after every Submit.
  void DecodePass(const std::shared_ptr<Connection>& conn) {
    support::trace::Span span("wire.decode");
    std::int64_t frames = 0;
    ByteRing& ring = conn->input();
    const std::uint8_t* base = ring.Contiguous();
    const std::uint64_t generation = ring.generation();
    std::size_t offset = 0;
    bool fatal = false;
    while (!fatal) {
      FrameView frame;
      std::size_t consumed = 0;
      std::string error;
      const DecodeStatus status = DecodeFrame(
          base + offset, ring.size() - offset, &frame, &consumed, &error);
      if (status == DecodeStatus::kNeedMore) break;
      if (status == DecodeStatus::kMalformed) {
        AddU64(server_.stats_->protocol_errors, 1);
        support::trace::Instant("wire.protocol_error");
        MOBIVINE_LOG_DEBUG << "wire: closing connection " << conn->id()
                           << ": " << error;
        fatal = true;
        break;
      }
      AddU64(server_.stats_->frames_in, 1);
      ++frames;
      if (frame.type == FrameType::kResponse) {
        // A client must never send response frames; direction violation.
        AddU64(server_.stats_->protocol_errors, 1);
        support::trace::Instant("wire.protocol_error");
        fatal = true;
        break;
      }
      if (frame.type != FrameType::kRequest) {
        // Well-framed but not a type this server implements (kControl on
        // a plain data server, or a newer revision's frame): answer
        // in-band and keep the connection — a mixed-version fleet must
        // degrade to typed errors, not dropped links.
        AddU64(server_.stats_->unsupported_frames, 1);
        support::trace::Instant("wire.unsupported_frame");
        WireResponse response;
        (void)PeekPayloadId(frame.payload, frame.payload_size,
                            &response.request_id);
        response.status = WireStatus::kUnsupportedFrame;
        response.body = "unsupported frame type";
        SendResponse(conn, response);
        offset += consumed;
        continue;
      }
      HandleRequest(conn, frame, generation, &fatal);
      offset += consumed;
    }
    ring.Consume(offset);
    span.Tag("frames", frames);
    if (fatal) {
      Close(conn);
      return;
    }
    MaybePause(conn);
    Flush(conn);
  }

  void HandleRequest(const std::shared_ptr<Connection>& conn,
                     const FrameView& frame, std::uint64_t ring_generation,
                     bool* fatal) {
    // Zero-copy decode: string fields stay views into the input ring.
    // The scratch view is a loop member so its property array's capacity
    // survives across requests — steady state decodes allocation-free.
    WireRequestView& view = decode_scratch_;
    std::string error;
    switch (DecodeRequestView(frame.payload, frame.payload_size, &view,
                              &error)) {
      case BodyStatus::kBadId:
        AddU64(server_.stats_->protocol_errors, 1);
        support::trace::Instant("wire.protocol_error");
        *fatal = true;
        return;
      case BodyStatus::kBadBody: {
        AddU64(server_.stats_->decode_errors, 1);
        WireResponse response;
        response.request_id = view.request_id;
        response.status = WireStatus::kMalformedRequest;
        response.body = error;
        SendResponse(conn, response);
        return;
      }
      case BodyStatus::kOk:
        break;
    }
    // M-Cluster routing fence: before any gateway work, check that this
    // process owns the client id under the current partition plan. A
    // stale router gets the worker's epoch back in-band and re-routes.
    if (server_.config_.ownership) {
      std::uint64_t plan_epoch = 0;
      if (!server_.config_.ownership(view.client_id, &plan_epoch)) {
        AddU64(server_.stats_->wrong_worker, 1);
        support::trace::Instant("wire.wrong_worker");
        WireResponse response;
        response.request_id = view.request_id;
        response.status = WireStatus::kWrongWorker;
        response.body = std::to_string(plan_epoch);
        SendResponse(conn, response);
        return;
      }
    }
    support::trace::Span span("wire.dispatch");
    span.Tag("op", static_cast<std::int64_t>(view.op));
    gateway::BorrowedRequest gw;
    gw.client_id = view.client_id;
    gw.platform = view.platform;
    gw.op = view.op;
    gw.target = view.target;
    gw.payload = view.payload;
    gw.content_type = view.content_type;
    gw.properties = view.properties.data();
    gw.property_count = view.properties.size();
    gw.timeout = std::chrono::microseconds(view.timeout_micros);
    gw.retry.max_attempts = static_cast<int>(view.max_attempts);
    const std::uint64_t request_id = view.request_id;
    // The callback may run here (shed: synchronously on this loop
    // thread) or later on a shard worker — possibly after the server
    // object is gone (the contract only requires the *gateway* to be
    // stopped before the server's own destruction, not vice versa). So
    // it captures shared stats and a weak loop, never `this` raw.
    std::shared_ptr<WireServer::Counters> stats = server_.stats_;
    std::weak_ptr<EventLoop> weak_loop = weak_from_this();
    auto on_complete = [stats = std::move(stats), weak_loop, conn,
                        request_id](const gateway::Response& completed) {
      if (conn->closed()) return;
      WireResponse response;
      response.request_id = request_id;
      response.status = completed.ok ? WireStatus::kOk
                                     : FromErrorCode(completed.error);
      response.served_platform = completed.served_platform;
      response.attempts = static_cast<std::uint32_t>(
          completed.attempts < 0 ? 0 : completed.attempts);
      response.latency_micros =
          static_cast<std::uint64_t>(completed.latency.count());
      // Encode straight into a pooled buffer, borrowing the gateway
      // payload as the body — no WireResponse::body copy, no per-frame
      // heap allocation at steady state.
      const std::string& body =
          completed.ok ? completed.payload : completed.message;
      support::PooledBuffer buffer = support::BufferPool::WirePool().Acquire(
          kResponseOverhead + body.size());
      EncodeResponse(response, body, buffer.bytes());
      if (conn->QueueOutput(std::move(buffer)) == 0) return;  // closed
      AddU64(stats->frames_out, 1);
      if (conn->ClaimNotify()) {
        if (const std::shared_ptr<EventLoop> loop = weak_loop.lock()) {
          loop->NotifyWritable(conn);
        } else {
          conn->ClearNotify();  // loop gone: connection already closed
        }
      }
    };
    AddU64(server_.stats_->requests_dispatched, 1);
    // Submit materializes (admitted) or sheds (callback fires inline)
    // before returning; either way the borrowed views are done. The
    // assert pins the lifetime contract: nothing in dispatch may have
    // appended to, consumed from or grown the ring while views into it
    // were live.
    (void)server_.gateway_.Submit(gw, std::move(on_complete));
    assert(conn->input().generation() == ring_generation);
    (void)ring_generation;
  }

  /// Encode + enqueue one response; wakes the loop unless it is already
  /// scheduled to flush this connection. Safe from any thread.
  void SendResponse(const std::shared_ptr<Connection>& conn,
                    const WireResponse& response) {
    if (conn->closed()) return;
    support::PooledBuffer buffer = support::BufferPool::WirePool().Acquire(
        kResponseOverhead + response.body.size());
    EncodeResponse(response, buffer.bytes());
    if (conn->QueueOutput(std::move(buffer)) == 0) return;  // closed: dropped
    AddU64(server_.stats_->frames_out, 1);
    if (conn->ClaimNotify()) NotifyWritable(conn);
  }

  void MaybePause(const std::shared_ptr<Connection>& conn) {
    if (!conn->paused &&
        conn->pending_output_bytes() >= server_.config_.output_high_watermark) {
      conn->paused = true;
      AddU64(server_.stats_->backpressure_stalls, 1);
      support::trace::Instant(
          "wire.backpressure_pause", "pending",
          static_cast<std::int64_t>(conn->pending_output_bytes()));
    }
  }

  /// Loop thread: arm or disarm EPOLLOUT for this fd, eliding the
  /// epoll_ctl when the interest set is already right. The common case —
  /// every flush drains in one writev run — performs zero epoll_ctl
  /// calls for the connection's whole lifetime.
  void SetWriteInterest(const std::shared_ptr<Connection>& conn, bool want) {
    if (conn->out_armed == want) return;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLET | EPOLLRDHUP | (want ? EPOLLOUT : 0u);
    ev.data.fd = conn->fd();
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd(), &ev) == 0) {
      conn->out_armed = want;
      if (want) AddU64(server_.stats_->epollout_arms, 1);
    }
  }

  /// Loop thread: take queued frames onto the write run and push the
  /// whole run with writev — one syscall covers every pipelined response
  /// queued since the last flush, and each fully written buffer goes
  /// back to the pool on the spot.
  void Flush(const std::shared_ptr<Connection>& conn) {
    if (conn->closed()) return;
    conn->ClearNotify();  // before TakeQueued: later appends must re-wake
    conn->write_bytes += conn->TakeQueued(conn->write_bufs);
    if (conn->write_bytes == 0) return;
    support::trace::Span span("wire.write");
    std::size_t written = 0;
    bool blocked = false;
    while (conn->write_bytes > 0) {
      iovec iov[kMaxIov];
      int iov_count = 0;
      for (std::size_t i = conn->write_start;
           i < conn->write_bufs.size() && iov_count < kMaxIov; ++i) {
        const std::vector<std::uint8_t>& bytes = conn->write_bufs[i].bytes();
        const std::size_t skip = i == conn->write_start ? conn->write_offset : 0;
        iov[iov_count].iov_base =
            const_cast<std::uint8_t*>(bytes.data() + skip);
        iov[iov_count].iov_len = bytes.size() - skip;
        ++iov_count;
      }
      const ssize_t n = ::writev(conn->fd(), iov, iov_count);
      AddU64(server_.stats_->writev_calls, 1);
      if (n > 0) {
        std::size_t left = static_cast<std::size_t>(n);
        written += left;
        conn->write_bytes -= left;
        while (left > 0) {
          support::PooledBuffer& front = conn->write_bufs[conn->write_start];
          const std::size_t remaining =
              front.bytes().size() - conn->write_offset;
          if (left >= remaining) {
            left -= remaining;
            front.Release();  // fully written: back to the pool now
            ++conn->write_start;
            conn->write_offset = 0;
          } else {
            conn->write_offset += left;
            left = 0;
          }
        }
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        blocked = true;
        break;
      }
      span.Tag("bytes", static_cast<std::int64_t>(written));
      AddU64(server_.stats_->bytes_out, written);
      Close(conn);  // broken pipe etc.
      return;
    }
    if (conn->write_bytes == 0) {
      conn->write_bufs.clear();  // all handles released; keep capacity
      conn->write_start = 0;
      conn->write_offset = 0;
    } else if (conn->write_start >= kWriteRunCompactAt) {
      conn->write_bufs.erase(
          conn->write_bufs.begin(),
          conn->write_bufs.begin() +
              static_cast<std::ptrdiff_t>(conn->write_start));
      conn->write_start = 0;
    }
    // Writability interest tracks the kernel, not the queue: armed only
    // when writev hit EAGAIN with bytes pending, dropped again the
    // moment the run empties.
    SetWriteInterest(conn, blocked && conn->write_bytes > 0);
    span.Tag("bytes", static_cast<std::int64_t>(written));
    AddU64(server_.stats_->bytes_out, written);
    conn->SetUnsentWriteBytes(conn->write_bytes);
    // Watermark check on the post-flush backlog. The pause side matters
    // here too (not just in DecodePass): async completions can pile up
    // output on a connection that is not currently sending us anything.
    MaybePause(conn);
    if (conn->paused &&
        conn->pending_output_bytes() <= server_.config_.output_low_watermark) {
      conn->paused = false;
      support::trace::Instant("wire.backpressure_resume");
      // Bytes may have piled up in the kernel while paused; under
      // edge-triggered epoll nobody will re-announce them.
      ReadPass(conn);
    }
  }

  WireServer& server_;
  const int index_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread thread_;
  std::unordered_map<int, std::shared_ptr<Connection>> conns_;
  /// Reusable zero-copy decode target (loop thread only): its property
  /// array keeps its capacity across requests.
  WireRequestView decode_scratch_;

  std::mutex mutex_;
  bool stopping_ = false;
  std::vector<int> pending_fds_;
  std::vector<std::shared_ptr<Connection>> notified_;
};

// ---------------------------------------------------------------------------
// WireServer
// ---------------------------------------------------------------------------

WireServer::WireServer(gateway::Gateway& gateway, WireServerConfig config)
    : gateway_(gateway),
      config_(std::move(config)),
      stats_(std::make_shared<Counters>()) {}

WireServer::~WireServer() { Stop(); }

bool WireServer::Start(std::string* error) {
  if (started_.exchange(true)) {
    if (error != nullptr) *error = "already started";
    return false;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = "socket() failed";
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    if (error != nullptr) {
      *error = std::string("bind failed: ") + std::strerror(errno);
    }
    return false;
  }
  if (::listen(listen_fd_, config_.listen_backlog) != 0) {
    if (error != nullptr) *error = "listen failed";
    return false;
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  stop_eventfd_ = ::eventfd(0, EFD_CLOEXEC);
  if (stop_eventfd_ < 0) {
    if (error != nullptr) *error = "eventfd failed";
    return false;
  }
  const int loops = std::max(config_.event_loops, 1);
  for (int i = 0; i < loops; ++i) {
    loops_.push_back(std::make_shared<EventLoop>(*this, i));
    if (!loops_.back()->Start(error)) return false;
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void WireServer::AcceptLoop() {
  support::trace::SetCurrentThreadName("wire-acceptor");
  pollfd fds[2];
  fds[0] = {listen_fd_, POLLIN, 0};
  fds[1] = {stop_eventfd_, POLLIN, 0};
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int n = ::poll(fds, 2, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[1].revents & POLLIN) != 0) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    while (true) {
      const int fd =
          ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) break;  // EAGAIN: back to poll
      const std::uint64_t turn =
          next_loop_.fetch_add(1, std::memory_order_relaxed);
      loops_[turn % loops_.size()]->Adopt(fd);
    }
  }
}

void WireServer::Stop() {
  if (!started_.load(std::memory_order_relaxed)) return;
  if (stopping_.exchange(true)) {
    // Second caller (e.g. the destructor after an explicit Stop): the
    // first one already joined everything.
    return;
  }
  if (stop_eventfd_ >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(stop_eventfd_, &one, sizeof one);
  }
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& loop : loops_) loop->RequestStop();
  for (auto& loop : loops_) loop->Join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (stop_eventfd_ >= 0) {
    ::close(stop_eventfd_);
    stop_eventfd_ = -1;
  }
}

WireStatsSnapshot WireServer::Stats() const {
  WireStatsSnapshot snap;
  snap.connections_accepted =
      stats_->connections_accepted.load(std::memory_order_relaxed);
  snap.connections_closed =
      stats_->connections_closed.load(std::memory_order_relaxed);
  snap.frames_in = stats_->frames_in.load(std::memory_order_relaxed);
  snap.frames_out = stats_->frames_out.load(std::memory_order_relaxed);
  snap.bytes_in = stats_->bytes_in.load(std::memory_order_relaxed);
  snap.bytes_out = stats_->bytes_out.load(std::memory_order_relaxed);
  snap.decode_errors = stats_->decode_errors.load(std::memory_order_relaxed);
  snap.protocol_errors =
      stats_->protocol_errors.load(std::memory_order_relaxed);
  snap.wrong_worker = stats_->wrong_worker.load(std::memory_order_relaxed);
  snap.unsupported_frames =
      stats_->unsupported_frames.load(std::memory_order_relaxed);
  snap.backpressure_stalls =
      stats_->backpressure_stalls.load(std::memory_order_relaxed);
  snap.requests_dispatched =
      stats_->requests_dispatched.load(std::memory_order_relaxed);
  snap.writev_calls = stats_->writev_calls.load(std::memory_order_relaxed);
  snap.epollout_arms = stats_->epollout_arms.load(std::memory_order_relaxed);
  const support::BufferPoolStats pool = support::BufferPool::WirePool().Stats();
  snap.pool_hits = pool.hits;
  snap.pool_misses = pool.misses;
  snap.pool_returns = pool.returns;
  snap.pool_trims = pool.trims;
  return snap;
}

support::MetricsRegistry::Registration WireServer::RegisterMetrics(
    support::MetricsRegistry& registry, std::string prefix) const {
  return registry.Register(
      std::move(prefix), [this](support::MetricsSink& sink) {
        const WireStatsSnapshot snap = Stats();
        sink.Counter("connections_accepted", snap.connections_accepted);
        sink.Counter("connections_closed", snap.connections_closed);
        sink.Counter("connections_active", snap.connections_active());
        sink.Counter("frames_in", snap.frames_in);
        sink.Counter("frames_out", snap.frames_out);
        sink.Counter("bytes_in", snap.bytes_in);
        sink.Counter("bytes_out", snap.bytes_out);
        sink.Counter("decode_errors", snap.decode_errors);
        sink.Counter("protocol_errors", snap.protocol_errors);
        sink.Counter("wrong_worker", snap.wrong_worker);
        sink.Counter("unsupported_frames", snap.unsupported_frames);
        sink.Counter("backpressure_stalls", snap.backpressure_stalls);
        sink.Counter("requests_dispatched", snap.requests_dispatched);
        sink.Counter("writev_calls", snap.writev_calls);
        sink.Counter("epollout_arms", snap.epollout_arms);
        sink.Counter("pool_hits", snap.pool_hits);
        sink.Counter("pool_misses", snap.pool_misses);
        sink.Counter("pool_returns", snap.pool_returns);
        sink.Counter("pool_trims", snap.pool_trims);
        // Frame-buffer allocations per dispatched request: pool misses
        // are the only fresh heap buffers on the frame path, so at
        // steady state this reads 0.0 (the tentpole's no-alloc claim,
        // live and assertable).
        sink.Gauge("allocs_per_req",
                   snap.requests_dispatched == 0
                       ? 0.0
                       : static_cast<double>(snap.pool_misses) /
                             static_cast<double>(snap.requests_dispatched));
      });
}

}  // namespace mobivine::wire
