#include "wire/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstring>
#include <deque>
#include <limits>
#include <memory>
#include <unordered_map>
#include <utility>

#include "support/buffer_pool.h"
#include "support/logging.h"
#include "support/trace.h"
#include "wire/connection.h"
#include "wire/protocol.h"

namespace mobivine::wire {

namespace {

/// Free-space floor a read pass keeps in the input ring: each read()
/// lands directly in the ring's writable tail, so this is also the
/// per-syscall read granularity.
constexpr std::size_t kReadReserve = 16 * 1024;
/// Encoded-response bytes beyond the body (header, CRC, varint fields).
constexpr std::size_t kResponseOverhead = 64;
/// iovec entries per writev. Linux caps at IOV_MAX (1024); 64 covers a
/// flush run comfortably — longer runs just loop.
constexpr int kMaxIov = 64;
/// Compact the loop-side write run when this many released front slots
/// accumulate behind a long-lived partial write.
constexpr std::size_t kWriteRunCompactAt = 64;

void AddU64(std::atomic<std::uint64_t>& counter, std::uint64_t n) {
  counter.fetch_add(n, std::memory_order_relaxed);
}

}  // namespace

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

struct WireServer::Counters {
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> connections_closed{0};
  std::atomic<std::uint64_t> frames_in{0};
  std::atomic<std::uint64_t> frames_out{0};
  std::atomic<std::uint64_t> bytes_in{0};
  std::atomic<std::uint64_t> bytes_out{0};
  std::atomic<std::uint64_t> decode_errors{0};
  std::atomic<std::uint64_t> protocol_errors{0};
  std::atomic<std::uint64_t> wrong_worker{0};
  std::atomic<std::uint64_t> unsupported_frames{0};
  std::atomic<std::uint64_t> backpressure_stalls{0};
  std::atomic<std::uint64_t> requests_dispatched{0};
  std::atomic<std::uint64_t> scripts_dispatched{0};
  std::atomic<std::uint64_t> writev_calls{0};
  std::atomic<std::uint64_t> epollout_arms{0};
  std::atomic<std::uint64_t> subscriptions_opened{0};
  std::atomic<std::uint64_t> subscriptions_closed{0};
  std::atomic<std::uint64_t> events_out{0};
  std::atomic<std::uint64_t> events_dropped{0};
  std::atomic<std::uint64_t> gap_markers{0};
};

// ---------------------------------------------------------------------------
// EventLoop
// ---------------------------------------------------------------------------

class WireServer::EventLoop
    : public std::enable_shared_from_this<WireServer::EventLoop> {
 public:
  EventLoop(WireServer& server, int index)
      : server_(server), index_(index) {}

  ~EventLoop() {
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
  }

  bool Start(std::string* error) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) {
      if (error != nullptr) *error = "epoll_create1 failed";
      return false;
    }
    wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (wake_fd_ < 0) {
      if (error != nullptr) *error = "eventfd failed";
      return false;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wake_fd_;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
      if (error != nullptr) *error = "epoll_ctl(eventfd) failed";
      return false;
    }
    thread_ = std::thread([this] { Run(); });
    return true;
  }

  /// Acceptor thread: hand a freshly accepted (nonblocking) socket to
  /// this loop. Closed immediately if the loop is already stopping.
  void Adopt(int fd) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!stopping_) {
        pending_fds_.push_back(fd);
        Wake();
        return;
      }
    }
    ::close(fd);
  }

  /// Any thread (gateway workers): this connection has output queued.
  void NotifyWritable(std::shared_ptr<Connection> conn) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      conn->ClearNotify();
      return;
    }
    notified_.push_back(std::move(conn));
    Wake();
  }

  void RequestStop() {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    Wake();
  }

  void Join() {
    if (thread_.joinable()) thread_.join();
  }

 private:
  void Wake() const {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
  }

  void Run() {
    support::trace::SetCurrentThreadName("wire-loop-" +
                                         std::to_string(index_));
    epoll_event events[64];
    bool stopping = false;
    while (!stopping) {
      const int n = ::epoll_wait(epoll_fd_, events, 64, -1);
      if (n < 0) {
        if (errno == EINTR) continue;
        MOBIVINE_LOG_ERROR << "wire: epoll_wait failed: "
                           << std::strerror(errno);
        break;
      }
      for (int i = 0; i < n; ++i) {
        const epoll_event& ev = events[i];
        if (ev.data.fd == wake_fd_) {
          std::uint64_t drained = 0;
          [[maybe_unused]] const ssize_t r =
              ::read(wake_fd_, &drained, sizeof drained);
          continue;
        }
        const auto it = conns_.find(ev.data.fd);
        if (it == conns_.end()) continue;  // closed earlier this batch
        std::shared_ptr<Connection> conn = it->second;
        if ((ev.events & (EPOLLERR | EPOLLHUP)) != 0) {
          Close(conn);
          continue;
        }
        if ((ev.events & EPOLLOUT) != 0) Flush(conn);
        if ((ev.events & (EPOLLIN | EPOLLRDHUP)) != 0 && !conn->paused &&
            !conn->closed()) {
          ReadPass(conn);
        }
      }
      // Drain cross-thread work: new connections and write notifications.
      std::vector<int> pending_fds;
      std::vector<std::shared_ptr<Connection>> notified;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        pending_fds.swap(pending_fds_);
        notified.swap(notified_);
        stopping = stopping_;
      }
      for (int fd : pending_fds) {
        if (stopping) {
          ::close(fd);
          continue;
        }
        Register(fd);
      }
      for (auto& conn : notified) {
        if (!conn->closed()) Flush(conn);
      }
    }
    // Close everything still open; in-flight gateway completions hold
    // their own shared_ptrs and will see closed().
    std::vector<std::shared_ptr<Connection>> remaining;
    remaining.reserve(conns_.size());
    for (auto& [fd, conn] : conns_) remaining.push_back(conn);
    for (auto& conn : remaining) Close(conn);
  }

  void Register(int fd) {
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    auto conn = std::make_shared<Connection>(fd, server_.stats_->
        connections_accepted.fetch_add(1, std::memory_order_relaxed));
    epoll_event ev{};
    // No EPOLLOUT at rest: write interest is armed only when the kernel
    // refuses bytes (see SetWriteInterest), so an idle or keeping-up
    // connection never generates writability events.
    ev.events = EPOLLIN | EPOLLET | EPOLLRDHUP;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      MOBIVINE_LOG_ERROR << "wire: epoll_ctl(add) failed: "
                         << std::strerror(errno);
      conn->MarkClosed();
      ::close(fd);
      AddU64(server_.stats_->connections_closed, 1);
      return;
    }
    conns_.emplace(fd, std::move(conn));
  }

  void Close(const std::shared_ptr<Connection>& conn) {
    if (conn->closed()) return;
    conn->MarkClosed();
    // Tear down this connection's subscriptions before the fd: each
    // CloseSubscription fences its feed listener, so no publisher is
    // left poking a dead connection.
    const auto sit = subs_by_fd_.find(conn->fd());
    if (sit != subs_by_fd_.end()) {
      const std::vector<std::shared_ptr<Sub>> subs = sit->second;
      for (const std::shared_ptr<Sub>& sub : subs) CloseSubscription(sub);
    }
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd(), nullptr);
    ::close(conn->fd());
    conns_.erase(conn->fd());
    AddU64(server_.stats_->connections_closed, 1);
  }

  /// Edge-triggered read pass: drain the socket to EAGAIN, then decode
  /// and dispatch. Each read() lands directly in the ring's writable
  /// tail window — no intermediate stack chunk, no second memcpy.
  void ReadPass(const std::shared_ptr<Connection>& conn) {
    support::trace::Span span("wire.read");
    ByteRing& ring = conn->input();
    std::size_t total = 0;
    bool peer_closed = false;
    while (true) {
      std::size_t available = 0;
      std::uint8_t* window = ring.WriteWindow(kReadReserve, &available);
      const ssize_t n = ::read(conn->fd(), window, available);
      if (n > 0) {
        ring.CommitWrite(static_cast<std::size_t>(n));
        total += static_cast<std::size_t>(n);
        continue;
      }
      if (n == 0) {
        peer_closed = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      peer_closed = true;  // hard socket error
      break;
    }
    span.Tag("bytes", static_cast<std::int64_t>(total));
    AddU64(server_.stats_->bytes_in, total);
    if (total > 0) DecodePass(conn);
    if (peer_closed && !conn->closed()) Close(conn);
  }

  /// Decode every complete frame in the ring and dispatch it. Pipelining
  /// is free here: each request becomes an independent gateway::Submit.
  ///
  /// Linearization is hoisted out of the loop: nothing inside it touches
  /// the ring (dispatch borrows views and materializes before returning),
  /// so `base` stays valid across frames. The generation stamp makes that
  /// contract checkable — HandleRequest asserts it after every Submit.
  void DecodePass(const std::shared_ptr<Connection>& conn) {
    support::trace::Span span("wire.decode");
    std::int64_t frames = 0;
    ByteRing& ring = conn->input();
    const std::uint8_t* base = ring.Contiguous();
    const std::uint64_t generation = ring.generation();
    std::size_t offset = 0;
    bool fatal = false;
    while (!fatal) {
      FrameView frame;
      std::size_t consumed = 0;
      std::string error;
      const DecodeStatus status = DecodeFrame(
          base + offset, ring.size() - offset, &frame, &consumed, &error);
      if (status == DecodeStatus::kNeedMore) break;
      if (status == DecodeStatus::kMalformed) {
        AddU64(server_.stats_->protocol_errors, 1);
        support::trace::Instant("wire.protocol_error");
        MOBIVINE_LOG_DEBUG << "wire: closing connection " << conn->id()
                           << ": " << error;
        fatal = true;
        break;
      }
      AddU64(server_.stats_->frames_in, 1);
      ++frames;
      if (frame.type == FrameType::kResponse ||
          frame.type == FrameType::kEvent ||
          frame.type == FrameType::kSubscribeAck) {
        // Server-to-client frame types arriving here are a direction
        // violation (not version skew — we know these types); close.
        AddU64(server_.stats_->protocol_errors, 1);
        support::trace::Instant("wire.protocol_error");
        fatal = true;
        break;
      }
      if (frame.type == FrameType::kSubscribe) {
        HandleSubscribe(conn, frame, &fatal);
        offset += consumed;
        continue;
      }
      if (frame.type == FrameType::kUnsubscribe) {
        HandleUnsubscribe(conn, frame, &fatal);
        offset += consumed;
        continue;
      }
      if (frame.type == FrameType::kScript) {
        HandleScript(conn, frame, &fatal);
        offset += consumed;
        continue;
      }
      if (frame.type != FrameType::kRequest) {
        // Well-framed but not a type this server implements (kControl on
        // a plain data server, or a newer revision's frame): answer
        // in-band and keep the connection — a mixed-version fleet must
        // degrade to typed errors, not dropped links.
        AddU64(server_.stats_->unsupported_frames, 1);
        support::trace::Instant("wire.unsupported_frame");
        WireResponse response;
        (void)PeekPayloadId(frame.payload, frame.payload_size,
                            &response.request_id);
        response.status = WireStatus::kUnsupportedFrame;
        response.body = "unsupported frame type";
        SendResponse(conn, response);
        offset += consumed;
        continue;
      }
      HandleRequest(conn, frame, generation, &fatal);
      offset += consumed;
    }
    ring.Consume(offset);
    span.Tag("frames", frames);
    if (fatal) {
      Close(conn);
      return;
    }
    MaybePause(conn);
    Flush(conn);
  }

  void HandleRequest(const std::shared_ptr<Connection>& conn,
                     const FrameView& frame, std::uint64_t ring_generation,
                     bool* fatal) {
    // Zero-copy decode: string fields stay views into the input ring.
    // The scratch view is a loop member so its property array's capacity
    // survives across requests — steady state decodes allocation-free.
    WireRequestView& view = decode_scratch_;
    std::string error;
    switch (DecodeRequestView(frame.payload, frame.payload_size, &view,
                              &error)) {
      case BodyStatus::kBadId:
        AddU64(server_.stats_->protocol_errors, 1);
        support::trace::Instant("wire.protocol_error");
        *fatal = true;
        return;
      case BodyStatus::kBadBody: {
        AddU64(server_.stats_->decode_errors, 1);
        WireResponse response;
        response.request_id = view.request_id;
        response.status = WireStatus::kMalformedRequest;
        response.body = error;
        SendResponse(conn, response);
        return;
      }
      case BodyStatus::kOk:
        break;
    }
    // M-Cluster routing fence: before any gateway work, check that this
    // process owns the client id under the current partition plan. A
    // stale router gets the worker's epoch back in-band and re-routes.
    if (server_.config_.ownership) {
      std::uint64_t plan_epoch = 0;
      if (!server_.config_.ownership(view.client_id, &plan_epoch)) {
        AddU64(server_.stats_->wrong_worker, 1);
        support::trace::Instant("wire.wrong_worker");
        WireResponse response;
        response.request_id = view.request_id;
        response.status = WireStatus::kWrongWorker;
        response.body = std::to_string(plan_epoch);
        SendResponse(conn, response);
        return;
      }
    }
    support::trace::Span span("wire.dispatch");
    span.Tag("op", static_cast<std::int64_t>(view.op));
    gateway::BorrowedRequest gw;
    gw.client_id = view.client_id;
    gw.platform = view.platform;
    gw.op = view.op;
    gw.target = view.target;
    gw.payload = view.payload;
    gw.content_type = view.content_type;
    gw.properties = view.properties.data();
    gw.property_count = view.properties.size();
    gw.timeout = std::chrono::microseconds(view.timeout_micros);
    gw.retry.max_attempts = static_cast<int>(view.max_attempts);
    const std::uint64_t request_id = view.request_id;
    // The callback may run here (shed: synchronously on this loop
    // thread) or later on a shard worker — possibly after the server
    // object is gone (the contract only requires the *gateway* to be
    // stopped before the server's own destruction, not vice versa). So
    // it captures shared stats and a weak loop, never `this` raw.
    std::shared_ptr<WireServer::Counters> stats = server_.stats_;
    std::weak_ptr<EventLoop> weak_loop = weak_from_this();
    auto on_complete = [stats = std::move(stats), weak_loop, conn,
                        request_id](const gateway::Response& completed) {
      if (conn->closed()) return;
      WireResponse response;
      response.request_id = request_id;
      response.status = completed.ok ? WireStatus::kOk
                                     : FromErrorCode(completed.error);
      response.served_platform = completed.served_platform;
      response.attempts = static_cast<std::uint32_t>(
          completed.attempts < 0 ? 0 : completed.attempts);
      response.latency_micros =
          static_cast<std::uint64_t>(completed.latency.count());
      // Encode straight into a pooled buffer, borrowing the gateway
      // payload as the body — no WireResponse::body copy, no per-frame
      // heap allocation at steady state.
      const std::string& body =
          completed.ok ? completed.payload : completed.message;
      support::PooledBuffer buffer = support::BufferPool::WirePool().Acquire(
          kResponseOverhead + body.size());
      EncodeResponse(response, body, buffer.bytes());
      if (conn->QueueOutput(std::move(buffer)) == 0) return;  // closed
      AddU64(stats->frames_out, 1);
      if (conn->ClaimNotify()) {
        if (const std::shared_ptr<EventLoop> loop = weak_loop.lock()) {
          loop->NotifyWritable(conn);
        } else {
          conn->ClearNotify();  // loop gone: connection already closed
        }
      }
    };
    AddU64(server_.stats_->requests_dispatched, 1);
    // Submit materializes (admitted) or sheds (callback fires inline)
    // before returning; either way the borrowed views are done. The
    // assert pins the lifetime contract: nothing in dispatch may have
    // appended to, consumed from or grown the ring while views into it
    // were live.
    (void)server_.gateway_.Submit(gw, std::move(on_complete));
    assert(conn->input().generation() == ring_generation);
    (void)ring_generation;
  }

  /// M-Script: one kScript frame becomes one gateway::SubmitScript; the
  /// shard answers with an ordinary kResponse frame under the same
  /// request id. Unlike HandleRequest there is no borrowed-view path —
  /// DecodeScript copies the source out of the ring (scripts are rare
  /// and large relative to requests; the zero-copy machinery buys
  /// nothing here).
  void HandleScript(const std::shared_ptr<Connection>& conn,
                    const FrameView& frame, bool* fatal) {
    WireScriptRequest script;
    std::string error;
    switch (DecodeScript(frame.payload, frame.payload_size, &script, &error)) {
      case BodyStatus::kBadId:
        AddU64(server_.stats_->protocol_errors, 1);
        support::trace::Instant("wire.protocol_error");
        *fatal = true;
        return;
      case BodyStatus::kBadBody: {
        AddU64(server_.stats_->decode_errors, 1);
        WireResponse response;
        response.request_id = script.request_id;
        response.status = WireStatus::kMalformedRequest;
        response.body = error;
        SendResponse(conn, response);
        return;
      }
      case BodyStatus::kOk:
        break;
    }
    // Same M-Cluster routing fence as requests: scripts execute against
    // the client's shard state, so a worker that does not own the client
    // bounces them before any sandbox work.
    if (server_.config_.ownership) {
      std::uint64_t plan_epoch = 0;
      if (!server_.config_.ownership(script.client_id, &plan_epoch)) {
        AddU64(server_.stats_->wrong_worker, 1);
        support::trace::Instant("wire.wrong_worker");
        WireResponse response;
        response.request_id = script.request_id;
        response.status = WireStatus::kWrongWorker;
        response.body = std::to_string(plan_epoch);
        SendResponse(conn, response);
        return;
      }
    }
    support::trace::Span span("wire.dispatch");
    span.Tag("script", 1);
    gateway::ScriptRequest gw;
    gw.client_id = script.client_id;
    gw.source = std::move(script.source);
    gw.args = std::move(script.args);
    gw.timeout = std::chrono::microseconds(script.timeout_micros);
    gw.step_budget = script.step_budget;
    gw.virtual_us_budget = script.virtual_us_budget;
    gw.max_result_bytes = script.max_result_bytes;
    const std::uint64_t request_id = script.request_id;
    // Same lifetime discipline as HandleRequest's completion: shared
    // stats, weak loop, never `this` raw.
    std::shared_ptr<WireServer::Counters> stats = server_.stats_;
    std::weak_ptr<EventLoop> weak_loop = weak_from_this();
    gw.on_complete = [stats = std::move(stats), weak_loop, conn, request_id](
                         const gateway::ScriptResponse& completed) {
      if (conn->closed()) return;
      WireResponse response;
      response.request_id = request_id;
      // Script outcomes (uncaught throw, step-limit kill, result cap)
      // map to the dedicated kScriptError band; everything else —
      // deadline, overload — travels through the normal status bands.
      response.status = completed.ok ? WireStatus::kOk
                        : completed.script_error
                            ? WireStatus::kScriptError
                            : FromErrorCode(completed.error);
      response.latency_micros =
          static_cast<std::uint64_t>(completed.latency.count());
      const std::string& body =
          completed.ok ? completed.result : completed.message;
      support::PooledBuffer buffer = support::BufferPool::WirePool().Acquire(
          kResponseOverhead + body.size());
      EncodeResponse(response, body, buffer.bytes());
      if (conn->QueueOutput(std::move(buffer)) == 0) return;  // closed
      AddU64(stats->frames_out, 1);
      if (conn->ClaimNotify()) {
        if (const std::shared_ptr<EventLoop> loop = weak_loop.lock()) {
          loop->NotifyWritable(conn);
        } else {
          conn->ClearNotify();  // loop gone: connection already closed
        }
      }
    };
    AddU64(server_.stats_->scripts_dispatched, 1);
    (void)server_.gateway_.SubmitScript(std::move(gw));
  }

  /// Encode + enqueue one response; wakes the loop unless it is already
  /// scheduled to flush this connection. Safe from any thread.
  void SendResponse(const std::shared_ptr<Connection>& conn,
                    const WireResponse& response) {
    if (conn->closed()) return;
    support::PooledBuffer buffer = support::BufferPool::WirePool().Acquire(
        kResponseOverhead + response.body.size());
    EncodeResponse(response, buffer.bytes());
    if (conn->QueueOutput(std::move(buffer)) == 0) return;  // closed: dropped
    AddU64(server_.stats_->frames_out, 1);
    if (conn->ClaimNotify()) NotifyWritable(conn);
  }

  // ---- M-Push: the server side of the subscription plane ----

  /// One live subscription. Shared between this loop (which owns the
  /// id/fd maps and the pump) and its shard feed's listener callback
  /// (publisher threads), which touches only the mutex-guarded queue and
  /// the loop-wake path. `pending` holds kData entries — gap markers are
  /// synthesized at pump time from the merged gap range, so shedding is
  /// O(1) and a burst of sheds costs one marker, not one frame each —
  /// plus a trailing kEndOfDrain for kDrainOnce subscriptions.
  struct Sub {
    std::uint64_t id = 0;
    std::shared_ptr<Connection> conn;
    gateway::PushFeed* feed = nullptr;
    std::uint64_t listener_id = 0;  ///< 0: none (kDrainOnce never listens)
    PushTopic topic = PushTopic::kAll;
    std::uint64_t client_filter = 0;

    std::mutex mutex;
    std::deque<WireEvent> pending;
    bool gap = false;
    std::uint64_t gap_first = 0;
    std::uint64_t gap_last = 0;
    bool closed = false;  ///< torn down; publishers must stop enqueuing

    void MergeGapLocked(std::uint64_t first, std::uint64_t last) {
      if (!gap) {
        gap = true;
        gap_first = first;
        gap_last = last;
        return;
      }
      gap_first = std::min(gap_first, first);
      gap_last = std::max(gap_last, last);
    }
  };

  /// Append one data event to `sub.pending` (mutex held by the caller),
  /// shedding the oldest at capacity — merged into the gap range and
  /// counted, never silent.
  static void EnqueueData(Sub& sub, const gateway::PushEvent& event,
                          std::size_t capacity, WireServer::Counters& stats) {
    if (sub.pending.size() >= capacity &&
        sub.pending.front().kind == EventKind::kData) {
      sub.MergeGapLocked(sub.pending.front().cursor,
                         sub.pending.front().cursor);
      sub.pending.pop_front();
      AddU64(stats.events_dropped, 1);
      support::trace::Instant("push.shed", "sub",
                              static_cast<std::int64_t>(sub.id));
    }
    WireEvent out;
    out.subscription_id = sub.id;
    out.kind = EventKind::kData;
    out.topic = static_cast<PushTopic>(event.topic);
    out.cursor = event.cursor;
    out.aux = event.client_id;
    out.body = event.body;
    sub.pending.push_back(std::move(out));
  }

  void HandleSubscribe(const std::shared_ptr<Connection>& conn,
                       const FrameView& frame, bool* fatal) {
    WireSubscribe req;
    std::string error;
    switch (DecodeSubscribe(frame.payload, frame.payload_size, &req, &error)) {
      case BodyStatus::kBadId:
        AddU64(server_.stats_->protocol_errors, 1);
        support::trace::Instant("wire.protocol_error");
        *fatal = true;
        return;
      case BodyStatus::kBadBody:
        AddU64(server_.stats_->decode_errors, 1);
        SendAck(conn, req.request_id, WireStatus::kMalformedRequest, 0, 0);
        return;
      case BodyStatus::kOk:
        break;
    }
    // Same routing fence as requests: a subscription pins a shard feed,
    // so a worker that does not own the client bounces it BEFORE it can
    // accumulate events. The epoch travels in start_cursor — a varint,
    // not the decimal body requests use, so the cluster client never
    // parses text on this path.
    if (server_.config_.ownership) {
      std::uint64_t plan_epoch = 0;
      if (!server_.config_.ownership(req.client_id, &plan_epoch)) {
        AddU64(server_.stats_->wrong_worker, 1);
        support::trace::Instant("wire.wrong_worker");
        SendAck(conn, req.request_id, WireStatus::kWrongWorker, 0, plan_epoch);
        return;
      }
    }
    gateway::PushFeed& feed = server_.gateway_.FeedFor(req.client_id);
    auto sub = std::make_shared<Sub>();
    sub->id =
        server_.next_subscription_id_.fetch_add(1, std::memory_order_relaxed);
    sub->conn = conn;
    sub->feed = &feed;
    sub->topic = req.topic;
    sub->client_filter = req.client_id;
    const std::size_t capacity =
        std::max<std::size_t>(server_.config_.push_queue_capacity, 1);
    const auto topic_g = static_cast<gateway::PushTopic>(req.topic);
    // kLiveOnly replays after "the far future": under the feed's clamp
    // the single-lock seam degenerates to a plain listener registration —
    // no replayed events, no gap.
    const std::uint64_t after =
        req.mode == SubscribeMode::kLiveOnly
            ? std::numeric_limits<std::uint64_t>::max()
            : req.cursor;
    std::shared_ptr<WireServer::Counters> stats = server_.stats_;
    const auto replay_into_pending =
        [&sub, capacity, &stats](const gateway::PushEvent& event) {
          // Feed lock held; nobody else can see `sub` yet, but keep the
          // "pending is touched under sub->mutex" invariant uniform.
          std::lock_guard<std::mutex> lock(sub->mutex);
          EnqueueData(*sub, event, capacity, *stats);
        };
    gateway::PushFeed::ReplayResult covered;
    if (req.mode == SubscribeMode::kDrainOnce) {
      // The poll primitive: catch up, mark the end, auto-close at pump
      // time. No listener is ever registered.
      covered =
          feed.ReplayAfter(after, topic_g, req.client_id, replay_into_pending);
    } else {
      std::weak_ptr<EventLoop> weak_loop = weak_from_this();
      sub->listener_id = feed.AddListenerAndReplay(
          after, topic_g, req.client_id, replay_into_pending,
          [sub, capacity, stats, weak_loop,
           topic_g](const gateway::PushEvent& event) {
            // Publisher thread, feed lock held: filter, enqueue, wake the
            // loop. Everything heavier (encode, socket) is the loop's.
            if (!gateway::MatchesSubscription(event, topic_g,
                                              sub->client_filter)) {
              return;
            }
            {
              std::lock_guard<std::mutex> lock(sub->mutex);
              if (sub->closed) return;
              EnqueueData(*sub, event, capacity, *stats);
            }
            if (sub->conn->ClaimNotify()) {
              if (const std::shared_ptr<EventLoop> loop = weak_loop.lock()) {
                loop->NotifyWritable(sub->conn);
              } else {
                sub->conn->ClearNotify();  // loop gone: connection closing
              }
            }
          },
          &covered);
    }
    {
      std::lock_guard<std::mutex> lock(sub->mutex);
      if (covered.gap) sub->MergeGapLocked(covered.gap_first, covered.gap_last);
      if (req.mode == SubscribeMode::kDrainOnce) {
        WireEvent end;
        end.subscription_id = sub->id;
        end.kind = EventKind::kEndOfDrain;
        end.cursor = covered.resume_cursor;
        sub->pending.push_back(std::move(end));
      }
    }
    subs_by_id_.emplace(sub->id, sub);
    subs_by_fd_[conn->fd()].push_back(sub);
    AddU64(server_.stats_->subscriptions_opened, 1);
    support::trace::Instant("push.subscribe", "sub",
                            static_cast<std::int64_t>(sub->id), "topic",
                            static_cast<std::int64_t>(req.topic));
    // Queue the ack NOW: subscribe handling and the event pump share this
    // loop thread, so the ack always precedes the first kEvent frame.
    SendAck(conn, req.request_id, WireStatus::kOk, sub->id,
            covered.resume_cursor);
  }

  void HandleUnsubscribe(const std::shared_ptr<Connection>& conn,
                         const FrameView& frame, bool* fatal) {
    WireUnsubscribe req;
    std::string error;
    switch (
        DecodeUnsubscribe(frame.payload, frame.payload_size, &req, &error)) {
      case BodyStatus::kBadId:
        AddU64(server_.stats_->protocol_errors, 1);
        support::trace::Instant("wire.protocol_error");
        *fatal = true;
        return;
      case BodyStatus::kBadBody:
        AddU64(server_.stats_->decode_errors, 1);
        SendAck(conn, req.request_id, WireStatus::kMalformedRequest, 0, 0);
        return;
      case BodyStatus::kOk:
        break;
    }
    const auto it = subs_by_id_.find(req.subscription_id);
    if (it == subs_by_id_.end() || it->second->conn != conn) {
      // Unknown id, or an id owned by another connection — either way
      // nothing this connection may tear down.
      SendAck(conn, req.request_id, WireStatus::kMalformedRequest,
              req.subscription_id, 0);
      return;
    }
    const std::shared_ptr<Sub> sub = it->second;
    CloseSubscription(sub);
    support::trace::Instant("push.unsubscribe", "sub",
                            static_cast<std::int64_t>(sub->id));
    SendAck(conn, req.request_id, WireStatus::kOk, sub->id, 0);
  }

  /// Loop thread. RemoveListener returning is the fence: after it no
  /// publisher callback for this sub is running or will ever run, so
  /// marking closed + clearing pending under the mutex leaves nothing
  /// in flight.
  void CloseSubscription(const std::shared_ptr<Sub>& sub) {
    if (sub->listener_id != 0) sub->feed->RemoveListener(sub->listener_id);
    {
      std::lock_guard<std::mutex> lock(sub->mutex);
      sub->closed = true;
      sub->pending.clear();
      sub->gap = false;
    }
    subs_by_id_.erase(sub->id);
    const auto it = subs_by_fd_.find(sub->conn->fd());
    if (it != subs_by_fd_.end()) {
      auto& list = it->second;
      list.erase(std::remove(list.begin(), list.end(), sub), list.end());
      if (list.empty()) subs_by_fd_.erase(it);
    }
    AddU64(server_.stats_->subscriptions_closed, 1);
  }

  /// Encode + enqueue one subscribe/unsubscribe ack. Loop thread.
  void SendAck(const std::shared_ptr<Connection>& conn,
               std::uint64_t request_id, WireStatus status,
               std::uint64_t subscription_id, std::uint64_t start_cursor) {
    if (conn->closed()) return;
    WireSubscribeAck ack;
    ack.request_id = request_id;
    ack.status = status;
    ack.subscription_id = subscription_id;
    ack.start_cursor = start_cursor;
    support::PooledBuffer buffer =
        support::BufferPool::WirePool().Acquire(kResponseOverhead);
    EncodeSubscribeAck(ack, buffer.bytes());
    if (conn->QueueOutput(std::move(buffer)) == 0) return;
    AddU64(server_.stats_->frames_out, 1);
    if (conn->ClaimNotify()) NotifyWritable(conn);
  }

  /// Loop thread, from Flush: encode queued subscription events into the
  /// connection's output — but only while the backlog sits below the LOW
  /// watermark. Request/response traffic owns the band between the
  /// watermarks, so the push plane can never drive a connection into the
  /// read-pause band: a slow subscriber sheds from its bounded queue
  /// (typed gap markers) instead of stalling its own responses. Returns
  /// true when any frame was queued.
  bool PumpPush(const std::shared_ptr<Connection>& conn) {
    const auto it = subs_by_fd_.find(conn->fd());
    if (it == subs_by_fd_.end()) return false;
    bool queued = false;
    std::vector<std::shared_ptr<Sub>> finished;
    for (const std::shared_ptr<Sub>& sub : it->second) {
      bool drained_end = false;
      while (!drained_end && conn->pending_output_bytes() <
                                 server_.config_.output_low_watermark) {
        WireEvent event;
        bool have = false;
        {
          std::lock_guard<std::mutex> lock(sub->mutex);
          if (sub->gap) {
            // The gap marker goes out BEFORE the retained events behind
            // it — its range only ever covers cursors older than
            // anything still pending.
            event.subscription_id = sub->id;
            event.kind = EventKind::kEventsDropped;
            event.topic = sub->topic;
            event.aux = sub->gap_first;
            event.cursor = sub->gap_last;
            sub->gap = false;
            have = true;
          } else if (!sub->pending.empty()) {
            event = std::move(sub->pending.front());
            sub->pending.pop_front();
            have = true;
          }
        }
        if (!have) break;
        support::PooledBuffer buffer = support::BufferPool::WirePool().Acquire(
            kResponseOverhead + event.body.size());
        EncodeEvent(event, event.body, buffer.bytes());
        if (conn->QueueOutput(std::move(buffer)) == 0) return queued;
        AddU64(server_.stats_->frames_out, 1);
        queued = true;
        switch (event.kind) {
          case EventKind::kData:
            AddU64(server_.stats_->events_out, 1);
            break;
          case EventKind::kEventsDropped:
            AddU64(server_.stats_->gap_markers, 1);
            support::trace::Instant(
                "push.gap_marker", "first",
                static_cast<std::int64_t>(event.aux), "last",
                static_cast<std::int64_t>(event.cursor));
            break;
          case EventKind::kEndOfDrain:
            // kDrainOnce: the marker is the last frame; auto-close.
            finished.push_back(sub);
            drained_end = true;
            break;
        }
      }
    }
    for (const std::shared_ptr<Sub>& sub : finished) CloseSubscription(sub);
    return queued;
  }

  void MaybePause(const std::shared_ptr<Connection>& conn) {
    if (!conn->paused &&
        conn->pending_output_bytes() >= server_.config_.output_high_watermark) {
      conn->paused = true;
      AddU64(server_.stats_->backpressure_stalls, 1);
      support::trace::Instant(
          "wire.backpressure_pause", "pending",
          static_cast<std::int64_t>(conn->pending_output_bytes()));
    }
  }

  /// Loop thread: arm or disarm EPOLLOUT for this fd, eliding the
  /// epoll_ctl when the interest set is already right. The common case —
  /// every flush drains in one writev run — performs zero epoll_ctl
  /// calls for the connection's whole lifetime.
  void SetWriteInterest(const std::shared_ptr<Connection>& conn, bool want) {
    if (conn->out_armed == want) return;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLET | EPOLLRDHUP | (want ? EPOLLOUT : 0u);
    ev.data.fd = conn->fd();
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd(), &ev) == 0) {
      conn->out_armed = want;
      if (want) AddU64(server_.stats_->epollout_arms, 1);
    }
  }

  /// Loop thread: take queued frames onto the write run and push the
  /// whole run with writev — one syscall covers every pipelined response
  /// queued since the last flush, and each fully written buffer goes
  /// back to the pool on the spot.
  void Flush(const std::shared_ptr<Connection>& conn) {
    if (conn->closed()) return;
    conn->ClearNotify();  // before TakeQueued: later appends must re-wake
    (void)PumpPush(conn);
    conn->write_bytes += conn->TakeQueued(conn->write_bufs);
    if (conn->write_bytes == 0) return;
    support::trace::Span span("wire.write");
    std::size_t written = 0;
    bool blocked = false;
    while (conn->write_bytes > 0) {
      iovec iov[kMaxIov];
      int iov_count = 0;
      for (std::size_t i = conn->write_start;
           i < conn->write_bufs.size() && iov_count < kMaxIov; ++i) {
        const std::vector<std::uint8_t>& bytes = conn->write_bufs[i].bytes();
        const std::size_t skip = i == conn->write_start ? conn->write_offset : 0;
        iov[iov_count].iov_base =
            const_cast<std::uint8_t*>(bytes.data() + skip);
        iov[iov_count].iov_len = bytes.size() - skip;
        ++iov_count;
      }
      // sendmsg == writev + MSG_NOSIGNAL: a peer that closed mid-stream
      // (a vanished subscriber, say) must surface as EPIPE on this
      // connection, not SIGPIPE for the whole process.
      msghdr msg{};
      msg.msg_iov = iov;
      msg.msg_iovlen = static_cast<std::size_t>(iov_count);
      const ssize_t n = ::sendmsg(conn->fd(), &msg, MSG_NOSIGNAL);
      AddU64(server_.stats_->writev_calls, 1);
      if (n > 0) {
        std::size_t left = static_cast<std::size_t>(n);
        written += left;
        conn->write_bytes -= left;
        while (left > 0) {
          support::PooledBuffer& front = conn->write_bufs[conn->write_start];
          const std::size_t remaining =
              front.bytes().size() - conn->write_offset;
          if (left >= remaining) {
            left -= remaining;
            front.Release();  // fully written: back to the pool now
            ++conn->write_start;
            conn->write_offset = 0;
          } else {
            conn->write_offset += left;
            left = 0;
          }
        }
        if (conn->write_bytes == 0) {
          // The run just drained, reopening the pump gate — refill from
          // any event-gated subscriptions and keep writing. The stale
          // pending total must be published first or the gate stays shut.
          conn->SetUnsentWriteBytes(0);
          if (PumpPush(conn)) {
            conn->write_bytes += conn->TakeQueued(conn->write_bufs);
          }
        }
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        blocked = true;
        break;
      }
      span.Tag("bytes", static_cast<std::int64_t>(written));
      AddU64(server_.stats_->bytes_out, written);
      Close(conn);  // broken pipe etc.
      return;
    }
    if (conn->write_bytes == 0) {
      conn->write_bufs.clear();  // all handles released; keep capacity
      conn->write_start = 0;
      conn->write_offset = 0;
    } else if (conn->write_start >= kWriteRunCompactAt) {
      conn->write_bufs.erase(
          conn->write_bufs.begin(),
          conn->write_bufs.begin() +
              static_cast<std::ptrdiff_t>(conn->write_start));
      conn->write_start = 0;
    }
    // Writability interest tracks the kernel, not the queue: armed only
    // when writev hit EAGAIN with bytes pending, dropped again the
    // moment the run empties.
    SetWriteInterest(conn, blocked && conn->write_bytes > 0);
    span.Tag("bytes", static_cast<std::int64_t>(written));
    AddU64(server_.stats_->bytes_out, written);
    conn->SetUnsentWriteBytes(conn->write_bytes);
    // Watermark check on the post-flush backlog. The pause side matters
    // here too (not just in DecodePass): async completions can pile up
    // output on a connection that is not currently sending us anything.
    MaybePause(conn);
    if (conn->paused &&
        conn->pending_output_bytes() <= server_.config_.output_low_watermark) {
      conn->paused = false;
      support::trace::Instant("wire.backpressure_resume");
      // Bytes may have piled up in the kernel while paused; under
      // edge-triggered epoll nobody will re-announce them.
      ReadPass(conn);
    }
  }

  WireServer& server_;
  const int index_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread thread_;
  std::unordered_map<int, std::shared_ptr<Connection>> conns_;
  /// Reusable zero-copy decode target (loop thread only): its property
  /// array keeps its capacity across requests.
  WireRequestView decode_scratch_;
  // M-Push subscription maps (loop thread only; the Subs themselves are
  // shared with feed listeners and carry their own mutexes).
  std::unordered_map<std::uint64_t, std::shared_ptr<Sub>> subs_by_id_;
  std::unordered_map<int, std::vector<std::shared_ptr<Sub>>> subs_by_fd_;

  std::mutex mutex_;
  bool stopping_ = false;
  std::vector<int> pending_fds_;
  std::vector<std::shared_ptr<Connection>> notified_;
};

// ---------------------------------------------------------------------------
// WireServer
// ---------------------------------------------------------------------------

WireServer::WireServer(gateway::Gateway& gateway, WireServerConfig config)
    : gateway_(gateway),
      config_(std::move(config)),
      stats_(std::make_shared<Counters>()) {}

WireServer::~WireServer() { Stop(); }

bool WireServer::Start(std::string* error) {
  if (started_.exchange(true)) {
    if (error != nullptr) *error = "already started";
    return false;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = "socket() failed";
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    if (error != nullptr) {
      *error = std::string("bind failed: ") + std::strerror(errno);
    }
    return false;
  }
  if (::listen(listen_fd_, config_.listen_backlog) != 0) {
    if (error != nullptr) *error = "listen failed";
    return false;
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  stop_eventfd_ = ::eventfd(0, EFD_CLOEXEC);
  if (stop_eventfd_ < 0) {
    if (error != nullptr) *error = "eventfd failed";
    return false;
  }
  const int loops = std::max(config_.event_loops, 1);
  for (int i = 0; i < loops; ++i) {
    loops_.push_back(std::make_shared<EventLoop>(*this, i));
    if (!loops_.back()->Start(error)) return false;
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void WireServer::AcceptLoop() {
  support::trace::SetCurrentThreadName("wire-acceptor");
  pollfd fds[2];
  fds[0] = {listen_fd_, POLLIN, 0};
  fds[1] = {stop_eventfd_, POLLIN, 0};
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int n = ::poll(fds, 2, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[1].revents & POLLIN) != 0) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    while (true) {
      const int fd =
          ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) break;  // EAGAIN: back to poll
      const std::uint64_t turn =
          next_loop_.fetch_add(1, std::memory_order_relaxed);
      loops_[turn % loops_.size()]->Adopt(fd);
    }
  }
}

void WireServer::Stop() {
  if (!started_.load(std::memory_order_relaxed)) return;
  if (stopping_.exchange(true)) {
    // Second caller (e.g. the destructor after an explicit Stop): the
    // first one already joined everything.
    return;
  }
  if (stop_eventfd_ >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(stop_eventfd_, &one, sizeof one);
  }
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& loop : loops_) loop->RequestStop();
  for (auto& loop : loops_) loop->Join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (stop_eventfd_ >= 0) {
    ::close(stop_eventfd_);
    stop_eventfd_ = -1;
  }
}

WireStatsSnapshot WireServer::Stats() const {
  WireStatsSnapshot snap;
  snap.connections_accepted =
      stats_->connections_accepted.load(std::memory_order_relaxed);
  snap.connections_closed =
      stats_->connections_closed.load(std::memory_order_relaxed);
  snap.frames_in = stats_->frames_in.load(std::memory_order_relaxed);
  snap.frames_out = stats_->frames_out.load(std::memory_order_relaxed);
  snap.bytes_in = stats_->bytes_in.load(std::memory_order_relaxed);
  snap.bytes_out = stats_->bytes_out.load(std::memory_order_relaxed);
  snap.decode_errors = stats_->decode_errors.load(std::memory_order_relaxed);
  snap.protocol_errors =
      stats_->protocol_errors.load(std::memory_order_relaxed);
  snap.wrong_worker = stats_->wrong_worker.load(std::memory_order_relaxed);
  snap.unsupported_frames =
      stats_->unsupported_frames.load(std::memory_order_relaxed);
  snap.backpressure_stalls =
      stats_->backpressure_stalls.load(std::memory_order_relaxed);
  snap.requests_dispatched =
      stats_->requests_dispatched.load(std::memory_order_relaxed);
  snap.scripts_dispatched =
      stats_->scripts_dispatched.load(std::memory_order_relaxed);
  snap.writev_calls = stats_->writev_calls.load(std::memory_order_relaxed);
  snap.epollout_arms = stats_->epollout_arms.load(std::memory_order_relaxed);
  snap.subscriptions_opened =
      stats_->subscriptions_opened.load(std::memory_order_relaxed);
  snap.subscriptions_closed =
      stats_->subscriptions_closed.load(std::memory_order_relaxed);
  snap.events_out = stats_->events_out.load(std::memory_order_relaxed);
  snap.events_dropped = stats_->events_dropped.load(std::memory_order_relaxed);
  snap.gap_markers = stats_->gap_markers.load(std::memory_order_relaxed);
  const support::BufferPoolStats pool = support::BufferPool::WirePool().Stats();
  snap.pool_hits = pool.hits;
  snap.pool_misses = pool.misses;
  snap.pool_returns = pool.returns;
  snap.pool_trims = pool.trims;
  return snap;
}

support::MetricsRegistry::Registration WireServer::RegisterMetrics(
    support::MetricsRegistry& registry, std::string prefix) const {
  return registry.Register(
      std::move(prefix), [this](support::MetricsSink& sink) {
        const WireStatsSnapshot snap = Stats();
        sink.Counter("connections_accepted", snap.connections_accepted);
        sink.Counter("connections_closed", snap.connections_closed);
        sink.Counter("connections_active", snap.connections_active());
        sink.Counter("frames_in", snap.frames_in);
        sink.Counter("frames_out", snap.frames_out);
        sink.Counter("bytes_in", snap.bytes_in);
        sink.Counter("bytes_out", snap.bytes_out);
        sink.Counter("decode_errors", snap.decode_errors);
        sink.Counter("protocol_errors", snap.protocol_errors);
        sink.Counter("wrong_worker", snap.wrong_worker);
        sink.Counter("unsupported_frames", snap.unsupported_frames);
        sink.Counter("backpressure_stalls", snap.backpressure_stalls);
        sink.Counter("requests_dispatched", snap.requests_dispatched);
        sink.Counter("scripts_dispatched", snap.scripts_dispatched);
        sink.Counter("writev_calls", snap.writev_calls);
        sink.Counter("epollout_arms", snap.epollout_arms);
        sink.Counter("push_subscriptions_opened", snap.subscriptions_opened);
        sink.Counter("push_subscriptions_closed", snap.subscriptions_closed);
        sink.Counter("push_subscriptions_active",
                     snap.subscriptions_active());
        sink.Counter("push_events_out", snap.events_out);
        sink.Counter("push_events_dropped", snap.events_dropped);
        sink.Counter("push_gap_markers", snap.gap_markers);
        sink.Counter("pool_hits", snap.pool_hits);
        sink.Counter("pool_misses", snap.pool_misses);
        sink.Counter("pool_returns", snap.pool_returns);
        sink.Counter("pool_trims", snap.pool_trims);
        // Frame-buffer allocations per dispatched request: pool misses
        // are the only fresh heap buffers on the frame path, so at
        // steady state this reads 0.0 (the tentpole's no-alloc claim,
        // live and assertable).
        sink.Gauge("allocs_per_req",
                   snap.requests_dispatched == 0
                       ? 0.0
                       : static_cast<double>(snap.pool_misses) /
                             static_cast<double>(snap.requests_dispatched));
      });
}

}  // namespace mobivine::wire
