// M-Wire server: a non-blocking epoll reactor front-end that serves the
// M-Gateway over real TCP sockets.
//
// Architecture — one acceptor, N event loops:
//
//     acceptor thread ── accept4 ──▶ round-robin ──▶ event loop 0..N-1
//     event loop: epoll_wait → edge-triggered reads landing directly in
//       per-connection rings → DecodeFrame/DecodeRequestView (string
//       fields are views into the ring — zero copy) → the gateway's
//       borrowed-request Submit, which materializes only if the request
//       is admitted (shed responses cost no string allocation)…
//       completion fires on a gateway shard worker, which encodes the
//       response into a pooled buffer, moves it onto the connection's
//       bounded output queue and pokes the loop's eventfd; the loop
//       drains the whole run with one writev, returning each buffer to
//       the pool as it completes. EPOLLOUT is armed only when the kernel
//       refuses bytes and dropped as soon as the run empties, so a
//       keeping-up connection performs no epoll_ctl at all.
//
// Failure containment: framing violations (bad magic/version, oversized
// length prefix, CRC mismatch, undecodable request id) close the
// connection; a well-framed request whose body breaks a rule is answered
// with a typed kMalformedRequest response and the connection lives on.
// Either way the server never crashes or leaks on hostile input — the
// frame-mutation fuzz suite in tests/wire_test.cpp runs under ASan.
//
// Backpressure: per-connection output above the high watermark stops
// reading that socket until it drains below the low watermark (TCP's
// receive window then pushes back on the peer). What the server does
// admit still faces the gateway's shed/deadline admission — the two
// compose; neither buffers unboundedly.
//
// Observability: wire.read / wire.decode / wire.dispatch / wire.write
// M-Scope spans on the loop threads (named "wire-loop-N"), plus a
// "wire." MetricsRegistry source (connections, frames, bytes, decode
// errors, backpressure stalls).
//
// Shutdown contract: Stop() (or the destructor) closes every socket and
// joins the threads, but gateway completions for already-dispatched
// requests may still arrive afterwards — they hold the connection alive
// via shared_ptr and drop their bytes. The WireServer object itself must
// therefore outlive the Gateway's in-flight work: stop order is
// server.Stop() then gateway.Stop() then destruction of either.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gateway/gateway.h"
#include "support/metrics.h"

namespace mobivine::wire {

struct WireServerConfig {
  /// Loopback only: this is a front-end for benches/tests on one host,
  /// not an internet-facing listener.
  std::uint16_t port = 0;  ///< 0: kernel-assigned; read back via port()
  int event_loops = 2;
  int listen_backlog = 128;
  /// Stop reading a connection when its queued-but-unsent output reaches
  /// this; resume below `output_low_watermark`.
  std::size_t output_high_watermark = 256 * 1024;
  std::size_t output_low_watermark = 64 * 1024;
  /// M-Cluster routing fence. When set, every decoded request's client id
  /// is checked before dispatch: a false return means this process does
  /// not own that id under the current partition plan, and the request is
  /// answered in-band with kWrongWorker carrying `*plan_epoch` (decimal,
  /// in the body) so the client can refresh its plan and re-route. Called
  /// from loop threads — must be cheap and thread-safe (the cluster
  /// worker agent backs it with an atomic plan snapshot). Null = own
  /// everything (standalone server).
  std::function<bool(std::uint64_t client_id, std::uint64_t* plan_epoch)>
      ownership;
  /// M-Push: events queued per subscription awaiting the loop's pump.
  /// A subscriber that cannot drain this fast sheds oldest-first and
  /// receives a typed kEventsDropped gap marker instead of stalling the
  /// shard's publish path or the connection's request/response traffic.
  std::size_t push_queue_capacity = 256;
};

/// Relaxed-atomic counters, snapshotable while serving (same contract as
/// gateway::ShardStats).
struct WireStatsSnapshot {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t frames_in = 0;   ///< well-formed frames decoded
  std::uint64_t frames_out = 0;  ///< response frames queued
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t decode_errors = 0;    ///< kMalformedRequest responses
  std::uint64_t protocol_errors = 0;  ///< framing errors (connection closed)
  std::uint64_t wrong_worker = 0;  ///< requests fenced by the ownership filter
  std::uint64_t unsupported_frames = 0;  ///< unknown frame types answered
  std::uint64_t backpressure_stalls = 0;  ///< read pauses at the watermark
  std::uint64_t requests_dispatched = 0;  ///< handed to gateway::Submit
  std::uint64_t scripts_dispatched = 0;  ///< kScript frames handed to
                                         ///< gateway::SubmitScript
  std::uint64_t writev_calls = 0;         ///< scatter-gather flush syscalls
  std::uint64_t epollout_arms = 0;  ///< EPOLLOUT registrations (EAGAIN only)
  // Frame-buffer pool (support::BufferPool::WirePool()), shared with the
  // wire client in-process. `pool_misses / requests_dispatched` is the
  // allocs-per-request figure — 0 at steady state.
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_misses = 0;  ///< fresh heap allocations
  std::uint64_t pool_returns = 0;
  std::uint64_t pool_trims = 0;  ///< dropped: class full or oversized
  // M-Push subscription plane.
  std::uint64_t subscriptions_opened = 0;
  std::uint64_t subscriptions_closed = 0;
  std::uint64_t events_out = 0;      ///< kEvent data frames queued
  std::uint64_t events_dropped = 0;  ///< shed from per-subscription queues
  std::uint64_t gap_markers = 0;     ///< kEventsDropped frames emitted

  [[nodiscard]] std::uint64_t subscriptions_active() const {
    return subscriptions_opened - subscriptions_closed;
  }

  [[nodiscard]] std::uint64_t connections_active() const {
    return connections_accepted - connections_closed;
  }
};

class WireServer {
 public:
  /// The gateway must outlive this server's Stop() (requests dispatch
  /// into it from loop threads until every connection is closed).
  explicit WireServer(gateway::Gateway& gateway, WireServerConfig config = {});
  ~WireServer();

  WireServer(const WireServer&) = delete;
  WireServer& operator=(const WireServer&) = delete;

  /// Bind 127.0.0.1, listen, start the acceptor and event loops. False
  /// on socket-layer failure (`error` says why). Not restartable.
  [[nodiscard]] bool Start(std::string* error = nullptr);

  /// Close the listener and every connection, join all threads.
  /// Idempotent; the destructor calls it.
  void Stop();

  /// The bound port (valid after Start succeeds).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  [[nodiscard]] WireStatsSnapshot Stats() const;

  /// Register as one M-Scope metrics source under `prefix`. Drop the
  /// registration before destroying the server.
  [[nodiscard]] support::MetricsRegistry::Registration RegisterMetrics(
      support::MetricsRegistry& registry, std::string prefix = "wire.") const;

 private:
  class EventLoop;
  struct Counters;

  void AcceptLoop();

  gateway::Gateway& gateway_;
  const WireServerConfig config_;
  /// Shared (not unique) so in-flight completion callbacks can keep the
  /// counters alive past the server object (see shutdown contract).
  std::shared_ptr<Counters> stats_;
  std::vector<std::shared_ptr<EventLoop>> loops_;
  std::thread acceptor_;
  int listen_fd_ = -1;
  int stop_eventfd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> next_loop_{0};
  /// Subscription ids are server-wide unique (loops allocate from one
  /// counter) so a client can demux event frames across connections.
  std::atomic<std::uint64_t> next_subscription_id_{1};
};

}  // namespace mobivine::wire
