#include "wire/client.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "support/buffer_pool.h"

namespace mobivine::wire {

namespace {

constexpr std::size_t kReadChunk = 64 * 1024;
/// Encoded-request bytes beyond the string fields (header, CRC, varints).
constexpr std::size_t kRequestOverhead = 64;
/// Recycled pending_-map nodes kept around; bounds the idle footprint
/// while covering any realistic in-flight window.
constexpr std::size_t kMaxFreeNodes = 512;

[[nodiscard]] std::size_t EncodedSizeHint(const WireRequest& request) {
  return kRequestOverhead + request.target.size() + request.payload.size() +
         request.content_type.size();
}

/// Write the whole buffer to a blocking socket. False on any error.
bool WriteAll(int fd, const std::uint8_t* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, data + off, n - off);
    if (w > 0) {
      off += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

WireClient::~WireClient() { Close(); }

void WireClient::EmplacePendingLocked(std::uint64_t id, Callback&& callback) {
  if (!free_nodes_.empty()) {
    PendingMap::node_type node = std::move(free_nodes_.back());
    free_nodes_.pop_back();
    node.key() = id;
    node.mapped() = std::move(callback);
    pending_.insert(std::move(node));
    return;
  }
  pending_.emplace(id, std::move(callback));
}

WireClient::Callback WireClient::TakePending(std::uint64_t id) {
  Callback callback;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = pending_.find(id);
  if (it == pending_.end()) return callback;
  PendingMap::node_type node = pending_.extract(it);
  callback = std::move(node.mapped());
  // Drop captured state now (a batch callback holds shared state alive);
  // the node shell alone is what gets recycled.
  node.mapped() = nullptr;
  if (free_nodes_.size() < kMaxFreeNodes) free_nodes_.push_back(std::move(node));
  return callback;
}

bool WireClient::Connect(std::uint16_t port, std::string* error) {
  if (connected_.load(std::memory_order_acquire) || fd_ >= 0) {
    if (error != nullptr) *error = "already connected";
    return false;
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    if (error != nullptr) *error = "socket() failed";
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (error != nullptr) {
      *error = std::string("connect failed: ") + std::strerror(errno);
    }
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  connected_.store(true, std::memory_order_release);
  reader_ = std::thread([this] { ReaderLoop(); });
  return true;
}

bool WireClient::Submit(const WireRequest& request, Callback callback) {
  if (!connected_.load(std::memory_order_acquire)) {
    WireResponse dead;
    dead.request_id = request.request_id;
    dead.status = WireStatus::kTransportError;
    callback(dead);
    return false;
  }
  const std::uint64_t id =
      next_id_.fetch_add(1, std::memory_order_relaxed);
  // Encode straight from the caller's struct into a pooled frame buffer,
  // stamping the id into the frame only — no request copy, no fresh
  // allocation at steady state.
  support::PooledBuffer buffer =
      support::BufferPool::WirePool().Acquire(EncodedSizeHint(request));
  std::vector<std::uint8_t>& bytes = buffer.bytes();
  EncodeRequest(request, id, bytes);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    EmplacePendingLocked(id, std::move(callback));
  }
  bool sent = false;
  {
    std::lock_guard<std::mutex> lock(send_mutex_);
    sent = connected_.load(std::memory_order_acquire) &&
           WriteAll(fd_, bytes.data(), bytes.size());
  }
  if (sent) return true;
  // Send failed: complete this request with a transport error — unless
  // the reader noticed the dead socket first and already failed it.
  Callback mine = TakePending(id);
  if (mine) {
    WireResponse dead;
    dead.request_id = id;
    dead.status = WireStatus::kTransportError;
    mine(dead);
  }
  return false;
}

std::size_t WireClient::SubmitBatch(const std::vector<WireRequest>& requests,
                                    const Callback& callback) {
  if (requests.empty()) return 0;
  if (!connected_.load(std::memory_order_acquire)) {
    for (const WireRequest& request : requests) {
      WireResponse dead;
      dead.request_id = request.request_id;
      dead.status = WireStatus::kTransportError;
      callback(dead);
    }
    return 0;
  }
  std::size_t size_hint = 0;
  for (const WireRequest& request : requests) {
    size_hint += EncodedSizeHint(request);
  }
  std::vector<std::uint64_t> ids;
  ids.reserve(requests.size());
  // One pooled buffer holds the whole batch; requests are encoded in
  // place from the caller's structs (no per-request copy), ids stamped
  // into the frames only.
  support::PooledBuffer buffer =
      support::BufferPool::WirePool().Acquire(size_hint);
  std::vector<std::uint8_t>& bytes = buffer.bytes();
  for (const WireRequest& request : requests) {
    const std::uint64_t id =
        next_id_.fetch_add(1, std::memory_order_relaxed);
    ids.push_back(id);
    EncodeRequest(request, id, bytes);
  }
  // One shared copy of the callback for the whole batch: each pending
  // entry is a 16-byte shared_ptr wrapper (inside std::function's small
  // buffer), not a fresh copy of the caller's callable.
  const auto shared = std::make_shared<const Callback>(callback);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::uint64_t id : ids) {
      EmplacePendingLocked(
          id, [shared](const WireResponse& response) { (*shared)(response); });
    }
  }
  bool sent = false;
  {
    std::lock_guard<std::mutex> lock(send_mutex_);
    sent = connected_.load(std::memory_order_acquire) &&
           WriteAll(fd_, bytes.data(), bytes.size());
  }
  if (sent) return ids.size();
  // A failed batch write leaves an unknown prefix delivered; responses
  // that do arrive match their pending entries, the rest fail here.
  std::vector<Callback> orphans;
  for (std::uint64_t id : ids) {
    Callback orphan = TakePending(id);
    if (orphan) orphans.push_back(std::move(orphan));
  }
  for (std::size_t i = 0; i < orphans.size(); ++i) {
    WireResponse dead;
    dead.status = WireStatus::kTransportError;
    orphans[i](dead);
  }
  return ids.size() - orphans.size();
}

bool WireClient::Call(WireRequest request, WireResponse* response) {
  std::mutex done_mutex;
  std::condition_variable done_cv;
  bool done = false;
  Submit(request, [&](const WireResponse& completed) {
    *response = completed;
    // Notify under the lock: these are stack objects, and the waiter
    // destroys them the moment it observes done — an unlocked notify
    // could still be touching the cv then.
    std::lock_guard<std::mutex> lock(done_mutex);
    done = true;
    done_cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return done; });
  return response->status != WireStatus::kTransportError;
}

void WireClient::Close() {
  if (fd_ >= 0) {
    // Shut down rather than close: the reader thread wakes with EOF and
    // fails outstanding callbacks; the fd stays valid until the join.
    ::shutdown(fd_, SHUT_RDWR);
  }
  connected_.store(false, std::memory_order_release);
  if (reader_.joinable()) reader_.join();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  FailAllOutstanding();  // e.g. Close() racing sends; normally a no-op
}

std::size_t WireClient::outstanding() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_.size();
}

void WireClient::ReaderLoop() {
  std::vector<std::uint8_t> carry;  // partial-frame bytes between reads
  std::uint8_t chunk[kReadChunk];
  bool dead = false;

  // Decode every complete frame in [data, data+size); returns the bytes
  // consumed. Sets `dead` when the server broke protocol.
  const auto drain = [&](const std::uint8_t* data,
                         std::size_t size) -> std::size_t {
    std::size_t off = 0;
    while (true) {
      FrameView frame;
      std::size_t consumed = 0;
      const DecodeStatus status =
          DecodeFrame(data + off, size - off, &frame, &consumed, nullptr);
      if (status == DecodeStatus::kNeedMore) return off;
      if (status == DecodeStatus::kMalformed ||
          frame.type != FrameType::kResponse) {
        dead = true;
        return off;
      }
      WireResponse response;
      if (!DecodeResponse(frame.payload, frame.payload_size, &response,
                          nullptr)) {
        dead = true;
        return off;
      }
      off += consumed;
      // Unmatched ids (already failed, or a server bug) are dropped.
      Callback callback = TakePending(response.request_id);
      if (callback) callback(response);
    }
  };

  while (!dead) {
    const ssize_t n = ::read(fd_, chunk, sizeof chunk);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF or error: fail everything below
    const std::size_t got = static_cast<std::size_t>(n);
    if (carry.empty()) {
      // Fast path: decode straight out of the read chunk; only a
      // trailing partial frame is copied into the carry-over buffer.
      const std::size_t used = drain(chunk, got);
      if (!dead && used < got) carry.assign(chunk + used, chunk + got);
    } else {
      carry.insert(carry.end(), chunk, chunk + got);
      const std::size_t used = drain(carry.data(), carry.size());
      if (used == carry.size()) {
        carry.clear();
      } else if (used > 0) {
        carry.erase(carry.begin(), carry.begin() +
                                       static_cast<std::ptrdiff_t>(used));
      }
    }
  }
  connected_.store(false, std::memory_order_release);
  FailAllOutstanding();
}

void WireClient::FailAllOutstanding() {
  std::unordered_map<std::uint64_t, Callback> orphans;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    orphans.swap(pending_);
  }
  for (auto& [id, callback] : orphans) {
    WireResponse dead;
    dead.request_id = id;
    dead.status = WireStatus::kTransportError;
    callback(dead);
  }
}

}  // namespace mobivine::wire
