#include "wire/client.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace mobivine::wire {

namespace {

constexpr std::size_t kReadChunk = 64 * 1024;

/// Write the whole buffer to a blocking socket. False on any error.
bool WriteAll(int fd, const std::uint8_t* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, data + off, n - off);
    if (w > 0) {
      off += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

WireClient::~WireClient() { Close(); }

bool WireClient::Connect(std::uint16_t port, std::string* error) {
  if (connected_.load(std::memory_order_acquire) || fd_ >= 0) {
    if (error != nullptr) *error = "already connected";
    return false;
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    if (error != nullptr) *error = "socket() failed";
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (error != nullptr) {
      *error = std::string("connect failed: ") + std::strerror(errno);
    }
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  connected_.store(true, std::memory_order_release);
  reader_ = std::thread([this] { ReaderLoop(); });
  return true;
}

bool WireClient::Submit(WireRequest request, Callback callback) {
  if (!connected_.load(std::memory_order_acquire)) {
    WireResponse dead;
    dead.request_id = request.request_id;
    dead.status = WireStatus::kTransportError;
    callback(dead);
    return false;
  }
  const std::uint64_t id =
      next_id_.fetch_add(1, std::memory_order_relaxed);
  request.request_id = id;
  std::vector<std::uint8_t> bytes;
  EncodeRequest(request, bytes);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_.emplace(id, std::move(callback));
  }
  bool sent = false;
  {
    std::lock_guard<std::mutex> lock(send_mutex_);
    sent = connected_.load(std::memory_order_acquire) &&
           WriteAll(fd_, bytes.data(), bytes.size());
  }
  if (sent) return true;
  // Send failed: complete this request with a transport error — unless
  // the reader noticed the dead socket first and already failed it.
  Callback mine;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = pending_.find(id);
    if (it != pending_.end()) {
      mine = std::move(it->second);
      pending_.erase(it);
    }
  }
  if (mine) {
    WireResponse dead;
    dead.request_id = id;
    dead.status = WireStatus::kTransportError;
    mine(dead);
  }
  return false;
}

std::size_t WireClient::SubmitBatch(std::vector<WireRequest> requests,
                                    const Callback& callback) {
  if (requests.empty()) return 0;
  if (!connected_.load(std::memory_order_acquire)) {
    for (const WireRequest& request : requests) {
      WireResponse dead;
      dead.request_id = request.request_id;
      dead.status = WireStatus::kTransportError;
      callback(dead);
    }
    return 0;
  }
  std::vector<std::uint64_t> ids;
  ids.reserve(requests.size());
  std::vector<std::uint8_t> bytes;
  for (WireRequest& request : requests) {
    request.request_id = next_id_.fetch_add(1, std::memory_order_relaxed);
    ids.push_back(request.request_id);
    EncodeRequest(request, bytes);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::uint64_t id : ids) pending_.emplace(id, callback);
  }
  bool sent = false;
  {
    std::lock_guard<std::mutex> lock(send_mutex_);
    sent = connected_.load(std::memory_order_acquire) &&
           WriteAll(fd_, bytes.data(), bytes.size());
  }
  if (sent) return ids.size();
  // A failed batch write leaves an unknown prefix delivered; responses
  // that do arrive match their pending entries, the rest fail here.
  std::vector<Callback> orphans;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::uint64_t id : ids) {
      const auto it = pending_.find(id);
      if (it != pending_.end()) {
        orphans.push_back(std::move(it->second));
        pending_.erase(it);
      }
    }
  }
  for (std::size_t i = 0; i < orphans.size(); ++i) {
    WireResponse dead;
    dead.status = WireStatus::kTransportError;
    orphans[i](dead);
  }
  return ids.size() - orphans.size();
}

bool WireClient::Call(WireRequest request, WireResponse* response) {
  std::mutex done_mutex;
  std::condition_variable done_cv;
  bool done = false;
  Submit(std::move(request), [&](const WireResponse& completed) {
    *response = completed;
    // Notify under the lock: these are stack objects, and the waiter
    // destroys them the moment it observes done — an unlocked notify
    // could still be touching the cv then.
    std::lock_guard<std::mutex> lock(done_mutex);
    done = true;
    done_cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return done; });
  return response->status != WireStatus::kTransportError;
}

void WireClient::Close() {
  if (fd_ >= 0) {
    // Shut down rather than close: the reader thread wakes with EOF and
    // fails outstanding callbacks; the fd stays valid until the join.
    ::shutdown(fd_, SHUT_RDWR);
  }
  connected_.store(false, std::memory_order_release);
  if (reader_.joinable()) reader_.join();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  FailAllOutstanding();  // e.g. Close() racing sends; normally a no-op
}

std::size_t WireClient::outstanding() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_.size();
}

void WireClient::ReaderLoop() {
  std::vector<std::uint8_t> buf;
  std::size_t start = 0;  // decoded-up-to offset into buf
  std::uint8_t chunk[kReadChunk];
  while (true) {
    const ssize_t n = ::read(fd_, chunk, sizeof chunk);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF or error: fail everything below
    buf.insert(buf.end(), chunk, chunk + n);
    bool dead = false;
    while (true) {
      FrameView frame;
      std::size_t consumed = 0;
      const DecodeStatus status =
          DecodeFrame(buf.data() + start, buf.size() - start, &frame,
                      &consumed, nullptr);
      if (status == DecodeStatus::kNeedMore) break;
      if (status == DecodeStatus::kMalformed ||
          frame.type != FrameType::kResponse) {
        dead = true;  // server broke protocol; kill the connection
        break;
      }
      WireResponse response;
      if (!DecodeResponse(frame.payload, frame.payload_size, &response,
                          nullptr)) {
        dead = true;
        break;
      }
      start += consumed;
      Callback callback;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = pending_.find(response.request_id);
        if (it != pending_.end()) {
          callback = std::move(it->second);
          pending_.erase(it);
        }
      }
      // Unmatched ids (already failed, or a server bug) are dropped.
      if (callback) callback(response);
    }
    if (dead) break;
    if (start == buf.size()) {
      buf.clear();
      start = 0;
    } else if (start > kReadChunk) {
      buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(start));
      start = 0;
    }
  }
  connected_.store(false, std::memory_order_release);
  FailAllOutstanding();
}

void WireClient::FailAllOutstanding() {
  std::unordered_map<std::uint64_t, Callback> orphans;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    orphans.swap(pending_);
  }
  for (auto& [id, callback] : orphans) {
    WireResponse dead;
    dead.request_id = id;
    dead.status = WireStatus::kTransportError;
    callback(dead);
  }
}

}  // namespace mobivine::wire
