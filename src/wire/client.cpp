#include "wire/client.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>
#include <utility>

#include "support/buffer_pool.h"

namespace mobivine::wire {

namespace {

constexpr std::size_t kReadChunk = 64 * 1024;
/// Encoded-request bytes beyond the string fields (header, CRC, varints).
constexpr std::size_t kRequestOverhead = 64;
/// Recycled pending_-map nodes kept around; bounds the idle footprint
/// while covering any realistic in-flight window.
constexpr std::size_t kMaxFreeNodes = 512;

[[nodiscard]] std::size_t EncodedSizeHint(const WireRequest& request) {
  return kRequestOverhead + request.target.size() + request.payload.size() +
         request.content_type.size();
}

/// Write the whole buffer to a blocking socket. False on any error.
/// MSG_NOSIGNAL: a Submit racing Close() must see EPIPE on the shut-down
/// socket, not die on SIGPIPE.
bool WriteAll(int fd, const std::uint8_t* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w > 0) {
      off += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

/// One bounded connect attempt: non-blocking connect, poll for
/// writability up to `timeout`, read the outcome from SO_ERROR, restore
/// blocking mode. Returns the fd or -1 (errno-style reason in `error`).
int ConnectOnce(std::uint16_t port, std::chrono::microseconds timeout,
                std::string* error) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    if (error != nullptr) *error = "socket() failed";
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  if (rc != 0 && errno != EINPROGRESS) {
    if (error != nullptr) {
      *error = std::string("connect failed: ") + std::strerror(errno);
    }
    ::close(fd);
    return -1;
  }
  if (rc != 0) {
    pollfd pfd{fd, POLLOUT, 0};
    const int timeout_ms = static_cast<int>(
        std::max<std::int64_t>(1, timeout.count() / 1000));
    do {
      rc = ::poll(&pfd, 1, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc <= 0) {
      if (error != nullptr) *error = "connect timed out";
      ::close(fd);
      return -1;
    }
    int so_error = 0;
    socklen_t len = sizeof so_error;
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
    if (so_error != 0) {
      if (error != nullptr) {
        *error = std::string("connect failed: ") + std::strerror(so_error);
      }
      ::close(fd);
      return -1;
    }
  }
  // Back to blocking: the client library's write/read paths assume it.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

}  // namespace

int ConnectLoopback(std::uint16_t port, const ConnectOptions& options,
                    std::string* error) {
  std::chrono::microseconds backoff = options.initial_backoff;
  const int attempts = std::max(options.max_attempts, 1);
  for (int attempt = 0;; ++attempt) {
    const int fd = ConnectOnce(port, options.connect_timeout, error);
    if (fd >= 0) return fd;
    if (attempt + 1 >= attempts) return -1;
    std::this_thread::sleep_for(backoff);
    backoff = std::min(
        options.max_backoff,
        std::chrono::microseconds(static_cast<std::int64_t>(
            static_cast<double>(backoff.count()) *
            std::max(1.0, options.backoff_multiplier))));
  }
}

WireClient::~WireClient() { Close(); }

void WireClient::EmplacePendingLocked(std::uint64_t id, Callback&& callback) {
  if (!free_nodes_.empty()) {
    PendingMap::node_type node = std::move(free_nodes_.back());
    free_nodes_.pop_back();
    node.key() = id;
    node.mapped() = std::move(callback);
    pending_.insert(std::move(node));
    return;
  }
  pending_.emplace(id, std::move(callback));
}

WireClient::Callback WireClient::TakePending(std::uint64_t id) {
  Callback callback;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = pending_.find(id);
  if (it == pending_.end()) return callback;
  PendingMap::node_type node = pending_.extract(it);
  callback = std::move(node.mapped());
  // Drop captured state now (a batch callback holds shared state alive);
  // the node shell alone is what gets recycled.
  node.mapped() = nullptr;
  if (free_nodes_.size() < kMaxFreeNodes) free_nodes_.push_back(std::move(node));
  return callback;
}

bool WireClient::Connect(std::uint16_t port, std::string* error) {
  return Connect(port, ConnectOptions{}, error);
}

bool WireClient::Connect(std::uint16_t port, const ConnectOptions& options,
                         std::string* error) {
  if (connected_.load(std::memory_order_acquire)) {
    if (error != nullptr) *error = "already connected";
    return false;
  }
  // A dead (or closed) previous connection is reclaimed here so one
  // client object can dial again — the cluster client leans on this to
  // survive worker restarts.
  ReclaimDeadConnection();
  const int fd = ConnectLoopback(port, options, error);
  if (fd < 0) return false;
  fd_.store(fd, std::memory_order_release);
  connected_.store(true, std::memory_order_release);
  reader_ = std::thread([this] { ReaderLoop(); });
  return true;
}

void WireClient::ReclaimDeadConnection() {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  if (reader_.joinable()) reader_.join();
  {
    // close() only under send_mutex_ (see fd_'s comment): a Submit that
    // raced past the connected_ check and is inside WriteAll right now
    // holds it, so its write hits the shut-down-but-still-valid fd — a
    // clean EPIPE, never a recycled descriptor.
    std::lock_guard<std::mutex> lock(send_mutex_);
    const int cur = fd_.load(std::memory_order_relaxed);
    if (cur >= 0) {
      ::close(cur);
      fd_.store(-1, std::memory_order_release);
    }
  }
  FailAllOutstanding();
}

bool WireClient::Submit(const WireRequest& request, Callback callback) {
  if (!connected_.load(std::memory_order_acquire)) {
    WireResponse dead;
    dead.request_id = request.request_id;
    dead.status = WireStatus::kTransportError;
    callback(dead);
    return false;
  }
  const std::uint64_t id =
      next_id_.fetch_add(1, std::memory_order_relaxed);
  // Encode straight from the caller's struct into a pooled frame buffer,
  // stamping the id into the frame only — no request copy, no fresh
  // allocation at steady state.
  support::PooledBuffer buffer =
      support::BufferPool::WirePool().Acquire(EncodedSizeHint(request));
  std::vector<std::uint8_t>& bytes = buffer.bytes();
  EncodeRequest(request, id, bytes);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    EmplacePendingLocked(id, std::move(callback));
  }
  bool sent = false;
  {
    std::lock_guard<std::mutex> lock(send_mutex_);
    const int fd = fd_.load(std::memory_order_relaxed);
    sent = fd >= 0 && connected_.load(std::memory_order_acquire) &&
           WriteAll(fd, bytes.data(), bytes.size());
  }
  if (sent) return true;
  // Send failed: complete this request with a transport error — unless
  // the reader noticed the dead socket first and already failed it.
  Callback mine = TakePending(id);
  if (mine) {
    WireResponse dead;
    dead.request_id = id;
    dead.status = WireStatus::kTransportError;
    mine(dead);
  }
  return false;
}

std::size_t WireClient::SubmitBatch(const std::vector<WireRequest>& requests,
                                    const Callback& callback) {
  // One shared copy of the callback for the whole batch: each pending
  // entry is a 16-byte shared_ptr wrapper (inside std::function's small
  // buffer), not a fresh copy of the caller's callable.
  const auto shared = std::make_shared<const Callback>(callback);
  return SubmitBatchImpl(requests, [&shared](std::size_t) {
    return Callback(
        [shared](const WireResponse& response) { (*shared)(response); });
  });
}

std::size_t WireClient::SubmitBatch(const std::vector<WireRequest>& requests,
                                    std::vector<Callback> callbacks) {
  if (callbacks.size() != requests.size()) {
    for (Callback& callback : callbacks) {
      WireResponse dead;
      dead.status = WireStatus::kTransportError;
      dead.body = "batch callbacks/requests length mismatch";
      if (callback) callback(dead);
    }
    return 0;
  }
  return SubmitBatchImpl(requests, [&callbacks](std::size_t i) {
    return std::move(callbacks[i]);
  });
}

std::size_t WireClient::SubmitBatchImpl(
    const std::vector<WireRequest>& requests,
    const std::function<Callback(std::size_t)>& callback_at) {
  if (requests.empty()) return 0;
  if (!connected_.load(std::memory_order_acquire)) {
    for (std::size_t i = 0; i < requests.size(); ++i) {
      WireResponse dead;
      dead.request_id = requests[i].request_id;
      dead.status = WireStatus::kTransportError;
      callback_at(i)(dead);
    }
    return 0;
  }
  std::size_t size_hint = 0;
  for (const WireRequest& request : requests) {
    size_hint += EncodedSizeHint(request);
  }
  std::vector<std::uint64_t> ids;
  ids.reserve(requests.size());
  // One pooled buffer holds the whole batch; requests are encoded in
  // place from the caller's structs (no per-request copy), ids stamped
  // into the frames only.
  support::PooledBuffer buffer =
      support::BufferPool::WirePool().Acquire(size_hint);
  std::vector<std::uint8_t>& bytes = buffer.bytes();
  for (const WireRequest& request : requests) {
    const std::uint64_t id =
        next_id_.fetch_add(1, std::memory_order_relaxed);
    ids.push_back(id);
    EncodeRequest(request, id, bytes);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      EmplacePendingLocked(ids[i], callback_at(i));
    }
  }
  bool sent = false;
  {
    std::lock_guard<std::mutex> lock(send_mutex_);
    const int fd = fd_.load(std::memory_order_relaxed);
    sent = fd >= 0 && connected_.load(std::memory_order_acquire) &&
           WriteAll(fd, bytes.data(), bytes.size());
  }
  if (sent) return ids.size();
  // A failed batch write leaves an unknown prefix delivered; responses
  // that do arrive match their pending entries, the rest fail here.
  std::vector<Callback> orphans;
  for (std::uint64_t id : ids) {
    Callback orphan = TakePending(id);
    if (orphan) orphans.push_back(std::move(orphan));
  }
  for (std::size_t i = 0; i < orphans.size(); ++i) {
    WireResponse dead;
    dead.status = WireStatus::kTransportError;
    orphans[i](dead);
  }
  return ids.size() - orphans.size();
}

bool WireClient::Subscribe(const WireSubscribe& subscribe,
                           EventHandler on_event, AckCallback on_ack) {
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  if (!connected_.load(std::memory_order_acquire)) {
    WireSubscribeAck dead;
    dead.request_id = id;
    dead.status = WireStatus::kTransportError;
    if (on_ack) on_ack(dead);
    return false;
  }
  WireSubscribe stamped = subscribe;
  stamped.request_id = id;
  support::PooledBuffer buffer =
      support::BufferPool::WirePool().Acquire(kRequestOverhead);
  std::vector<std::uint8_t>& bytes = buffer.bytes();
  EncodeSubscribe(stamped, bytes);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    PendingSub pending;
    pending.ack = std::move(on_ack);
    pending.handler =
        std::make_shared<const EventHandler>(std::move(on_event));
    pending.is_subscribe = true;
    pending_subs_.emplace(id, std::move(pending));
  }
  bool sent = false;
  {
    std::lock_guard<std::mutex> lock(send_mutex_);
    const int fd = fd_.load(std::memory_order_relaxed);
    sent = fd >= 0 && connected_.load(std::memory_order_acquire) &&
           WriteAll(fd, bytes.data(), bytes.size());
  }
  if (sent) return true;
  AckCallback mine;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = pending_subs_.find(id);
    if (it != pending_subs_.end()) {
      mine = std::move(it->second.ack);
      pending_subs_.erase(it);
    }
  }
  if (mine) {
    WireSubscribeAck dead;
    dead.request_id = id;
    dead.status = WireStatus::kTransportError;
    mine(dead);
  }
  return false;
}

bool WireClient::Unsubscribe(std::uint64_t subscription_id,
                             AckCallback on_ack) {
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  if (!connected_.load(std::memory_order_acquire)) {
    WireSubscribeAck dead;
    dead.request_id = id;
    dead.subscription_id = subscription_id;
    dead.status = WireStatus::kTransportError;
    if (on_ack) on_ack(dead);
    return false;
  }
  WireUnsubscribe request;
  request.request_id = id;
  request.subscription_id = subscription_id;
  support::PooledBuffer buffer =
      support::BufferPool::WirePool().Acquire(kRequestOverhead);
  std::vector<std::uint8_t>& bytes = buffer.bytes();
  EncodeUnsubscribe(request, bytes);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    PendingSub pending;
    pending.ack = std::move(on_ack);
    pending.is_subscribe = false;
    pending.subscription_id = subscription_id;
    pending_subs_.emplace(id, std::move(pending));
  }
  bool sent = false;
  {
    std::lock_guard<std::mutex> lock(send_mutex_);
    const int fd = fd_.load(std::memory_order_relaxed);
    sent = fd >= 0 && connected_.load(std::memory_order_acquire) &&
           WriteAll(fd, bytes.data(), bytes.size());
  }
  if (sent) return true;
  AckCallback mine;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = pending_subs_.find(id);
    if (it != pending_subs_.end()) {
      mine = std::move(it->second.ack);
      pending_subs_.erase(it);
    }
  }
  if (mine) {
    WireSubscribeAck dead;
    dead.request_id = id;
    dead.subscription_id = subscription_id;
    dead.status = WireStatus::kTransportError;
    mine(dead);
  }
  return false;
}

void WireClient::HandleSubscribeAck(const WireSubscribeAck& ack) {
  AckCallback callback;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = pending_subs_.find(ack.request_id);
    if (it == pending_subs_.end()) return;  // already failed elsewhere
    PendingSub pending = std::move(it->second);
    pending_subs_.erase(it);
    callback = std::move(pending.ack);
    if (pending.is_subscribe) {
      // Install before the ack callback runs: the server queued this
      // ack ahead of the subscription's first event, and the reader
      // processes frames in order, so no event can beat the handler.
      if (ack.status == WireStatus::kOk && pending.handler) {
        event_handlers_.emplace(ack.subscription_id,
                                std::move(pending.handler));
      }
    } else if (ack.status == WireStatus::kOk) {
      event_handlers_.erase(pending.subscription_id);
    }
  }
  if (callback) callback(ack);
}

void WireClient::HandleEvent(WireEvent&& event) {
  std::shared_ptr<const EventHandler> handler;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = event_handlers_.find(event.subscription_id);
    if (it == event_handlers_.end()) return;  // unsubscribed or unknown
    handler = it->second;
    // kDrainOnce streams end themselves; drop the handler with the
    // marker still to be delivered below.
    if (event.kind == EventKind::kEndOfDrain) event_handlers_.erase(it);
  }
  // Outside mutex_: the handler may re-enter Submit/Subscribe.
  (*handler)(event);
}

bool WireClient::Call(WireRequest request, WireResponse* response) {
  std::mutex done_mutex;
  std::condition_variable done_cv;
  bool done = false;
  Submit(request, [&](const WireResponse& completed) {
    *response = completed;
    // Notify under the lock: these are stack objects, and the waiter
    // destroys them the moment it observes done — an unlocked notify
    // could still be touching the cv then.
    std::lock_guard<std::mutex> lock(done_mutex);
    done = true;
    done_cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return done; });
  return response->status != WireStatus::kTransportError;
}

bool WireClient::SubmitScript(const WireScriptRequest& script,
                              Callback callback) {
  if (!connected_.load(std::memory_order_acquire)) {
    WireResponse dead;
    dead.request_id = script.request_id;
    dead.status = WireStatus::kTransportError;
    callback(dead);
    return false;
  }
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  std::size_t size_hint = 64 + script.source.size();
  for (const auto& [name, value] : script.args) {
    size_hint += name.size() + value.size() + 16;
  }
  support::PooledBuffer buffer =
      support::BufferPool::WirePool().Acquire(size_hint);
  std::vector<std::uint8_t>& bytes = buffer.bytes();
  EncodeScript(script, id, bytes);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    EmplacePendingLocked(id, std::move(callback));
  }
  bool sent = false;
  {
    std::lock_guard<std::mutex> lock(send_mutex_);
    const int fd = fd_.load(std::memory_order_relaxed);
    sent = fd >= 0 && connected_.load(std::memory_order_acquire) &&
           WriteAll(fd, bytes.data(), bytes.size());
  }
  if (sent) return true;
  Callback mine = TakePending(id);
  if (mine) {
    WireResponse dead;
    dead.request_id = id;
    dead.status = WireStatus::kTransportError;
    mine(dead);
  }
  return false;
}

bool WireClient::CallScript(const WireScriptRequest& script,
                            WireResponse* response) {
  std::mutex done_mutex;
  std::condition_variable done_cv;
  bool done = false;
  SubmitScript(script, [&](const WireResponse& completed) {
    *response = completed;
    std::lock_guard<std::mutex> lock(done_mutex);
    done = true;
    done_cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return done; });
  return response->status != WireStatus::kTransportError;
}

void WireClient::Close() {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd >= 0) {
    // Shut down rather than close: the reader thread wakes with EOF and
    // fails outstanding callbacks; the fd stays valid until the join.
    ::shutdown(fd, SHUT_RDWR);
  }
  connected_.store(false, std::memory_order_release);
  if (reader_.joinable()) reader_.join();
  {
    // Same close-under-send_mutex_ discipline as ReclaimDeadConnection:
    // a Submit mid-WriteAll sees EPIPE on the shut-down fd, never a
    // write into a descriptor number the kernel has already re-issued.
    std::lock_guard<std::mutex> lock(send_mutex_);
    const int cur = fd_.load(std::memory_order_relaxed);
    if (cur >= 0) {
      ::close(cur);
      fd_.store(-1, std::memory_order_release);
    }
  }
  FailAllOutstanding();  // e.g. Close() racing sends; normally a no-op
}

std::size_t WireClient::outstanding() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_.size();
}

void WireClient::ReaderLoop() {
  // One load for the thread's lifetime: the fd is set before the reader
  // starts and closed only after it is joined.
  const int fd = fd_.load(std::memory_order_acquire);
  std::vector<std::uint8_t> carry;  // partial-frame bytes between reads
  std::uint8_t chunk[kReadChunk];
  bool dead = false;

  // Decode every complete frame in [data, data+size); returns the bytes
  // consumed. Sets `dead` when the server broke protocol.
  const auto drain = [&](const std::uint8_t* data,
                         std::size_t size) -> std::size_t {
    std::size_t off = 0;
    while (true) {
      FrameView frame;
      std::size_t consumed = 0;
      const DecodeStatus status =
          DecodeFrame(data + off, size - off, &frame, &consumed, nullptr);
      if (status == DecodeStatus::kNeedMore) return off;
      if (status == DecodeStatus::kMalformed) {
        dead = true;
        return off;
      }
      if (frame.type == FrameType::kSubscribeAck) {
        WireSubscribeAck ack;
        if (!DecodeSubscribeAck(frame.payload, frame.payload_size, &ack,
                                nullptr)) {
          dead = true;
          return off;
        }
        off += consumed;
        HandleSubscribeAck(ack);
        continue;
      }
      if (frame.type == FrameType::kEvent) {
        WireEvent event;
        if (!DecodeEvent(frame.payload, frame.payload_size, &event,
                         nullptr)) {
          dead = true;
          return off;
        }
        off += consumed;
        HandleEvent(std::move(event));
        continue;
      }
      if (frame.type != FrameType::kResponse) {
        // Not ours (a control frame, or a type from a newer protocol
        // revision): skip it and keep the connection — forward
        // compatibility with servers that push additional frame
        // families.
        off += consumed;
        continue;
      }
      WireResponse response;
      if (!DecodeResponse(frame.payload, frame.payload_size, &response,
                          nullptr)) {
        dead = true;
        return off;
      }
      off += consumed;
      // Unmatched ids (already failed, or a server bug) are dropped.
      Callback callback = TakePending(response.request_id);
      if (callback) callback(response);
    }
  };

  while (!dead) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF or error: fail everything below
    const std::size_t got = static_cast<std::size_t>(n);
    if (carry.empty()) {
      // Fast path: decode straight out of the read chunk; only a
      // trailing partial frame is copied into the carry-over buffer.
      const std::size_t used = drain(chunk, got);
      if (!dead && used < got) carry.assign(chunk + used, chunk + got);
    } else {
      carry.insert(carry.end(), chunk, chunk + got);
      const std::size_t used = drain(carry.data(), carry.size());
      if (used == carry.size()) {
        carry.clear();
      } else if (used > 0) {
        carry.erase(carry.begin(), carry.begin() +
                                       static_cast<std::ptrdiff_t>(used));
      }
    }
  }
  connected_.store(false, std::memory_order_release);
  FailAllOutstanding();
}

void WireClient::FailAllOutstanding() {
  std::unordered_map<std::uint64_t, Callback> orphans;
  std::unordered_map<std::uint64_t, PendingSub> sub_orphans;
  std::unordered_map<std::uint64_t, std::shared_ptr<const EventHandler>>
      handlers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    orphans.swap(pending_);
    sub_orphans.swap(pending_subs_);
    handlers.swap(event_handlers_);
  }
  for (auto& [id, callback] : orphans) {
    WireResponse dead;
    dead.request_id = id;
    dead.status = WireStatus::kTransportError;
    callback(dead);
  }
  for (auto& [id, pending] : sub_orphans) {
    if (!pending.ack) continue;
    WireSubscribeAck dead;
    dead.request_id = id;
    dead.subscription_id = pending.subscription_id;
    dead.status = WireStatus::kTransportError;
    pending.ack(dead);
  }
  // Each live subscription gets one final synthetic gap marker with
  // cursor 0: "the stream is gone — re-subscribe with your last cursor".
  // Real shed ranges always carry cursors >= 1, so the two are
  // distinguishable (the cluster client's repair path keys off this).
  for (auto& [id, handler] : handlers) {
    WireEvent dead;
    dead.subscription_id = id;
    dead.kind = EventKind::kEventsDropped;
    (*handler)(dead);
  }
}

}  // namespace mobivine::wire
