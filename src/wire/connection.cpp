#include "wire/connection.h"

#include <cstring>

namespace mobivine::wire {

namespace {

[[nodiscard]] std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

ByteRing::ByteRing(std::size_t capacity_hint)
    : buf_(RoundUpPow2(capacity_hint == 0 ? 1 : capacity_hint)) {}

void ByteRing::Append(const std::uint8_t* data, std::size_t n) {
  if (size_ + n > buf_.size()) Grow(size_ + n);
  const std::size_t mask = buf_.size() - 1;
  const std::size_t tail = (head_ + size_) & mask;
  const std::size_t first = std::min(n, buf_.size() - tail);
  std::memcpy(buf_.data() + tail, data, first);
  if (n > first) std::memcpy(buf_.data(), data + first, n - first);
  size_ += n;
}

void ByteRing::Consume(std::size_t n) {
  head_ = (head_ + n) & (buf_.size() - 1);
  size_ -= n;
  if (size_ == 0) head_ = 0;
}

const std::uint8_t* ByteRing::Contiguous() {
  if (head_ + size_ <= buf_.size()) return buf_.data() + head_;
  // Wrapped: rotate so the readable run starts at offset 0. Rare (only
  // when a frame straddles the wrap point) and bounded by ring size.
  std::vector<std::uint8_t> linear(buf_.size());
  const std::size_t first = buf_.size() - head_;
  std::memcpy(linear.data(), buf_.data() + head_, first);
  std::memcpy(linear.data() + first, buf_.data(), size_ - first);
  buf_ = std::move(linear);
  head_ = 0;
  return buf_.data();
}

void ByteRing::Grow(std::size_t needed) {
  std::vector<std::uint8_t> bigger(RoundUpPow2(needed));
  const std::size_t first = std::min(size_, buf_.size() - head_);
  std::memcpy(bigger.data(), buf_.data() + head_, first);
  std::memcpy(bigger.data() + first, buf_.data(), size_ - first);
  buf_ = std::move(bigger);
  head_ = 0;
}

}  // namespace mobivine::wire
