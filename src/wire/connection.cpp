#include "wire/connection.h"

#include <algorithm>
#include <cstring>

namespace mobivine::wire {

namespace {

[[nodiscard]] std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

ByteRing::ByteRing(std::size_t capacity_hint)
    : buf_(RoundUpPow2(capacity_hint == 0 ? 1 : capacity_hint)) {}

void ByteRing::Append(const std::uint8_t* data, std::size_t n) {
  if (size_ + n > buf_.size()) Grow(size_ + n);
  const std::size_t mask = buf_.size() - 1;
  const std::size_t tail = (head_ + size_) & mask;
  const std::size_t first = std::min(n, buf_.size() - tail);
  std::memcpy(buf_.data() + tail, data, first);
  if (n > first) std::memcpy(buf_.data(), data + first, n - first);
  size_ += n;
}

void ByteRing::Consume(std::size_t n) {
  if (n == 0) return;
  head_ = (head_ + n) & (buf_.size() - 1);
  size_ -= n;
  if (size_ == 0) head_ = 0;
  ++generation_;  // the dropped bytes are past the recycle horizon
}

const std::uint8_t* ByteRing::Contiguous() {
  if (head_ + size_ <= buf_.size()) return buf_.data() + head_;
  // Wrapped: rotate in place so the readable run starts at offset 0.
  // Rare (only when a frame straddles the wrap point), bounded by ring
  // size, and allocation-free — the hot path must not pay a fresh
  // vector for a wrap.
  std::rotate(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(head_),
              buf_.end());
  head_ = 0;
  ++generation_;  // readable bytes moved
  return buf_.data();
}

std::uint8_t* ByteRing::WriteWindow(std::size_t min_free,
                                    std::size_t* available) {
  if (buf_.size() - size_ < min_free) Grow(size_ + min_free);
  const std::size_t mask = buf_.size() - 1;
  const std::size_t tail = (head_ + size_) & mask;
  // Wrapped tail (tail behind head): the writable run is [tail, head).
  // Straight: [tail, end) — the run before head comes on the next call.
  *available = head_ + size_ >= buf_.size() ? head_ - tail
                                            : buf_.size() - tail;
  return buf_.data() + tail;
}

void ByteRing::Grow(std::size_t needed) {
  std::vector<std::uint8_t> bigger(RoundUpPow2(needed));
  const std::size_t first = std::min(size_, buf_.size() - head_);
  std::memcpy(bigger.data(), buf_.data() + head_, first);
  std::memcpy(bigger.data() + first, buf_.data(), size_ - first);
  buf_ = std::move(bigger);
  head_ = 0;
  ++generation_;  // storage moved
}

}  // namespace mobivine::wire
