// One accepted TCP connection inside a WireServer event loop.
//
// Threading model: the owning event loop is the only thread that touches
// the socket, the input ring and epoll state. Gateway shard workers touch
// exactly one thing — the bounded output queue (QueueOutput, under its
// own mutex) — and then poke the loop's eventfd; the loop drains the
// queue into the socket. A connection is held by shared_ptr: the loop's
// fd map keeps one reference, and every in-flight gateway completion
// callback keeps another, so a completion arriving after the socket
// closed lands on a live object, sees `closed()`, and drops the bytes.
//
// Output is a queue of pooled frame buffers, not one flat byte vector:
// a completion moves its encoded frame in (zero copy), and the loop
// drains the whole run with a single writev — each fully written buffer
// returns to the pool on the spot. High/low watermarks count total
// queued-plus-unsent bytes across the iovec run, same semantics as the
// old flat queue.
//
// Backpressure: when queued-but-unsent output crosses the high
// watermark, the loop stops reading this socket (the kernel receive
// buffer then fills and TCP closes the peer's window — real transport
// backpressure, composing with the gateway's shed/deadline admission
// which bounds what the server itself will buy into). Reading resumes
// once the backlog drains below the low watermark.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "support/buffer_pool.h"

namespace mobivine::wire {

/// Power-of-two byte ring for the read side. The decoder needs frames
/// contiguous, so Contiguous() linearizes wrapped data once per read
/// pass (in place — no allocation; the common case, head before tail,
/// is a no-op returning an interior pointer). WriteWindow/CommitWrite
/// let the socket read() land directly in the ring, skipping the
/// stack-chunk-then-memcpy hop.
///
/// The generation counter is the zero-copy decode contract: any
/// string_view into Contiguous() is valid only while generation() is
/// unchanged. Growing, linearizing and consuming all bump it — consume
/// marks the recycle horizon (those bytes may be overwritten by the next
/// append), grow/linearize move the storage itself.
class ByteRing {
 public:
  explicit ByteRing(std::size_t capacity_hint = 16 * 1024);

  [[nodiscard]] std::size_t size() const { return size_; }

  /// Append bytes, growing (doubling) as needed.
  void Append(const std::uint8_t* data, std::size_t n);

  /// Drop n bytes from the front (n <= size()). Bumps the generation:
  /// views into the dropped range are past the recycle horizon.
  void Consume(std::size_t n);

  /// Pointer to size() contiguous readable bytes, linearizing (in place)
  /// if the data wraps. Valid until the next Append/Consume/WriteWindow.
  [[nodiscard]] const std::uint8_t* Contiguous();

  /// Writable tail window for direct socket reads: ensures at least
  /// `min_free` bytes are free (growing if not), then returns the
  /// contiguous writable run and its length in *available. Follow with
  /// CommitWrite(n) for the bytes actually read.
  [[nodiscard]] std::uint8_t* WriteWindow(std::size_t min_free,
                                          std::size_t* available);
  void CommitWrite(std::size_t n) { size_ += n; }

  /// Bumped whenever readable bytes may move or be reclaimed; see the
  /// class comment. The staleness guard for zero-copy request views.
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

 private:
  void Grow(std::size_t needed);

  std::vector<std::uint8_t> buf_;
  std::size_t head_ = 0;  ///< read position
  std::size_t size_ = 0;  ///< bytes stored
  std::uint64_t generation_ = 0;
};

class Connection {
 public:
  Connection(int fd, std::uint64_t id) : fd_(fd), id_(id) {}

  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] bool closed() const {
    return closed_.load(std::memory_order_acquire);
  }
  void MarkClosed() { closed_.store(true, std::memory_order_release); }

  ByteRing& input() { return input_; }

  /// Move an encoded frame into the output queue (any thread) — the
  /// buffer changes hands, no bytes are copied. Returns the queued byte
  /// total so the caller can decide to notify the loop; returns 0 when
  /// the connection is already closed (the frame returns to its pool).
  std::size_t QueueOutput(support::PooledBuffer&& frame) {
    if (closed()) return 0;
    const std::size_t frame_bytes = frame.bytes().size();
    std::lock_guard<std::mutex> lock(out_mutex_);
    out_queue_.push_back(std::move(frame));
    out_queue_bytes_ += frame_bytes;
    const std::size_t total = out_queue_bytes_ + unsent_write_bytes_;
    pending_out_.store(total, std::memory_order_relaxed);
    return total;
  }

  /// Loop thread: move queued frames onto the loop-side write run (the
  /// writev iovec source). Returns the bytes taken.
  std::size_t TakeQueued(std::vector<support::PooledBuffer>& into) {
    std::lock_guard<std::mutex> lock(out_mutex_);
    if (out_queue_.empty()) return 0;
    const std::size_t taken = out_queue_bytes_;
    if (into.empty()) {
      into.swap(out_queue_);  // both vectors keep their capacity
    } else {
      for (support::PooledBuffer& frame : out_queue_) {
        into.push_back(std::move(frame));
      }
      out_queue_.clear();
    }
    out_queue_bytes_ = 0;
    return taken;
  }

  /// Loop thread: record how much of the write run remains unsent, so
  /// QueueOutput's watermark total counts bytes the kernel refused too.
  void SetUnsentWriteBytes(std::size_t n) {
    std::lock_guard<std::mutex> lock(out_mutex_);
    unsent_write_bytes_ = n;
    pending_out_.store(out_queue_bytes_ + n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t pending_output_bytes() const {
    return pending_out_.load(std::memory_order_relaxed);
  }

  /// Dedupe loop notifications: first caller since the last drain wins.
  [[nodiscard]] bool ClaimNotify() {
    return !notify_pending_.exchange(true, std::memory_order_acq_rel);
  }
  void ClearNotify() { notify_pending_.store(false, std::memory_order_release); }

  // Loop-thread-only state (no synchronization needed).
  /// The write run being drained into the socket: buffers [write_start,
  /// size) are pending, with write_offset bytes of the front one already
  /// sent; write_bytes is the pending total. Fully written buffers are
  /// released back to the pool as writev advances.
  std::vector<support::PooledBuffer> write_bufs;
  std::size_t write_start = 0;
  std::size_t write_offset = 0;
  std::size_t write_bytes = 0;
  bool out_armed = false;   ///< EPOLLOUT currently registered for this fd
  bool paused = false;      ///< reading stopped by the output watermark
  bool want_close = false;  ///< close after the output queue drains

 private:
  const int fd_;
  const std::uint64_t id_;
  std::atomic<bool> closed_{false};
  ByteRing input_;

  std::mutex out_mutex_;
  std::vector<support::PooledBuffer> out_queue_;  ///< written by any thread
  std::size_t out_queue_bytes_ = 0;
  std::size_t unsent_write_bytes_ = 0;
  std::atomic<std::size_t> pending_out_{0};
  std::atomic<bool> notify_pending_{false};
};

}  // namespace mobivine::wire
