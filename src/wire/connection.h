// One accepted TCP connection inside a WireServer event loop.
//
// Threading model: the owning event loop is the only thread that touches
// the socket, the input ring and epoll state. Gateway shard workers touch
// exactly one thing — the bounded output queue (QueueOutput, under its
// own mutex) — and then poke the loop's eventfd; the loop drains the
// queue into the socket. A connection is held by shared_ptr: the loop's
// fd map keeps one reference, and every in-flight gateway completion
// callback keeps another, so a completion arriving after the socket
// closed lands on a live object, sees `closed()`, and drops the bytes.
//
// Backpressure: when queued-but-unsent output crosses the high
// watermark, the loop stops reading this socket (the kernel receive
// buffer then fills and TCP closes the peer's window — real transport
// backpressure, composing with the gateway's shed/deadline admission
// which bounds what the server itself will buy into). Reading resumes
// once the backlog drains below the low watermark.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace mobivine::wire {

/// Power-of-two byte ring for the read side. The decoder needs frames
/// contiguous, so Contiguous() linearizes wrapped data once per read
/// pass (cheap: frames are small relative to the ring and the common
/// case — head before tail — is a no-op returning an interior pointer).
class ByteRing {
 public:
  explicit ByteRing(std::size_t capacity_hint = 16 * 1024);

  [[nodiscard]] std::size_t size() const { return size_; }

  /// Append bytes, growing (doubling) as needed.
  void Append(const std::uint8_t* data, std::size_t n);

  /// Drop n bytes from the front (n <= size()).
  void Consume(std::size_t n);

  /// Pointer to size() contiguous readable bytes, linearizing if the
  /// data wraps. Valid until the next Append/Consume.
  [[nodiscard]] const std::uint8_t* Contiguous();

 private:
  void Grow(std::size_t needed);

  std::vector<std::uint8_t> buf_;
  std::size_t head_ = 0;  ///< read position
  std::size_t size_ = 0;  ///< bytes stored
};

class Connection {
 public:
  Connection(int fd, std::uint64_t id) : fd_(fd), id_(id) {}

  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] bool closed() const {
    return closed_.load(std::memory_order_acquire);
  }
  void MarkClosed() { closed_.store(true, std::memory_order_release); }

  ByteRing& input() { return input_; }

  /// Append an encoded frame to the output queue (any thread). Returns
  /// the queued byte total so the caller can decide to notify the loop;
  /// returns 0 when the connection is already closed (bytes dropped).
  std::size_t QueueOutput(std::vector<std::uint8_t>&& frame) {
    if (closed()) return 0;
    std::lock_guard<std::mutex> lock(out_mutex_);
    if (out_queue_.empty()) {
      out_queue_ = std::move(frame);
    } else {
      out_queue_.insert(out_queue_.end(), frame.begin(), frame.end());
    }
    const std::size_t total = out_queue_.size() + unsent_write_bytes_;
    pending_out_.store(total, std::memory_order_relaxed);
    return total;
  }

  /// Loop thread: move queued bytes into the loop-side write buffer
  /// (coalescing all pending frames into one writev-sized run).
  void TakeQueued(std::vector<std::uint8_t>& write_buf) {
    std::lock_guard<std::mutex> lock(out_mutex_);
    if (out_queue_.empty()) return;
    if (write_buf.empty()) {
      write_buf = std::move(out_queue_);
      out_queue_.clear();
    } else {
      write_buf.insert(write_buf.end(), out_queue_.begin(), out_queue_.end());
      out_queue_.clear();
    }
  }

  /// Loop thread: record how much of the write buffer remains unsent, so
  /// QueueOutput's watermark total counts bytes the kernel refused too.
  void SetUnsentWriteBytes(std::size_t n) {
    std::lock_guard<std::mutex> lock(out_mutex_);
    unsent_write_bytes_ = n;
    pending_out_.store(out_queue_.size() + n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t pending_output_bytes() const {
    return pending_out_.load(std::memory_order_relaxed);
  }

  /// Dedupe loop notifications: first caller since the last drain wins.
  [[nodiscard]] bool ClaimNotify() {
    return !notify_pending_.exchange(true, std::memory_order_acq_rel);
  }
  void ClearNotify() { notify_pending_.store(false, std::memory_order_release); }

  // Loop-thread-only state (no synchronization needed).
  std::vector<std::uint8_t> write_buf;  ///< being drained into the socket
  std::size_t write_offset = 0;
  bool paused = false;      ///< reading stopped by the output watermark
  bool want_close = false;  ///< close after the output queue drains

 private:
  const int fd_;
  const std::uint64_t id_;
  std::atomic<bool> closed_{false};
  ByteRing input_;

  std::mutex out_mutex_;
  std::vector<std::uint8_t> out_queue_;  ///< written by any thread
  std::size_t unsent_write_bytes_ = 0;
  std::atomic<std::size_t> pending_out_{0};
  std::atomic<bool> notify_pending_{false};
};

}  // namespace mobivine::wire
