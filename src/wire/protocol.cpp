#include "wire/protocol.h"

#include <cstring>

#include "support/checksum.h"
#include "support/varint.h"

namespace mobivine::wire {

namespace {

using support::GetVarint;
using support::PutVarint;
using support::VarintStatus;

/// Property value tags. The four descriptor-declared scalar lanes; a
/// request carrying any other tag is malformed (native handles — the
/// std::any lane — deliberately have no wire form).
enum class ValueTag : std::uint8_t {
  kString = 0,
  kInt = 1,
  kDouble = 2,
  kBool = 3,
};

void PutString(std::vector<std::uint8_t>& out, std::string_view s) {
  PutVarint(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

void PutFixed32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void PutFixed64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

/// Sequential reader over a frame payload. Every getter returns false on
/// violation (truncation or a cap breach) and records why.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool Varint(std::uint64_t* value, const char* what) {
    std::size_t consumed = 0;
    if (GetVarint(data_ + pos_, size_ - pos_, value, &consumed) !=
        VarintStatus::kOk) {
      return Fail(what, "bad varint");
    }
    pos_ += consumed;
    return true;
  }

  bool Byte(std::uint8_t* value, const char* what) {
    if (pos_ >= size_) return Fail(what, "truncated");
    *value = data_[pos_++];
    return true;
  }

  bool String(std::string_view* value, const char* what) {
    std::uint64_t len = 0;
    if (!Varint(&len, what)) return false;
    if (len > kMaxStringBytes) return Fail(what, "over string cap");
    if (len > size_ - pos_) return Fail(what, "truncated");
    *value = std::string_view(reinterpret_cast<const char*>(data_ + pos_),
                              static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return true;
  }

  bool Fixed64(std::uint64_t* value, const char* what) {
    if (size_ - pos_ < 8) return Fail(what, "truncated");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    *value = v;
    pos_ += 8;
    return true;
  }

  [[nodiscard]] bool AtEnd() const { return pos_ == size_; }
  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  bool Fail(const char* what, const char* why) {
    error_ = std::string(what) + ": " + why;
    return false;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

/// Wrap an encoded payload in the frame header + CRC trailer. The payload
/// was appended to `out` starting at `payload_start` by the caller; this
/// retrofits the header in front (single memmove on the tail). The header
/// builds on the stack: this runs once per frame and must not allocate.
void FinishFrame(std::vector<std::uint8_t>& out, std::size_t frame_start,
                 FrameType type) {
  const std::size_t payload_size = out.size() - frame_start;
  std::uint8_t header[4 + support::kMaxVarintBytes];
  header[0] = kMagic0;
  header[1] = kMagic1;
  header[2] = kWireVersion;
  header[3] = static_cast<std::uint8_t>(type);
  const std::size_t header_len = 4 + PutVarint(header + 4, payload_size);
  const std::uint32_t crc =
      support::Crc32(out.data() + frame_start, payload_size);
  out.insert(out.begin() + static_cast<std::ptrdiff_t>(frame_start), header,
             header + header_len);
  PutFixed32(out, crc);
}

const char* ToString(WireStatus status) {
  switch (status) {
    case WireStatus::kOk:
      return "ok";
    case WireStatus::kMalformedRequest:
      return "malformed-request";
    case WireStatus::kTransportError:
      return "transport-error";
    case WireStatus::kWrongWorker:
      return "wrong-worker";
    case WireStatus::kUnsupportedFrame:
      return "unsupported-frame";
    case WireStatus::kScriptError:
      return "script-error";
    default:
      return core::ToString(ToErrorCode(status));
  }
}

WireStatus FromErrorCode(core::ErrorCode code) {
  switch (code) {
    case core::ErrorCode::kSecurity:
      return WireStatus::kSecurity;
    case core::ErrorCode::kIllegalArgument:
      return WireStatus::kIllegalArgument;
    case core::ErrorCode::kLocationUnavailable:
      return WireStatus::kLocationUnavailable;
    case core::ErrorCode::kTimeout:
      return WireStatus::kTimeout;
    case core::ErrorCode::kUnreachable:
      return WireStatus::kUnreachable;
    case core::ErrorCode::kRadioFailure:
      return WireStatus::kRadioFailure;
    case core::ErrorCode::kUnsupported:
      return WireStatus::kUnsupported;
    case core::ErrorCode::kInvalidState:
      return WireStatus::kInvalidState;
    case core::ErrorCode::kNetwork:
      return WireStatus::kNetwork;
    case core::ErrorCode::kOverloaded:
      return WireStatus::kOverloaded;
    case core::ErrorCode::kDeadlineExceeded:
      return WireStatus::kDeadlineExceeded;
    case core::ErrorCode::kAllBackendsFailed:
      return WireStatus::kAllBackendsFailed;
    case core::ErrorCode::kUnknown:
      return WireStatus::kUnknown;
  }
  return WireStatus::kUnknown;
}

core::ErrorCode ToErrorCode(WireStatus status) {
  switch (status) {
    case WireStatus::kSecurity:
      return core::ErrorCode::kSecurity;
    case WireStatus::kIllegalArgument:
      return core::ErrorCode::kIllegalArgument;
    case WireStatus::kLocationUnavailable:
      return core::ErrorCode::kLocationUnavailable;
    case WireStatus::kTimeout:
      return core::ErrorCode::kTimeout;
    case WireStatus::kUnreachable:
      return core::ErrorCode::kUnreachable;
    case WireStatus::kRadioFailure:
      return core::ErrorCode::kRadioFailure;
    case WireStatus::kUnsupported:
      return core::ErrorCode::kUnsupported;
    case WireStatus::kInvalidState:
      return core::ErrorCode::kInvalidState;
    case WireStatus::kNetwork:
      return core::ErrorCode::kNetwork;
    case WireStatus::kOverloaded:
      return core::ErrorCode::kOverloaded;
    case WireStatus::kDeadlineExceeded:
      return core::ErrorCode::kDeadlineExceeded;
    case WireStatus::kAllBackendsFailed:
      return core::ErrorCode::kAllBackendsFailed;
    default:
      return core::ErrorCode::kUnknown;
  }
}

void EncodeRequest(const WireRequest& request,
                   std::vector<std::uint8_t>& out) {
  EncodeRequest(request, request.request_id, out);
}

void EncodeRequest(const WireRequest& request, std::uint64_t request_id,
                   std::vector<std::uint8_t>& out) {
  const std::size_t frame_start = out.size();
  PutVarint(out, request_id);
  PutVarint(out, request.client_id);
  out.push_back(static_cast<std::uint8_t>(request.platform));
  out.push_back(static_cast<std::uint8_t>(request.op));
  PutVarint(out, request.timeout_micros);
  PutVarint(out, request.max_attempts);
  PutString(out, request.target);
  PutString(out, request.payload);
  PutString(out, request.content_type);
  PutVarint(out, request.properties.size());
  for (const auto& [name, value] : request.properties) {
    PutString(out, name);
    if (const std::string* s = value.AsString()) {
      out.push_back(static_cast<std::uint8_t>(ValueTag::kString));
      PutString(out, *s);
    } else if (const long long* i = value.AsInt()) {
      out.push_back(static_cast<std::uint8_t>(ValueTag::kInt));
      PutVarint(out, support::ZigzagEncode(*i));
    } else if (const double* d = std::get_if<double>(&value.stored())) {
      out.push_back(static_cast<std::uint8_t>(ValueTag::kDouble));
      std::uint64_t bits = 0;
      static_assert(sizeof bits == sizeof *d);
      std::memcpy(&bits, d, sizeof bits);
      PutFixed64(out, bits);
    } else if (const bool* b = std::get_if<bool>(&value.stored())) {
      out.push_back(static_cast<std::uint8_t>(ValueTag::kBool));
      out.push_back(*b ? 1 : 0);
    } else {
      // Native-handle (std::any) properties have no wire form; encode a
      // false bool so the frame stays well-formed — the server-side
      // descriptor validation will reject it if the name is scalar-typed.
      out.push_back(static_cast<std::uint8_t>(ValueTag::kBool));
      out.push_back(0);
    }
  }
  FinishFrame(out, frame_start, FrameType::kRequest);
}

void EncodeResponse(const WireResponse& response,
                    std::vector<std::uint8_t>& out) {
  EncodeResponse(response, response.body, out);
}

void EncodeResponse(const WireResponse& response, std::string_view body,
                    std::vector<std::uint8_t>& out) {
  const std::size_t frame_start = out.size();
  PutVarint(out, response.request_id);
  out.push_back(static_cast<std::uint8_t>(response.status));
  out.push_back(static_cast<std::uint8_t>(response.served_platform));
  PutVarint(out, response.attempts);
  PutVarint(out, response.latency_micros);
  PutString(out, body);
  FinishFrame(out, frame_start, FrameType::kResponse);
}

void EncodeScript(const WireScriptRequest& script,
                  std::vector<std::uint8_t>& out) {
  EncodeScript(script, script.request_id, out);
}

void EncodeScript(const WireScriptRequest& script, std::uint64_t request_id,
                  std::vector<std::uint8_t>& out) {
  const std::size_t frame_start = out.size();
  PutVarint(out, request_id);
  PutVarint(out, script.client_id);
  PutVarint(out, script.timeout_micros);
  PutVarint(out, script.step_budget);
  PutVarint(out, script.virtual_us_budget);
  PutVarint(out, script.max_result_bytes);
  PutString(out, script.source);
  PutVarint(out, script.args.size());
  for (const auto& [name, value] : script.args) {
    PutString(out, name);
    PutString(out, value);
  }
  FinishFrame(out, frame_start, FrameType::kScript);
}

void EncodeSubscribe(const WireSubscribe& subscribe,
                     std::vector<std::uint8_t>& out) {
  const std::size_t frame_start = out.size();
  PutVarint(out, subscribe.request_id);
  PutVarint(out, subscribe.client_id);
  out.push_back(static_cast<std::uint8_t>(subscribe.topic));
  out.push_back(static_cast<std::uint8_t>(subscribe.mode));
  PutVarint(out, subscribe.cursor);
  FinishFrame(out, frame_start, FrameType::kSubscribe);
}

void EncodeUnsubscribe(const WireUnsubscribe& unsubscribe,
                       std::vector<std::uint8_t>& out) {
  const std::size_t frame_start = out.size();
  PutVarint(out, unsubscribe.request_id);
  PutVarint(out, unsubscribe.subscription_id);
  FinishFrame(out, frame_start, FrameType::kUnsubscribe);
}

void EncodeSubscribeAck(const WireSubscribeAck& ack,
                        std::vector<std::uint8_t>& out) {
  const std::size_t frame_start = out.size();
  PutVarint(out, ack.request_id);
  out.push_back(static_cast<std::uint8_t>(ack.status));
  PutVarint(out, ack.subscription_id);
  PutVarint(out, ack.start_cursor);
  FinishFrame(out, frame_start, FrameType::kSubscribeAck);
}

void EncodeEvent(const WireEvent& event, std::vector<std::uint8_t>& out) {
  EncodeEvent(event, event.body, out);
}

void EncodeEvent(const WireEvent& event, std::string_view body,
                 std::vector<std::uint8_t>& out) {
  const std::size_t frame_start = out.size();
  PutVarint(out, event.subscription_id);
  out.push_back(static_cast<std::uint8_t>(event.kind));
  out.push_back(static_cast<std::uint8_t>(event.topic));
  PutVarint(out, event.cursor);
  PutVarint(out, event.aux);
  PutString(out, body);
  FinishFrame(out, frame_start, FrameType::kEvent);
}

BodyStatus DecodeScript(const std::uint8_t* payload, std::size_t size,
                        WireScriptRequest* script, std::string* error) {
  Reader reader(payload, size);
  const auto fail = [&](BodyStatus status) {
    if (error != nullptr) *error = reader.error();
    return status;
  };
  if (!reader.Varint(&script->request_id, "request_id")) {
    return fail(BodyStatus::kBadId);
  }
  std::string_view source;
  if (!reader.Varint(&script->client_id, "client_id") ||
      !reader.Varint(&script->timeout_micros, "timeout") ||
      !reader.Varint(&script->step_budget, "step_budget") ||
      !reader.Varint(&script->virtual_us_budget, "virtual_us_budget") ||
      !reader.Varint(&script->max_result_bytes, "max_result_bytes") ||
      !reader.String(&source, "source")) {
    return fail(BodyStatus::kBadBody);
  }
  if (source.empty()) {
    if (error != nullptr) *error = "source: empty";
    return BodyStatus::kBadBody;
  }
  std::uint64_t arg_count = 0;
  if (!reader.Varint(&arg_count, "arg_count")) {
    return fail(BodyStatus::kBadBody);
  }
  if (arg_count > kMaxProperties) {
    if (error != nullptr) *error = "arg_count: over cap";
    return BodyStatus::kBadBody;
  }
  script->source.assign(source.data(), source.size());
  script->args.clear();
  script->args.reserve(static_cast<std::size_t>(arg_count));
  for (std::uint64_t i = 0; i < arg_count; ++i) {
    std::string_view name;
    std::string_view value;
    if (!reader.String(&name, "arg name") ||
        !reader.String(&value, "arg value")) {
      return fail(BodyStatus::kBadBody);
    }
    script->args.emplace_back(std::string(name), std::string(value));
  }
  if (!reader.AtEnd()) {
    if (error != nullptr) *error = "trailing bytes after script body";
    return BodyStatus::kBadBody;
  }
  return BodyStatus::kOk;
}

BodyStatus DecodeSubscribe(const std::uint8_t* payload, std::size_t size,
                           WireSubscribe* subscribe, std::string* error) {
  Reader reader(payload, size);
  const auto fail = [&](BodyStatus status) {
    if (error != nullptr) *error = reader.error();
    return status;
  };
  if (!reader.Varint(&subscribe->request_id, "request_id")) {
    return fail(BodyStatus::kBadId);
  }
  std::uint8_t topic = 0;
  std::uint8_t mode = 0;
  if (!reader.Varint(&subscribe->client_id, "client_id") ||
      !reader.Byte(&topic, "topic") || !reader.Byte(&mode, "mode")) {
    return fail(BodyStatus::kBadBody);
  }
  if (!IsKnownPushTopic(topic)) {
    if (error != nullptr) *error = "topic: unknown code";
    return BodyStatus::kBadBody;
  }
  if (mode > static_cast<std::uint8_t>(SubscribeMode::kDrainOnce)) {
    if (error != nullptr) *error = "mode: unknown code";
    return BodyStatus::kBadBody;
  }
  subscribe->topic = static_cast<PushTopic>(topic);
  subscribe->mode = static_cast<SubscribeMode>(mode);
  if (!reader.Varint(&subscribe->cursor, "cursor")) {
    return fail(BodyStatus::kBadBody);
  }
  if (!reader.AtEnd()) {
    if (error != nullptr) *error = "trailing bytes after subscribe body";
    return BodyStatus::kBadBody;
  }
  return BodyStatus::kOk;
}

BodyStatus DecodeUnsubscribe(const std::uint8_t* payload, std::size_t size,
                             WireUnsubscribe* unsubscribe,
                             std::string* error) {
  Reader reader(payload, size);
  const auto fail = [&](BodyStatus status) {
    if (error != nullptr) *error = reader.error();
    return status;
  };
  if (!reader.Varint(&unsubscribe->request_id, "request_id")) {
    return fail(BodyStatus::kBadId);
  }
  if (!reader.Varint(&unsubscribe->subscription_id, "subscription_id")) {
    return fail(BodyStatus::kBadBody);
  }
  if (!reader.AtEnd()) {
    if (error != nullptr) *error = "trailing bytes after unsubscribe body";
    return BodyStatus::kBadBody;
  }
  return BodyStatus::kOk;
}

bool DecodeSubscribeAck(const std::uint8_t* payload, std::size_t size,
                        WireSubscribeAck* ack, std::string* error) {
  Reader reader(payload, size);
  std::uint8_t status = 0;
  if (!reader.Varint(&ack->request_id, "request_id") ||
      !reader.Byte(&status, "status") ||
      !reader.Varint(&ack->subscription_id, "subscription_id") ||
      !reader.Varint(&ack->start_cursor, "start_cursor") || !reader.AtEnd()) {
    if (error != nullptr) {
      *error = reader.error().empty() ? "trailing bytes after ack body"
                                      : reader.error();
    }
    return false;
  }
  ack->status = static_cast<WireStatus>(status);
  return true;
}

bool DecodeEvent(const std::uint8_t* payload, std::size_t size,
                 WireEvent* event, std::string* error) {
  Reader reader(payload, size);
  std::uint8_t kind = 0;
  std::uint8_t topic = 0;
  std::string_view body;
  if (!reader.Varint(&event->subscription_id, "subscription_id") ||
      !reader.Byte(&kind, "kind") || !reader.Byte(&topic, "topic") ||
      !reader.Varint(&event->cursor, "cursor") ||
      !reader.Varint(&event->aux, "aux") || !reader.String(&body, "body") ||
      !reader.AtEnd()) {
    if (error != nullptr) {
      *error = reader.error().empty() ? "trailing bytes after event body"
                                      : reader.error();
    }
    return false;
  }
  if (kind > static_cast<std::uint8_t>(EventKind::kEndOfDrain)) {
    if (error != nullptr) *error = "kind: unknown code";
    return false;
  }
  if (!IsKnownPushTopic(topic)) {
    if (error != nullptr) *error = "topic: unknown code";
    return false;
  }
  event->kind = static_cast<EventKind>(kind);
  event->topic = static_cast<PushTopic>(topic);
  event->body.assign(body.data(), body.size());
  return true;
}

DecodeStatus DecodeFrame(const std::uint8_t* data, std::size_t size,
                         FrameView* frame, std::size_t* consumed,
                         std::string* error) {
  if (size < 4) return DecodeStatus::kNeedMore;
  if (data[0] != kMagic0 || data[1] != kMagic1) {
    if (error != nullptr) *error = "bad magic";
    return DecodeStatus::kMalformed;
  }
  if (data[2] != kWireVersion) {
    if (error != nullptr) *error = "unsupported version";
    return DecodeStatus::kMalformed;
  }
  // The type byte is NOT validated here: an unknown-but-well-framed type
  // must survive decoding so the receiver can answer kUnsupportedFrame
  // in-band instead of killing the connection (mixed-version fleets).
  const std::uint8_t type = data[3];
  std::uint64_t payload_size = 0;
  std::size_t len_bytes = 0;
  switch (GetVarint(data + 4, size - 4, &payload_size, &len_bytes)) {
    case VarintStatus::kTruncated:
      return DecodeStatus::kNeedMore;
    case VarintStatus::kMalformed:
      if (error != nullptr) *error = "malformed length varint";
      return DecodeStatus::kMalformed;
    case VarintStatus::kOk:
      break;
  }
  // Cap check BEFORE waiting for (or allocating) the declared bytes: an
  // absurd length must kill the connection now, not stall it.
  if (payload_size > kMaxFramePayload) {
    if (error != nullptr) *error = "payload length over cap";
    return DecodeStatus::kMalformed;
  }
  const std::size_t header = 4 + len_bytes;
  const std::size_t total =
      header + static_cast<std::size_t>(payload_size) + 4;  // + CRC
  if (size < total) return DecodeStatus::kNeedMore;
  const std::uint8_t* payload = data + header;
  const std::uint8_t* trailer = payload + payload_size;
  const std::uint32_t stated =
      static_cast<std::uint32_t>(trailer[0]) |
      (static_cast<std::uint32_t>(trailer[1]) << 8) |
      (static_cast<std::uint32_t>(trailer[2]) << 16) |
      (static_cast<std::uint32_t>(trailer[3]) << 24);
  const std::uint32_t actual =
      support::Crc32(payload, static_cast<std::size_t>(payload_size));
  if (stated != actual) {
    if (error != nullptr) *error = "payload crc mismatch";
    return DecodeStatus::kMalformed;
  }
  frame->type = static_cast<FrameType>(type);
  frame->payload = payload;
  frame->payload_size = static_cast<std::size_t>(payload_size);
  *consumed = total;
  return DecodeStatus::kOk;
}

BodyStatus DecodeRequestView(const std::uint8_t* payload, std::size_t size,
                             WireRequestView* view, std::string* error) {
  view->properties.clear();  // reusable scratch: capacity is retained
  Reader reader(payload, size);
  const auto fail = [&](BodyStatus status) {
    if (error != nullptr) *error = reader.error();
    return status;
  };
  if (!reader.Varint(&view->request_id, "request_id")) {
    return fail(BodyStatus::kBadId);
  }
  if (!reader.Varint(&view->client_id, "client_id")) {
    return fail(BodyStatus::kBadBody);
  }
  std::uint8_t platform = 0;
  std::uint8_t op = 0;
  if (!reader.Byte(&platform, "platform") || !reader.Byte(&op, "op")) {
    return fail(BodyStatus::kBadBody);
  }
  if (platform > static_cast<std::uint8_t>(gateway::Platform::kIphone)) {
    if (error != nullptr) *error = "platform: unknown code";
    return BodyStatus::kBadBody;
  }
  if (op > static_cast<std::uint8_t>(gateway::Op::kSegmentCount)) {
    if (error != nullptr) *error = "op: unknown code";
    return BodyStatus::kBadBody;
  }
  view->platform = static_cast<gateway::Platform>(platform);
  view->op = static_cast<gateway::Op>(op);
  std::uint64_t max_attempts = 0;
  if (!reader.Varint(&view->timeout_micros, "timeout") ||
      !reader.Varint(&max_attempts, "max_attempts")) {
    return fail(BodyStatus::kBadBody);
  }
  if (max_attempts > 1000) {
    if (error != nullptr) *error = "max_attempts: over cap";
    return BodyStatus::kBadBody;
  }
  view->max_attempts = static_cast<std::uint32_t>(max_attempts);
  if (!reader.String(&view->target, "target") ||
      !reader.String(&view->payload, "payload") ||
      !reader.String(&view->content_type, "content_type")) {
    return fail(BodyStatus::kBadBody);
  }
  std::uint64_t property_count = 0;
  if (!reader.Varint(&property_count, "property_count")) {
    return fail(BodyStatus::kBadBody);
  }
  if (property_count > kMaxProperties) {
    if (error != nullptr) *error = "property_count: over cap";
    return BodyStatus::kBadBody;
  }
  view->properties.reserve(static_cast<std::size_t>(property_count));
  for (std::uint64_t i = 0; i < property_count; ++i) {
    gateway::BorrowedProperty property;
    std::uint8_t tag = 0;
    if (!reader.String(&property.name, "property name") ||
        !reader.Byte(&tag, "property tag")) {
      return fail(BodyStatus::kBadBody);
    }
    switch (static_cast<ValueTag>(tag)) {
      case ValueTag::kString: {
        std::string_view value;
        if (!reader.String(&value, "property string")) {
          return fail(BodyStatus::kBadBody);
        }
        property.value = value;
        break;
      }
      case ValueTag::kInt: {
        std::uint64_t zz = 0;
        if (!reader.Varint(&zz, "property int")) {
          return fail(BodyStatus::kBadBody);
        }
        property.value = static_cast<long long>(support::ZigzagDecode(zz));
        break;
      }
      case ValueTag::kDouble: {
        std::uint64_t bits = 0;
        if (!reader.Fixed64(&bits, "property double")) {
          return fail(BodyStatus::kBadBody);
        }
        double value = 0;
        std::memcpy(&value, &bits, sizeof value);
        property.value = value;
        break;
      }
      case ValueTag::kBool: {
        std::uint8_t value = 0;
        if (!reader.Byte(&value, "property bool")) {
          return fail(BodyStatus::kBadBody);
        }
        property.value = (value != 0);
        break;
      }
      default:
        if (error != nullptr) *error = "property tag: unknown";
        return BodyStatus::kBadBody;
    }
    view->properties.push_back(property);
  }
  if (!reader.AtEnd()) {
    if (error != nullptr) *error = "trailing bytes after request body";
    return BodyStatus::kBadBody;
  }
  return BodyStatus::kOk;
}

BodyStatus DecodeRequest(const std::uint8_t* payload, std::size_t size,
                         WireRequest* request, std::string* error) {
  WireRequestView view;
  const BodyStatus status = DecodeRequestView(payload, size, &view, error);
  request->request_id = view.request_id;  // recovered even on kBadBody
  if (status != BodyStatus::kOk) return status;
  request->client_id = view.client_id;
  request->platform = view.platform;
  request->op = view.op;
  request->timeout_micros = view.timeout_micros;
  request->max_attempts = view.max_attempts;
  request->target.assign(view.target.data(), view.target.size());
  request->payload.assign(view.payload.data(), view.payload.size());
  request->content_type.assign(view.content_type.data(),
                               view.content_type.size());
  request->properties.clear();
  request->properties.reserve(view.properties.size());
  for (const gateway::BorrowedProperty& property : view.properties) {
    std::string name(property.name);
    if (const auto* s = std::get_if<std::string_view>(&property.value)) {
      request->properties.emplace_back(std::move(name), std::string(*s));
    } else if (const auto* n = std::get_if<long long>(&property.value)) {
      request->properties.emplace_back(std::move(name), *n);
    } else if (const auto* d = std::get_if<double>(&property.value)) {
      request->properties.emplace_back(std::move(name), *d);
    } else {
      request->properties.emplace_back(std::move(name),
                                       std::get<bool>(property.value));
    }
  }
  return BodyStatus::kOk;
}

bool DecodeResponse(const std::uint8_t* payload, std::size_t size,
                    WireResponse* response, std::string* error) {
  Reader reader(payload, size);
  std::uint8_t status = 0;
  std::uint8_t served = 0;
  std::uint64_t attempts = 0;
  std::string_view body;
  if (!reader.Varint(&response->request_id, "request_id") ||
      !reader.Byte(&status, "status") ||
      !reader.Byte(&served, "served_platform") ||
      !reader.Varint(&attempts, "attempts") ||
      !reader.Varint(&response->latency_micros, "latency") ||
      !reader.String(&body, "body") || !reader.AtEnd()) {
    if (error != nullptr) {
      *error = reader.error().empty() ? "trailing bytes after response body"
                                      : reader.error();
    }
    return false;
  }
  if (served > static_cast<std::uint8_t>(gateway::Platform::kIphone)) {
    if (error != nullptr) *error = "served_platform: unknown code";
    return false;
  }
  response->status = static_cast<WireStatus>(status);
  response->served_platform = static_cast<gateway::Platform>(served);
  response->attempts = static_cast<std::uint32_t>(attempts);
  response->body.assign(body.data(), body.size());
  return true;
}

bool PeekPayloadId(const std::uint8_t* payload, std::size_t size,
                   std::uint64_t* id) {
  std::size_t consumed = 0;
  return GetVarint(payload, size, id, &consumed) == VarintStatus::kOk;
}

}  // namespace mobivine::wire
