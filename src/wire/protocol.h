// M-Wire binary protocol: the gateway's request/response envelope as
// compact, versioned, length-prefixed frames.
//
// The M-Proxy semantic plane (platform-neutral method name, typed
// parameter list, return object) is already a de-facto RPC schema; this
// header pins its on-the-wire form. Proxy and method symbols travel as
// single-byte enum codes (the wire-level analogue of the in-process
// interner: one agreed small integer per distinct symbol), parameters as
// tagged scalars, and per-request properties as (name, tagged value)
// pairs the server re-interns on arrival.
//
// Frame layout (all integers little-endian, lengths varint — see
// support/varint.h):
//
//     u8   magic0 = 'M'      u8  magic1 = 'V'
//     u8   version (kWireVersion)
//     u8   type    (FrameType)
//     var  payload_length    (<= kMaxFramePayload)
//     u8[] payload
//     u32  crc32(payload)    (fixed 4 bytes; support/checksum.h)
//
// Hard caps — a malformed or hostile peer must not be able to OOM the
// server: payload length, string field length and property count are all
// bounded, and every bound is checked BEFORE allocating. A frame whose
// declared length exceeds the cap is a framing error (the connection
// closes); a well-framed payload that violates a body rule gets a typed
// kMalformedRequest response when its request id was recoverable.
//
// Request ids are client-chosen correlation tokens echoed verbatim in
// the response. The server does not dedupe them: two in-flight frames
// with the same id get two responses with that id (the client library
// never does this; the fuzz suite does it on purpose).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/errors.h"
#include "gateway/request.h"
#include "support/small_vector.h"

namespace mobivine::wire {

inline constexpr std::uint8_t kMagic0 = 'M';
inline constexpr std::uint8_t kMagic1 = 'V';
inline constexpr std::uint8_t kWireVersion = 1;

/// Caps checked before any allocation sized from peer input.
inline constexpr std::size_t kMaxFramePayload = 1u << 20;  // 1 MiB
inline constexpr std::size_t kMaxStringBytes = 64u << 10;  // per field
inline constexpr std::size_t kMaxProperties = 64;

enum class FrameType : std::uint8_t {
  kRequest = 1,
  kResponse = 2,
  /// M-Cluster control plane (register/heartbeat/plan/drain — see
  /// src/cluster/control.h). Same frame envelope, different payload
  /// schema; data-plane peers that predate it answer kUnsupportedFrame.
  kControl = 3,
  /// M-Push subscription plane (client -> server): open a topic
  /// subscription, optionally replaying from a cursor. Answered with a
  /// kSubscribeAck, then zero or more server-initiated kEvent frames.
  kSubscribe = 4,
  /// M-Push event (server -> client): a pushed platform callback, a
  /// kEventsDropped gap marker, or an end-of-drain marker. Never
  /// acknowledged — the server sheds instead of waiting.
  kEvent = 5,
  /// M-Push teardown (client -> server): stop a subscription by id.
  /// Answered with a kSubscribeAck echoing the request id.
  kUnsubscribe = 6,
  /// M-Push ack (server -> client): typed outcome of a kSubscribe or
  /// kUnsubscribe, carrying the assigned subscription id and the cursor
  /// the event stream actually starts from.
  kSubscribeAck = 7,
  /// M-Script composite invocation (client -> server): a MiniJS program
  /// plus named string arguments, executed inside the owning shard with
  /// the proxy registry exposed as host objects. Answered with one
  /// ordinary kResponse frame carrying the aggregated result (kOk), the
  /// thrown value's display string (kScriptError), or a budget/queue
  /// outcome (kDeadlineExceeded / kOverloaded).
  kScript = 8,
};

/// Is this a frame type this build knows how to handle? Unknown types
/// still *frame* correctly (DecodeFrame validates the envelope only), so
/// a newer peer's frames can be answered in-band instead of killing the
/// connection — mixed-version fleets degrade gracefully.
[[nodiscard]] constexpr bool IsKnownFrameType(FrameType type) {
  return type == FrameType::kRequest || type == FrameType::kResponse ||
         type == FrameType::kControl || type == FrameType::kSubscribe ||
         type == FrameType::kEvent || type == FrameType::kUnsubscribe ||
         type == FrameType::kSubscribeAck || type == FrameType::kScript;
}

/// Wire status codes. 0 is success; 1..13 mirror core::ErrorCode one to
/// one (docs/failure-semantics.md holds the table); the >= 64 band is
/// wire-layer-only: protocol violations and client-side transport
/// failures that never had a gateway outcome.
enum class WireStatus : std::uint8_t {
  kOk = 0,
  kSecurity = 1,
  kIllegalArgument = 2,
  kLocationUnavailable = 3,
  kTimeout = 4,
  kUnreachable = 5,
  kRadioFailure = 6,
  kUnsupported = 7,
  kInvalidState = 8,
  kNetwork = 9,
  kOverloaded = 10,
  kDeadlineExceeded = 11,
  kAllBackendsFailed = 12,
  kUnknown = 13,
  kMalformedRequest = 64,  ///< well-framed payload violated a body rule
  kTransportError = 65,    ///< client-side: connection died mid-flight
  /// M-Cluster: this worker does not own the request's client id under
  /// its current partition plan. The response body carries the worker's
  /// plan epoch as a decimal string — the cluster client refreshes to at
  /// least that epoch and re-routes.
  kWrongWorker = 66,
  /// The frame was well-formed but its type byte is not one this peer
  /// implements (a newer protocol revision, or a control frame sent to a
  /// plain data server). Answered in-band; the connection lives on.
  kUnsupportedFrame = 67,
  /// M-Script: the script was well-formed and admitted but its execution
  /// threw (an uncaught script `throw`, a sandbox budget kill, or an
  /// oversized result). The response body carries the thrown value's
  /// display string. Time-budget exhaustion maps to kDeadlineExceeded
  /// instead — it is a deadline outcome, not a script bug.
  kScriptError = 68,
};

[[nodiscard]] const char* ToString(WireStatus status);
[[nodiscard]] WireStatus FromErrorCode(core::ErrorCode code);
/// Inverse for the mirrored band; the wire-only band maps to kUnknown.
[[nodiscard]] core::ErrorCode ToErrorCode(WireStatus status);

/// A request as it travels: the gateway::Request envelope minus the
/// completion callback, plus the correlation id.
struct WireRequest {
  std::uint64_t request_id = 0;
  std::uint64_t client_id = 0;  ///< shard affinity key, forwarded as-is
  gateway::Platform platform = gateway::Platform::kAndroid;
  gateway::Op op = gateway::Op::kGetLocation;
  std::uint64_t timeout_micros = 0;  ///< 0: server default
  std::uint32_t max_attempts = 0;    ///< retry rounds; 0: server default
  std::string target;
  std::string payload;
  std::string content_type;
  /// Tagged scalar properties (string / int64 / double / bool) — the four
  /// descriptor-declared lanes. Native-handle properties do not travel.
  std::vector<std::pair<std::string, core::PropertyValue>> properties;
};

/// A response as it travels: outcome, the M-Failover summary (attempts,
/// which platform actually served), and the return value or error detail.
struct WireResponse {
  std::uint64_t request_id = 0;
  WireStatus status = WireStatus::kUnknown;
  gateway::Platform served_platform = gateway::Platform::kAndroid;
  std::uint32_t attempts = 0;
  std::uint64_t latency_micros = 0;  ///< server-side submit -> completion
  std::string body;  ///< op result when kOk; error detail otherwise
};

// ---------------------------------------------------------------------------
// M-Script frame body (kScript)
// ---------------------------------------------------------------------------

/// kScript payload: varint request_id, varint client_id, varint
/// timeout_micros, varint step_budget, varint virtual_us_budget, varint
/// max_result_bytes, string source, varint arg_count, then arg_count
/// (string name, string value) pairs. Budget fields of 0 mean "server
/// default" — the server clamps everything to its own ceilings anyway, so
/// a client cannot buy itself a bigger sandbox than the operator allows.
/// Answered with an ordinary kResponse frame (same correlation id).
struct WireScriptRequest {
  std::uint64_t request_id = 0;
  std::uint64_t client_id = 0;       ///< shard/plan routing key
  std::uint64_t timeout_micros = 0;  ///< queue+execution deadline; 0: default
  std::uint64_t step_budget = 0;       ///< interpreter steps; 0: default
  std::uint64_t virtual_us_budget = 0; ///< virtual-clock budget; 0: default
  std::uint64_t max_result_bytes = 0;  ///< result display cap; 0: default
  std::string source;  ///< MiniJS program (<= kMaxStringBytes)
  /// Named string arguments, exposed to the script as the `args` host
  /// object (<= kMaxProperties entries, each side <= kMaxStringBytes).
  std::vector<std::pair<std::string, std::string>> args;
};

// ---------------------------------------------------------------------------
// M-Push frame bodies (kSubscribe / kSubscribeAck / kEvent / kUnsubscribe)
// ---------------------------------------------------------------------------

/// What a subscription listens to. Topics are small enum codes like the
/// proxy/method symbols: one agreed byte per distinct callback family.
enum class PushTopic : std::uint8_t {
  kAll = 0,          ///< wildcard: every topic on the owning shard
  kProximity = 1,    ///< ProximityListener::proximityEvent
  kSmsDelivery = 2,  ///< SmsListener::smsStatusChanged delivery reports
  kCallState = 3,    ///< CallListener::callStateChanged
  kNotification = 4, ///< WebView NotificationTable posts (paper Fig 6)
};

[[nodiscard]] constexpr bool IsKnownPushTopic(std::uint8_t raw) {
  return raw <= static_cast<std::uint8_t>(PushTopic::kNotification);
}

/// How the subscription starts relative to the shard's replay ring.
enum class SubscribeMode : std::uint8_t {
  kLiveOnly = 0,    ///< events from now on; `cursor` ignored
  kFromCursor = 1,  ///< replay retained events after `cursor`, then live
  /// Replay retained events after `cursor`, emit an end-of-drain marker,
  /// and auto-close — the poll primitive (bench baseline and migration
  /// path for NotificationTable-style clients).
  kDrainOnce = 2,
};

/// kSubscribe payload: varint request_id, varint client_id (shard/plan
/// routing key, same as requests), u8 topic, u8 mode, varint cursor.
struct WireSubscribe {
  std::uint64_t request_id = 0;
  std::uint64_t client_id = 0;
  PushTopic topic = PushTopic::kAll;
  SubscribeMode mode = SubscribeMode::kLiveOnly;
  std::uint64_t cursor = 0;  ///< last cursor already seen (kFromCursor)
};

/// kUnsubscribe payload: varint request_id, varint subscription_id.
struct WireUnsubscribe {
  std::uint64_t request_id = 0;
  std::uint64_t subscription_id = 0;
};

/// kSubscribeAck payload: varint request_id, u8 status, varint
/// subscription_id, varint start_cursor. Acks both subscribe (the
/// assigned id + the cursor the stream starts after — a clamped
/// start_cursor < the requested cursor means the ring no longer retained
/// the gap) and unsubscribe (ids echo back).
struct WireSubscribeAck {
  std::uint64_t request_id = 0;
  WireStatus status = WireStatus::kUnknown;
  std::uint64_t subscription_id = 0;
  std::uint64_t start_cursor = 0;
};

/// What a kEvent frame carries.
enum class EventKind : std::uint8_t {
  kData = 0,          ///< a pushed platform callback; body is the payload
  /// The per-connection queue overflowed and events [aux_cursor, cursor]
  /// were shed — re-sync from `cursor` instead of silently missing them.
  kEventsDropped = 1,
  kEndOfDrain = 2,    ///< kDrainOnce replay finished; subscription closed
};

/// kEvent payload: varint subscription_id, u8 kind, u8 topic, varint
/// cursor, varint aux, string body.
///  * kData:          cursor = the event's ring cursor; aux = origin
///                    client id (0 = device-wide broadcast).
///  * kEventsDropped: [aux, cursor] is the shed cursor range; body empty.
///  * kEndOfDrain:    cursor = last cursor replayed (resume point for the
///                    next kDrainOnce); aux 0; body empty.
struct WireEvent {
  std::uint64_t subscription_id = 0;
  EventKind kind = EventKind::kData;
  PushTopic topic = PushTopic::kAll;
  std::uint64_t cursor = 0;
  std::uint64_t aux = 0;
  std::string body;
};

/// A request decoded without copying: every string field is a view into
/// the frame payload the decoder was handed (a connection's input ring).
/// Valid only until that buffer is consumed, grown or linearized — the
/// ring's generation counter is the caller's staleness guard. Reusable:
/// a long-lived view retains its property capacity across decodes.
struct WireRequestView {
  std::uint64_t request_id = 0;
  std::uint64_t client_id = 0;
  gateway::Platform platform = gateway::Platform::kAndroid;
  gateway::Op op = gateway::Op::kGetLocation;
  std::uint64_t timeout_micros = 0;
  std::uint32_t max_attempts = 0;
  std::string_view target;
  std::string_view payload;
  std::string_view content_type;
  /// Borrowed (name, tagged scalar) pairs — the exact shape
  /// gateway::Submit's borrowed-request overload consumes.
  support::SmallVector<gateway::BorrowedProperty, 8> properties;
};

// ---------------------------------------------------------------------------
// Encoding (append-to-buffer; callers reuse buffers across frames)
// ---------------------------------------------------------------------------

void EncodeRequest(const WireRequest& request, std::vector<std::uint8_t>& out);
/// Encode with the correlation id supplied separately, so a client can
/// stamp ids without mutating (or copying) the caller's request.
void EncodeRequest(const WireRequest& request, std::uint64_t request_id,
                   std::vector<std::uint8_t>& out);
void EncodeResponse(const WireResponse& response,
                    std::vector<std::uint8_t>& out);
/// Encode with the body supplied separately as a borrowed view — the
/// server's completion path hands the gateway payload straight through
/// without copying it into a WireResponse first. `response.body` is
/// ignored.
void EncodeResponse(const WireResponse& response, std::string_view body,
                    std::vector<std::uint8_t>& out);

void EncodeScript(const WireScriptRequest& script,
                  std::vector<std::uint8_t>& out);
/// Encode with the correlation id supplied separately (client id-stamping,
/// mirroring the EncodeRequest overload).
void EncodeScript(const WireScriptRequest& script, std::uint64_t request_id,
                  std::vector<std::uint8_t>& out);

void EncodeSubscribe(const WireSubscribe& subscribe,
                     std::vector<std::uint8_t>& out);
void EncodeUnsubscribe(const WireUnsubscribe& unsubscribe,
                       std::vector<std::uint8_t>& out);
void EncodeSubscribeAck(const WireSubscribeAck& ack,
                        std::vector<std::uint8_t>& out);
void EncodeEvent(const WireEvent& event, std::vector<std::uint8_t>& out);
/// Encode with the body supplied separately as a borrowed view — the
/// server's push pump hands the feed's payload straight through without
/// copying it into a WireEvent first. `event.body` is ignored.
void EncodeEvent(const WireEvent& event, std::string_view body,
                 std::vector<std::uint8_t>& out);

/// Wrap payload bytes the caller appended at out[payload_start..) in the
/// frame header + CRC trailer (the payload is moved right by the header
/// length — one insert). Building block for additional frame families
/// (the cluster control codec); EncodeRequest/EncodeResponse use it too.
void FinishFrame(std::vector<std::uint8_t>& out, std::size_t payload_start,
                 FrameType type);

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

enum class DecodeStatus : std::uint8_t {
  kOk,
  kNeedMore,   ///< valid so far, frame incomplete — wait for bytes
  kMalformed,  ///< can never become valid — framing error, close the peer
};

/// A decoded frame boundary: `payload` points into the caller's buffer
/// (valid until the buffer is consumed/moved).
struct FrameView {
  FrameType type = FrameType::kRequest;
  const std::uint8_t* payload = nullptr;
  std::size_t payload_size = 0;
};

/// Scan one frame from [data, data+size). kOk sets `frame` and `consumed`
/// (total frame bytes including header and CRC trailer); kNeedMore means
/// feed more bytes and retry from the same offset; kMalformed fills
/// `error` (bad magic/version, length over cap, CRC mismatch, malformed
/// length varint). An *unknown type byte* is NOT a framing error: the
/// envelope is validated and the frame returned with its raw type, so
/// the caller can answer kUnsupportedFrame in-band (IsKnownFrameType).
[[nodiscard]] DecodeStatus DecodeFrame(const std::uint8_t* data,
                                       std::size_t size, FrameView* frame,
                                       std::size_t* consumed,
                                       std::string* error);

enum class BodyStatus : std::uint8_t {
  kOk,
  kBadId,    ///< request id itself unreadable — treat as a framing error
  kBadBody,  ///< id recovered; answer it with kMalformedRequest
};

/// Decode a kRequest frame payload. On kBadBody, request_id is valid and
/// `error` says what was wrong; on kBadId nothing is usable.
[[nodiscard]] BodyStatus DecodeRequest(const std::uint8_t* payload,
                                       std::size_t size, WireRequest* request,
                                       std::string* error);

/// Zero-copy variant: identical validation and semantics (DecodeRequest
/// is implemented on top of it), but string fields come back as views
/// into `payload` — nothing is allocated on success. The view is cleared
/// first; on kBadBody its request_id is valid, like DecodeRequest.
[[nodiscard]] BodyStatus DecodeRequestView(const std::uint8_t* payload,
                                           std::size_t size,
                                           WireRequestView* view,
                                           std::string* error);

/// Decode a kScript frame payload. Same contract as DecodeRequest: on
/// kBadBody the request_id is valid and can be answered with a typed
/// kMalformedRequest response; on kBadId nothing is usable.
[[nodiscard]] BodyStatus DecodeScript(const std::uint8_t* payload,
                                      std::size_t size,
                                      WireScriptRequest* script,
                                      std::string* error);

/// Decode a kResponse frame payload (client side). True on success.
[[nodiscard]] bool DecodeResponse(const std::uint8_t* payload,
                                  std::size_t size, WireResponse* response,
                                  std::string* error);

/// Decode a kSubscribe frame payload. Same contract as DecodeRequest:
/// on kBadBody the request_id is valid and can be answered with a typed
/// kMalformedRequest ack; on kBadId nothing is usable.
[[nodiscard]] BodyStatus DecodeSubscribe(const std::uint8_t* payload,
                                         std::size_t size,
                                         WireSubscribe* subscribe,
                                         std::string* error);

/// Decode a kUnsubscribe frame payload (same kBadId/kBadBody contract).
[[nodiscard]] BodyStatus DecodeUnsubscribe(const std::uint8_t* payload,
                                           std::size_t size,
                                           WireUnsubscribe* unsubscribe,
                                           std::string* error);

/// Decode a kSubscribeAck frame payload (client side). True on success.
[[nodiscard]] bool DecodeSubscribeAck(const std::uint8_t* payload,
                                      std::size_t size, WireSubscribeAck* ack,
                                      std::string* error);

/// Decode a kEvent frame payload (client side). True on success.
[[nodiscard]] bool DecodeEvent(const std::uint8_t* payload, std::size_t size,
                               WireEvent* event, std::string* error);

/// Best-effort correlation id for a frame whose type this peer does not
/// implement: every frame family in this protocol leads its payload with
/// a varint id, so an unsupported frame can still be answered with the
/// id its sender will recognize. False when no clean leading varint.
[[nodiscard]] bool PeekPayloadId(const std::uint8_t* payload,
                                 std::size_t size, std::uint64_t* id);

}  // namespace mobivine::wire
