// M-Wire client: a blocking-socket library for talking to a WireServer.
//
// Two modes share one connection:
//   - Call()   — synchronous request/response, for tests and simple tools.
//   - Submit() — pipelined async: assigns a request id, sends without
//     waiting, and fires the callback from the client's reader thread
//     when the matching response frame arrives. Many requests can be in
//     flight at once (the server pipelines freely), which is what the
//     bench_wire_throughput closed-loop windows are built on.
//
// Request ids are client-side correlation tokens, assigned monotonically
// here; any id already present in `request.request_id` is ignored (the
// caller's struct is never mutated — the id the server echoes is the one
// this client stamped into the encoded frame).
//
// Encoding goes through the shared wire buffer pool
// (support::BufferPool::WirePool()): requests are encoded once, straight
// from the caller's struct into a pooled frame buffer — no per-request
// WireRequest copy, no per-frame heap allocation at steady state.
//
// Failure semantics: when the connection dies (peer close, socket error,
// undecodable response frame) every outstanding callback fires exactly
// once with WireStatus::kTransportError and an empty body, and later
// Submit/Call attempts fail fast. Callbacks run on the reader thread —
// keep them short; a callback must not call Close() (deadlock: Close
// joins the reader).
//
// M-Push: Subscribe() opens a server-initiated event stream on the same
// connection. The ack callback fires exactly once (the server's typed
// kSubscribeAck, or kTransportError); after a kOk ack the event handler
// receives every kEvent frame for that subscription — data, typed
// kEventsDropped gap markers, kEndOfDrain — in arrival order on the
// reader thread. When the connection dies each live subscription's
// handler receives one final synthetic kEventsDropped event with
// cursor == 0 ("the stream is gone — re-subscribe with your last
// cursor"), distinguishable from real shed ranges, whose cursors are
// always >= 1.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "wire/protocol.h"

namespace mobivine::wire {

/// Bounded connect behavior: a hard per-attempt timeout plus optional
/// retries under exponential backoff. The zero-argument default keeps
/// the old feel (one attempt) but bounded at 2 s instead of the kernel's
/// minutes-long SYN patience.
struct ConnectOptions {
  std::chrono::microseconds connect_timeout{2'000'000};
  int max_attempts = 1;  ///< total attempts (>= 1)
  std::chrono::microseconds initial_backoff{25'000};
  double backoff_multiplier = 2.0;
  std::chrono::microseconds max_backoff{1'000'000};
};

/// Open a blocking TCP_NODELAY socket to 127.0.0.1:port under `options`
/// (non-blocking connect + poll per attempt, backoff between attempts).
/// Returns the fd, or -1 with `error` filled. Shared by WireClient and
/// the cluster control channel.
[[nodiscard]] int ConnectLoopback(std::uint16_t port,
                                  const ConnectOptions& options,
                                  std::string* error);

class WireClient {
 public:
  using Callback = std::function<void(const WireResponse&)>;

  WireClient() = default;
  ~WireClient();

  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  /// Connect to 127.0.0.1:port and start the reader thread. False on
  /// failure (`error` says why). Reusable: after Close() — or after the
  /// connection died under us — calling Connect again first reclaims the
  /// old reader/fd (failing any still-outstanding callbacks with
  /// kTransportError) and then dials fresh. Callers serialize Connect
  /// against their own Submit/Call use; an *already connected* client
  /// refuses with "already connected".
  [[nodiscard]] bool Connect(std::uint16_t port, std::string* error = nullptr);

  /// Connect with explicit timeout/retry/backoff behavior.
  [[nodiscard]] bool Connect(std::uint16_t port, const ConnectOptions& options,
                             std::string* error = nullptr);

  /// Pipelined async send. Returns false (callback fired with
  /// kTransportError) if the connection is down or the send fails.
  bool Submit(const WireRequest& request, Callback callback);

  /// Pipelined batch: encode every request into one pooled buffer and
  /// push it with a single write — the syscall-per-request cost is what
  /// dominates small-frame loopback throughput. `callback` fires once
  /// per response (any order). Returns the number of requests actually
  /// sent; on a transport failure the unsent remainder's callbacks fire
  /// with kTransportError.
  std::size_t SubmitBatch(const std::vector<WireRequest>& requests,
                          const Callback& callback);

  /// Per-request-callback variant of the batch: same single coalesced
  /// write, but `callbacks[i]` completes `requests[i]` (the two vectors
  /// must be the same length). This is what a routing layer needs —
  /// batch the wire write per destination while every request keeps its
  /// own retry wrapper.
  std::size_t SubmitBatch(const std::vector<WireRequest>& requests,
                          std::vector<Callback> callbacks);

  /// Synchronous round trip: Submit + wait. Returns false only on
  /// transport failure; protocol-level errors come back as `response`
  /// statuses with the connection intact.
  bool Call(WireRequest request, WireResponse* response);

  // ---- M-Script composite invocations ----

  /// Pipelined async script send (one kScript frame; any id in
  /// `script.request_id` is ignored — this client stamps its own). The
  /// answer arrives as an ordinary kResponse frame: kOk with the result
  /// display string as the body, kScriptError with the thrown value's
  /// display string, or a normal status band (deadline, overload,
  /// malformed). Same transport-failure contract as Submit.
  bool SubmitScript(const WireScriptRequest& script, Callback callback);

  /// Synchronous script round trip, mirroring Call().
  bool CallScript(const WireScriptRequest& script, WireResponse* response);

  // ---- M-Push subscriptions ----

  using EventHandler = std::function<void(const WireEvent&)>;
  using AckCallback = std::function<void(const WireSubscribeAck&)>;

  /// Open a subscription (`subscribe.request_id` is ignored — this
  /// client stamps its own correlation id). `on_ack` fires exactly once:
  /// the server's kSubscribeAck, or kTransportError. On a kOk ack the
  /// handler is installed under the server-assigned subscription id
  /// before any of that subscription's events are dispatched (the server
  /// queues the ack ahead of the first event). Returns false when the
  /// send failed — `on_ack` has then already fired.
  bool Subscribe(const WireSubscribe& subscribe, EventHandler on_event,
                 AckCallback on_ack);

  /// Close a subscription by its server-assigned id. The handler stays
  /// installed until the kOk ack arrives, so events already in flight
  /// are still delivered, in order, before it.
  bool Unsubscribe(std::uint64_t subscription_id, AckCallback on_ack);

  /// Shut the socket down and join the reader thread (which fails all
  /// outstanding callbacks with kTransportError). Idempotent.
  void Close();

  [[nodiscard]] bool connected() const {
    return connected_.load(std::memory_order_acquire);
  }

  /// Responses whose callbacks have not yet fired.
  [[nodiscard]] std::size_t outstanding() const;

 private:
  /// A Subscribe/Unsubscribe whose ack has not arrived yet.
  struct PendingSub {
    AckCallback ack;
    /// shared_ptr so event dispatch can copy the handle out of the map
    /// and invoke it outside mutex_ (a handler may re-enter Submit).
    std::shared_ptr<const EventHandler> handler;
    bool is_subscribe = true;
    std::uint64_t subscription_id = 0;  ///< unsubscribe: the target
  };

  void ReaderLoop();
  void FailAllOutstanding();
  void HandleSubscribeAck(const WireSubscribeAck& ack);
  void HandleEvent(WireEvent&& event);
  /// Reclaim a previous (dead or closed) connection so Connect can dial
  /// fresh: join the exited reader, close the fd, fail anything still
  /// pending. No-op on a never-connected client.
  void ReclaimDeadConnection();
  /// Under mutex_: park `callback` under `id`, reusing a recycled map
  /// node when one is available.
  void EmplacePendingLocked(std::uint64_t id, Callback&& callback);
  /// Shared body of both SubmitBatch overloads: `callback_at(i)` yields
  /// the (already wrapped) callback to park for requests[i].
  std::size_t SubmitBatchImpl(
      const std::vector<WireRequest>& requests,
      const std::function<Callback(std::size_t)>& callback_at);
  /// Take (and un-map) the callback for `id`; empty if already gone. The
  /// freed node is recycled.
  [[nodiscard]] Callback TakePending(std::uint64_t id);

  /// Atomic, and closed/reset ONLY under send_mutex_: a sender inside
  /// WriteAll holds that mutex, so teardown can race the shutdown()
  /// (harmless — the write fails with EPIPE) but never the close() —
  /// a concurrent Submit can never write into a recycled descriptor.
  std::atomic<int> fd_{-1};
  std::thread reader_;
  std::atomic<bool> connected_{false};
  std::atomic<std::uint64_t> next_id_{1};

  using PendingMap = std::unordered_map<std::uint64_t, Callback>;

  /// Two locks, never held together with send_mutex_ inner: the send
  /// path can block on a full socket buffer (server backpressure), and
  /// the reader thread must still be able to take mutex_ to complete
  /// responses — that drain is what un-sticks the server.
  mutable std::mutex mutex_;  ///< guards pending_ and free_nodes_
  std::mutex send_mutex_;     ///< serializes whole-frame writes
  PendingMap pending_;
  /// M-Push state, also under mutex_: un-acked subscribe/unsubscribe
  /// requests, and the live handler per server-assigned subscription id.
  std::unordered_map<std::uint64_t, PendingSub> pending_subs_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const EventHandler>>
      event_handlers_;
  /// Recycled pending_ nodes: completing a response extracts its node
  /// here instead of freeing it, and the next Submit reuses it — no map
  /// node allocation per request at steady state.
  std::vector<PendingMap::node_type> free_nodes_;
};

}  // namespace mobivine::wire
