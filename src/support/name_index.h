// Immutable name -> slot index for the small per-plane descriptor tables.
//
// Descriptor planes hold a handful of entries (methods, properties,
// bindings), so a node-based map is overkill and even a short linear
// string scan costs a libc memcmp call per candidate. A NameIndex keys
// a small power-of-two open-addressing table on the three fingerprints
// of support/fingerprint.h plus the length: for names of <= 24
// characters a cell compare IS string equality and a lookup never
// touches the string bytes at all; longer names verify with one compare
// on a fingerprint hit. Tables of up to 16 cells — every plane in the
// descriptor set — live inline in the object, so a probe costs no heap
// pointer chase.
//
// Built once at DescriptorStore::Finalize(); the source tables must not
// change afterwards.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/fingerprint.h"

namespace mobivine::support {

class NameIndex {
 public:
  static constexpr std::uint32_t npos = 0xffffffffu;

  /// Append `name` as the next slot (0, 1, 2, ...).
  void Add(std::string_view name) {
    names_.emplace_back(name);
    frozen_ = false;
  }

  /// Build the probe table; required before Lookup. Duplicate names keep
  /// the lowest slot (matching a linear first-match scan).
  void Freeze() {
    std::size_t size = kInlineCells;
    while (size * 3 < names_.size() * 4) size *= 2;
    if (size > kInlineCells) {
      spill_.assign(size, Cell{});
    } else {
      spill_.clear();
      for (Cell& cell : inline_) cell = Cell{};
    }
    Cell* cells = size > kInlineCells ? spill_.data() : inline_;
    mask_ = size - 1;
    shift_ = 64;
    for (std::size_t s = size; s > 1; s >>= 1) --shift_;
    for (std::uint32_t slot = 0; slot < names_.size(); ++slot) {
      const std::string& name = names_[slot];
      const Cell cell = CellFor(name, slot);
      std::size_t at = Home(cell);
      bool duplicate = false;
      while (SlotOf(cells[at]) != npos) {
        if (SameKey(cells[at], cell) &&
            (name.size() <= 24 || names_[SlotOf(cells[at])] == name)) {
          duplicate = true;  // first occurrence (lowest slot) wins
          break;
        }
        at = (at + 1) & mask_;
      }
      if (!duplicate) cells[at] = cell;
    }
    frozen_ = true;
  }

  void Clear() {
    names_.clear();
    spill_.clear();
    frozen_ = false;
  }

  /// True once Freeze() has run (callers fall back to a linear scan
  /// until then).
  [[nodiscard]] bool built() const { return frozen_; }
  [[nodiscard]] std::size_t size() const { return names_.size(); }

  /// Slot of `name`, or npos.
  [[nodiscard]] std::uint32_t Lookup(std::string_view name) const {
    const Cell probe = CellFor(name, 0);
    const Cell* cells = spill_.empty() ? inline_ : spill_.data();
    std::size_t at = Home(probe);
    while (true) {
      const Cell& cell = cells[at];
      const std::uint32_t slot = SlotOf(cell);
      if (SameKey(cell, probe)) {
        if (slot == npos) return npos;  // empty cell (all-zero key)
        // <= 24 chars: the fingerprints cover every byte. Longer: verify.
        if (name.size() <= 24 || names_[slot] == name) return slot;
      } else if (slot == npos) {
        return npos;
      }
      at = (at + 1) & mask_;
    }
  }

 private:
  /// meta packs (length << 32) | slot so a whole key compares with four
  /// 64-bit XORs; an empty cell is all-zero except the npos slot bits.
  /// 32-byte alignment keeps a cell from straddling a cache line.
  struct alignas(32) Cell {
    std::uint64_t head = 0;
    std::uint64_t mid = 0;
    std::uint64_t third = 0;
    std::uint64_t meta = npos;
  };
  static constexpr std::size_t kInlineCells = 16;

  [[nodiscard]] static Cell CellFor(std::string_view name,
                                    std::uint32_t slot) {
    return Cell{FingerprintHead(name), FingerprintMid(name),
                FingerprintThird(name),
                (static_cast<std::uint64_t>(name.size()) << 32) | slot};
  }

  [[nodiscard]] static std::uint32_t SlotOf(const Cell& cell) {
    return static_cast<std::uint32_t>(cell.meta);
  }

  /// Branchless key compare: lengths and all three fingerprints.
  [[nodiscard]] static bool SameKey(const Cell& a, const Cell& b) {
    return ((a.head ^ b.head) | (a.mid ^ b.mid) | (a.third ^ b.third) |
            ((a.meta ^ b.meta) >> 32)) == 0;
  }

  /// Fibonacci hashing: one multiply spreads the key across the
  /// power-of-two table.
  [[nodiscard]] std::size_t Home(const Cell& cell) const {
    return static_cast<std::size_t>(
        ((cell.head ^ (cell.mid + cell.third) ^ (cell.meta >> 32)) *
         0x9E3779B97F4A7C15ull) >>
        shift_);
  }

  std::vector<std::string> names_;  // slot -> spelling
  Cell inline_[kInlineCells];       // used when the table fits
  std::vector<Cell> spill_;         // used when it does not
  std::size_t mask_ = kInlineCells - 1;
  int shift_ = 60;
  bool frozen_ = false;
};

}  // namespace mobivine::support
