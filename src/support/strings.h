// String helpers shared across the MobiVine codebase.
//
// Small, allocation-conscious utilities; everything operates on
// std::string_view where possible and only materializes std::string for
// results that must own their storage.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mobivine::support {

/// Remove leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view Trim(std::string_view s);

/// Split `s` on `sep`. Empty fields are preserved ("a,,b" -> {"a","","b"}).
[[nodiscard]] std::vector<std::string> Split(std::string_view s, char sep);

/// Split `s` on any run of ASCII whitespace; empty fields are dropped.
[[nodiscard]] std::vector<std::string> SplitWhitespace(std::string_view s);

/// True if `s` starts with / ends with the given prefix or suffix.
[[nodiscard]] bool StartsWith(std::string_view s, std::string_view prefix);
[[nodiscard]] bool EndsWith(std::string_view s, std::string_view suffix);

/// Join the range with a separator.
[[nodiscard]] std::string Join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// Case-insensitive ASCII equality (used for HTTP header names).
[[nodiscard]] bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Lower-case an ASCII string.
[[nodiscard]] std::string ToLower(std::string_view s);

/// Replace every occurrence of `from` (non-empty) with `to`.
[[nodiscard]] std::string ReplaceAll(std::string_view s, std::string_view from,
                                     std::string_view to);

/// Parse helpers returning false on malformed input instead of throwing.
bool ParseInt(std::string_view s, long long& out);
bool ParseDouble(std::string_view s, double& out);
bool ParseBool(std::string_view s, bool& out);  // "true"/"false" (any case)

/// Count the number of lines that contain at least one non-space character.
[[nodiscard]] int CountNonBlankLines(std::string_view text);

/// Indent every non-empty line of `text` by `spaces` spaces.
[[nodiscard]] std::string Indent(std::string_view text, int spaces);

}  // namespace mobivine::support
