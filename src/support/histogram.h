// Lock-free HDR-style latency histogram, shared by every stats plane.
//
// Grew up as the gateway's latency histogram (gateway/histogram.h is now
// an alias of this header); the wire layer's client-side latency uses the
// same buckets so server-side and over-the-wire percentiles are directly
// comparable.
//
// Bucketing: values (microseconds) land in log2 octaves split into 8
// linear sub-buckets, so relative error is bounded at ~12.5% across the
// full range (1 µs .. ~5 hours) with a fixed 512-slot table. Record() is
// one relaxed fetch_add — writers never contend with each other (one
// histogram per shard / per client thread) or with snapshot readers.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace mobivine::support {

namespace histogram_detail {
inline constexpr int kSubBucketBits = 3;  // 8 sub-buckets per octave
inline constexpr std::size_t kBucketCount = 512;

/// Bucket index for a microsecond value. Values 0..7 get exact buckets;
/// octave o >= 3 keeps the top 3 bits below the leading bit.
[[nodiscard]] inline std::size_t BucketFor(std::uint64_t micros) {
  const std::uint64_t v = micros | 1;
  const int octave = std::bit_width(v) - 1;  // floor(log2(v)), 0..63
  if (octave < kSubBucketBits) return micros;
  const std::uint64_t sub = (v >> (octave - kSubBucketBits)) & 7u;
  return (static_cast<std::size_t>(octave - 2) << kSubBucketBits) | sub;
}

/// Inclusive upper bound (µs) of a bucket — what percentiles report.
[[nodiscard]] inline std::uint64_t BucketUpperBound(std::size_t index) {
  if (index < (1u << kSubBucketBits)) return index;
  const int octave = static_cast<int>(index >> kSubBucketBits) + 2;
  const std::uint64_t sub = index & 7u;
  const std::uint64_t base = 1ull << octave;
  const std::uint64_t width = 1ull << (octave - kSubBucketBits);
  return base + (sub + 1) * width - 1;
}
}  // namespace histogram_detail

/// A point-in-time copy of a histogram; merged and queried off-thread.
class HistogramSnapshot {
 public:
  HistogramSnapshot() : counts_(histogram_detail::kBucketCount, 0) {}

  void Merge(const HistogramSnapshot& other) {
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      counts_[i] += other.counts_[i];
    }
    total_ += other.total_;
  }

  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// Value (µs) at quantile q in [0, 1]: the upper bound of the bucket
  /// holding the ceil(q * total)-th sample. 0 when empty.
  [[nodiscard]] std::uint64_t Percentile(double q) const {
    if (total_ == 0) return 0;
    if (q < 0) q = 0;
    if (q > 1) q = 1;
    const auto rank =
        static_cast<std::uint64_t>(q * static_cast<double>(total_ - 1)) + 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      seen += counts_[i];
      if (seen >= rank) return histogram_detail::BucketUpperBound(i);
    }
    return histogram_detail::BucketUpperBound(counts_.size() - 1);
  }

  /// Value (µs) at a percentile rank in [0, 100]: PercentileRank(99)
  /// == Percentile(0.99). Exists because Percentile()'s silent clamp
  /// turned the q-vs-percent mixup into degenerate p50==p95==p99
  /// reports (every rank > 1 collapsed onto the max occupied bucket);
  /// callers thinking in percent should use this form.
  [[nodiscard]] std::uint64_t PercentileRank(double percent) const {
    return Percentile(percent / 100.0);
  }

  std::vector<std::uint64_t>& counts() { return counts_; }
  void set_total(std::uint64_t total) { total_ = total; }

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

class LatencyHistogram {
 public:
  void Record(std::uint64_t micros) {
    buckets_[histogram_detail::BucketFor(micros)].fetch_add(
        1, std::memory_order_relaxed);
  }

  /// Consistent-enough copy without stopping writers: counts are summed
  /// after copying, so a concurrent Record() is either in or out — never
  /// torn across total and buckets.
  [[nodiscard]] HistogramSnapshot Snapshot() const {
    HistogramSnapshot snap;
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      const std::uint64_t n = buckets_[i].load(std::memory_order_relaxed);
      snap.counts()[i] = n;
      total += n;
    }
    snap.set_total(total);
    return snap;
  }

 private:
  std::array<std::atomic<std::uint64_t>, histogram_detail::kBucketCount>
      buckets_{};
};

}  // namespace mobivine::support
