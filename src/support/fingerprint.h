// Branch-light 64-bit fingerprints over short identifier strings.
//
// Both lookup structures on the invocation fast path (NameIndex,
// Interner) key their probe tables on fixed-size overlapping loads
// instead of byte-wise hashing: a variable-length memcpy or memcmp is a
// libc call, which costs more than the two or three mov instructions
// these compile to.
//
//  * FingerprintHead — first four | last four bytes. Together with the
//    length this is injective for names of <= 8 characters (the two
//    windows cover every byte). For longer names the tail window reads
//    the LAST four characters, which is where identifiers sharing a
//    prefix ("getLocationUpdates" / "...V2") differ.
//  * FingerprintMid — an 8-byte window over the middle. Together with
//    head + length this is injective for names of <= 16 characters;
//    zero for <= 8 (the head already covers them).
//  * FingerprintThird — a further 8-byte window; head + mid + third +
//    length is injective for names of <= 24 characters, which covers
//    every identifier the descriptor set declares.
//
// Equality of (head, mid, third, length) therefore IS string equality
// up to 24 characters — longer names need one byte-wise verification on
// a fingerprint hit.
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

namespace mobivine::support {

[[nodiscard]] inline std::uint64_t FingerprintHead(std::string_view name) {
  const std::size_t n = name.size();
  const char* p = name.data();
  if (n >= 4) {
    std::uint32_t head;
    std::uint32_t tail;
    std::memcpy(&head, p, 4);
    std::memcpy(&tail, p + n - 4, 4);
    return head | (static_cast<std::uint64_t>(tail) << 32);
  }
  if (n == 0) return 0;
  // 1..3 chars: spread the bytes positionally (0, n/2, n-1 cover all).
  return static_cast<std::uint8_t>(p[0]) |
         (static_cast<std::uint64_t>(static_cast<std::uint8_t>(p[n >> 1]))
          << 8) |
         (static_cast<std::uint64_t>(static_cast<std::uint8_t>(p[n - 1]))
          << 16);
}

[[nodiscard]] inline std::uint64_t FingerprintMid(std::string_view name) {
  const std::size_t n = name.size();
  if (n <= 8) return 0;
  // Window start: n-8 while that is < 4, else 4. Stays in bounds and,
  // with the head windows, covers every byte of names up to 16 chars.
  const std::size_t start = n < 12 ? n - 8 : 4;
  std::uint64_t mid;
  std::memcpy(&mid, name.data() + start, 8);
  return mid;
}

[[nodiscard]] inline std::uint64_t FingerprintThird(std::string_view name) {
  const std::size_t n = name.size();
  if (n <= 16) return 0;
  // Window start: n-8 while that is < 12, else 12. In bounds for n > 16
  // and, with the head and mid windows, covers names up to 24 chars.
  const std::size_t start = n < 20 ? n - 8 : 12;
  std::uint64_t third;
  std::memcpy(&third, name.data() + start, 8);
  return third;
}

/// String equality through the fingerprint windows: strings of <= 24
/// characters never reach a byte-wise memcmp; longer ones verify with
/// one compare after all three windows match. For the short constrained
/// vocabularies on the fast path (allowed property values, platform
/// ids) this replaces a libc call per candidate with fixed loads.
[[nodiscard]] inline bool FingerprintEquals(std::string_view a,
                                            std::string_view b) {
  if (a.size() != b.size()) return false;
  if (FingerprintHead(a) != FingerprintHead(b)) return false;
  if (a.size() <= 8) return true;
  if (FingerprintMid(a) != FingerprintMid(b)) return false;
  if (a.size() <= 16) return true;
  if (FingerprintThird(a) != FingerprintThird(b)) return false;
  return a.size() <= 24 || a == b;
}

}  // namespace mobivine::support
