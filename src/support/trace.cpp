#include "support/trace.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

namespace mobivine::support::trace {

namespace {

constexpr std::size_t kDefaultCapacity = 64 * 1024;

/// One thread's bounded event buffer. Single writer (the owning thread);
/// any reader may scan slots below the published head — those are never
/// rewritten (full buffers drop new events instead of wrapping), so the
/// only synchronization is the release/acquire pair on head_.
struct ThreadBuffer {
  explicit ThreadBuffer(std::size_t capacity, int tid_in)
      : slots(capacity), tid(tid_in) {}

  std::vector<detail::EventRecord> slots;
  std::atomic<std::size_t> head{0};     ///< published events
  std::atomic<std::uint64_t> dropped{0};
  std::size_t reserved = 0;  ///< writer-local; == head except mid-write
  int tid;
  std::string label;  ///< written at registration / SetCurrentThreadName,
                      ///< under the registry mutex
};

struct Registry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::size_t capacity = kDefaultCapacity;
  int next_tid = 1;
  std::uint64_t epoch = 1;  ///< bumped by Reset(); see ThreadState
};

Registry& GlobalRegistry() {
  static Registry* registry = new Registry;  // never destroyed: threads
  return *registry;                          // may record during exit
}

std::atomic<std::uint64_t> g_epoch{1};

struct ThreadState {
  std::shared_ptr<ThreadBuffer> buffer;
  std::uint64_t epoch = 0;
  VirtualClockFn virtual_clock = nullptr;
  void* virtual_clock_ctx = nullptr;
};

ThreadState& Tls() {
  thread_local ThreadState state;
  return state;
}

ThreadBuffer& LocalBuffer() {
  ThreadState& state = Tls();
  const std::uint64_t epoch = g_epoch.load(std::memory_order_relaxed);
  if (!state.buffer || state.epoch != epoch) {
    Registry& registry = GlobalRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    state.buffer =
        std::make_shared<ThreadBuffer>(registry.capacity, registry.next_tid++);
    state.epoch = registry.epoch;
    registry.buffers.push_back(state.buffer);
  }
  return *state.buffer;
}

void WriteEscaped(std::ostream& out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << ' ';
        } else {
          out << c;
        }
    }
  }
}

void WriteEventArgs(std::ostream& out, const detail::EventRecord& event) {
  out << "\"args\":{";
  bool first = true;
  for (std::uint8_t a = 0; a < event.arg_count; ++a) {
    if (!first) out << ',';
    first = false;
    out << '"' << event.arg_name[a] << "\":" << event.arg_value[a];
  }
  if (event.has_virtual) {
    if (!first) out << ',';
    first = false;
    out << "\"virt_start_us\":" << event.virt_start_us;
    if (!event.instant) out << ",\"virt_dur_us\":" << event.virt_dur_us;
  }
  out << '}';
}

}  // namespace

namespace detail {

EventRecord* Reserve() {
  ThreadBuffer& buffer = LocalBuffer();
  if (buffer.reserved >= buffer.slots.size()) {
    buffer.dropped.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  return &buffer.slots[buffer.reserved];
}

void Publish() {
  ThreadBuffer& buffer = *Tls().buffer;
  ++buffer.reserved;
  buffer.head.store(buffer.reserved, std::memory_order_release);
}

std::uint64_t MonotonicNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t VirtualNowMicros() {
  const ThreadState& state = Tls();
  if (state.virtual_clock == nullptr) return 0;
  return state.virtual_clock(state.virtual_clock_ctx);
}

void EmitInstant(const char* name, const char* k1, std::int64_t v1,
                 const char* k2, std::int64_t v2) {
  EventRecord* record = Reserve();
  if (record == nullptr) return;
  *record = EventRecord{};
  record->name = name;
  record->mono_start_ns = MonotonicNowNs();
  record->instant = true;
  if (Tls().virtual_clock != nullptr) {
    record->has_virtual = true;
    record->virt_start_us = VirtualNowMicros();
  }
  if (k1 != nullptr) {
    record->arg_name[record->arg_count] = k1;
    record->arg_value[record->arg_count] = v1;
    ++record->arg_count;
  }
  if (k2 != nullptr) {
    record->arg_name[record->arg_count] = k2;
    record->arg_value[record->arg_count] = v2;
    ++record->arg_count;
  }
  Publish();
}

}  // namespace detail

void SetEnabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void SetPerThreadCapacity(std::size_t events) {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.capacity = std::max<std::size_t>(events, 16);
}

void Reset() {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.buffers.clear();
  registry.epoch = g_epoch.fetch_add(1, std::memory_order_relaxed) + 1;
}

void SetCurrentThreadName(std::string name) {
  ThreadBuffer& buffer = LocalBuffer();
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  buffer.label = std::move(name);
}

void SetThreadVirtualClock(VirtualClockFn fn, void* ctx) {
  ThreadState& state = Tls();
  state.virtual_clock = fn;
  state.virtual_clock_ctx = ctx;
}

void Span::Begin(const char* name) {
  name_ = name;
  mono_start_ns_ = detail::MonotonicNowNs();
  virt_start_us_ = detail::VirtualNowMicros();
  has_virtual_ = Tls().virtual_clock != nullptr;
}

void Span::End() {
  const std::uint64_t mono_end_ns = detail::MonotonicNowNs();
  detail::EventRecord* record = detail::Reserve();
  if (record == nullptr) return;
  *record = detail::EventRecord{};
  record->name = name_;
  record->mono_start_ns = mono_start_ns_;
  record->mono_dur_ns =
      mono_end_ns > mono_start_ns_ ? mono_end_ns - mono_start_ns_ : 0;
  if (has_virtual_) {
    const std::uint64_t virt_end_us = detail::VirtualNowMicros();
    record->has_virtual = true;
    record->virt_start_us = virt_start_us_;
    record->virt_dur_us =
        virt_end_us > virt_start_us_ ? virt_end_us - virt_start_us_ : 0;
  }
  for (std::uint8_t a = 0; a < arg_count_; ++a) {
    record->arg_name[a] = arg_names_[a];
    record->arg_value[a] = args_[a];
  }
  record->arg_count = arg_count_;
  detail::Publish();
}

void CompleteEvent(const char* name,
                   std::chrono::steady_clock::time_point start,
                   std::chrono::steady_clock::time_point end, const char* k1,
                   std::int64_t v1, const char* k2, std::int64_t v2) {
  if (!IsEnabled()) return;
  detail::EventRecord* record = detail::Reserve();
  if (record == nullptr) return;
  *record = detail::EventRecord{};
  record->name = name;
  record->mono_start_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          start.time_since_epoch())
          .count());
  const auto dur =
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start);
  record->mono_dur_ns =
      dur.count() > 0 ? static_cast<std::uint64_t>(dur.count()) : 0;
  if (k1 != nullptr) {
    record->arg_name[record->arg_count] = k1;
    record->arg_value[record->arg_count] = v1;
    ++record->arg_count;
  }
  if (k2 != nullptr) {
    record->arg_name[record->arg_count] = k2;
    record->arg_value[record->arg_count] = v2;
    ++record->arg_count;
  }
  detail::Publish();
}

ExportStats ExportChromeTrace(std::ostream& out) {
  // Snapshot the buffer set (and the mutex-guarded labels) under the
  // lock, then read published slots lock-free: slots below head are
  // immutable and tids are stable after registration.
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::vector<std::string> labels;
  {
    Registry& registry = GlobalRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    buffers = registry.buffers;
    labels.reserve(buffers.size());
    for (const auto& buffer : buffers) labels.push_back(buffer->label);
  }

  ExportStats stats;
  stats.threads = buffers.size();

  // Rebase timestamps so the trace starts at ts=0 (keeps the JSON small
  // and the viewer's timeline readable).
  std::uint64_t base_ns = UINT64_MAX;
  for (const auto& buffer : buffers) {
    const std::size_t head = buffer->head.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < head; ++i) {
      base_ns = std::min(base_ns, buffer->slots[i].mono_start_ns);
    }
  }
  if (base_ns == UINT64_MAX) base_ns = 0;

  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (std::size_t b = 0; b < buffers.size(); ++b) {
    const auto& buffer = buffers[b];
    const std::size_t head = buffer->head.load(std::memory_order_acquire);
    stats.dropped += buffer->dropped.load(std::memory_order_relaxed);
    if (!labels[b].empty()) {
      if (!first) out << ',';
      first = false;
      out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << buffer->tid
          << ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
      WriteEscaped(out, labels[b]);
      out << "\"}}";
    }
    for (std::size_t i = 0; i < head; ++i) {
      const detail::EventRecord& event = buffer->slots[i];
      if (!first) out << ',';
      first = false;
      ++stats.events;
      const std::uint64_t rel_ns = event.mono_start_ns - base_ns;
      out << "{\"ph\":\"" << (event.instant ? 'i' : 'X')
          << "\",\"pid\":1,\"tid\":" << buffer->tid << ",\"ts\":"
          << rel_ns / 1000 << '.' << (rel_ns % 1000) / 100;
      if (event.instant) {
        out << ",\"s\":\"t\"";
      } else {
        out << ",\"dur\":" << event.mono_dur_ns / 1000 << '.'
            << (event.mono_dur_ns % 1000) / 100;
      }
      out << ",\"name\":\"" << event.name << "\",";
      WriteEventArgs(out, event);
      out << '}';
    }
  }
  out << "]}";
  return stats;
}

}  // namespace mobivine::support::trace
