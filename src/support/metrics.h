// M-Scope metrics plane: one snapshot API over every counter the system
// keeps.
//
// The gateway's ShardStats, its latency histograms, and the per-proxy
// OverheadMeter op counts each grew their own read paths; MetricsRegistry
// unifies them behind named sources. A source is a callback that flattens
// its counters into (name, value) pairs under a prefix; Snapshot() runs
// every registered source and returns one sorted, queryable view that
// WriteJson() renders as a flat JSON dump — the metrics sibling of the
// trace exporter.
//
// Sources must tolerate being invoked from any thread at any time: the
// registry only serializes registration against snapshotting, it does not
// stop the writers (the existing stats planes are relaxed-atomic for
// exactly this reason).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mobivine::support {

/// Collects one source's metrics during a snapshot; the prefix of the
/// owning registration is prepended to every name.
class MetricsSink {
 public:
  explicit MetricsSink(const std::string& prefix) : prefix_(prefix) {}

  void Counter(std::string_view name, std::uint64_t value);
  void Gauge(std::string_view name, double value);

  struct Entry {
    std::string name;
    bool is_counter = true;
    std::uint64_t count = 0;  ///< valid when is_counter
    double gauge = 0;         ///< valid when !is_counter
  };

  std::vector<Entry>& entries() { return entries_; }

 private:
  const std::string& prefix_;
  std::vector<Entry> entries_;
};

/// Point-in-time view over every registered source, sorted by name.
struct MetricsSnapshot {
  std::vector<MetricsSink::Entry> entries;

  [[nodiscard]] const MetricsSink::Entry* Find(std::string_view name) const;

  /// Flat JSON dump: {"metrics": {"<name>": <value>, ...}}.
  void WriteJson(std::ostream& out) const;
};

class MetricsRegistry {
 public:
  using SourceFn = std::function<void(MetricsSink&)>;

  /// RAII handle: unregisters the source on destruction. The source
  /// callback must stay valid for the registration's lifetime.
  class Registration {
   public:
    Registration() = default;
    Registration(Registration&& other) noexcept { MoveFrom(other); }
    Registration& operator=(Registration&& other) noexcept {
      if (this != &other) {
        Release();
        MoveFrom(other);
      }
      return *this;
    }
    Registration(const Registration&) = delete;
    Registration& operator=(const Registration&) = delete;
    ~Registration() { Release(); }

   private:
    friend class MetricsRegistry;
    Registration(MetricsRegistry* registry, std::uint64_t id)
        : registry_(registry), id_(id) {}
    void MoveFrom(Registration& other) {
      registry_ = other.registry_;
      id_ = other.id_;
      other.registry_ = nullptr;
    }
    void Release();

    MetricsRegistry* registry_ = nullptr;
    std::uint64_t id_ = 0;
  };

  /// Register a source whose metric names all start with `prefix`
  /// (conventionally dot-terminated, e.g. "gateway.").
  [[nodiscard]] Registration Register(std::string prefix, SourceFn source);

  /// Run every source and return the merged, name-sorted view.
  [[nodiscard]] MetricsSnapshot Snapshot() const;

  [[nodiscard]] std::size_t source_count() const;

  /// Process-wide registry for tools that want zero wiring (the demo and
  /// benches use their own local registries).
  static MetricsRegistry& Global();

 private:
  void Remove(std::uint64_t id);

  struct Source {
    std::uint64_t id = 0;
    std::string prefix;
    SourceFn fn;
  };

  mutable std::mutex mutex_;
  std::vector<Source> sources_;
  std::uint64_t next_id_ = 1;
};

}  // namespace mobivine::support
