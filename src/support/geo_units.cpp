#include "support/geo_units.h"

#include <algorithm>
#include <cmath>

namespace mobivine::support {

double DegreesToRadians(double degrees) { return degrees * kPi / 180.0; }

double RadiansToDegrees(double radians) { return radians * 180.0 / kPi; }

double HaversineMeters(double lat1_deg, double lon1_deg, double lat2_deg,
                       double lon2_deg) {
  const double lat1 = DegreesToRadians(lat1_deg);
  const double lat2 = DegreesToRadians(lat2_deg);
  const double dlat = DegreesToRadians(lat2_deg - lat1_deg);
  const double dlon = DegreesToRadians(lon2_deg - lon1_deg);
  const double a = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) *
                       std::sin(dlon / 2);
  const double c = 2 * std::atan2(std::sqrt(a), std::sqrt(1 - a));
  return kEarthRadiusMeters * c;
}

LatLon MoveAlongBearing(double lat_deg, double lon_deg, double bearing_deg,
                        double distance_m) {
  const double ang = distance_m / kEarthRadiusMeters;
  const double brg = DegreesToRadians(bearing_deg);
  const double lat1 = DegreesToRadians(lat_deg);
  const double lon1 = DegreesToRadians(lon_deg);
  const double lat2 = std::asin(std::sin(lat1) * std::cos(ang) +
                                std::cos(lat1) * std::sin(ang) * std::cos(brg));
  const double lon2 =
      lon1 + std::atan2(std::sin(brg) * std::sin(ang) * std::cos(lat1),
                        std::cos(ang) - std::sin(lat1) * std::sin(lat2));
  return NormalizeLatLon(RadiansToDegrees(lat2), RadiansToDegrees(lon2));
}

double InitialBearingDeg(double lat1_deg, double lon1_deg, double lat2_deg,
                         double lon2_deg) {
  const double lat1 = DegreesToRadians(lat1_deg);
  const double lat2 = DegreesToRadians(lat2_deg);
  const double dlon = DegreesToRadians(lon2_deg - lon1_deg);
  const double y = std::sin(dlon) * std::cos(lat2);
  const double x = std::cos(lat1) * std::sin(lat2) -
                   std::sin(lat1) * std::cos(lat2) * std::cos(dlon);
  double bearing = RadiansToDegrees(std::atan2(y, x));
  if (bearing < 0) bearing += 360.0;
  return bearing;
}

LatLon NormalizeLatLon(double lat_deg, double lon_deg) {
  LatLon out;
  out.latitude_deg = std::clamp(lat_deg, -90.0, 90.0);
  double lon = std::fmod(lon_deg + 180.0, 360.0);
  if (lon < 0) lon += 360.0;
  out.longitude_deg = lon - 180.0;
  return out;
}

}  // namespace mobivine::support
