// LEB128-style variable-length integers for the wire layer.
//
// Unsigned values are emitted base-128, low group first, high bit of each
// byte marking continuation — 1 byte up to 127, 10 bytes for the full
// 64-bit range. Signed values ride the same encoding via zigzag mapping
// so small magnitudes of either sign stay short.
//
// Decoding distinguishes "buffer ended mid-varint" (kTruncated — the
// framing layer turns this into need-more-bytes) from "encoding can never
// be valid" (kMalformed — more than 10 groups, or bits beyond the 64th):
// a streaming decoder must not treat garbage as a short read and wait
// forever for bytes that cannot help.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mobivine::support {

enum class VarintStatus : std::uint8_t { kOk, kTruncated, kMalformed };

inline constexpr std::size_t kMaxVarintBytes = 10;

inline void PutVarint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

/// Encode into a raw buffer with at least kMaxVarintBytes of room.
/// Returns the encoded length. Lets frame headers build on the stack
/// instead of paying a heap-backed vector per frame.
inline std::size_t PutVarint(std::uint8_t* out, std::uint64_t value) {
  std::size_t n = 0;
  while (value >= 0x80) {
    out[n++] = static_cast<std::uint8_t>(value) | 0x80;
    value >>= 7;
  }
  out[n++] = static_cast<std::uint8_t>(value);
  return n;
}

/// Decode one varint from [data, data+size). On kOk, *value holds the
/// result and *consumed the encoded length; both are untouched otherwise.
[[nodiscard]] inline VarintStatus GetVarint(const std::uint8_t* data,
                                            std::size_t size,
                                            std::uint64_t* value,
                                            std::size_t* consumed) {
  std::uint64_t result = 0;
  for (std::size_t i = 0; i < size && i < kMaxVarintBytes; ++i) {
    const std::uint8_t byte = data[i];
    // Group 10 carries bits 63.. — only its lowest bit fits in 64.
    if (i == kMaxVarintBytes - 1 && byte > 0x01) return VarintStatus::kMalformed;
    result |= static_cast<std::uint64_t>(byte & 0x7f) << (7 * i);
    if ((byte & 0x80) == 0) {
      *value = result;
      *consumed = i + 1;
      return VarintStatus::kOk;
    }
  }
  return size >= kMaxVarintBytes ? VarintStatus::kMalformed
                                 : VarintStatus::kTruncated;
}

/// Zigzag: signed -> unsigned with small magnitudes mapping to small codes
/// (0 -> 0, -1 -> 1, 1 -> 2, ...). Exact inverse pair for all of int64.
[[nodiscard]] inline std::uint64_t ZigzagEncode(std::int64_t value) {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}

[[nodiscard]] inline std::int64_t ZigzagDecode(std::uint64_t value) {
  return static_cast<std::int64_t>(value >> 1) ^
         -static_cast<std::int64_t>(value & 1);
}

}  // namespace mobivine::support
