// String interning for the invocation fast path.
//
// Every name that crosses the middleware per call — property names,
// method names, platform ids — is a short string that is compared and
// hashed over and over in the original design. An Interner assigns each
// distinct string a stable, dense 32-bit Symbol id: the string is hashed
// once at intern time, and from then on equality is a single integer
// compare and a symbol can index a flat array directly.
//
// Two usage patterns, both on the Figure 10 hot path:
//  * Interner::Global() — process-wide namespace for property names
//    (PropertyBag keys, MProxy validation tables).
//  * per-store instances — DescriptorStore owns one whose dense ids index
//    its descriptor array, making Find() a hash + array load.
//
// Thread-safety: a plain Interner is single-writer like the rest of the
// simulator (each Scheduler is single-threaded by design), so the
// per-store instances stay lock-free. The process-wide namespace is
// shared across gateway shards, so Interner::Global() returns a
// SharedInterner — the same API behind a std::shared_mutex. Ids are
// stable and NameOf references are never invalidated by later interns
// (deque storage), so a reference obtained under the lock stays valid
// after it is released.
#pragma once

#include <cstdint>
#include <cstring>
#include <deque>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "support/fingerprint.h"

namespace mobivine::support {

class SharedInterner;

/// A stable interned-string id. Default-constructed symbols are invalid;
/// valid ids are dense (0, 1, 2, ...) in intern order within an Interner.
class Symbol {
 public:
  static constexpr std::uint32_t kInvalidId = 0xffffffffu;

  constexpr Symbol() = default;
  constexpr explicit Symbol(std::uint32_t id) : id_(id) {}

  [[nodiscard]] constexpr std::uint32_t id() const { return id_; }
  [[nodiscard]] constexpr bool valid() const { return id_ != kInvalidId; }
  constexpr explicit operator bool() const { return valid(); }

  friend constexpr bool operator==(Symbol a, Symbol b) {
    return a.id_ == b.id_;
  }
  friend constexpr bool operator!=(Symbol a, Symbol b) {
    return a.id_ != b.id_;
  }
  friend constexpr bool operator<(Symbol a, Symbol b) { return a.id_ < b.id_; }

 private:
  std::uint32_t id_ = kInvalidId;
};

/// Fast 64-bit hash tuned for the short identifiers descriptors use.
/// Names of <= 8 chars — the common case — take one mix round over a
/// fingerprint built from two overlapping fixed-size loads (no
/// variable-length memcpy call); longer names mix 8-byte chunks with an
/// overlapping final load. Inline — it sits under every interner probe
/// on the invocation fast path.
[[nodiscard]] inline std::uint64_t HashName(std::string_view s) {
  constexpr std::uint64_t kMul = 0x9ddfea08eb382d69ull;
  const std::size_t n = s.size();
  const char* p = s.data();
  std::uint64_t h = 0x2545f4914f6cdd1dull ^ (n * kMul);
  if (n <= 8) {
    std::uint64_t packed = 0;
    if (n >= 4) {
      std::uint32_t head;
      std::uint32_t tail;
      std::memcpy(&head, p, 4);
      std::memcpy(&tail, p + n - 4, 4);
      packed = head | (static_cast<std::uint64_t>(tail) << 32);
    } else if (n > 0) {
      packed =
          static_cast<std::uint8_t>(p[0]) |
          (static_cast<std::uint64_t>(static_cast<std::uint8_t>(p[n >> 1]))
           << 8) |
          (static_cast<std::uint64_t>(static_cast<std::uint8_t>(p[n - 1]))
           << 16);
    }
    h = (h ^ packed) * kMul;
    h ^= h >> 29;
    return h * kMul;
  }
  std::size_t remaining = n;
  while (remaining >= 8) {
    std::uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    h = (h ^ chunk) * kMul;
    h ^= h >> 29;
    p += 8;
    remaining -= 8;
  }
  if (remaining > 0) {
    std::uint64_t tail;  // overlapping 8-byte load of the final bytes
    std::memcpy(&tail, s.data() + n - 8, 8);
    h = (h ^ tail) * kMul;
    h ^= h >> 29;
  }
  return h * kMul;
}

class Interner {
 public:
  Interner() : table_(kInitialSlots), mask_(kInitialSlots - 1), shift_(60) {}
  Interner(const Interner&) = delete;
  Interner& operator=(const Interner&) = delete;
  Interner(Interner&&) = default;
  Interner& operator=(Interner&&) = default;

  /// Find-or-insert. Ids are dense and assigned in first-intern order.
  /// The hit path (every call after the first for a given spelling) is
  /// inline; inserts take the out-of-line slow path.
  Symbol Intern(std::string_view text) {
    const Slot& slot = table_[ProbeFor(text)];
    if (slot.id != Symbol::kInvalidId) return Symbol(slot.id);
    return InternSlow(text);
  }

  /// Find only; invalid Symbol when the string was never interned.
  /// Inline: this is the per-call probe on the setProperty/Find path.
  [[nodiscard]] Symbol Lookup(std::string_view text) const {
    return Symbol(table_[ProbeFor(text)].id);
  }

  /// The interned spelling. References stay valid for the interner's
  /// lifetime (storage never moves). Precondition: symbol came from here.
  [[nodiscard]] const std::string& NameOf(Symbol symbol) const {
    return names_[symbol.id()];
  }

  [[nodiscard]] std::size_t size() const { return names_.size(); }

  /// Process-wide namespace (property and method names). Shared across
  /// gateway shard threads, hence the locked facade; per-store interners
  /// remain plain (lock-free) Interners.
  static SharedInterner& Global();

 private:
  // Open-addressing table, power-of-two sized, Fibonacci-hash indexed,
  // linear probing, keyed on the fingerprints of support/fingerprint.h.
  // std::unordered_map pays an integer division (modulo by a prime
  // bucket count) plus a byte-wise hash and compare on every probe; a
  // fingerprint key keeps the per-call hit path to three fixed-size
  // loads, a multiply, and one slot compare — names of <= 16 chars
  // never touch their string bytes again after interning.
  /// 32-byte alignment keeps a slot from straddling a cache line.
  struct alignas(32) Slot {
    std::uint64_t head = 0;
    std::uint64_t mid = 0;
    std::uint64_t third = 0;
    std::uint32_t id = Symbol::kInvalidId;  // kInvalidId marks empty
    std::uint32_t size = 0;
  };
  static constexpr std::size_t kInitialSlots = 16;

  /// Position whose slot either holds `text` or is empty.
  [[nodiscard]] std::size_t ProbeFor(std::string_view text) const {
    const std::uint64_t head = FingerprintHead(text);
    const std::uint64_t mid = FingerprintMid(text);
    const std::uint64_t third = FingerprintThird(text);
    const auto n = static_cast<std::uint32_t>(text.size());
    std::size_t at = static_cast<std::size_t>(
        ((head ^ (mid + third) ^ n) * 0x9E3779B97F4A7C15ull) >> shift_);
    while (true) {
      const Slot& slot = table_[at];
      if (slot.id == Symbol::kInvalidId ||
          (((slot.head ^ head) | (slot.mid ^ mid) | (slot.third ^ third)) ==
               0 &&
           slot.size == n && (n <= 24 || names_[slot.id] == text))) {
        return at;
      }
      at = (at + 1) & mask_;
    }
  }

  Symbol InternSlow(std::string_view text);
  void Grow();

  std::vector<Slot> table_;
  std::size_t mask_;
  int shift_;                      // 64 - log2(table_.size())
  std::deque<std::string> names_;  // id -> spelling; addresses stable
};

/// Thread-safe facade over an Interner: identical surface, every entry
/// point behind a std::shared_mutex. The hit path (every call after the
/// first for a given spelling) takes only the shared lock; an insert
/// retries under the exclusive lock. NameOf may return its reference
/// after unlocking because Interner's deque storage never moves a
/// spelling once interned.
class SharedInterner {
 public:
  SharedInterner() = default;
  SharedInterner(const SharedInterner&) = delete;
  SharedInterner& operator=(const SharedInterner&) = delete;

  Symbol Intern(std::string_view text) {
    {
      std::shared_lock lock(mutex_);
      const Symbol hit = inner_.Lookup(text);
      if (hit.valid()) return hit;
    }
    std::unique_lock lock(mutex_);
    return inner_.Intern(text);  // re-probes: another thread may have won
  }

  [[nodiscard]] Symbol Lookup(std::string_view text) const {
    std::shared_lock lock(mutex_);
    return inner_.Lookup(text);
  }

  [[nodiscard]] const std::string& NameOf(Symbol symbol) const {
    std::shared_lock lock(mutex_);
    return inner_.NameOf(symbol);
  }

  [[nodiscard]] std::size_t size() const {
    std::shared_lock lock(mutex_);
    return inner_.size();
  }

 private:
  Interner inner_;
  mutable std::shared_mutex mutex_;
};

}  // namespace mobivine::support
