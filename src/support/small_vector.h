// A vector with inline storage for the first N elements.
//
// The property bags and per-proxy validation tables on the invocation
// fast path hold a handful of entries; keeping them inline avoids a heap
// allocation per proxy and keeps lookups on one cache line. Spills to the
// heap transparently past N. Deliberately minimal: the subset of the
// std::vector interface the middleware uses, nothing more.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>

namespace mobivine::support {

template <typename T, std::size_t N>
class SmallVector {
 public:
  SmallVector() = default;

  SmallVector(const SmallVector& other) { AppendAll(other); }
  SmallVector(SmallVector&& other) noexcept { MoveFrom(std::move(other)); }

  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      clear();
      AppendAll(other);
    }
    return *this;
  }
  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      Deallocate();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  ~SmallVector() { Deallocate(); }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  T* data() { return data_; }
  const T* data() const { return data_; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  void reserve(std::size_t wanted) {
    if (wanted > capacity_) Grow(wanted);
  }

  void push_back(T value) { emplace_back(std::move(value)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) Grow(capacity_ * 2);
    T* slot = data_ + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  /// Insert before `pos` (end() appends). Returns the new element.
  T* insert(T* pos, T value) {
    const std::size_t index = static_cast<std::size_t>(pos - data_);
    emplace_back(std::move(value));  // may reallocate; re-derive pos
    T* target = data_ + index;
    for (T* it = data_ + size_ - 1; it != target; --it) {
      std::swap(*(it - 1), *it);
    }
    return target;
  }

  void erase(T* pos) {
    for (T* it = pos; it + 1 != end(); ++it) *it = std::move(*(it + 1));
    data_[--size_].~T();
  }

  void clear() {
    for (std::size_t i = 0; i < size_; ++i) data_[i].~T();
    size_ = 0;
  }

 private:
  [[nodiscard]] bool IsInline() const {
    return data_ == reinterpret_cast<const T*>(inline_storage_);
  }

  void Grow(std::size_t wanted) {
    const std::size_t new_capacity = wanted > N ? wanted : N;
    T* fresh = static_cast<T*>(
        ::operator new(new_capacity * sizeof(T), std::align_val_t(alignof(T))));
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(fresh + i)) T(std::move(data_[i]));
      data_[i].~T();
    }
    if (!IsInline()) {
      ::operator delete(data_, std::align_val_t(alignof(T)));
    }
    data_ = fresh;
    capacity_ = new_capacity;
  }

  void Deallocate() {
    clear();
    if (!IsInline()) {
      ::operator delete(data_, std::align_val_t(alignof(T)));
      data_ = reinterpret_cast<T*>(inline_storage_);
      capacity_ = N;
    }
  }

  void AppendAll(const SmallVector& other) {
    reserve(other.size_);
    for (std::size_t i = 0; i < other.size_; ++i) emplace_back(other.data_[i]);
  }

  /// Precondition: *this holds no elements (fresh or just deallocated).
  void MoveFrom(SmallVector&& other) {
    if (other.IsInline()) {
      reserve(other.size_);
      for (std::size_t i = 0; i < other.size_; ++i) {
        emplace_back(std::move(other.data_[i]));
      }
      other.clear();
    } else {  // steal the heap buffer
      data_ = other.data_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.data_ = reinterpret_cast<T*>(other.inline_storage_);
      other.size_ = 0;
      other.capacity_ = N;
    }
  }

  alignas(T) unsigned char inline_storage_[N * sizeof(T)];
  T* data_ = reinterpret_cast<T*>(inline_storage_);
  std::size_t size_ = 0;
  std::size_t capacity_ = N;
};

}  // namespace mobivine::support
