// Reproducible RNG seeding for every load generator in the tree.
//
// Before this header each generator derived per-thread seeds ad hoc
// (`config.seed * magic + thread`), which made streams collide across
// subsystems that happened to pick the same magic and made it impossible
// to state, in one place, how a run's randomness decomposes. A
// SeedSequence is a single 64-bit state plus a pure derivation rule:
//
//   SeedSequence(seed).Fork("traffic").Fork(producer).stream()
//   SeedSequence(seed).Fork("fleet").Fork(tenant_id).Fork(producer)
//
// Forks are value types — deriving a child never mutates the parent, so
// the same parent can be forked repeatedly in any order and every path
// through the fork tree names the same stream on every run. Labels are
// folded in with FNV-1a, indices with the SplitMix64 finalizer, so
// Fork("a").Fork(1) and Fork("a1") land in unrelated streams.
//
// SplitMix64 itself (the stream generator) lives here too so traffic,
// fault injection, and the fleet arrival model all draw from the same
// primitive. It is Steele et al.'s generator: one 64-bit add per draw
// plus a 3-xorshift finalizer, statistically solid for simulation use
// and trivially seedable from any 64-bit value (including 0).
#pragma once

#include <cstdint>
#include <string_view>

namespace mobivine::support {

/// FNV-1a over arbitrary bytes. Used for SeedSequence labels and as the
/// script-cache source hash (gateway::ScriptEngine): the cache wants a
/// cheap, stable, well-distributed 64-bit digest, not cryptographic
/// strength, and FNV-1a is one multiply + xor per byte.
[[nodiscard]] constexpr std::uint64_t Fnv1a64(std::string_view bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (char c : bytes) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

/// SplitMix64 finalizer: bijective 64-bit mix, the avalanche step of the
/// generator below. Exposed so derived seeds can be whitened without
/// constructing a generator.
[[nodiscard]] constexpr std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// The SplitMix64 stream generator.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t Next() {
    state_ += 0x9e3779b97f4a7c15ull;
    std::uint64_t x = state_;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  /// Uniform double in [0, 1): top 53 bits of one draw.
  constexpr double NextUnit() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound); bound == 0 returns 0. Multiply-shift
  /// range reduction — the modulo bias is < 2^-32 for any bound that
  /// fits simulation use, not worth a rejection loop here.
  constexpr std::uint64_t NextBelow(std::uint64_t bound) {
    if (bound == 0) return 0;
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

 private:
  std::uint64_t state_;
};

/// A deterministic tree of named random streams rooted at one user seed.
class SeedSequence {
 public:
  constexpr explicit SeedSequence(std::uint64_t root) : state_(Mix64(root)) {}

  /// Child sequence for a named subsystem ("traffic", "fleet", ...).
  [[nodiscard]] constexpr SeedSequence Fork(std::string_view label) const {
    return SeedSequence(state_ ^ Fnv1a64(label), kDerived);
  }

  /// Child sequence for an indexed sibling (producer p, tenant t, ...).
  [[nodiscard]] constexpr SeedSequence Fork(std::uint64_t index) const {
    return SeedSequence(state_ ^ Mix64(index + 0x6a09e667f3bcc909ull),
                        kDerived);
  }

  /// The derived 64-bit seed value for this node.
  [[nodiscard]] constexpr std::uint64_t state() const { return state_; }

  /// A SplitMix64 stream positioned at this node.
  [[nodiscard]] constexpr SplitMix64 stream() const {
    return SplitMix64(state_);
  }

 private:
  struct Derived {};
  static constexpr Derived kDerived{};
  constexpr SeedSequence(std::uint64_t mixed, Derived) : state_(Mix64(mixed)) {}

  std::uint64_t state_;
};

}  // namespace mobivine::support
