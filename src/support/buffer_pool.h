// Size-classed frame-buffer pool for the wire hot path.
//
// Every encoded frame used to live in a fresh std::vector — one malloc
// and one free per request on both sides of the socket. The pool keeps
// released buffers on per-size-class freelists so a steady-state
// encode/decode cycle allocates nothing: Acquire() hands back a cleared
// vector whose capacity already covers the requested size, and the
// PooledBuffer RAII handle returns it when the frame has been written.
//
// Two tiers:
//  * a global freelist per size class (mutex-guarded, bounded depth) —
//    the cross-thread hand-off tier, since frames are typically encoded
//    on one thread (a gateway shard worker) and released on another (the
//    event loop that finished the writev);
//  * an optional per-thread cache (bounded, lock-free by construction) in
//    front of it, enabled per pool — the process-wide WirePool() enables
//    it, so the common same-thread reuse pattern never touches a lock.
//
// A pool with the thread cache enabled must outlive every thread that
// used it: exiting threads flush their cached buffers back to the global
// freelists. WirePool() is intentionally immortal (never destroyed) so
// this holds trivially; short-lived pools in tests leave the cache off.
//
// Stats are relaxed atomics, snapshotable while serving. `misses` counts
// fresh heap allocations — the numerator of the wire bench's
// frame-buffer-allocations-per-request metric, which must be zero at
// steady state.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace mobivine::support {

class BufferPool;

/// Move-only RAII handle over a pooled byte buffer. bytes() exposes the
/// underlying vector so existing append-style codecs work unchanged; the
/// buffer returns to its pool on destruction (or is simply freed when
/// the handle was created without a pool).
class PooledBuffer {
 public:
  PooledBuffer() = default;
  PooledBuffer(PooledBuffer&& other) noexcept
      : pool_(std::exchange(other.pool_, nullptr)),
        buf_(std::move(other.buf_)) {}
  PooledBuffer& operator=(PooledBuffer&& other) noexcept {
    if (this != &other) {
      Release();
      pool_ = std::exchange(other.pool_, nullptr);
      buf_ = std::move(other.buf_);
    }
    return *this;
  }
  PooledBuffer(const PooledBuffer&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;
  ~PooledBuffer() { Release(); }

  [[nodiscard]] std::vector<std::uint8_t>& bytes() { return buf_; }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }

  /// Return the buffer to the pool now (idempotent). The handle is left
  /// empty and unpooled.
  void Release();

 private:
  friend class BufferPool;
  PooledBuffer(BufferPool* pool, std::vector<std::uint8_t>&& buf)
      : pool_(pool), buf_(std::move(buf)) {}

  BufferPool* pool_ = nullptr;
  std::vector<std::uint8_t> buf_;
};

struct BufferPoolStats {
  std::uint64_t hits = 0;     ///< Acquire served from a freelist / cache
  std::uint64_t misses = 0;   ///< Acquire had to heap-allocate
  std::uint64_t returns = 0;  ///< buffers accepted back into the pool
  std::uint64_t trims = 0;    ///< buffers dropped (freelist full / oversize)
};

class BufferPool {
 public:
  /// Size classes: smallest class covering the request is acquired.
  /// Requests above the largest class are served unpooled (miss + trim).
  static constexpr std::size_t kClassSizes[] = {512, 4u << 10, 64u << 10,
                                                256u << 10, 1u << 20};
  static constexpr std::size_t kClassCount =
      sizeof(kClassSizes) / sizeof(kClassSizes[0]);
  /// Global depth must cover peak in-flight frames, not just steady
  /// state: a pipelined wire client keeps (threads x window) responses
  /// alive at once, and every pooled buffer beyond the cap is trimmed —
  /// an undersized shelf turns each burst into a miss/trim churn cycle.
  static constexpr std::size_t kMaxGlobalPerClass = 256;
  static constexpr std::size_t kMaxThreadCachePerClass = 16;

  /// `enable_thread_cache` adds the per-thread tier; see the header
  /// comment for the lifetime requirement it imposes.
  explicit BufferPool(bool enable_thread_cache = false)
      : thread_cache_enabled_(enable_thread_cache) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// A cleared buffer whose capacity covers at least `size_hint` bytes.
  [[nodiscard]] PooledBuffer Acquire(std::size_t size_hint);

  [[nodiscard]] BufferPoolStats Stats() const {
    BufferPoolStats stats;
    stats.hits = hits_.load(std::memory_order_relaxed);
    stats.misses = misses_.load(std::memory_order_relaxed);
    stats.returns = returns_.load(std::memory_order_relaxed);
    stats.trims = trims_.load(std::memory_order_relaxed);
    return stats;
  }

  /// Buffers currently parked on the global freelists (not thread caches).
  [[nodiscard]] std::size_t PooledCount() const;

  /// The process-wide pool the wire layer uses (thread cache enabled,
  /// never destroyed — safe from any thread at any point of shutdown).
  static BufferPool& WirePool();

  /// Hand a buffer (back) to the pool. Normally invoked via PooledBuffer;
  /// public so exiting threads can flush their caches to the global tier.
  void Return(std::vector<std::uint8_t>&& buf);

 private:
  friend class PooledBuffer;

  /// Index of the smallest class covering n, or kClassCount when n is
  /// over the largest class (unpooled).
  [[nodiscard]] static std::size_t ClassForAcquire(std::size_t n) {
    for (std::size_t c = 0; c < kClassCount; ++c) {
      if (n <= kClassSizes[c]) return c;
    }
    return kClassCount;
  }

  /// Index of the largest class a returning buffer of this capacity can
  /// serve, or kClassCount when it is under the smallest class.
  [[nodiscard]] static std::size_t ClassForReturn(std::size_t capacity) {
    std::size_t best = kClassCount;
    for (std::size_t c = 0; c < kClassCount; ++c) {
      if (capacity >= kClassSizes[c]) best = c;
    }
    return best;
  }

  void ReturnToGlobal(std::size_t cls, std::vector<std::uint8_t>&& buf);

  struct Shelf {
    mutable std::mutex mutex;
    std::vector<std::vector<std::uint8_t>> buffers;
  };

  const bool thread_cache_enabled_;
  Shelf shelves_[kClassCount];
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> returns_{0};
  std::atomic<std::uint64_t> trims_{0};
};

inline void PooledBuffer::Release() {
  if (pool_ != nullptr) {
    pool_->Return(std::move(buf_));
    pool_ = nullptr;
  }
  buf_ = std::vector<std::uint8_t>();
}

}  // namespace mobivine::support
