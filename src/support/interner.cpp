#include "support/interner.h"

namespace mobivine::support {

Symbol Interner::InternSlow(std::string_view text) {
  if ((names_.size() + 1) * 4 > table_.size() * 3) Grow();
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(text);
  Slot& slot = table_[ProbeFor(text)];
  slot.head = FingerprintHead(text);
  slot.mid = FingerprintMid(text);
  slot.third = FingerprintThird(text);
  slot.id = id;
  slot.size = static_cast<std::uint32_t>(text.size());
  return Symbol(id);
}

void Interner::Grow() {
  table_.assign(table_.size() * 2, Slot{});
  mask_ = table_.size() - 1;
  --shift_;
  for (std::uint32_t id = 0; id < names_.size(); ++id) {
    const std::string& name = names_[id];
    Slot& slot = table_[ProbeFor(name)];
    slot.head = FingerprintHead(name);
    slot.mid = FingerprintMid(name);
    slot.third = FingerprintThird(name);
    slot.id = id;
    slot.size = static_cast<std::uint32_t>(name.size());
  }
}

SharedInterner& Interner::Global() {
  static SharedInterner interner;
  return interner;
}

}  // namespace mobivine::support
