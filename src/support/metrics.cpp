#include "support/metrics.h"

#include <algorithm>
#include <cmath>
#include <ostream>

namespace mobivine::support {

void MetricsSink::Counter(std::string_view name, std::uint64_t value) {
  Entry entry;
  entry.name.reserve(prefix_.size() + name.size());
  entry.name.append(prefix_).append(name);
  entry.is_counter = true;
  entry.count = value;
  entries_.push_back(std::move(entry));
}

void MetricsSink::Gauge(std::string_view name, double value) {
  Entry entry;
  entry.name.reserve(prefix_.size() + name.size());
  entry.name.append(prefix_).append(name);
  entry.is_counter = false;
  entry.gauge = value;
  entries_.push_back(std::move(entry));
}

const MetricsSink::Entry* MetricsSnapshot::Find(std::string_view name) const {
  for (const auto& entry : entries) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

void MetricsSnapshot::WriteJson(std::ostream& out) const {
  out << "{\"metrics\":{";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& entry = entries[i];
    if (i > 0) out << ',';
    out << '"' << entry.name << "\":";
    if (entry.is_counter) {
      out << entry.count;
    } else if (std::isfinite(entry.gauge)) {
      out << entry.gauge;
    } else {
      out << "null";
    }
  }
  out << "}}";
}

MetricsRegistry::Registration MetricsRegistry::Register(std::string prefix,
                                                        SourceFn source) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t id = next_id_++;
  sources_.push_back(Source{id, std::move(prefix), std::move(source)});
  return Registration(this, id);
}

void MetricsRegistry::Registration::Release() {
  if (registry_ != nullptr) {
    registry_->Remove(id_);
    registry_ = nullptr;
  }
}

void MetricsRegistry::Remove(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  sources_.erase(std::remove_if(sources_.begin(), sources_.end(),
                                [id](const Source& s) { return s.id == id; }),
                 sources_.end());
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& source : sources_) {
      MetricsSink sink(source.prefix);
      source.fn(sink);
      for (auto& entry : sink.entries()) {
        snapshot.entries.push_back(std::move(entry));
      }
    }
  }
  std::sort(snapshot.entries.begin(), snapshot.entries.end(),
            [](const MetricsSink::Entry& a, const MetricsSink::Entry& b) {
              return a.name < b.name;
            });
  return snapshot;
}

std::size_t MetricsRegistry::source_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sources_.size();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

}  // namespace mobivine::support
