#include "support/strings.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdlib>
#include <sstream>

namespace mobivine::support {

namespace {
bool IsSpace(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}
}  // namespace

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && IsSpace(s[b])) ++b;
  size_t e = s.size();
  while (e > b && IsSpace(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && IsSpace(s[i])) ++i;
    size_t start = i;
    while (i < s.size() && !IsSpace(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  out.reserve(s.size());
  size_t start = 0;
  while (true) {
    size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      return out;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

bool ParseInt(std::string_view s, long long& out) {
  s = Trim(s);
  if (s.empty()) return false;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool ParseDouble(std::string_view s, double& out) {
  s = Trim(s);
  if (s.empty()) return false;
  // std::from_chars for double is not available everywhere; use strtod on a
  // NUL-terminated copy.
  std::string buf(s);
  char* end = nullptr;
  out = std::strtod(buf.c_str(), &end);
  return end == buf.c_str() + buf.size();
}

bool ParseBool(std::string_view s, bool& out) {
  std::string lower = ToLower(Trim(s));
  if (lower == "true" || lower == "1") {
    out = true;
    return true;
  }
  if (lower == "false" || lower == "0") {
    out = false;
    return true;
  }
  return false;
}

int CountNonBlankLines(std::string_view text) {
  int count = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    std::string_view line = (end == std::string_view::npos)
                                ? text.substr(start)
                                : text.substr(start, end - start);
    if (!Trim(line).empty()) ++count;
    if (end == std::string_view::npos) break;
    start = end + 1;
  }
  return count;
}

std::string Indent(std::string_view text, int spaces) {
  std::string pad(static_cast<size_t>(spaces > 0 ? spaces : 0), ' ');
  std::string out;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    std::string_view line = (end == std::string_view::npos)
                                ? text.substr(start)
                                : text.substr(start, end - start);
    if (!line.empty()) out += pad;
    out.append(line);
    if (end == std::string_view::npos) break;
    out += '\n';
    start = end + 1;
  }
  return out;
}

}  // namespace mobivine::support
