#include "support/buffer_pool.h"

namespace mobivine::support {

namespace {

/// Per-thread front tier. Bound to the first thread-cache-enabled pool
/// this thread touches; a second such pool on the same thread bypasses
/// the cache (pointer mismatch) and uses its global freelists directly.
/// On thread exit the cached buffers flush back to the pool's global
/// tier — which is why a thread-cache-enabled pool must outlive its
/// threads (WirePool() never dies, so the wire layer is always safe).
struct ThreadCache {
  BufferPool* pool = nullptr;
  bool draining = false;
  std::size_t counts[BufferPool::kClassCount] = {};
  std::vector<std::uint8_t> slots[BufferPool::kClassCount]
                                 [BufferPool::kMaxThreadCachePerClass];

  ~ThreadCache() {
    draining = true;  // Return() must not stash back into this cache
    if (pool == nullptr) return;
    for (std::size_t c = 0; c < BufferPool::kClassCount; ++c) {
      for (std::size_t i = 0; i < counts[c]; ++i) {
        pool->Return(std::move(slots[c][i]));
      }
      counts[c] = 0;
    }
  }
};

thread_local ThreadCache tls_cache;

}  // namespace

PooledBuffer BufferPool::Acquire(std::size_t size_hint) {
  const std::size_t cls = ClassForAcquire(size_hint);
  if (cls == kClassCount) {
    // Over the largest class: serve unpooled (still counted — jumbo
    // frames on the hot path would defeat the zero-alloc goal).
    misses_.fetch_add(1, std::memory_order_relaxed);
    std::vector<std::uint8_t> buf;
    buf.reserve(size_hint);
    return PooledBuffer(this, std::move(buf));
  }
  if (thread_cache_enabled_) {
    ThreadCache& tls = tls_cache;
    if (tls.pool == nullptr && !tls.draining) tls.pool = this;
    if (tls.pool == this && tls.counts[cls] > 0) {
      std::vector<std::uint8_t> buf =
          std::move(tls.slots[cls][--tls.counts[cls]]);
      buf.clear();
      hits_.fetch_add(1, std::memory_order_relaxed);
      return PooledBuffer(this, std::move(buf));
    }
  }
  {
    Shelf& shelf = shelves_[cls];
    std::lock_guard<std::mutex> lock(shelf.mutex);
    if (!shelf.buffers.empty()) {
      std::vector<std::uint8_t> buf = std::move(shelf.buffers.back());
      shelf.buffers.pop_back();
      buf.clear();
      hits_.fetch_add(1, std::memory_order_relaxed);
      return PooledBuffer(this, std::move(buf));
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  std::vector<std::uint8_t> buf;
  buf.reserve(kClassSizes[cls]);
  return PooledBuffer(this, std::move(buf));
}

void BufferPool::Return(std::vector<std::uint8_t>&& buf) {
  const std::size_t cls = ClassForReturn(buf.capacity());
  if (cls == kClassCount ||
      buf.capacity() > 2 * kClassSizes[kClassCount - 1]) {
    // Under the smallest class (never came from here) or a jumbo frame
    // not worth parking: let it free.
    trims_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (thread_cache_enabled_) {
    ThreadCache& tls = tls_cache;
    if (tls.pool == nullptr && !tls.draining) tls.pool = this;
    if (tls.pool == this && !tls.draining &&
        tls.counts[cls] < kMaxThreadCachePerClass) {
      tls.slots[cls][tls.counts[cls]++] = std::move(buf);
      returns_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  ReturnToGlobal(cls, std::move(buf));
}

void BufferPool::ReturnToGlobal(std::size_t cls,
                                std::vector<std::uint8_t>&& buf) {
  {
    Shelf& shelf = shelves_[cls];
    std::lock_guard<std::mutex> lock(shelf.mutex);
    if (shelf.buffers.size() < kMaxGlobalPerClass) {
      shelf.buffers.push_back(std::move(buf));
      returns_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  trims_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t BufferPool::PooledCount() const {
  std::size_t total = 0;
  for (const Shelf& shelf : shelves_) {
    std::lock_guard<std::mutex> lock(shelf.mutex);
    total += shelf.buffers.size();
  }
  return total;
}

BufferPool& BufferPool::WirePool() {
  // Deliberately leaked: in-flight completions and exiting threads may
  // release buffers arbitrarily late in shutdown.
  static BufferPool* pool = new BufferPool(/*enable_thread_cache=*/true);
  return *pool;
}

}  // namespace mobivine::support
