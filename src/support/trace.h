// M-Scope span recorder: always-compiled, cheap-when-disabled tracing.
//
// The paper's Figure 10 is an overhead-attribution study — where did the
// milliseconds go, layer by layer. M-Scope makes that attribution a
// runtime facility instead of a bench-only artifact: every layer of an
// invocation (gateway admission, queue wait, retry attempts, binding
// dispatch, property handling, exception mapping) records nestable spans
// into per-thread bounded buffers, and an exporter renders them as Chrome
// `trace_event` JSON (load into chrome://tracing or Perfetto).
//
// Cost model:
//  * Disabled (the default): every hook is one relaxed atomic load and a
//    predictable branch — no clock reads, no stores, no allocation. The
//    hooks are compiled in unconditionally; there is no build flavor.
//  * Enabled: recording a span is two steady_clock reads plus plain
//    stores into a thread-local slot, then a release store publishing it.
//    No locks anywhere on the publish path.
//
// Buffering: each thread owns a bounded event buffer (default 64Ki
// events). Slots below the published head are immutable, so an exporter
// can read them without synchronizing with the writer beyond one acquire
// load. When a buffer fills, new events are counted as dropped rather
// than overwriting old ones — published slots stay readable, and the
// drop count is surfaced by the exporter. Buffers outlive their threads
// (a joined shard worker's spans still export).
//
// Timestamps come in pairs: wall time from std::chrono::steady_clock and,
// when the thread has registered a virtual clock source (gateway shard
// workers point this at their sim::Scheduler), the virtual-time pair is
// attached as event args — so a span shows both the milliseconds it took
// and the virtual cost the simulation charged underneath it.
//
// Span names and tag keys must be string literals (or otherwise outlive
// the recorder): events store the pointers, not copies.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace mobivine::support::trace {

namespace detail {

inline std::atomic<bool> g_enabled{false};

struct EventRecord {
  const char* name = nullptr;
  std::uint64_t mono_start_ns = 0;
  std::uint64_t mono_dur_ns = 0;  ///< 0 for instant events
  std::uint64_t virt_start_us = 0;
  std::uint64_t virt_dur_us = 0;
  const char* arg_name[2] = {nullptr, nullptr};
  std::int64_t arg_value[2] = {0, 0};
  std::uint8_t arg_count = 0;
  bool instant = false;
  bool has_virtual = false;
};

/// Reserve the calling thread's next slot; nullptr when the buffer is
/// full (the event is counted as dropped). On success the caller fills
/// the record and must call Publish() before the next Reserve().
EventRecord* Reserve();
void Publish();

[[nodiscard]] std::uint64_t MonotonicNowNs();
[[nodiscard]] std::uint64_t VirtualNowMicros();  ///< 0 when no thread source

void EmitInstant(const char* name, const char* k1, std::int64_t v1,
                 const char* k2, std::int64_t v2);

}  // namespace detail

/// One relaxed load; the hook cost when tracing is off.
[[nodiscard]] inline bool IsEnabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

void SetEnabled(bool on);

/// Capacity (events) for buffers created after this call; existing
/// buffers keep theirs. Call before the traced threads first record.
void SetPerThreadCapacity(std::size_t events);

/// Detach every recorded buffer so the next export starts empty. Threads
/// still inside a span keep writing to their detached buffer (those
/// events are discarded); call only while traced threads are quiescent.
void Reset();

/// Label the calling thread in exported traces (e.g. "shard-0").
void SetCurrentThreadName(std::string name);

/// Per-thread virtual clock source, sampled at span boundaries. Gateway
/// shard workers point this at their scheduler; pass {nullptr, nullptr}
/// to clear. The function must be callable until cleared.
using VirtualClockFn = std::uint64_t (*)(void*);
void SetThreadVirtualClock(VirtualClockFn fn, void* ctx);

/// RAII span: begins at construction, publishes one complete event at
/// destruction. Nesting is positional — spans on the same thread nest by
/// time, exactly how Chrome's viewer renders them. Up to two integer
/// tags may be attached any time before destruction.
class Span {
 public:
  explicit Span(const char* name) {
    if (IsEnabled()) Begin(name);
  }
  ~Span() {
    if (name_ != nullptr) End();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void Tag(const char* key, std::int64_t value) {
    if (name_ != nullptr && arg_count_ < 2) {
      arg_names_[arg_count_] = key;
      args_[arg_count_] = value;
      ++arg_count_;
    }
  }

 private:
  void Begin(const char* name);
  void End();

  const char* name_ = nullptr;  ///< nullptr: disabled at construction
  std::uint64_t mono_start_ns_ = 0;
  std::uint64_t virt_start_us_ = 0;
  const char* arg_names_[2] = {nullptr, nullptr};
  std::int64_t args_[2] = {0, 0};
  std::uint8_t arg_count_ = 0;
  bool has_virtual_ = false;
};

/// Zero-duration marker (Chrome "instant" event), with optional tags.
inline void Instant(const char* name, const char* k1 = nullptr,
                    std::int64_t v1 = 0, const char* k2 = nullptr,
                    std::int64_t v2 = 0) {
  if (IsEnabled()) detail::EmitInstant(name, k1, v1, k2, v2);
}

/// A complete event with caller-supplied wall-clock bounds, for intervals
/// that start on one thread and end on another (queue wait: submit time
/// is stamped by the producer, the event is recorded by the consumer).
void CompleteEvent(const char* name,
                   std::chrono::steady_clock::time_point start,
                   std::chrono::steady_clock::time_point end,
                   const char* k1 = nullptr, std::int64_t v1 = 0,
                   const char* k2 = nullptr, std::int64_t v2 = 0);

struct ExportStats {
  std::size_t events = 0;
  std::size_t dropped = 0;
  std::size_t threads = 0;
};

/// Render everything recorded since the last Reset() as Chrome
/// `trace_event` JSON (object form: {"traceEvents": [...]}). Timestamps
/// are rebased so the earliest event starts at 0. Safe to call while
/// threads are still recording — only published events are read.
ExportStats ExportChromeTrace(std::ostream& out);

}  // namespace mobivine::support::trace
