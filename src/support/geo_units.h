// Geodesy helpers shared by the device simulator and the platform substrates.
//
// All angles are WGS-84 degrees unless a name says otherwise; distances are
// meters. The proximity-alert semantics in every platform substrate are
// defined in terms of HaversineMeters.
#pragma once

namespace mobivine::support {

inline constexpr double kEarthRadiusMeters = 6371008.8;
inline constexpr double kPi = 3.14159265358979323846;

[[nodiscard]] double DegreesToRadians(double degrees);
[[nodiscard]] double RadiansToDegrees(double radians);

/// Great-circle distance between two (latitude, longitude) pairs in degrees.
[[nodiscard]] double HaversineMeters(double lat1_deg, double lon1_deg,
                                     double lat2_deg, double lon2_deg);

/// Destination point after moving `distance_m` from (lat, lon) along the
/// given compass bearing (degrees clockwise from north). Used by the GPS
/// track interpolator.
struct LatLon {
  double latitude_deg = 0.0;
  double longitude_deg = 0.0;
};
[[nodiscard]] LatLon MoveAlongBearing(double lat_deg, double lon_deg,
                                      double bearing_deg, double distance_m);

/// Initial bearing (degrees in [0, 360)) from point 1 toward point 2.
[[nodiscard]] double InitialBearingDeg(double lat1_deg, double lon1_deg,
                                       double lat2_deg, double lon2_deg);

/// Clamp latitude to [-90, 90] and wrap longitude to [-180, 180).
[[nodiscard]] LatLon NormalizeLatLon(double lat_deg, double lon_deg);

}  // namespace mobivine::support
