#include "support/logging.h"

#include <cstdio>

namespace mobivine::support {

namespace {
const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kOff:
      return "OFF";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kDebug:
      return "DEBUG";
  }
  return "?";
}
}  // namespace

Logger& Logger::Instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() {
  sink_ = [](LogLevel level, const std::string& message) {
    std::fprintf(stderr, "[mobivine %s] %s\n", LevelName(level),
                 message.c_str());
  };
}

void Logger::set_sink(Sink sink) {
  if (sink) sink_ = std::move(sink);
}

void Logger::Log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level_) >= static_cast<int>(level) &&
      level != LogLevel::kOff) {
    sink_(level, message);
  }
}

}  // namespace mobivine::support
