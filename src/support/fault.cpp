#include "support/fault.h"

#include <charconv>
#include <cstddef>

namespace mobivine::support {
namespace {

// splitmix64 — the same generator the shard worlds use for seeding;
// one step per sample keeps streams cheap and well-distributed.
std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

bool WildcardMatch(const std::string& pattern, std::string_view value) {
  return pattern.empty() || pattern == "*" || pattern == value;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

bool ParseU64(std::string_view text, std::uint64_t* out) {
  if (text.empty()) return false;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

bool ParseProbability(std::string_view text, double* out) {
  // std::from_chars<double> is not universally available; probabilities
  // only need "0", "1", or "0.xxx" precision, so parse by hand.
  if (text.empty()) return false;
  std::size_t dot = text.find('.');
  std::uint64_t whole = 0;
  if (!ParseU64(text.substr(0, dot == std::string_view::npos ? text.size()
                                                             : dot),
                &whole)) {
    return false;
  }
  double value = static_cast<double>(whole);
  if (dot != std::string_view::npos) {
    std::string_view frac = text.substr(dot + 1);
    if (frac.empty()) return false;
    std::uint64_t digits = 0;
    if (!ParseU64(frac, &digits)) return false;
    double scale = 1.0;
    for (std::size_t i = 0; i < frac.size(); ++i) scale *= 10.0;
    value += static_cast<double>(digits) / scale;
  }
  if (value < 0.0 || value > 1.0) return false;
  *out = value;
  return true;
}

void SetError(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

std::vector<std::string_view> Split(std::string_view text, char sep) {
  std::vector<std::string_view> parts;
  while (true) {
    std::size_t pos = text.find(sep);
    if (pos == std::string_view::npos) {
      parts.push_back(text);
      return parts;
    }
    parts.push_back(text.substr(0, pos));
    text.remove_prefix(pos + 1);
  }
}

}  // namespace

const char* ToString(FaultAction action) {
  switch (action) {
    case FaultAction::kNone:
      return "none";
    case FaultAction::kError:
      return "error";
    case FaultAction::kLatency:
      return "latency";
    case FaultAction::kHang:
      return "hang";
  }
  return "none";
}

bool FaultRule::Matches(std::string_view platform_tag,
                        std::string_view op_name) const {
  return WildcardMatch(platform, platform_tag) && WildcardMatch(op, op_name);
}

std::optional<FaultPlan> FaultPlan::Parse(std::string_view text,
                                          std::string* error) {
  FaultPlan plan;
  for (std::string_view segment : Split(text, ';')) {
    segment = Trim(segment);
    if (segment.empty()) continue;
    if (segment.substr(0, 5) == "seed=") {
      if (!ParseU64(segment.substr(5), &plan.seed)) {
        SetError(error, "bad seed: " + std::string(segment));
        return std::nullopt;
      }
      continue;
    }
    std::vector<std::string_view> fields = Split(segment, ':');
    if (fields.size() < 3) {
      SetError(error,
               "rule needs platform:op:effect — got: " + std::string(segment));
      return std::nullopt;
    }
    FaultRule rule;
    rule.platform = std::string(Trim(fields[0]));
    rule.op = std::string(Trim(fields[1]));
    std::string_view effect = Trim(fields[2]);
    if (effect.substr(0, 6) == "error=") {
      rule.action = FaultAction::kError;
      rule.error = std::string(effect.substr(6));
      if (rule.error.empty()) {
        SetError(error, "error= needs a code name: " + std::string(segment));
        return std::nullopt;
      }
    } else if (effect.substr(0, 8) == "latency=") {
      rule.action = FaultAction::kLatency;
      if (!ParseU64(effect.substr(8), &rule.latency_us) ||
          rule.latency_us == 0) {
        SetError(error,
                 "latency= needs positive micros: " + std::string(segment));
        return std::nullopt;
      }
    } else if (effect == "hang") {
      rule.action = FaultAction::kHang;
    } else {
      SetError(error, "unknown effect (want error=/latency=/hang): " +
                          std::string(segment));
      return std::nullopt;
    }
    for (std::size_t i = 3; i < fields.size(); ++i) {
      std::string_view option = Trim(fields[i]);
      if (option.substr(0, 2) == "p=") {
        if (!ParseProbability(option.substr(2), &rule.probability)) {
          SetError(error, "bad p= (want [0,1]): " + std::string(segment));
          return std::nullopt;
        }
      } else if (option.substr(0, 4) == "max=") {
        if (!ParseU64(option.substr(4), &rule.max_fires)) {
          SetError(error, "bad max=: " + std::string(segment));
          return std::nullopt;
        }
      } else if (option == "wall") {
        if (rule.action != FaultAction::kLatency) {
          SetError(error, "wall only applies to latency=: " +
                              std::string(segment));
          return std::nullopt;
        }
        rule.wall = true;
      } else {
        SetError(error, "unknown option (want p=/max=/wall): " +
                            std::string(segment));
        return std::nullopt;
      }
    }
    plan.rules.push_back(std::move(rule));
  }
  if (plan.rules.empty()) {
    SetError(error, "plan has no rules");
    return std::nullopt;
  }
  return plan;
}

std::string FaultPlan::ToString() const {
  std::string out = "seed=" + std::to_string(seed);
  for (const FaultRule& rule : rules) {
    out += ';';
    out += rule.platform.empty() ? "*" : rule.platform;
    out += ':';
    out += rule.op.empty() ? "*" : rule.op;
    out += ':';
    switch (rule.action) {
      case FaultAction::kError:
        out += "error=" + rule.error;
        break;
      case FaultAction::kLatency:
        out += "latency=" + std::to_string(rule.latency_us);
        break;
      case FaultAction::kHang:
      case FaultAction::kNone:
        out += "hang";
        break;
    }
    if (rule.wall) out += ":wall";
    if (rule.probability < 1.0) {
      // Emit with fixed 1e-6 precision so the form round-trips through
      // ParseProbability without locale surprises.
      auto micros = static_cast<std::uint64_t>(rule.probability * 1e6 + 0.5);
      std::string frac = std::to_string(micros);
      frac.insert(frac.begin(), 6 - frac.size() < 0 ? 0 : 6 - frac.size(),
                  '0');
      while (frac.size() > 1 && frac.back() == '0') frac.pop_back();
      out += ":p=0." + frac;
    }
    if (rule.max_fires > 0) out += ":max=" + std::to_string(rule.max_fires);
  }
  return out;
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t salt)
    : plan_(std::move(plan)), rule_fires_(plan_.rules.size(), 0) {
  // Mix the plan seed with the salt so shards sharing a plan draw
  // decorrelated fault streams, still deterministically.
  rng_state_ = plan_.seed ^ (salt * 0x9e3779b97f4a7c15ull + 1);
  (void)SplitMix64(rng_state_);  // discard the first, weakly mixed draw
}

double FaultInjector::NextUniform() {
  return static_cast<double>(SplitMix64(rng_state_) >> 11) * 0x1.0p-53;
}

FaultDecision FaultInjector::Decide(std::string_view platform_tag,
                                    std::string_view op_name) {
  for (std::size_t i = 0; i < plan_.rules.size(); ++i) {
    const FaultRule& rule = plan_.rules[i];
    if (!rule.Matches(platform_tag, op_name)) continue;
    if (rule.max_fires > 0 && rule_fires_[i] >= rule.max_fires) continue;
    // Sample even at p=1.0 so adding/removing `p=` never shifts the
    // stream consumed by later rules.
    double draw = NextUniform();
    if (draw >= rule.probability) continue;
    ++rule_fires_[i];
    ++total_fired_;
    ++fired_by_action_[static_cast<std::size_t>(rule.action)];
    FaultDecision decision;
    decision.action = rule.action;
    decision.error = rule.error;
    decision.latency_us = rule.latency_us;
    decision.wall = rule.wall;
    return decision;
  }
  return FaultDecision{};
}

}  // namespace mobivine::support
