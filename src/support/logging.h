// Minimal leveled logger.
//
// The library never logs by default (Level::kOff); tests and examples turn
// logging on when diagnosing. Output goes to a configurable sink so tests
// can capture it.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace mobivine::support {

enum class LogLevel { kOff = 0, kError, kWarn, kInfo, kDebug };

/// Process-wide logger configuration.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static Logger& Instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  /// Replace the output sink (default writes to stderr).
  void set_sink(Sink sink);

  void Log(LogLevel level, const std::string& message);

 private:
  Logger();
  LogLevel level_ = LogLevel::kOff;
  Sink sink_;
};

namespace internal {
/// Stream-style log statement builder; emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::Instance().Log(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace mobivine::support

#define MOBIVINE_LOG(mobivine_level_)                                        \
  if (static_cast<int>(::mobivine::support::Logger::Instance().level()) >=  \
      static_cast<int>(mobivine_level_))                                    \
  ::mobivine::support::internal::LogLine(mobivine_level_)

#define MOBIVINE_LOG_ERROR MOBIVINE_LOG(::mobivine::support::LogLevel::kError)
#define MOBIVINE_LOG_WARN MOBIVINE_LOG(::mobivine::support::LogLevel::kWarn)
#define MOBIVINE_LOG_INFO MOBIVINE_LOG(::mobivine::support::LogLevel::kInfo)
#define MOBIVINE_LOG_DEBUG MOBIVINE_LOG(::mobivine::support::LogLevel::kDebug)
