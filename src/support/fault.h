// M-Failover's fault-injection plane: deterministic, seedable chaos.
//
// A FaultPlan is a list of per-platform/per-op rules, each describing one
// way a backend can misbehave: fail with a typed error, run slow (added
// virtual latency), or hang until its caller's patience budget runs out.
// A FaultInjector instantiates a plan with a splitmix64 stream, so two
// runs with the same plan, seed and request sequence inject exactly the
// same faults — chaos experiments are reproducible by construction.
//
// Layering: this lives in support/ so the core dispatch path can consult
// a gate without depending on the gateway. The plane is therefore
// domain-agnostic — error codes are carried as *names* (the consumer maps
// them onto its own enum; the gateway uses core::ErrorCodeFromName) and
// latencies as plain virtual microseconds (the consumer charges them on
// whatever clock it owns).
//
// Thread model: one FaultInjector per shard, consulted only from that
// shard's worker thread — same single-writer discipline as the rest of
// the simulated world. The FaultGate interface is what the core layer
// sees; the gateway's FailoverEngine implements it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mobivine::support {

enum class FaultAction : std::uint8_t {
  kNone = 0,  ///< no fault fired for this dispatch
  kError,     ///< throw the named error immediately
  kLatency,   ///< add virtual latency, then proceed normally
  kHang,      ///< consume the caller's hang budget, then time out
};

[[nodiscard]] const char* ToString(FaultAction action);

/// One way one backend misbehaves. Empty / "*" platform or op matches
/// everything; rules are evaluated in plan order and every matching rule
/// samples independently — the first one that fires wins.
struct FaultRule {
  std::string platform;  ///< binding platform tag ("android", ...); "*" = any
  std::string op;        ///< binding method ("getLocation", ...); "*" = any
  FaultAction action = FaultAction::kError;
  std::string error = "timeout";  ///< error-code name (consumer domain)
  std::uint64_t latency_us = 0;   ///< added latency (kLatency only)
  /// kLatency only: charge the delay on the WALL clock (the dispatching
  /// thread really blocks) instead of the consumer's virtual clock.
  /// Virtual charging is invisible outside the process — a wire or
  /// cluster peer on the far side of a TCP connection only feels a slow
  /// backend when the worker actually stalls — so cross-process chaos
  /// and capacity modelling need wall=true.
  bool wall = false;
  double probability = 1.0;      ///< per-dispatch fire probability
  std::uint64_t max_fires = 0;   ///< stop firing after this many; 0 = never

  [[nodiscard]] bool Matches(std::string_view platform_tag,
                             std::string_view op_name) const;
};

/// A named, seedable set of fault rules.
///
/// Text form (the bench `--fault-plan` flag and the demo accept it):
///
///   plan  := segment (';' segment)*
///   segment := "seed=" N | rule
///   rule  := platform ':' op ':' effect (':' option)*
///   effect := "error=" code-name | "latency=" micros | "hang"
///   option := "p=" probability | "max=" fires | "wall"
///
/// Examples:
///   "android:*:error=timeout:p=0.3"
///   "s60:getLocation:latency=5000"
///   "*:*:latency=1000:wall"
///   "seed=7;*:*:hang:p=0.1:max=100"
struct FaultPlan {
  std::vector<FaultRule> rules;
  std::uint64_t seed = 1;

  [[nodiscard]] bool empty() const { return rules.empty(); }

  /// Parse the text form; nullopt on malformed input, with a diagnostic
  /// in *error when provided.
  [[nodiscard]] static std::optional<FaultPlan> Parse(
      std::string_view text, std::string* error = nullptr);

  /// Round-trippable text form (Parse(ToString(p)) equals p).
  [[nodiscard]] std::string ToString() const;
};

/// The decision a gate hands back for one dispatch.
struct FaultDecision {
  FaultAction action = FaultAction::kNone;
  std::string_view error;      ///< error-code name (kError; view into the plan)
  std::uint64_t latency_us = 0;  ///< cost to charge (kLatency/kHang)
  bool wall = false;  ///< kLatency: block the wall clock, not the virtual one
};

/// What the core dispatch path consults before a binding method runs.
/// Installed per proxy (MProxy::installFaultGate); the gateway's
/// FailoverEngine implements it on top of a FaultInjector.
class FaultGate {
 public:
  virtual ~FaultGate() = default;
  virtual FaultDecision Admit(std::string_view platform_tag,
                              std::string_view op_name) = 0;
};

/// Executes a FaultPlan deterministically. Single-threaded (one per
/// shard); `salt` decorrelates instances sharing one plan (shard index).
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(FaultPlan plan, std::uint64_t salt = 0);

  /// Evaluate the plan for one dispatch. kNone when no rule fires. The
  /// returned error view points into the plan and stays valid for the
  /// injector's lifetime. A kHang decision carries latency_us == 0: the
  /// caller owns the hang budget (it knows the deadline/hedge policy).
  [[nodiscard]] FaultDecision Decide(std::string_view platform_tag,
                                     std::string_view op_name);

  [[nodiscard]] bool armed() const { return !plan_.rules.empty(); }
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  /// Total faults fired, and the breakdown per action kind.
  [[nodiscard]] std::uint64_t fired() const { return total_fired_; }
  [[nodiscard]] std::uint64_t fired(FaultAction action) const {
    return fired_by_action_[static_cast<std::size_t>(action)];
  }
  /// Fires charged against rules[index] (max_fires accounting).
  [[nodiscard]] std::uint64_t rule_fires(std::size_t index) const {
    return index < rule_fires_.size() ? rule_fires_[index] : 0;
  }

 private:
  [[nodiscard]] double NextUniform();  ///< [0, 1)

  FaultPlan plan_;
  std::vector<std::uint64_t> rule_fires_;
  std::uint64_t rng_state_ = 0x9e3779b97f4a7c15ull;
  std::uint64_t total_fired_ = 0;
  std::uint64_t fired_by_action_[4] = {0, 0, 0, 0};
};

}  // namespace mobivine::support
