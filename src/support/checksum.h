// CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the wire
// protocol's payload integrity check.
//
// Not cryptographic: it catches bit flips, truncation and reordering from
// a buggy peer or a corrupted stream, which is exactly the failure class a
// framing layer must detect before trusting a length or dispatching a
// request. Table-driven, one 1 KiB table, byte-at-a-time.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mobivine::support {

/// CRC32 of [data, data+size). Chainable: feed the previous return value
/// as `seed` to extend a running checksum (Crc32(a+b) == chained calls).
[[nodiscard]] std::uint32_t Crc32(const void* data, std::size_t size,
                                  std::uint32_t seed = 0);

}  // namespace mobivine::support
