// A move-only callable with inline storage.
//
// std::function's type-erasure buffer is too small for the capture lists
// the simulator's event callbacks carry ([this, alive, listener, ...]),
// so the original scheduler paid a heap allocation per scheduled event.
// InlineFunction<Sig, N> stores any callable of up to N bytes in place
// and only falls back to the heap beyond that. Move-only by design:
// callbacks own their captures, and the scheduler moves them from slot to
// slot without cloning.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace mobivine::support {

template <typename Signature, std::size_t InlineBytes = 48>
class InlineFunction;

template <typename R, typename... Args, std::size_t InlineBytes>
class InlineFunction<R(Args...), InlineBytes> {
 public:
  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (FitsInline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::table;
    } else {
      ::new (static_cast<void*>(storage_))
          Fn*(new Fn(std::forward<F>(f)));
      ops_ = &HeapOps<Fn>::table;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { MoveFrom(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  InlineFunction& operator=(std::nullptr_t) {
    Reset();
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { Reset(); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  R operator()(Args... args) {
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    void (*relocate)(void* from, void* to);  // move-construct + destroy src
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr bool FitsInline() {
    return sizeof(Fn) <= InlineBytes &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  struct InlineOps {
    static R Invoke(void* storage, Args&&... args) {
      return (*std::launder(reinterpret_cast<Fn*>(storage)))(
          std::forward<Args>(args)...);
    }
    static void Relocate(void* from, void* to) {
      Fn* source = std::launder(reinterpret_cast<Fn*>(from));
      ::new (to) Fn(std::move(*source));
      source->~Fn();
    }
    static void Destroy(void* storage) {
      std::launder(reinterpret_cast<Fn*>(storage))->~Fn();
    }
    static constexpr Ops table{&Invoke, &Relocate, &Destroy};
  };

  template <typename Fn>
  struct HeapOps {
    static Fn* Held(void* storage) {
      return *std::launder(reinterpret_cast<Fn**>(storage));
    }
    static R Invoke(void* storage, Args&&... args) {
      return (*Held(storage))(std::forward<Args>(args)...);
    }
    static void Relocate(void* from, void* to) {
      ::new (to) Fn*(Held(from));  // pointer moves; the heap object stays
    }
    static void Destroy(void* storage) { delete Held(storage); }
    static constexpr Ops table{&Invoke, &Relocate, &Destroy};
  };

  void MoveFrom(InlineFunction& other) {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(other.storage_, storage_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[InlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace mobivine::support
