// The Nokia S60 / J2ME exception set.
//
// NOTE ON STYLE: everything under src/s60/ deliberately mirrors the 2009
// J2ME API surface — class names, camelCase method names, parameter order
// and the exceptions below — because that heterogeneity is exactly what
// MobiVine (src/core/) exists to absorb. House naming conventions resume
// outside the platform substrates.
#pragma once

#include <stdexcept>
#include <string>

namespace mobivine::s60 {

/// Base for everything thrown by the S60 substrate.
class S60Exception : public std::runtime_error {
 public:
  explicit S60Exception(const std::string& what) : std::runtime_error(what) {}
};

/// javax.microedition.location.LocationException
class LocationException : public S60Exception {
 public:
  explicit LocationException(const std::string& what) : S60Exception(what) {}
};

/// java.lang.SecurityException
class SecurityException : public S60Exception {
 public:
  explicit SecurityException(const std::string& what) : S60Exception(what) {}
};

/// java.lang.IllegalArgumentException
class IllegalArgumentException : public S60Exception {
 public:
  explicit IllegalArgumentException(const std::string& what)
      : S60Exception(what) {}
};

/// java.lang.NullPointerException
class NullPointerException : public S60Exception {
 public:
  explicit NullPointerException(const std::string& what)
      : S60Exception(what) {}
};

/// java.io.IOException
class IOException : public S60Exception {
 public:
  explicit IOException(const std::string& what) : S60Exception(what) {}
};

/// java.io.InterruptedIOException — thrown by the messaging stack when a
/// send times out or the radio drops mid-transfer.
class InterruptedIOException : public IOException {
 public:
  explicit InterruptedIOException(const std::string& what)
      : IOException(what) {}
};

/// javax.microedition.io.ConnectionNotFoundException
class ConnectionNotFoundException : public IOException {
 public:
  explicit ConnectionNotFoundException(const std::string& what)
      : IOException(what) {}
};

}  // namespace mobivine::s60
