// The Nokia S60 3rd Edition platform substrate.
//
// Owns the J2ME-style middleware state on top of a simulated handset:
// MIDlet permission set, the location stack (JSR-179), messaging (JSR-120)
// and the Generic Connection Framework's HTTP. Virtual API costs are
// calibrated so the "Without Proxy" column of the paper's Figure 10 is
// reproduced (see EXPERIMENTS.md §Calibration).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "device/mobile_device.h"
#include "s60/coordinates.h"
#include "s60/criteria.h"
#include "s60/exceptions.h"
#include "s60/location_provider.h"
#include "sim/latency_model.h"

namespace mobivine::s60 {

/// J2ME permission names used by the substrate.
namespace permissions {
inline constexpr const char* kLocation = "javax.microedition.location.Location";
inline constexpr const char* kSmsSend = "javax.wireless.messaging.sms.send";
inline constexpr const char* kHttp = "javax.microedition.io.Connector.http";
inline constexpr const char* kPimRead =
    "javax.microedition.pim.ContactList.read";
inline constexpr const char* kPimEventRead =
    "javax.microedition.pim.EventList.read";
}  // namespace permissions

/// Virtual framework costs per native API (Figure 10 calibration: the
/// getLocation / proximity paths add a high-accuracy GPS fix, mean 120 ms,
/// on top of the framework cost listed here).
struct S60ApiCost {
  // Provider selection against the criteria; dominates the S60 proxy
  // overhead in Figure 10 (getLocation delta ~7.7 ms = getInstance +
  // de-fragmentation ops).
  sim::LatencyModel get_instance =
      sim::LatencyModel::Normal(sim::SimTime::MillisF(5.5),
                                sim::SimTime::MillisF(0.5),
                                sim::SimTime::MillisF(3.0));
  // 20.8 + 120 (high-accuracy fix) = 140.8 ms  (paper: getLocation 140.8)
  sim::LatencyModel get_location_framework =
      sim::LatencyModel::Normal(sim::SimTime::MillisF(20.8),
                                sim::SimTime::MillisF(1.5),
                                sim::SimTime::MillisF(10.0));
  // 21.0 + 120 (initial fix on registration) = 141 ms (paper: 141)
  sim::LatencyModel add_proximity_framework =
      sim::LatencyModel::Normal(sim::SimTime::MillisF(21.0),
                                sim::SimTime::MillisF(1.5),
                                sim::SimTime::MillisF(10.0));
  // 3.6 framework + 12 blocking radio submit = 15.6 ms (paper: sendSMS 15.6;
  // J2ME's send() blocks through the transmit, unlike Android's)
  sim::LatencyModel send_sms =
      sim::LatencyModel::Normal(sim::SimTime::MillisF(3.6),
                                sim::SimTime::MillisF(0.4),
                                sim::SimTime::MillisF(1.5));
  sim::LatencyModel connector_open =
      sim::LatencyModel::Normal(sim::SimTime::MillisF(6.0),
                                sim::SimTime::MillisF(0.5),
                                sim::SimTime::MillisF(3.0));
  /// JSR-75: opening the contact list and materializing each item.
  sim::LatencyModel pim_open_list =
      sim::LatencyModel::Normal(sim::SimTime::MillisF(25.0),
                                sim::SimTime::MillisF(2.0),
                                sim::SimTime::MillisF(12.0));
  sim::LatencyModel pim_item =
      sim::LatencyModel::Normal(sim::SimTime::MillisF(0.8),
                                sim::SimTime::MillisF(0.1),
                                sim::SimTime::MillisF(0.3));
  /// Period of the proximity-monitoring poll loop.
  sim::SimTime proximity_poll_interval = sim::SimTime::Millis(900);
};

class MessageConnection;
class HttpConnection;

class S60Platform {
 public:
  explicit S60Platform(device::MobileDevice& device, S60ApiCost cost = {});
  ~S60Platform();

  S60Platform(const S60Platform&) = delete;
  S60Platform& operator=(const S60Platform&) = delete;

  device::MobileDevice& device() { return device_; }
  const S60ApiCost& cost() const { return cost_; }

  // --- MIDlet suite permissions (from the .jad descriptor) ---------------
  void grantPermission(const std::string& permission);
  void revokePermission(const std::string& permission);
  bool hasPermission(const std::string& permission) const;
  /// Throws SecurityException when the permission is missing.
  void checkPermission(const std::string& permission) const;

  // --- Generic Connection Framework ---------------------------------------
  /// Connector.open() analog. Supports "sms://+number" (returns a
  /// MessageConnection) and "http://host[:port]/path" (returns an
  /// HttpConnection); anything else throws ConnectionNotFoundException.
  std::shared_ptr<MessageConnection> openMessageConnection(
      const std::string& url);
  std::shared_ptr<HttpConnection> openHttpConnection(const std::string& url);

  // --- internal: location stack (used by LocationProvider) ----------------
  /// Map a Criteria to the GPS mode the provider will use.
  static device::GpsMode ModeFor(const Criteria& criteria);

  /// Convert a hardware fix to a JSR-179 Location.
  static Location MakeLocation(const device::GpsFix& fix);

  struct ProximityRegistration {
    ProximityListener* listener;
    Coordinates center;
    float radius_m;
  };
  void AddProximity(ProximityListener* listener, const Coordinates& center,
                    float radius_m);
  void RemoveProximity(ProximityListener* listener);
  std::size_t proximity_registration_count() const {
    return proximity_.size();
  }

 private:
  void EnsureProximityPoll();
  void ProximityPollTick();

  device::MobileDevice& device_;
  S60ApiCost cost_;
  std::unordered_set<std::string> permissions_;
  std::vector<ProximityRegistration> proximity_;
  bool poll_running_ = false;
  // Sole strong reference to the polling closure (it self-captures only
  // weakly, so dropping the platform reclaims the chain).
  std::shared_ptr<std::function<void()>> poll_tick_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace mobivine::s60
