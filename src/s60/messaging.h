// JSR-120 (javax.wireless.messaging) analog.
//
// MessageConnection is obtained from the Generic Connection Framework with
// a "sms://+number" URL; send() is blocking up to network submission and
// throws IOException/InterruptedIOException on radio failure — a very
// different shape from Android's SmsManager + PendingIntent callbacks.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "s60/exceptions.h"
#include "sim/clock.h"

namespace mobivine::s60 {

class S60Platform;
class MessageConnection;

/// javax.wireless.messaging.TextMessage
class TextMessage {
 public:
  explicit TextMessage(std::string address) : address_(std::move(address)) {}

  void setPayloadText(std::string text) { payload_ = std::move(text); }
  const std::string& getPayloadText() const { return payload_; }
  const std::string& getAddress() const { return address_; }
  void setAddress(std::string address) { address_ = std::move(address); }
  sim::SimTime getTimestamp() const { return timestamp_; }

 private:
  friend class MessageConnection;
  std::string address_;
  std::string payload_;
  sim::SimTime timestamp_;
};

/// javax.wireless.messaging.MessageListener (incoming messages).
class MessageListener {
 public:
  virtual ~MessageListener() = default;
  virtual void notifyIncomingMessage(MessageConnection& connection) = 0;
};

/// javax.wireless.messaging.MessageConnection (client mode).
class MessageConnection {
 public:
  ~MessageConnection();

  /// Factory for a message bound to this connection's address.
  [[nodiscard]] TextMessage newTextMessage() const;

  /// Blocking submit to the network. Throws:
  ///  * SecurityException        — missing sms.send permission
  ///  * IllegalArgumentException — empty destination
  ///  * InterruptedIOException   — radio failure during submit
  ///  * IOException              — connection closed or destination
  ///                               unreachable
  void send(const TextMessage& message);

  void setMessageListener(MessageListener* listener);

  void close();
  bool isOpen() const { return open_; }
  const std::string& address() const { return address_; }

  /// Messages sent so far on this connection (diagnostics/tests).
  int sent_count() const { return sent_count_; }

 private:
  friend class S60Platform;
  MessageConnection(S60Platform& platform, std::string address);

  S60Platform& platform_;
  std::string address_;  // "+15550123" (scheme already stripped)
  bool open_ = true;
  int sent_count_ = 0;
  MessageListener* listener_ = nullptr;
};

}  // namespace mobivine::s60
