#include "s60/location_provider.h"

#include <cmath>

#include "s60/s60_platform.h"

namespace mobivine::s60 {

LocationProvider::LocationProvider(S60Platform& platform, Criteria criteria)
    : platform_(platform), criteria_(criteria) {}

LocationProvider::~LocationProvider() { ClearListener(); }

std::shared_ptr<LocationProvider> LocationProvider::getInstance(
    S60Platform& platform, const Criteria& criteria) {
  platform.checkPermission(permissions::kLocation);
  platform.device().scheduler().AdvanceBy(
      platform.cost().get_instance.Sample(platform.device().rng()));
  // JSR-179: getInstance may return null / throw when no provider meets the
  // criteria. Our handset has no high-accuracy low-power provider.
  if (criteria.getPreferredPowerConsumption() == Criteria::POWER_USAGE_LOW &&
      criteria.getHorizontalAccuracy() != Criteria::NO_REQUIREMENT &&
      criteria.getHorizontalAccuracy() < 25) {
    throw LocationException(
        "no location provider satisfies the criteria "
        "(accuracy < 25 m requires more than POWER_USAGE_LOW)");
  }
  return std::shared_ptr<LocationProvider>(
      new LocationProvider(platform, criteria));
}

Location LocationProvider::getLocation(int timeout_seconds) {
  platform_.checkPermission(permissions::kLocation);
  auto& device = platform_.device();
  device.scheduler().AdvanceBy(
      platform_.cost().get_location_framework.Sample(device.rng()));

  const device::GpsMode mode = S60Platform::ModeFor(criteria_);
  const device::GpsFix fix = device.gps().BlockingFix(mode);
  if (!fix.valid) {
    throw LocationException("location could not be determined" +
                            std::string(timeout_seconds > 0
                                            ? " within the timeout"
                                            : ""));
  }
  return S60Platform::MakeLocation(fix);
}

void LocationProvider::ClearListener() {
  if (listener_subscription_ != 0) {
    platform_.device().gps().StopPeriodicFixes(listener_subscription_);
    listener_subscription_ = 0;
  }
  listener_ = nullptr;
}

void LocationProvider::setLocationListener(LocationListener* listener,
                                           int interval, int timeout,
                                           int max_age) {
  (void)timeout;
  (void)max_age;
  platform_.checkPermission(permissions::kLocation);
  if (interval == 0 || interval < -1) {
    throw IllegalArgumentException("interval must be -1 or > 0 seconds");
  }
  ClearListener();
  if (listener == nullptr) return;  // JSR-179: null clears the listener

  listener_ = listener;
  const int seconds = interval == -1 ? 5 : interval;  // provider default 5 s
  const device::GpsMode mode = S60Platform::ModeFor(criteria_);
  listener_subscription_ = platform_.device().gps().StartPeriodicFixes(
      mode, sim::SimTime::Seconds(seconds),
      [this](const device::GpsFix& fix) {
        if (listener_ == nullptr) return;
        if (!fix.valid) {
          listener_->providerStateChanged(*this, TEMPORARILY_UNAVAILABLE);
          return;
        }
        listener_->locationUpdated(*this, S60Platform::MakeLocation(fix));
      });
}

void LocationProvider::addProximityListener(S60Platform& platform,
                                            ProximityListener* listener,
                                            const Coordinates& coordinates,
                                            float proximity_radius) {
  platform.checkPermission(permissions::kLocation);
  if (listener == nullptr) {
    throw NullPointerException("proximity listener is null");
  }
  if (!(proximity_radius > 0.0f) || std::isnan(proximity_radius)) {
    throw IllegalArgumentException("proximityRadius must be > 0");
  }
  auto& device = platform.device();
  device.scheduler().AdvanceBy(
      platform.cost().add_proximity_framework.Sample(device.rng()));
  // The 2009 S60 implementation acquired an initial high-accuracy fix when
  // arming the region monitor; that is what makes registration cost ~141 ms
  // in Figure 10.
  (void)device.gps().BlockingFix(device::GpsMode::kHighAccuracy);
  platform.AddProximity(listener, coordinates, proximity_radius);
}

void LocationProvider::removeProximityListener(S60Platform& platform,
                                               ProximityListener* listener) {
  platform.RemoveProximity(listener);
}

}  // namespace mobivine::s60
