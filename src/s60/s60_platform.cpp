#include "s60/s60_platform.h"

#include <algorithm>

#include "device/http_message.h"
#include "s60/connector.h"
#include "s60/messaging.h"
#include "support/logging.h"
#include "support/strings.h"

namespace mobivine::s60 {

S60Platform::S60Platform(device::MobileDevice& device, S60ApiCost cost)
    : device_(device), cost_(cost) {}

S60Platform::~S60Platform() { *alive_ = false; }

void S60Platform::grantPermission(const std::string& permission) {
  permissions_.insert(permission);
}

void S60Platform::revokePermission(const std::string& permission) {
  permissions_.erase(permission);
}

bool S60Platform::hasPermission(const std::string& permission) const {
  return permissions_.count(permission) > 0;
}

void S60Platform::checkPermission(const std::string& permission) const {
  if (!hasPermission(permission)) {
    throw SecurityException("MIDlet suite lacks permission: " + permission);
  }
}

std::shared_ptr<MessageConnection> S60Platform::openMessageConnection(
    const std::string& url) {
  if (!support::StartsWith(url, "sms://")) {
    throw ConnectionNotFoundException("not an sms:// URL: " + url);
  }
  std::string address = url.substr(6);
  if (address.empty()) {
    throw IllegalArgumentException("sms:// URL has no address");
  }
  return std::shared_ptr<MessageConnection>(
      new MessageConnection(*this, std::move(address)));
}

std::shared_ptr<HttpConnection> S60Platform::openHttpConnection(
    const std::string& url) {
  auto parsed = device::ParseUrl(url);
  if (!parsed) {
    throw ConnectionNotFoundException("malformed http URL: " + url);
  }
  device_.scheduler().AdvanceBy(cost_.connector_open.Sample(device_.rng()));
  return std::shared_ptr<HttpConnection>(
      new HttpConnection(*this, *parsed, url));
}

device::GpsMode S60Platform::ModeFor(const Criteria& criteria) {
  if (criteria.getPreferredPowerConsumption() == Criteria::POWER_USAGE_LOW) {
    return device::GpsMode::kLowPower;
  }
  const int horizontal = criteria.getHorizontalAccuracy();
  const int vertical = criteria.getVerticalAccuracy();
  const bool wants_accuracy =
      (horizontal != Criteria::NO_REQUIREMENT && horizontal <= 50) ||
      (vertical != Criteria::NO_REQUIREMENT && vertical <= 50);
  if (wants_accuracy ||
      criteria.getPreferredPowerConsumption() == Criteria::POWER_USAGE_HIGH) {
    return device::GpsMode::kHighAccuracy;
  }
  return device::GpsMode::kBalanced;
}

Location S60Platform::MakeLocation(const device::GpsFix& fix) {
  QualifiedCoordinates coordinates(
      fix.latitude_deg, fix.longitude_deg,
      static_cast<float>(fix.altitude_m),
      static_cast<float>(fix.horizontal_accuracy_m),
      static_cast<float>(fix.horizontal_accuracy_m * 1.5));
  return Location(coordinates, static_cast<float>(fix.speed_mps),
                  static_cast<float>(fix.heading_deg), fix.timestamp,
                  fix.valid);
}

void S60Platform::AddProximity(ProximityListener* listener,
                               const Coordinates& center, float radius_m) {
  proximity_.push_back({listener, center, radius_m});
  listener->monitoringStateChanged(true);
  EnsureProximityPoll();
}

void S60Platform::RemoveProximity(ProximityListener* listener) {
  proximity_.erase(
      std::remove_if(proximity_.begin(), proximity_.end(),
                     [listener](const ProximityRegistration& reg) {
                       return reg.listener == listener;
                     }),
      proximity_.end());
}

void S60Platform::EnsureProximityPoll() {
  if (poll_running_) return;
  poll_running_ = true;
  // The closure self-references weakly; the strong reference lives in
  // poll_tick_ so an abandoned platform can't keep the chain alive
  // through a shared_ptr cycle.
  poll_tick_ = std::make_shared<std::function<void()>>();
  std::weak_ptr<bool> alive = alive_;
  std::weak_ptr<std::function<void()>> weak_tick = poll_tick_;
  *poll_tick_ = [this, weak_tick, alive] {
    auto locked = alive.lock();
    if (!locked || !*locked) return;
    ProximityPollTick();
    if (proximity_.empty()) {
      poll_running_ = false;
      return;
    }
    if (auto self = weak_tick.lock()) {
      device_.scheduler().ScheduleAfter(cost_.proximity_poll_interval, *self);
    }
  };
  device_.scheduler().ScheduleAfter(cost_.proximity_poll_interval, *poll_tick_);
}

void S60Platform::ProximityPollTick() {
  if (proximity_.empty()) return;
  // One balanced fix per poll serves every registered region.
  const device::GpsFix fix =
      device_.gps().BlockingFix(device::GpsMode::kBalanced);
  if (!fix.valid) return;
  const Location location = MakeLocation(fix);
  const Coordinates here(fix.latitude_deg, fix.longitude_deg,
                         static_cast<float>(fix.altitude_m));

  // JSR-179 one-shot semantics: collect the registrations inside the
  // region, remove them, then fire.
  std::vector<ProximityRegistration> fired;
  for (auto it = proximity_.begin(); it != proximity_.end();) {
    if (here.distance(it->center) <= it->radius_m) {
      fired.push_back(*it);
      it = proximity_.erase(it);
    } else {
      ++it;
    }
  }
  for (const auto& reg : fired) {
    reg.listener->proximityEvent(reg.center, location);
  }
}

}  // namespace mobivine::s60
