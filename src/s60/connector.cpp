#include "s60/connector.h"

#include "s60/s60_platform.h"

namespace mobivine::s60 {

HttpConnection::HttpConnection(S60Platform& platform, device::Url url,
                               std::string url_string)
    : platform_(platform), url_(std::move(url)),
      url_string_(std::move(url_string)) {
  request_.url = url_;
}

void HttpConnection::setRequestMethod(const std::string& method) {
  if (sent_) throw IOException("request already sent");
  if (method != "GET" && method != "POST") {
    throw IllegalArgumentException("unsupported HTTP method: " + method);
  }
  request_.method = method;
}

void HttpConnection::setRequestProperty(const std::string& key,
                                        const std::string& value) {
  if (sent_) throw IOException("request already sent");
  request_.headers.Set(key, value);
}

void HttpConnection::setRequestBody(std::string body) {
  if (sent_) throw IOException("request already sent");
  request_.body = std::move(body);
}

void HttpConnection::EnsureSent() {
  if (!open_) throw IOException("http connection is closed");
  if (sent_) return;
  platform_.checkPermission(permissions::kHttp);
  sent_ = true;
  const device::NetResult result =
      platform_.device().network().BlockingSend(request_);
  switch (result.error) {
    case device::NetError::kHostUnreachable:
      throw IOException("host unreachable: " + url_.host);
    case device::NetError::kTimeout:
      throw InterruptedIOException("http request timed out: " + url_string_);
    case device::NetError::kNone:
      response_ = result.response;
      break;
  }
}

int HttpConnection::getResponseCode() {
  EnsureSent();
  return response_.status;
}

std::string HttpConnection::getResponseMessage() {
  EnsureSent();
  return response_.reason;
}

std::optional<std::string> HttpConnection::getHeaderField(
    const std::string& name) {
  EnsureSent();
  return response_.headers.Get(name);
}

std::string HttpConnection::readBody() {
  EnsureSent();
  return response_.body;
}

void HttpConnection::close() { open_ = false; }

}  // namespace mobivine::s60
