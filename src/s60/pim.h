// JSR-75 (javax.microedition.pim) analog: PIM.getInstance() opens typed
// lists; items expose field-indexed getters and field constants — a very
// different shape from Android's cursors.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "s60/exceptions.h"

namespace mobivine::s60 {

class S60Platform;

/// javax.microedition.pim.Contact field constants (the JSR-75 values).
class Contact {
 public:
  static constexpr int NAME = 106;
  static constexpr int TEL = 115;
  static constexpr int EMAIL = 103;
  static constexpr int UID = 117;
};

/// One contact item. countValues/getString mirror PIMItem's indexed
/// accessors (a contact may hold several TEL values; our store has one).
class PIMItem {
 public:
  [[nodiscard]] int countValues(int field) const;
  /// Throws IllegalArgumentException for unknown fields,
  /// IndexOutOfBounds-style IllegalArgumentException for bad indices.
  [[nodiscard]] std::string getString(int field, int index) const;

 private:
  friend class ContactList;
  long long uid_ = 0;
  std::string name_;
  std::string tel_;
  std::string email_;
};

/// javax.microedition.pim.ContactList (read-only mode).
class ContactList {
 public:
  static constexpr int READ_ONLY = 1;
  static constexpr int WRITE_ONLY = 2;
  static constexpr int READ_WRITE = 3;

  /// Enumerate items (charges the list-open + per-item cost).
  [[nodiscard]] std::vector<PIMItem> items();
  /// JSR-75 items(matching) — substring match on NAME.
  [[nodiscard]] std::vector<PIMItem> items(const std::string& matching);

  void close() { open_ = false; }
  bool isOpen() const { return open_; }

 private:
  friend class PIM;
  explicit ContactList(S60Platform& platform) : platform_(platform) {}
  S60Platform& platform_;
  bool open_ = true;
};

/// javax.microedition.pim.Event field constants (the JSR-75 values).
class Event {
 public:
  static constexpr int SUMMARY = 107;
  static constexpr int START = 108;
  static constexpr int END = 102;
  static constexpr int LOCATION = 104;
  static constexpr int UID = 109;
};

/// One calendar item with field-indexed accessors like PIMItem's.
class PIMEvent {
 public:
  [[nodiscard]] int countValues(int field) const;
  [[nodiscard]] std::string getString(int field, int index) const;
  [[nodiscard]] long long getDate(int field, int index) const;

 private:
  friend class EventList;
  long long uid_ = 0;
  std::string summary_;
  long long start_ms_ = 0;
  long long end_ms_ = 0;
  std::string location_;
};

/// javax.microedition.pim.EventList (read-only mode).
class EventList {
 public:
  /// All events (charges list-open + per-item cost).
  [[nodiscard]] std::vector<PIMEvent> items();
  /// JSR-75 EventList.items(searchType, startDate, endDate): events
  /// overlapping the window.
  [[nodiscard]] std::vector<PIMEvent> items(long long start_ms,
                                            long long end_ms);

  void close() { open_ = false; }
  bool isOpen() const { return open_; }

 private:
  friend class PIM;
  explicit EventList(S60Platform& platform) : platform_(platform) {}
  std::vector<PIMEvent> Materialize(long long start_ms, long long end_ms,
                                    bool bounded);
  S60Platform& platform_;
  bool open_ = true;
};

/// javax.microedition.pim.PIM singleton entry point.
class PIM {
 public:
  /// Throws SecurityException without the pim read permission;
  /// IllegalArgumentException for write modes (not provisioned on this
  /// MIDP configuration).
  static std::shared_ptr<ContactList> openContactList(S60Platform& platform,
                                                      int mode);
  /// Same contract for the event list (calendar).
  static std::shared_ptr<EventList> openEventList(S60Platform& platform,
                                                  int mode);
};

}  // namespace mobivine::s60
