#include "s60/pim.h"

#include "s60/s60_platform.h"
#include "support/strings.h"

namespace mobivine::s60 {

int PIMItem::countValues(int field) const {
  switch (field) {
    case Contact::NAME:
      return name_.empty() ? 0 : 1;
    case Contact::TEL:
      return tel_.empty() ? 0 : 1;
    case Contact::EMAIL:
      return email_.empty() ? 0 : 1;
    case Contact::UID:
      return 1;
    default:
      throw IllegalArgumentException("unknown PIM field " +
                                     std::to_string(field));
  }
}

std::string PIMItem::getString(int field, int index) const {
  if (index < 0 || index >= countValues(field)) {
    throw IllegalArgumentException("value index out of bounds for field " +
                                   std::to_string(field));
  }
  switch (field) {
    case Contact::NAME:
      return name_;
    case Contact::TEL:
      return tel_;
    case Contact::EMAIL:
      return email_;
    case Contact::UID:
      return std::to_string(uid_);
    default:
      throw IllegalArgumentException("unknown PIM field " +
                                     std::to_string(field));
  }
}

std::vector<PIMItem> ContactList::items() { return items(""); }

std::vector<PIMItem> ContactList::items(const std::string& matching) {
  if (!open_) throw IOException("contact list is closed");
  auto& device = platform_.device();
  std::vector<PIMItem> out;
  const std::string needle = support::ToLower(matching);
  for (const auto& record : device.contacts().All()) {
    if (!needle.empty() &&
        support::ToLower(record.display_name).find(needle) ==
            std::string::npos) {
      continue;
    }
    // JSR-75 materializes items one by one from the native store.
    device.scheduler().AdvanceBy(platform_.cost().pim_item.Sample(device.rng()));
    PIMItem item;
    item.uid_ = record.id;
    item.name_ = record.display_name;
    item.tel_ = record.phone_number;
    item.email_ = record.email;
    out.push_back(std::move(item));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

int PIMEvent::countValues(int field) const {
  switch (field) {
    case Event::SUMMARY:
      return summary_.empty() ? 0 : 1;
    case Event::LOCATION:
      return location_.empty() ? 0 : 1;
    case Event::START:
    case Event::END:
    case Event::UID:
      return 1;
    default:
      throw IllegalArgumentException("unknown Event field " +
                                     std::to_string(field));
  }
}

std::string PIMEvent::getString(int field, int index) const {
  if (index < 0 || index >= countValues(field)) {
    throw IllegalArgumentException("value index out of bounds for field " +
                                   std::to_string(field));
  }
  switch (field) {
    case Event::SUMMARY:
      return summary_;
    case Event::LOCATION:
      return location_;
    case Event::UID:
      return std::to_string(uid_);
    default:
      throw IllegalArgumentException("field " + std::to_string(field) +
                                     " is not a string field");
  }
}

long long PIMEvent::getDate(int field, int index) const {
  if (index < 0 || index >= countValues(field)) {
    throw IllegalArgumentException("value index out of bounds for field " +
                                   std::to_string(field));
  }
  switch (field) {
    case Event::START:
      return start_ms_;
    case Event::END:
      return end_ms_;
    default:
      throw IllegalArgumentException("field " + std::to_string(field) +
                                     " is not a date field");
  }
}

std::vector<PIMEvent> EventList::Materialize(long long start_ms,
                                             long long end_ms, bool bounded) {
  if (!open_) throw IOException("event list is closed");
  auto& device = platform_.device();
  std::vector<PIMEvent> out;
  for (const auto& record : device.calendar().All()) {
    if (bounded && !(record.start_ms < end_ms && record.end_ms > start_ms)) {
      continue;
    }
    device.scheduler().AdvanceBy(
        platform_.cost().pim_item.Sample(device.rng()));
    PIMEvent event;
    event.uid_ = record.id;
    event.summary_ = record.title;
    event.start_ms_ = record.start_ms;
    event.end_ms_ = record.end_ms;
    event.location_ = record.location;
    out.push_back(std::move(event));
  }
  return out;
}

std::vector<PIMEvent> EventList::items() {
  return Materialize(0, 0, /*bounded=*/false);
}

std::vector<PIMEvent> EventList::items(long long start_ms, long long end_ms) {
  return Materialize(start_ms, end_ms, /*bounded=*/true);
}

std::shared_ptr<EventList> PIM::openEventList(S60Platform& platform,
                                              int mode) {
  platform.checkPermission(permissions::kPimEventRead);
  if (mode != ContactList::READ_ONLY) {
    throw IllegalArgumentException(
        "only READ_ONLY event lists are provisioned");
  }
  auto& device = platform.device();
  device.scheduler().AdvanceBy(
      platform.cost().pim_open_list.Sample(device.rng()));
  return std::shared_ptr<EventList>(new EventList(platform));
}

std::shared_ptr<ContactList> PIM::openContactList(S60Platform& platform,
                                                  int mode) {
  platform.checkPermission(permissions::kPimRead);
  if (mode != ContactList::READ_ONLY) {
    throw IllegalArgumentException(
        "only READ_ONLY contact lists are provisioned");
  }
  auto& device = platform.device();
  device.scheduler().AdvanceBy(
      platform.cost().pim_open_list.Sample(device.rng()));
  return std::shared_ptr<ContactList>(new ContactList(platform));
}

}  // namespace mobivine::s60
