// JSR-179 (javax.microedition.location) analog for the S60 substrate.
//
// Faithful 2009 semantics that differ from Android and that MobiVine's
// Location proxy must absorb:
//  * providers are obtained via Criteria (accuracy / response time / power),
//    not by provider name;
//  * getLocation() is blocking and slow (full fix);
//  * proximity registration is ONE-SHOT: the listener fires once on entry
//    and the registration is removed — no exit events, no expiration;
//  * the exception set is {LocationException, SecurityException,
//    IllegalArgumentException, NullPointerException}.
#pragma once

#include <memory>
#include <vector>

#include "s60/coordinates.h"
#include "s60/criteria.h"
#include "s60/exceptions.h"
#include "sim/clock.h"

namespace mobivine::s60 {

class S60Platform;
class LocationProvider;

/// javax.microedition.location.LocationListener
class LocationListener {
 public:
  virtual ~LocationListener() = default;
  virtual void locationUpdated(LocationProvider& provider,
                               const Location& location) = 0;
  virtual void providerStateChanged(LocationProvider& provider,
                                    int new_state) {
    (void)provider;
    (void)new_state;
  }
};

/// javax.microedition.location.ProximityListener
class ProximityListener {
 public:
  virtual ~ProximityListener() = default;
  /// Fired once when the device enters the registered region; the
  /// registration is removed before this is invoked (JSR-179 semantics).
  virtual void proximityEvent(const Coordinates& coordinates,
                              const Location& location) = 0;
  virtual void monitoringStateChanged(bool is_monitoring_active) {
    (void)is_monitoring_active;
  }
};

/// javax.microedition.location.LocationProvider
class LocationProvider {
 public:
  static constexpr int AVAILABLE = 1;
  static constexpr int TEMPORARILY_UNAVAILABLE = 2;
  static constexpr int OUT_OF_SERVICE = 3;

  /// Factory: selects a provider satisfying `criteria`. Throws
  /// LocationException when no provider can satisfy it and
  /// SecurityException when the MIDlet lacks the Location permission.
  /// (In real J2ME this is static; here it hangs off the platform that
  /// owns the hardware.)
  static std::shared_ptr<LocationProvider> getInstance(S60Platform& platform,
                                                       const Criteria& criteria);

  /// Blocking fix. `timeout_seconds` <= 0 means the provider default.
  /// Throws LocationException on timeout/invalid fix.
  Location getLocation(int timeout_seconds);

  /// Register (listener != nullptr) or clear (nullptr) the periodic
  /// location listener. interval in seconds; -1 selects the provider
  /// default; 0 is invalid per JSR-179 (IllegalArgumentException).
  void setLocationListener(LocationListener* listener, int interval,
                           int timeout, int max_age);

  /// One-shot proximity registration (static in JSR-179; mirrored as a
  /// static taking the platform).
  static void addProximityListener(S60Platform& platform,
                                   ProximityListener* listener,
                                   const Coordinates& coordinates,
                                   float proximity_radius);
  static void removeProximityListener(S60Platform& platform,
                                      ProximityListener* listener);

  int getState() const { return state_; }
  const Criteria& criteria() const { return criteria_; }

  ~LocationProvider();

 private:
  friend class S60Platform;
  LocationProvider(S60Platform& platform, Criteria criteria);

  void ClearListener();

  S60Platform& platform_;
  Criteria criteria_;
  int state_ = AVAILABLE;
  LocationListener* listener_ = nullptr;
  std::uint64_t listener_subscription_ = 0;
};

}  // namespace mobivine::s60
