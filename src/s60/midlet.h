// MIDlet lifecycle analog.
//
// S60 applications extend MIDlet and are driven by the application manager
// through startApp/pauseApp/destroyApp. The paper's packaging constraint —
// the whole application ships as ONE MIDlet-suite jar with permissions in
// the descriptor — is modeled by MidletSuite, which the M-Plugin packaging
// extension consumes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "s60/s60_platform.h"

namespace mobivine::s60 {

/// javax.microedition.midlet.MIDlet
class MIDlet {
 public:
  virtual ~MIDlet() = default;

  virtual void startApp() = 0;
  virtual void pauseApp() {}
  virtual void destroyApp(bool unconditional) { (void)unconditional; }

  /// MIDlet.notifyDestroyed(): the application asks the manager to exit.
  void notifyDestroyed() { destroyed_ = true; }
  bool isDestroyed() const { return destroyed_; }

  S60Platform& platform() {
    if (platform_ == nullptr) {
      throw S60Exception("MIDlet not started by an application manager");
    }
    return *platform_;
  }

 private:
  friend class ApplicationManager;
  S60Platform* platform_ = nullptr;
  bool destroyed_ = false;
};

/// Deployment descriptor (.jad analog): names, permissions, OTA properties.
struct MidletSuiteDescriptor {
  std::string suite_name;
  std::string vendor;
  std::string version = "1.0.0";
  std::vector<std::string> permissions;
  /// Over-The-Air install notify URL and other descriptor properties.
  std::vector<std::pair<std::string, std::string>> properties;
};

/// The platform's application manager: installs a suite (granting its
/// descriptor permissions) and drives MIDlet lifecycles.
class ApplicationManager {
 public:
  explicit ApplicationManager(S60Platform& platform) : platform_(platform) {}

  /// Install: grant every permission the descriptor requests.
  void installSuite(const MidletSuiteDescriptor& descriptor);

  /// Run the MIDlet: startApp now; destroyApp when the caller invokes
  /// terminate() or the MIDlet notifies destruction.
  void start(MIDlet& midlet);
  void pause(MIDlet& midlet);
  void terminate(MIDlet& midlet);

  const MidletSuiteDescriptor* installed_suite() const {
    return installed_ ? &suite_ : nullptr;
  }

 private:
  S60Platform& platform_;
  MidletSuiteDescriptor suite_;
  bool installed_ = false;
};

}  // namespace mobivine::s60
