// Generic Connection Framework HTTP analog
// (javax.microedition.io.Connector / HttpConnection).
//
// J2ME HTTP is lazy and blocking: open() only parses the URL; headers and
// method are staged locally; the request is transmitted on the first call
// that needs the response (getResponseCode / readBody). Errors surface as
// IOException — there is no status-callback mechanism.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "device/http_message.h"
#include "s60/exceptions.h"

namespace mobivine::s60 {

class S60Platform;

class HttpConnection {
 public:
  static constexpr int HTTP_OK = 200;

  /// Stage the request method ("GET" or "POST"); throws IOException once
  /// the request has been sent.
  void setRequestMethod(const std::string& method);
  /// Stage a request header.
  void setRequestProperty(const std::string& key, const std::string& value);
  /// Stage the request body (POST).
  void setRequestBody(std::string body);

  /// Transmit (first call only) and return the HTTP status. Throws
  /// IOException on network failure (unreachable host, timeout).
  int getResponseCode();
  /// Response reason phrase (transmits if needed).
  std::string getResponseMessage();
  /// Response header lookup (transmits if needed).
  std::optional<std::string> getHeaderField(const std::string& name);
  /// Full response body (transmits if needed).
  std::string readBody();

  void close();
  bool isOpen() const { return open_; }
  const std::string& url() const { return url_string_; }

 private:
  friend class S60Platform;
  HttpConnection(S60Platform& platform, device::Url url,
                 std::string url_string);

  void EnsureSent();

  S60Platform& platform_;
  device::Url url_;
  std::string url_string_;
  bool open_ = true;
  bool sent_ = false;
  device::HttpRequest request_;
  device::HttpResponse response_;
};

}  // namespace mobivine::s60
