#include "s60/midlet.h"

namespace mobivine::s60 {

void ApplicationManager::installSuite(const MidletSuiteDescriptor& descriptor) {
  suite_ = descriptor;
  installed_ = true;
  for (const auto& permission : descriptor.permissions) {
    platform_.grantPermission(permission);
  }
}

void ApplicationManager::start(MIDlet& midlet) {
  midlet.platform_ = &platform_;
  midlet.startApp();
}

void ApplicationManager::pause(MIDlet& midlet) { midlet.pauseApp(); }

void ApplicationManager::terminate(MIDlet& midlet) {
  midlet.destroyApp(/*unconditional=*/true);
  midlet.notifyDestroyed();
}

}  // namespace mobivine::s60
