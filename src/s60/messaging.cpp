#include "s60/messaging.h"

#include "s60/s60_platform.h"
#include "support/logging.h"

namespace mobivine::s60 {

MessageConnection::MessageConnection(S60Platform& platform, std::string address)
    : platform_(platform), address_(std::move(address)) {}

MessageConnection::~MessageConnection() { close(); }

TextMessage MessageConnection::newTextMessage() const {
  return TextMessage(address_);
}

void MessageConnection::send(const TextMessage& message) {
  platform_.checkPermission(permissions::kSmsSend);
  if (!open_) throw IOException("message connection is closed");
  const std::string& destination =
      message.getAddress().empty() ? address_ : message.getAddress();
  if (destination.empty()) {
    throw IllegalArgumentException("SMS destination address is empty");
  }

  auto& device = platform_.device();
  device.scheduler().AdvanceBy(platform_.cost().send_sms.Sample(device.rng()));

  // The blocking J2ME send() charges the radio transmit synchronously and
  // reports failure by exception; the delivery report stays asynchronous
  // inside the modem.
  const device::SmsResult result =
      device.modem().BlockingSubmit(destination, message.getPayloadText());
  switch (result.status) {
    case device::SmsStatus::kFailedRadio:
      throw InterruptedIOException("SMS submit failed: radio error");
    case device::SmsStatus::kFailedUnreachable:
      throw IOException("SMS destination unreachable: " + destination);
    default:
      break;
  }
  ++sent_count_;
}

void MessageConnection::setMessageListener(MessageListener* listener) {
  if (!open_) throw IOException("message connection is closed");
  listener_ = listener;
}

void MessageConnection::close() { open_ = false; }

}  // namespace mobivine::s60
