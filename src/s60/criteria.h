// javax.microedition.location.Criteria analog.
//
// On S60 the developer obtains a LocationProvider by handing the platform a
// Criteria object (accuracy, response time, power consumption, cost). This
// is one of the "inherently different" platform attributes the paper's
// binding plane absorbs via setProperty() instead of widening the common
// proxy API.
#pragma once

namespace mobivine::s60 {

class Criteria {
 public:
  /// JSR-179 sentinel meaning "no requirement".
  static constexpr int NO_REQUIREMENT = 0;
  static constexpr int POWER_USAGE_LOW = 1;
  static constexpr int POWER_USAGE_MEDIUM = 2;
  static constexpr int POWER_USAGE_HIGH = 3;

  void setHorizontalAccuracy(int meters) { horizontal_accuracy_ = meters; }
  int getHorizontalAccuracy() const { return horizontal_accuracy_; }

  void setVerticalAccuracy(int meters) { vertical_accuracy_ = meters; }
  int getVerticalAccuracy() const { return vertical_accuracy_; }

  /// Preferred maximum response time in milliseconds.
  void setPreferredResponseTime(int ms) { preferred_response_time_ms_ = ms; }
  int getPreferredResponseTime() const { return preferred_response_time_ms_; }

  void setPreferredPowerConsumption(int level) { power_consumption_ = level; }
  int getPreferredPowerConsumption() const { return power_consumption_; }

  void setCostAllowed(bool allowed) { cost_allowed_ = allowed; }
  bool isAllowedToCost() const { return cost_allowed_; }

  void setSpeedAndCourseRequired(bool required) {
    speed_and_course_required_ = required;
  }
  bool isSpeedAndCourseRequired() const { return speed_and_course_required_; }

 private:
  int horizontal_accuracy_ = NO_REQUIREMENT;
  int vertical_accuracy_ = NO_REQUIREMENT;
  int preferred_response_time_ms_ = NO_REQUIREMENT;
  int power_consumption_ = NO_REQUIREMENT;
  bool cost_allowed_ = true;
  bool speed_and_course_required_ = false;
};

}  // namespace mobivine::s60
