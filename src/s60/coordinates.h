// javax.microedition.location.Coordinates / QualifiedCoordinates / Location
// analogs. These are deliberately DIFFERENT types from android::Location —
// MobiVine's Location proxy converts between them and its own uniform type.
#pragma once

#include "sim/clock.h"
#include "support/geo_units.h"

namespace mobivine::s60 {

/// JSR-179 Coordinates: latitude/longitude in WGS-84 degrees, altitude in
/// meters (NaN allowed in the real API; we use 0 for "unknown").
class Coordinates {
 public:
  Coordinates() = default;
  Coordinates(double latitude, double longitude, float altitude)
      : latitude_(latitude), longitude_(longitude), altitude_(altitude) {}

  double getLatitude() const { return latitude_; }
  double getLongitude() const { return longitude_; }
  float getAltitude() const { return altitude_; }
  void setLatitude(double v) { latitude_ = v; }
  void setLongitude(double v) { longitude_ = v; }
  void setAltitude(float v) { altitude_ = v; }

  /// JSR-179 Coordinates.distance(): great-circle distance in meters.
  float distance(const Coordinates& to) const {
    return static_cast<float>(support::HaversineMeters(
        latitude_, longitude_, to.latitude_, to.longitude_));
  }

  /// JSR-179 Coordinates.azimuthTo(): initial bearing in degrees.
  float azimuthTo(const Coordinates& to) const {
    return static_cast<float>(support::InitialBearingDeg(
        latitude_, longitude_, to.latitude_, to.longitude_));
  }

 private:
  double latitude_ = 0.0;
  double longitude_ = 0.0;
  float altitude_ = 0.0f;
};

/// JSR-179 QualifiedCoordinates: Coordinates plus accuracy estimates.
class QualifiedCoordinates : public Coordinates {
 public:
  QualifiedCoordinates() = default;
  QualifiedCoordinates(double latitude, double longitude, float altitude,
                       float horizontal_accuracy, float vertical_accuracy)
      : Coordinates(latitude, longitude, altitude),
        horizontal_accuracy_(horizontal_accuracy),
        vertical_accuracy_(vertical_accuracy) {}

  float getHorizontalAccuracy() const { return horizontal_accuracy_; }
  float getVerticalAccuracy() const { return vertical_accuracy_; }

 private:
  float horizontal_accuracy_ = 0.0f;
  float vertical_accuracy_ = 0.0f;
};

/// JSR-179 Location: a fix with validity, speed, course and timestamp.
class Location {
 public:
  Location() = default;
  Location(QualifiedCoordinates coords, float speed, float course,
           sim::SimTime timestamp, bool valid)
      : coordinates_(coords),
        speed_(speed),
        course_(course),
        timestamp_(timestamp),
        valid_(valid) {}

  const QualifiedCoordinates& getQualifiedCoordinates() const {
    return coordinates_;
  }
  float getSpeed() const { return speed_; }
  float getCourse() const { return course_; }
  sim::SimTime getTimestamp() const { return timestamp_; }
  bool isValid() const { return valid_; }

 private:
  QualifiedCoordinates coordinates_;
  float speed_ = 0.0f;
  float course_ = 0.0f;
  sim::SimTime timestamp_;
  bool valid_ = false;
};

}  // namespace mobivine::s60
