#include "xml/xml_parser.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "support/strings.h"

namespace mobivine::xml {

namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}
bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         c == '-' || c == '.';
}

class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  Document ParseDocument() {
    Document doc;
    SkipProlog(doc);
    SkipMisc();
    if (AtEnd()) Fail("document has no root element");
    if (Peek() != '<') Fail("expected root element");
    doc.root = ParseElement();
    SkipMisc();
    if (!AtEnd()) Fail("content after root element");
    return doc;
  }

 private:
  [[noreturn]] void Fail(const std::string& message) const {
    throw ParseError(message, line_, column_);
  }

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  bool PeekIs(std::string_view s) const {
    return input_.substr(pos_, s.size()) == s;
  }

  char Advance() {
    char c = input_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void Expect(char c) {
    if (AtEnd() || Peek() != c) {
      Fail(std::string("expected '") + c + "'");
    }
    Advance();
  }

  void ExpectLiteral(std::string_view s) {
    if (!PeekIs(s)) Fail("expected '" + std::string(s) + "'");
    for (size_t i = 0; i < s.size(); ++i) Advance();
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }

  /// Skip whitespace and comments between top-level constructs.
  void SkipMisc() {
    while (true) {
      SkipWhitespace();
      if (PeekIs("<!--")) {
        SkipComment();
        continue;
      }
      return;
    }
  }

  void SkipProlog(Document& doc) {
    SkipWhitespace();
    if (!PeekIs("<?xml")) return;
    ExpectLiteral("<?xml");
    while (!AtEnd() && !PeekIs("?>")) {
      SkipWhitespace();
      if (PeekIs("?>")) break;
      std::string name = ParseName();
      SkipWhitespace();
      Expect('=');
      SkipWhitespace();
      std::string value = ParseQuotedValue();
      if (name == "version") doc.version = value;
      if (name == "encoding") doc.encoding = value;
    }
    ExpectLiteral("?>");
  }

  void SkipComment() {
    ExpectLiteral("<!--");
    while (!AtEnd() && !PeekIs("-->")) Advance();
    if (AtEnd()) Fail("unterminated comment");
    ExpectLiteral("-->");
  }

  std::string ParseName() {
    if (AtEnd() || !IsNameStart(Peek())) Fail("expected a name");
    std::string name;
    name += Advance();
    while (!AtEnd() && IsNameChar(Peek())) name += Advance();
    return name;
  }

  std::string ParseQuotedValue() {
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      Fail("expected a quoted attribute value");
    }
    char quote = Advance();
    std::string raw;
    while (!AtEnd() && Peek() != quote) {
      if (Peek() == '<') Fail("'<' not allowed in attribute value");
      raw += Advance();
    }
    if (AtEnd()) Fail("unterminated attribute value");
    Advance();  // closing quote
    return DecodeEntities(raw);
  }

  std::string DecodeEntities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    size_t i = 0;
    while (i < raw.size()) {
      if (raw[i] != '&') {
        out += raw[i++];
        continue;
      }
      size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) Fail("unterminated entity");
      std::string_view entity = raw.substr(i + 1, semi - i - 1);
      if (entity == "lt") {
        out += '<';
      } else if (entity == "gt") {
        out += '>';
      } else if (entity == "amp") {
        out += '&';
      } else if (entity == "quot") {
        out += '"';
      } else if (entity == "apos") {
        out += '\'';
      } else if (!entity.empty() && entity[0] == '#') {
        long long code = 0;
        bool ok;
        if (entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X')) {
          ok = true;
          code = 0;
          for (size_t k = 2; k < entity.size(); ++k) {
            char c = entity[k];
            int digit;
            if (c >= '0' && c <= '9') {
              digit = c - '0';
            } else if (c >= 'a' && c <= 'f') {
              digit = c - 'a' + 10;
            } else if (c >= 'A' && c <= 'F') {
              digit = c - 'A' + 10;
            } else {
              ok = false;
              break;
            }
            code = code * 16 + digit;
          }
          ok = ok && entity.size() > 2;
        } else {
          ok = support::ParseInt(entity.substr(1), code);
        }
        if (!ok || code <= 0 || code > 127) {
          Fail("unsupported character reference '&" + std::string(entity) +
               ";'");
        }
        out += static_cast<char>(code);
      } else {
        Fail("unknown entity '&" + std::string(entity) + ";'");
      }
      i = semi + 1;
    }
    return out;
  }

  NodePtr ParseElement() {
    Expect('<');
    std::string name = ParseName();
    NodePtr element = Node::Element(name);

    // Attributes.
    while (true) {
      SkipWhitespace();
      if (AtEnd()) Fail("unterminated start tag <" + name + ">");
      if (Peek() == '>' || PeekIs("/>")) break;
      std::string attr = ParseName();
      if (element->HasAttribute(attr)) {
        Fail("duplicate attribute '" + attr + "' on <" + name + ">");
      }
      SkipWhitespace();
      Expect('=');
      SkipWhitespace();
      element->SetAttribute(attr, ParseQuotedValue());
    }

    if (PeekIs("/>")) {
      ExpectLiteral("/>");
      return element;
    }
    Expect('>');

    // Content until the matching end tag.
    std::string pending_text;
    auto flush_text = [&] {
      if (!pending_text.empty()) {
        element->AppendChild(Node::Text(DecodeEntities(pending_text)));
        pending_text.clear();
      }
    };
    while (true) {
      if (AtEnd()) Fail("missing end tag </" + name + ">");
      if (PeekIs("</")) {
        flush_text();
        ExpectLiteral("</");
        std::string end_name = ParseName();
        if (end_name != name) {
          Fail("mismatched end tag: expected </" + name + ">, got </" +
               end_name + ">");
        }
        SkipWhitespace();
        Expect('>');
        return element;
      }
      if (PeekIs("<!--")) {
        flush_text();
        SkipComment();
        continue;
      }
      if (PeekIs("<![CDATA[")) {
        flush_text();
        ExpectLiteral("<![CDATA[");
        std::string data;
        while (!AtEnd() && !PeekIs("]]>")) data += Advance();
        if (AtEnd()) Fail("unterminated CDATA section");
        ExpectLiteral("]]>");
        element->AppendChild(Node::CData(std::move(data)));
        continue;
      }
      if (PeekIs("<!") || PeekIs("<?")) {
        Fail("DTDs and processing instructions are not supported");
      }
      if (Peek() == '<') {
        flush_text();
        element->AppendChild(ParseElement());
        continue;
      }
      pending_text += Advance();
    }
  }

  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

ParseError::ParseError(std::string message, int line, int column)
    : std::runtime_error("XML parse error at " + std::to_string(line) + ":" +
                         std::to_string(column) + ": " + message),
      line_(line),
      column_(column) {}

Document Parse(std::string_view input) { return Parser(input).ParseDocument(); }

Document ParseFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("cannot open XML file: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return Parse(buffer.str());
}

}  // namespace mobivine::xml
