// Structural schema validation for descriptor documents.
//
// The paper defines five XML Schemas for M-Proxy descriptors (semantic
// plane; Java and JavaScript syntactic planes; Java and JavaScript binding
// planes). This module provides the validation machinery: a Schema is a set
// of per-element rules (required/optional attributes, child cardinalities,
// whether text content is allowed), and Validate() walks a DOM tree and
// reports every violation with an XPath-like location.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "xml/xml_node.h"

namespace mobivine::xml {

/// Cardinality bounds for a child element; max < 0 means unbounded.
struct Occurs {
  int min = 0;
  int max = -1;
};
inline constexpr int kUnbounded = -1;

enum class TextPolicy {
  kForbidden,  ///< element may not contain non-whitespace text
  kAllowed,    ///< text is optional
  kRequired,   ///< element must contain non-whitespace text
};

/// Rule for one element name.
struct ElementRule {
  std::vector<std::string> required_attributes;
  std::vector<std::string> optional_attributes;
  /// Allowed child element name -> cardinality. Children not listed are
  /// violations unless `open_content` is set.
  std::map<std::string, Occurs> children;
  TextPolicy text = TextPolicy::kForbidden;
  /// Accept child elements that are not listed (they are skipped, not
  /// descended into unless they have their own rule).
  bool open_content = false;
};

/// One schema violation, with an XPath-like location such as
/// "/proxy/parameter[2]/name".
struct Violation {
  std::string path;
  std::string message;
};

class Schema {
 public:
  Schema(std::string name, std::string root_element)
      : name_(std::move(name)), root_element_(std::move(root_element)) {}

  const std::string& name() const { return name_; }
  const std::string& root_element() const { return root_element_; }

  /// Register (or replace) the rule for an element name.
  Schema& Rule(std::string element, ElementRule rule);

  /// Validate `root` against this schema. Returns all violations found
  /// (empty = valid).
  [[nodiscard]] std::vector<Violation> Validate(const Node& root) const;

 private:
  void ValidateElement(const Node& element, const std::string& path,
                       std::vector<Violation>& out) const;

  std::string name_;
  std::string root_element_;
  std::map<std::string, ElementRule> rules_;
};

/// Render violations as a single human-readable report.
[[nodiscard]] std::string FormatViolations(
    const std::vector<Violation>& violations);

}  // namespace mobivine::xml
