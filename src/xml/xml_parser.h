// Recursive-descent parser for the XML subset used by MobiVine descriptors.
//
// Supported: XML declaration, elements with attributes (single- or
// double-quoted), nested elements, text content, comments, CDATA sections,
// the five predefined entities and numeric character references (&#NN; and
// &#xNN;, ASCII range). Not supported (rejected with a ParseError): DTDs,
// processing instructions other than the declaration, and mismatched tags.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "xml/xml_node.h"

namespace mobivine::xml {

/// Thrown on malformed input; carries 1-based line/column of the failure.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::string message, int line, int column);
  int line() const { return line_; }
  int column() const { return column_; }

 private:
  int line_;
  int column_;
};

/// Parse a complete document. Throws ParseError on malformed input.
[[nodiscard]] Document Parse(std::string_view input);

/// Parse a file from disk. Throws ParseError (malformed) or
/// std::runtime_error (I/O failure).
[[nodiscard]] Document ParseFile(const std::string& path);

}  // namespace mobivine::xml
