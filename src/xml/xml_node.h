// A small XML document object model.
//
// Supports the XML subset MobiVine's proxy descriptors need: elements,
// attributes, text content, comments and CDATA. Namespaces are treated as
// plain prefixes (descriptor schemas do not use them). Nodes own their
// children via unique_ptr; documents are trees with single ownership.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mobivine::xml {

enum class NodeType { kElement, kText, kComment, kCData };

class Node;
using NodePtr = std::unique_ptr<Node>;

/// One node of an XML tree. Element nodes have a name, attributes and
/// children; text/comment/CDATA nodes only carry `text`.
class Node {
 public:
  static NodePtr Element(std::string name);
  static NodePtr Text(std::string text);
  static NodePtr Comment(std::string text);
  static NodePtr CData(std::string text);

  NodeType type() const { return type_; }
  const std::string& name() const { return name_; }
  const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }

  // --- attributes (element nodes only) ---------------------------------
  struct Attribute {
    std::string name;
    std::string value;
  };
  const std::vector<Attribute>& attributes() const { return attributes_; }
  void SetAttribute(std::string name, std::string value);
  [[nodiscard]] std::optional<std::string> GetAttribute(
      std::string_view name) const;
  [[nodiscard]] std::string GetAttributeOr(std::string_view name,
                                           std::string fallback) const;
  [[nodiscard]] bool HasAttribute(std::string_view name) const;

  // --- children ---------------------------------------------------------
  const std::vector<NodePtr>& children() const { return children_; }
  Node& AppendChild(NodePtr child);
  /// Convenience: append `<name>text</name>` and return the new element.
  Node& AppendElement(std::string name, std::string text = "");

  /// First child element with the given name, or nullptr.
  [[nodiscard]] const Node* FirstChild(std::string_view name) const;
  [[nodiscard]] Node* FirstChild(std::string_view name);
  /// All child elements with the given name (empty name = all elements).
  [[nodiscard]] std::vector<const Node*> Children(
      std::string_view name = "") const;

  /// Concatenated text of all direct text/CDATA children, whitespace-trimmed.
  [[nodiscard]] std::string InnerText() const;

  /// Text of child element `name`, if present (trimmed).
  [[nodiscard]] std::optional<std::string> ChildText(
      std::string_view name) const;
  [[nodiscard]] std::string ChildTextOr(std::string_view name,
                                        std::string fallback) const;

  /// Deep structural equality (attribute order significant, comments
  /// ignored). Used by round-trip tests.
  [[nodiscard]] bool StructurallyEquals(const Node& other) const;

  /// Deep copy.
  [[nodiscard]] NodePtr Clone() const;

 private:
  explicit Node(NodeType type) : type_(type) {}

  NodeType type_;
  std::string name_;
  std::string text_;
  std::vector<Attribute> attributes_;
  std::vector<NodePtr> children_;
};

/// A parsed document: optional XML declaration plus one root element.
struct Document {
  std::string version = "1.0";
  std::string encoding = "UTF-8";
  NodePtr root;
};

}  // namespace mobivine::xml
