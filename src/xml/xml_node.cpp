#include "xml/xml_node.h"

#include "support/strings.h"

namespace mobivine::xml {

NodePtr Node::Element(std::string name) {
  auto node = NodePtr(new Node(NodeType::kElement));
  node->name_ = std::move(name);
  return node;
}

NodePtr Node::Text(std::string text) {
  auto node = NodePtr(new Node(NodeType::kText));
  node->text_ = std::move(text);
  return node;
}

NodePtr Node::Comment(std::string text) {
  auto node = NodePtr(new Node(NodeType::kComment));
  node->text_ = std::move(text);
  return node;
}

NodePtr Node::CData(std::string text) {
  auto node = NodePtr(new Node(NodeType::kCData));
  node->text_ = std::move(text);
  return node;
}

void Node::SetAttribute(std::string name, std::string value) {
  for (auto& attr : attributes_) {
    if (attr.name == name) {
      attr.value = std::move(value);
      return;
    }
  }
  attributes_.push_back({std::move(name), std::move(value)});
}

std::optional<std::string> Node::GetAttribute(std::string_view name) const {
  for (const auto& attr : attributes_) {
    if (attr.name == name) return attr.value;
  }
  return std::nullopt;
}

std::string Node::GetAttributeOr(std::string_view name,
                                 std::string fallback) const {
  auto value = GetAttribute(name);
  return value ? *value : std::move(fallback);
}

bool Node::HasAttribute(std::string_view name) const {
  return GetAttribute(name).has_value();
}

Node& Node::AppendChild(NodePtr child) {
  children_.push_back(std::move(child));
  return *children_.back();
}

Node& Node::AppendElement(std::string name, std::string text) {
  auto element = Element(std::move(name));
  if (!text.empty()) element->AppendChild(Text(std::move(text)));
  return AppendChild(std::move(element));
}

const Node* Node::FirstChild(std::string_view name) const {
  for (const auto& child : children_) {
    if (child->type_ == NodeType::kElement && child->name_ == name) {
      return child.get();
    }
  }
  return nullptr;
}

Node* Node::FirstChild(std::string_view name) {
  return const_cast<Node*>(
      static_cast<const Node*>(this)->FirstChild(name));
}

std::vector<const Node*> Node::Children(std::string_view name) const {
  std::vector<const Node*> out;
  for (const auto& child : children_) {
    if (child->type_ != NodeType::kElement) continue;
    if (name.empty() || child->name_ == name) out.push_back(child.get());
  }
  return out;
}

std::string Node::InnerText() const {
  std::string out;
  for (const auto& child : children_) {
    if (child->type_ == NodeType::kText || child->type_ == NodeType::kCData) {
      out += child->text_;
    }
  }
  return std::string(support::Trim(out));
}

std::optional<std::string> Node::ChildText(std::string_view name) const {
  const Node* child = FirstChild(name);
  if (!child) return std::nullopt;
  return child->InnerText();
}

std::string Node::ChildTextOr(std::string_view name,
                              std::string fallback) const {
  auto text = ChildText(name);
  return text ? *text : std::move(fallback);
}

bool Node::StructurallyEquals(const Node& other) const {
  if (type_ != other.type_) return false;
  if (type_ == NodeType::kText) {
    // Meaningful text compares trimmed: indentation differences between a
    // pretty-printed source and its serialization are not structural.
    return support::Trim(text_) == support::Trim(other.text_);
  }
  if (type_ != NodeType::kElement) return text_ == other.text_;
  if (name_ != other.name_) return false;
  if (attributes_.size() != other.attributes_.size()) return false;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name != other.attributes_[i].name ||
        attributes_[i].value != other.attributes_[i].value) {
      return false;
    }
  }
  // Compare children, skipping comments and whitespace-only text on both
  // sides (pretty-printing must not affect structural identity).
  auto significant = [](const std::vector<NodePtr>& kids) {
    std::vector<const Node*> out;
    for (const auto& kid : kids) {
      if (kid->type() == NodeType::kComment) continue;
      if (kid->type() == NodeType::kText &&
          support::Trim(kid->text()).empty()) {
        continue;
      }
      out.push_back(kid.get());
    }
    return out;
  };
  auto mine = significant(children_);
  auto theirs = significant(other.children_);
  if (mine.size() != theirs.size()) return false;
  for (size_t i = 0; i < mine.size(); ++i) {
    if (!mine[i]->StructurallyEquals(*theirs[i])) return false;
  }
  return true;
}

NodePtr Node::Clone() const {
  auto copy = NodePtr(new Node(type_));
  copy->name_ = name_;
  copy->text_ = text_;
  copy->attributes_ = attributes_;
  copy->children_.reserve(children_.size());
  for (const auto& child : children_) {
    copy->children_.push_back(child->Clone());
  }
  return copy;
}

}  // namespace mobivine::xml
