#include "xml/xml_schema.h"

#include <sstream>

#include "support/strings.h"

namespace mobivine::xml {

Schema& Schema::Rule(std::string element, ElementRule rule) {
  rules_[std::move(element)] = std::move(rule);
  return *this;
}

std::vector<Violation> Schema::Validate(const Node& root) const {
  std::vector<Violation> out;
  if (root.type() != NodeType::kElement) {
    out.push_back({"/", "root node is not an element"});
    return out;
  }
  if (root.name() != root_element_) {
    out.push_back({"/" + root.name(), "expected root element <" +
                                          root_element_ + ">, found <" +
                                          root.name() + ">"});
    return out;
  }
  ValidateElement(root, "/" + root.name(), out);
  return out;
}

void Schema::ValidateElement(const Node& element, const std::string& path,
                             std::vector<Violation>& out) const {
  auto it = rules_.find(element.name());
  if (it == rules_.end()) {
    // No rule: nothing to check here, but still descend into children that
    // do have rules so nested violations are not masked.
    for (const Node* child : element.Children()) {
      if (rules_.count(child->name())) {
        ValidateElement(*child, path + "/" + child->name(), out);
      }
    }
    return;
  }
  const ElementRule& rule = it->second;

  // Attributes.
  for (const auto& required : rule.required_attributes) {
    if (!element.HasAttribute(required)) {
      out.push_back({path, "missing required attribute '" + required + "'"});
    }
  }
  for (const auto& attr : element.attributes()) {
    bool known = false;
    for (const auto& name : rule.required_attributes) {
      if (name == attr.name) known = true;
    }
    for (const auto& name : rule.optional_attributes) {
      if (name == attr.name) known = true;
    }
    if (!known) {
      out.push_back({path, "unexpected attribute '" + attr.name + "'"});
    }
  }

  // Text content.
  const std::string text = element.InnerText();
  if (rule.text == TextPolicy::kForbidden && !text.empty()) {
    out.push_back({path, "text content not allowed"});
  }
  if (rule.text == TextPolicy::kRequired && text.empty()) {
    out.push_back({path, "text content required"});
  }

  // Children: count occurrences, check bounds and unknown names.
  std::map<std::string, int> counts;
  std::map<std::string, int> ordinal;  // per-name index for paths
  for (const Node* child : element.Children()) {
    ++counts[child->name()];
    int index = ++ordinal[child->name()];
    auto allowed = rule.children.find(child->name());
    if (allowed == rule.children.end()) {
      if (!rule.open_content) {
        out.push_back(
            {path, "unexpected child element <" + child->name() + ">"});
      }
      // Descend anyway if the child has a rule of its own.
      if (rules_.count(child->name())) {
        ValidateElement(*child,
                        path + "/" + child->name() + "[" +
                            std::to_string(index) + "]",
                        out);
      }
      continue;
    }
    ValidateElement(
        *child,
        path + "/" + child->name() + "[" + std::to_string(index) + "]", out);
  }
  for (const auto& [name, occurs] : rule.children) {
    int count = counts.count(name) ? counts[name] : 0;
    if (count < occurs.min) {
      out.push_back({path, "element <" + name + "> occurs " +
                               std::to_string(count) + " time(s), minimum " +
                               std::to_string(occurs.min)});
    }
    if (occurs.max >= 0 && count > occurs.max) {
      out.push_back({path, "element <" + name + "> occurs " +
                               std::to_string(count) + " time(s), maximum " +
                               std::to_string(occurs.max)});
    }
  }
}

std::string FormatViolations(const std::vector<Violation>& violations) {
  std::ostringstream out;
  for (const auto& violation : violations) {
    out << violation.path << ": " << violation.message << '\n';
  }
  return out.str();
}

}  // namespace mobivine::xml
