// Serializer for the XML DOM. Output re-parses to a structurally equal
// tree (the round-trip property is tested in tests/xml_test.cpp).
#pragma once

#include <string>

#include "xml/xml_node.h"

namespace mobivine::xml {

struct WriteOptions {
  /// Spaces per nesting level; 0 writes everything on one line.
  int indent = 2;
  /// Emit the <?xml ...?> declaration.
  bool declaration = true;
};

/// Serialize a node subtree.
[[nodiscard]] std::string WriteNode(const Node& node,
                                    const WriteOptions& options = {});

/// Serialize a whole document.
[[nodiscard]] std::string WriteDocument(const Document& doc,
                                        const WriteOptions& options = {});

/// Escape text content (&, <, >) or attribute values (also " and ').
[[nodiscard]] std::string EscapeText(std::string_view text);
[[nodiscard]] std::string EscapeAttribute(std::string_view value);

}  // namespace mobivine::xml
