#include "xml/xml_writer.h"

#include <sstream>

namespace mobivine::xml {

namespace {

void WriteIndent(std::ostringstream& out, int depth, int indent) {
  if (indent <= 0) return;
  out << '\n';
  for (int i = 0; i < depth * indent; ++i) out << ' ';
}

bool HasElementChildren(const Node& node) {
  for (const auto& child : node.children()) {
    if (child->type() == NodeType::kElement ||
        child->type() == NodeType::kComment) {
      return true;
    }
  }
  return false;
}

void WriteNodeImpl(std::ostringstream& out, const Node& node, int depth,
                   const WriteOptions& options) {
  switch (node.type()) {
    case NodeType::kText:
      out << EscapeText(node.text());
      return;
    case NodeType::kComment:
      out << "<!--" << node.text() << "-->";
      return;
    case NodeType::kCData:
      out << "<![CDATA[" << node.text() << "]]>";
      return;
    case NodeType::kElement:
      break;
  }

  out << '<' << node.name();
  for (const auto& attr : node.attributes()) {
    out << ' ' << attr.name << "=\"" << EscapeAttribute(attr.value) << '"';
  }
  if (node.children().empty()) {
    out << "/>";
    return;
  }
  out << '>';

  const bool block = HasElementChildren(node);
  for (const auto& child : node.children()) {
    if (block && child->type() != NodeType::kText) {
      WriteIndent(out, depth + 1, options.indent);
    }
    WriteNodeImpl(out, *child, depth + 1, options);
  }
  if (block) WriteIndent(out, depth, options.indent);
  out << "</" << node.name() << '>';
}

}  // namespace

std::string EscapeText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string EscapeAttribute(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string WriteNode(const Node& node, const WriteOptions& options) {
  std::ostringstream out;
  WriteNodeImpl(out, node, 0, options);
  return out.str();
}

std::string WriteDocument(const Document& doc, const WriteOptions& options) {
  std::ostringstream out;
  if (options.declaration) {
    out << "<?xml version=\"" << doc.version << "\" encoding=\""
        << doc.encoding << "\"?>";
    if (options.indent > 0) out << '\n';
  }
  if (doc.root) out << WriteNode(*doc.root, options);
  if (options.indent > 0) out << '\n';
  return out.str();
}

}  // namespace mobivine::xml
