// MobiVine's unified error model.
//
// Each platform throws its own exception hierarchy (android::*, s60::*) or
// propagates error codes (the WebView JS bridge). The binding plane of a
// proxy declares the platform's exception set; at runtime every native
// failure is mapped onto one ProxyError so application code handles errors
// identically on every platform.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace mobivine::core {

enum class ErrorCode {
  kSecurity,             ///< missing permission on the underlying platform
  kIllegalArgument,      ///< bad parameter rejected by the platform
  kLocationUnavailable,  ///< no fix / provider cannot serve the request
  kTimeout,              ///< operation exceeded the platform's time budget
  kUnreachable,          ///< destination (host/subscriber) unreachable
  kRadioFailure,         ///< transient radio-level failure
  kUnsupported,          ///< interface not exposed on this platform/version
  kInvalidState,         ///< call sequencing error (closed handle, busy line)
  kNetwork,              ///< generic network-layer failure
  kOverloaded,           ///< gateway shed the request (admission control)
  kDeadlineExceeded,     ///< request deadline expired before/while serving
  kAllBackendsFailed,    ///< failover exhausted every healthy platform
  kUnknown,
};

[[nodiscard]] const char* ToString(ErrorCode code);

/// Inverse of ToString: "timeout" -> kTimeout, etc. Unrecognised names map
/// to kUnknown. Lets layers below core/ (support::FaultPlan) name error
/// codes as strings without depending on this enum.
[[nodiscard]] ErrorCode ErrorCodeFromName(std::string_view name);

/// The single exception type the MobiVine public API throws.
class ProxyError : public std::runtime_error {
 public:
  ProxyError(ErrorCode code, const std::string& message,
             std::string platform = "", std::string native_type = "")
      : std::runtime_error("[" + std::string(ToString(code)) + "] " + message),
        code_(code),
        platform_(std::move(platform)),
        native_type_(std::move(native_type)) {}

  ErrorCode code() const { return code_; }
  /// Which binding raised it ("android", "s60", "webview"); empty when the
  /// error originated in the MobiVine layer itself.
  const std::string& platform() const { return platform_; }
  /// The native exception type that was absorbed (diagnostics).
  const std::string& native_type() const { return native_type_; }

 private:
  ErrorCode code_;
  std::string platform_;
  std::string native_type_;
};

/// Map the in-flight exception (rethrown internally) from a given platform
/// to a ProxyError, which is then thrown. Must be called inside a catch
/// block. ProxyError passes through unchanged.
[[noreturn]] void RethrowAsProxyError(const std::string& platform);

/// Map a WebView bridge error code (webview::kErrorCode*) to ErrorCode.
[[nodiscard]] ErrorCode FromWebViewErrorCode(int code);

}  // namespace mobivine::core
