// Overhead accounting for the MobiVine layer.
//
// The proxy deltas in Figure 10 ("With Proxy" minus "Without Proxy") are
// the cost of the de-fragmentation work itself: property handling, type
// conversion, listener adaptation, exception mapping. Rather than charging
// an opaque constant, every binding charges per primitive operation it
// actually performs; the per-op virtual costs below model a 2009-class
// handset VM (see EXPERIMENTS.md §Calibration). Benches report both the
// virtual milliseconds and the op counts.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "sim/clock.h"
#include "sim/scheduler.h"
#include "support/trace.h"

namespace mobivine::core {

enum class Op : int {
  kDispatch = 0,         ///< uniform-API entry: argument staging + vtable hop
  kPropertySet,          ///< setProperty() store + descriptor check
  kPropertyLookup,       ///< binding reads a property at invocation time
  kValidation,           ///< parameter range/shape validation
  kTypeConversion,       ///< one field converted between type systems
  kListenerAdaptation,   ///< wiring a callback style onto another
  kExceptionMap,         ///< native exception -> ProxyError
  kEnrichment,           ///< extra value-add logic (units, retries, policy)
  kCount_,
};

[[nodiscard]] const char* ToString(Op op);

/// M-Scope span name for an op charge ("op.dispatch", ...). Static
/// storage: safe to hand to the trace recorder.
[[nodiscard]] const char* TraceNameOf(Op op);

/// Virtual cost per operation on the modeled 2009 handset.
struct OpCostModel {
  std::array<sim::SimTime, static_cast<int>(Op::kCount_)> cost = {
      sim::SimTime::Micros(500),  // kDispatch
      sim::SimTime::Micros(300),  // kPropertySet
      sim::SimTime::Micros(120),  // kPropertyLookup
      sim::SimTime::Micros(150),  // kValidation
      sim::SimTime::Micros(100),  // kTypeConversion
      sim::SimTime::Micros(800),  // kListenerAdaptation
      sim::SimTime::Micros(200),  // kExceptionMap
      sim::SimTime::Micros(250),  // kEnrichment
  };
};

/// Charges per-op virtual time on a scheduler and counts operations.
/// One meter per proxy instance; benches read counts() and charged().
///
/// Counters are single-writer (the proxy's owning thread) but readable
/// from any thread — the M-Scope metrics plane snapshots them while a
/// gateway shard is serving — so they are relaxed atomics written with
/// load+store (which compiles to the same plain add as before, there is
/// never a concurrent writer to race the increment against). Every
/// Charge() also emits a trace instant carrying the op's virtual-cost
/// attribution, so spans recorded around a binding call show exactly
/// which de-fragmentation work ran underneath them.
class OverheadMeter {
 public:
  OverheadMeter(sim::Scheduler& scheduler, OpCostModel model = {})
      : scheduler_(&scheduler), model_(model) {}

  void Charge(Op op, int times = 1) {
    const int index = static_cast<int>(op);
    counts_[index].store(
        counts_[index].load(std::memory_order_relaxed) +
            static_cast<std::uint64_t>(times),
        std::memory_order_relaxed);
    const sim::SimTime total = model_.cost[index] * times;
    charged_us_.store(
        charged_us_.load(std::memory_order_relaxed) + total.micros(),
        std::memory_order_relaxed);
    scheduler_->AdvanceBy(total);
    support::trace::Instant(TraceNameOf(op), "count", times, "virt_cost_us",
                            total.micros());
  }

  std::uint64_t count(Op op) const {
    return counts_[static_cast<int>(op)].load(std::memory_order_relaxed);
  }
  std::uint64_t total_ops() const {
    std::uint64_t sum = 0;
    for (const auto& c : counts_) sum += c.load(std::memory_order_relaxed);
    return sum;
  }
  sim::SimTime charged() const {
    return sim::SimTime::Micros(charged_us_.load(std::memory_order_relaxed));
  }

  void Reset() {
    for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
    charged_us_.store(0, std::memory_order_relaxed);
  }

  /// The virtual clock this meter charges against; the fault plane uses
  /// it to charge injected latency on the same timeline.
  sim::Scheduler& scheduler() const { return *scheduler_; }

 private:
  sim::Scheduler* scheduler_;
  OpCostModel model_;
  std::array<std::atomic<std::uint64_t>, static_cast<int>(Op::kCount_)>
      counts_ = {};
  std::atomic<std::int64_t> charged_us_{0};
};

}  // namespace mobivine::core
