// Overhead accounting for the MobiVine layer.
//
// The proxy deltas in Figure 10 ("With Proxy" minus "Without Proxy") are
// the cost of the de-fragmentation work itself: property handling, type
// conversion, listener adaptation, exception mapping. Rather than charging
// an opaque constant, every binding charges per primitive operation it
// actually performs; the per-op virtual costs below model a 2009-class
// handset VM (see EXPERIMENTS.md §Calibration). Benches report both the
// virtual milliseconds and the op counts.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "sim/clock.h"
#include "sim/scheduler.h"

namespace mobivine::core {

enum class Op : int {
  kDispatch = 0,         ///< uniform-API entry: argument staging + vtable hop
  kPropertySet,          ///< setProperty() store + descriptor check
  kPropertyLookup,       ///< binding reads a property at invocation time
  kValidation,           ///< parameter range/shape validation
  kTypeConversion,       ///< one field converted between type systems
  kListenerAdaptation,   ///< wiring a callback style onto another
  kExceptionMap,         ///< native exception -> ProxyError
  kEnrichment,           ///< extra value-add logic (units, retries, policy)
  kCount_,
};

[[nodiscard]] const char* ToString(Op op);

/// Virtual cost per operation on the modeled 2009 handset.
struct OpCostModel {
  std::array<sim::SimTime, static_cast<int>(Op::kCount_)> cost = {
      sim::SimTime::Micros(500),  // kDispatch
      sim::SimTime::Micros(300),  // kPropertySet
      sim::SimTime::Micros(120),  // kPropertyLookup
      sim::SimTime::Micros(150),  // kValidation
      sim::SimTime::Micros(100),  // kTypeConversion
      sim::SimTime::Micros(800),  // kListenerAdaptation
      sim::SimTime::Micros(200),  // kExceptionMap
      sim::SimTime::Micros(250),  // kEnrichment
  };
};

/// Charges per-op virtual time on a scheduler and counts operations.
/// One meter per proxy instance; benches read counts() and charged().
class OverheadMeter {
 public:
  OverheadMeter(sim::Scheduler& scheduler, OpCostModel model = {})
      : scheduler_(&scheduler), model_(model) {}

  void Charge(Op op, int times = 1) {
    const int index = static_cast<int>(op);
    counts_[index] += static_cast<std::uint64_t>(times);
    const sim::SimTime total = model_.cost[index] * times;
    charged_ += total;
    scheduler_->AdvanceBy(total);
  }

  std::uint64_t count(Op op) const { return counts_[static_cast<int>(op)]; }
  std::uint64_t total_ops() const {
    std::uint64_t sum = 0;
    for (auto c : counts_) sum += c;
    return sum;
  }
  sim::SimTime charged() const { return charged_; }

  void Reset() {
    counts_ = {};
    charged_ = sim::SimTime::Zero();
  }

 private:
  sim::Scheduler* scheduler_;
  OpCostModel model_;
  std::array<std::uint64_t, static_cast<int>(Op::kCount_)> counts_ = {};
  sim::SimTime charged_;
};

}  // namespace mobivine::core
