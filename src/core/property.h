// The generic property mechanism of the M-Proxy model.
//
// "Any platform-mandated information should not form part of a common API,
// but should still be provided to the implementation module for that
// platform" (paper §4.1). Properties carry that information: Android's
// application context, S60's Criteria values, the WebView provider name —
// all set through one setProperty() surface and validated against the
// binding plane's property list.
#pragma once

#include <any>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace mobivine::core {

/// A property bag with typed accessors. Values are std::any so bindings can
/// accept opaque native handles (e.g. android::Context*) alongside scalars.
class PropertyBag {
 public:
  void Set(const std::string& name, std::any value) {
    values_[name] = std::move(value);
  }

  [[nodiscard]] bool Has(const std::string& name) const {
    return values_.count(name) > 0;
  }

  /// Typed get; nullopt when missing or of a different type.
  template <typename T>
  [[nodiscard]] std::optional<T> Get(const std::string& name) const {
    auto it = values_.find(name);
    if (it == values_.end()) return std::nullopt;
    if (const T* value = std::any_cast<T>(&it->second)) return *value;
    return std::nullopt;
  }

  template <typename T>
  [[nodiscard]] T GetOr(const std::string& name, T fallback) const {
    auto value = Get<T>(name);
    return value ? *value : fallback;
  }

  [[nodiscard]] std::vector<std::string> Names() const {
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto& [name, _] : values_) out.push_back(name);
    return out;
  }

  std::size_t size() const { return values_.size(); }

 private:
  std::map<std::string, std::any> values_;
};

}  // namespace mobivine::core
