// The generic property mechanism of the M-Proxy model.
//
// "Any platform-mandated information should not form part of a common API,
// but should still be provided to the implementation module for that
// platform" (paper §4.1). Properties carry that information: Android's
// application context, S60's Criteria values, the WebView provider name —
// all set through one setProperty() surface and validated against the
// binding plane's property list.
//
// Fast-path layout: keys are interned Symbols (one hash per distinct
// spelling, integer compares afterwards) held in a flat small-vector
// apart from the values, and the four scalar types every descriptor declares
// (string / int / double / bool) live inline in a variant. Only opaque
// native handles (e.g. android::Context*) take the std::any fallback
// lane, so the common setProperty/getProperty round trip never touches
// the heap once a slot exists.
#pragma once

#include <algorithm>
#include <any>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <variant>
#include <vector>

#include "support/interner.h"
#include "support/small_vector.h"

namespace mobivine::core {

/// A value on its way into a PropertyBag: scalars ride the inline variant
/// lanes, anything else is boxed into std::any. Implicit construction
/// keeps the classic `setProperty("name", value)` call shape working for
/// strings, integers, doubles, bools, and arbitrary handle types alike.
class PropertyValue {
 public:
  using Stored = std::variant<std::string, long long, double, bool, std::any>;

  /// One dispatching constructor rather than an overload set: overload
  /// resolution would happily send a raw pointer down a bool conversion
  /// or make `setProperty(name, 5)` ambiguous. Dispatching on the exact
  /// decayed type keeps the rule simple — string-ish / long long /
  /// double / bool ride the inline lanes, everything else (int kept as
  /// int, native handles, float, ...) boxes into std::any so Get<T>
  /// sees the exact caller type, as it did with the std::map<any> bag.
  template <typename T,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<T>, PropertyValue>>>
  PropertyValue(T&& value)  // NOLINT(google-explicit-constructor)
      : stored_(Box(std::forward<T>(value))) {}

  [[nodiscard]] const std::string* AsString() const {
    return std::get_if<std::string>(&stored_);
  }
  [[nodiscard]] const long long* AsInt() const {
    return std::get_if<long long>(&stored_);
  }
  [[nodiscard]] const std::any* AsAny() const {
    return std::get_if<std::any>(&stored_);
  }

  Stored& stored() { return stored_; }
  const Stored& stored() const { return stored_; }

 private:
  template <typename T>
  static Stored Box(T&& value) {
    using D = std::decay_t<T>;
    if constexpr (std::is_same_v<D, std::string>) {
      return Stored(std::in_place_type<std::string>, std::forward<T>(value));
    } else if constexpr (std::is_same_v<D, const char*> ||
                         std::is_same_v<D, char*> ||
                         std::is_same_v<D, std::string_view>) {
      return Stored(std::in_place_type<std::string>, value);
    } else if constexpr (std::is_same_v<D, long long>) {
      return Stored(std::in_place_type<long long>, value);
    } else if constexpr (std::is_same_v<D, double>) {
      return Stored(std::in_place_type<double>, value);
    } else if constexpr (std::is_same_v<D, bool>) {
      return Stored(std::in_place_type<bool>, value);
    } else if constexpr (std::is_same_v<D, std::any>) {
      // Unwrap so Set(name, std::any(42LL)) and Set(name, 42LL) store —
      // and Get — identically.
      return Unbox(std::forward<T>(value));
    } else {
      return Stored(std::in_place_type<std::any>,
                    std::in_place_type<D>, std::forward<T>(value));
    }
  }

  static Stored Unbox(std::any value) {
    if (auto* s = std::any_cast<std::string>(&value)) return std::move(*s);
    if (auto* i = std::any_cast<long long>(&value)) return *i;
    if (auto* d = std::any_cast<double>(&value)) return *d;
    if (auto* b = std::any_cast<bool>(&value)) return *b;
    return Stored(std::in_place_type<std::any>, std::move(value));
  }

  Stored stored_;
};

/// A property bag with typed accessors, keyed by interned symbols from
/// the global Interner.
class PropertyBag {
 public:
  void Set(const std::string& name, PropertyValue value) {
    Set(support::Interner::Global().Intern(name), std::move(value));
  }

  /// Symbol fast path: no hashing (MProxy resolves spec symbols once at
  /// construction and reuses them every call).
  void Set(support::Symbol key, PropertyValue value) {
    const std::size_t at = FindSlot(key);
    if (at != kNoSlot) {
      values_[at] = std::move(value.stored());
      return;
    }
    keys_.push_back(key);
    values_.push_back(std::move(value.stored()));
  }

  [[nodiscard]] bool Has(const std::string& name) const {
    return FindSlot(support::Interner::Global().Lookup(name)) != kNoSlot;
  }
  [[nodiscard]] bool Has(support::Symbol key) const {
    return FindSlot(key) != kNoSlot;
  }

  /// Typed get; nullopt when missing or of a different type.
  template <typename T>
  [[nodiscard]] std::optional<T> Get(const std::string& name) const {
    return Get<T>(support::Interner::Global().Lookup(name));
  }

  template <typename T>
  [[nodiscard]] std::optional<T> Get(support::Symbol key) const {
    const std::size_t at = FindSlot(key);
    if (at == kNoSlot) return std::nullopt;
    const PropertyValue::Stored& stored = values_[at];
    if constexpr (std::is_same_v<T, std::string> ||
                  std::is_same_v<T, long long> ||
                  std::is_same_v<T, double> || std::is_same_v<T, bool>) {
      if (const T* value = std::get_if<T>(&stored)) return *value;
    } else {
      if (const auto* box = std::get_if<std::any>(&stored)) {
        if (const T* value = std::any_cast<T>(box)) return *value;
      }
    }
    return std::nullopt;
  }

  template <typename T>
  [[nodiscard]] T GetOr(const std::string& name, T fallback) const {
    auto value = Get<T>(name);
    return value ? *value : std::move(fallback);
  }

  template <typename T>
  [[nodiscard]] T GetOr(support::Symbol key, T fallback) const {
    auto value = Get<T>(key);
    return value ? *value : std::move(fallback);
  }

  /// Property names, sorted alphabetically (historic std::map order).
  [[nodiscard]] std::vector<std::string> Names() const {
    std::vector<std::string> out;
    out.reserve(keys_.size());
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      out.push_back(support::Interner::Global().NameOf(keys_[i]));
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  std::size_t size() const { return keys_.size(); }

 private:
  static constexpr std::size_t kNoSlot = ~std::size_t{0};

  /// Keys live apart from the fat variant values so the common scan
  /// (a handful of 4-byte symbol ids) touches a single cache line.
  [[nodiscard]] std::size_t FindSlot(support::Symbol key) const {
    if (!key.valid()) return kNoSlot;
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] == key) return i;
    }
    return kNoSlot;
  }

  support::SmallVector<support::Symbol, 8> keys_;  // slot-parallel
  support::SmallVector<PropertyValue::Stored, 4> values_;
};

}  // namespace mobivine::core
