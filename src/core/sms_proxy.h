// The SMS M-Proxy: uniform messaging interface (semantic plane "Sms").
//
// Uniform semantics: sendTextMessage() returns a message id immediately
// after validation; delivery progress arrives on the optional SmsListener
// (kSubmitted then kDelivered, or kFailed). The Android binding adapts the
// platform's Intent broadcasts, the S60 binding adapts the blocking
// exception-reporting send(), and the WebView binding polls the
// notification table — three callback styles behind one surface.
#pragma once

#include <string>

#include "core/proxy.h"
#include "core/uniform_types.h"

namespace mobivine::core {

class SmsProxy : public MProxy {
 public:
  using MProxy::MProxy;

  /// Send a text message. Throws ProxyError(kIllegalArgument) for an empty
  /// destination or body; transport failures are reported via `listener`
  /// (or, on platforms that detect them synchronously, by
  /// ProxyError(kRadioFailure / kUnreachable)).
  virtual long long sendTextMessage(const std::string& destination,
                                    const std::string& text,
                                    SmsListener* listener) = 0;

  /// Number of transport segments `text` would use (uniform helper).
  [[nodiscard]] virtual int segmentCount(const std::string& text) = 0;
};

}  // namespace mobivine::core
