// The Pim (contacts) M-Proxy — the paper's §7 future-work interface
// ("extend MobiVine implementation to cover other platform interfaces like
// those related to calendaring and contact list information").
//
// It absorbs a third flavor of data-access fragmentation:
//   android — content-provider cursor iteration (moveToNext/getString)
//   s60     — JSR-75 PIM lists with field-indexed items
//   iphone  — AddressBook C-style Copy calls
//   webview — the JS proxy over the wrapper + bridge
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/proxy.h"
#include "core/uniform_types.h"

namespace mobivine::core {

class PimProxy : public MProxy {
 public:
  using MProxy::MProxy;

  /// Every contact on the device, as uniform records.
  [[nodiscard]] virtual std::vector<Contact> listContacts() = 0;

  /// Lookup by exact phone number.
  [[nodiscard]] virtual std::optional<Contact> findByNumber(
      const std::string& phone_number) = 0;

  /// Case-insensitive display-name substring search (enrichment on
  /// platforms whose native API has no filter).
  [[nodiscard]] virtual std::vector<Contact> findByName(
      const std::string& fragment) = 0;
};

}  // namespace mobivine::core
