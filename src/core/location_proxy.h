// The Location M-Proxy: uniform location interface (semantic plane
// "Location"), implemented per platform under core/bindings/.
//
// Platform attributes go through setProperty():
//   android: "context" (required handle), "provider" ("gps"/"network")
//   s60:     "preferredResponseTime", "horizontalAccuracy",
//            "verticalAccuracy", "powerConsumption", "costAllowed"
#pragma once

#include "core/proxy.h"
#include "core/uniform_types.h"

namespace mobivine::core {

class LocationProxy : public MProxy {
 public:
  using MProxy::MProxy;

  /// Register a continuous proximity alert: `listener->proximityEvent` is
  /// invoked with entering=true/false on every boundary crossing until
  /// `timer_ms` elapses (timer_ms < 0 = never) or the listener is removed.
  /// These are the Android semantics; the S60 binding emulates them on top
  /// of the platform's one-shot listener (paper §2).
  virtual void addProximityAlert(double latitude, double longitude,
                                 double altitude, float radius_m,
                                 long long timer_ms,
                                 ProximityListener* listener) = 0;

  virtual void removeProximityAlert(ProximityListener* listener) = 0;

  /// Blocking read of the current location, converted to the uniform type
  /// and to the proxy's configured angle unit.
  [[nodiscard]] virtual Location getLocation() = 0;

  /// Enrichment (paper §3.3): output angle format. Defaults to degrees.
  void setAngleUnit(AngleUnit unit) { angle_unit_ = unit; }
  AngleUnit angle_unit() const { return angle_unit_; }

  std::size_t active_alert_count() const { return active_alerts_; }

 protected:
  /// Apply the configured angle unit to a degrees-based uniform location.
  [[nodiscard]] Location ConvertUnits(Location location);

  AngleUnit angle_unit_ = AngleUnit::kDegrees;
  std::size_t active_alerts_ = 0;
};

}  // namespace mobivine::core
