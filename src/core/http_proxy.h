// The Http M-Proxy (semantic plane "Http"): uniform blocking HTTP exchange
// used by device-side code to reach the server-side application.
#pragma once

#include <map>
#include <string>

#include "core/proxy.h"
#include "core/uniform_types.h"

namespace mobivine::core {

class HttpProxy : public MProxy {
 public:
  using MProxy::MProxy;

  /// Blocking GET. Network failures surface as ProxyError
  /// (kUnreachable / kTimeout / kNetwork) on every platform.
  [[nodiscard]] virtual HttpResult get(const std::string& url) = 0;

  /// Blocking POST with a body and content type.
  [[nodiscard]] virtual HttpResult post(const std::string& url,
                                        const std::string& body,
                                        const std::string& content_type) = 0;

  /// Extra request header applied to subsequent exchanges (uniform
  /// convenience; maps to each platform's header mechanism).
  virtual void setHeader(const std::string& name, const std::string& value) = 0;
};

}  // namespace mobivine::core
