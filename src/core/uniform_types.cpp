#include "core/uniform_types.h"

namespace mobivine::core {

const char* ToString(SmsDeliveryStatus status) {
  switch (status) {
    case SmsDeliveryStatus::kSubmitted:
      return "submitted";
    case SmsDeliveryStatus::kDelivered:
      return "delivered";
    case SmsDeliveryStatus::kFailed:
      return "failed";
  }
  return "?";
}

const char* ToString(CallProgress progress) {
  switch (progress) {
    case CallProgress::kDialing:
      return "dialing";
    case CallProgress::kRinging:
      return "ringing";
    case CallProgress::kConnected:
      return "connected";
    case CallProgress::kEnded:
      return "ended";
    case CallProgress::kFailed:
      return "failed";
  }
  return "?";
}

}  // namespace mobivine::core
