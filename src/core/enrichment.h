// Proxy enrichment (paper §3.3): value-add layers stacked on top of a
// binding without touching it.
//
//  * Output-format enrichment for Location lives on LocationProxy itself
//    (setAngleUnit — degrees/radians).
//  * RetryingCallProxy — "coordinating the number of retries in case the
//    callee is unreachable".
//  * AccessPolicy + the Secure* decorators — "security and other policy
//    modules can also be added to provide a layer of trust, authentication
//    and access control".
#pragma once

#include <any>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/call_proxy.h"
#include "core/http_proxy.h"
#include "core/location_proxy.h"
#include "core/sms_proxy.h"
#include "sim/scheduler.h"

namespace mobivine::core {

// ---------------------------------------------------------------------------
// Retry enrichment for Call
// ---------------------------------------------------------------------------

/// Decorator that redials automatically when the callee is unreachable
/// (call ends in kFailed). Retries are spaced by `retry_delay`; progress —
/// including intermediate failures — is forwarded to the caller's listener.
class RetryingCallProxy : public CallProxy, private CallListener {
 public:
  RetryingCallProxy(std::unique_ptr<CallProxy> inner,
                    sim::Scheduler& scheduler, int max_retries,
                    sim::SimTime retry_delay = sim::SimTime::Seconds(2));
  ~RetryingCallProxy() override;

  bool makeCall(const std::string& number, CallListener* listener) override;
  void endCall() override;
  CallProgress currentState() override;
  void setProperty(const std::string& name, PropertyValue value) override {
    inner_->setProperty(name, std::move(value));
  }

  int retries_used() const { return retries_used_; }

 private:
  void callStateChanged(CallProgress progress) override;

  std::unique_ptr<CallProxy> inner_;
  sim::Scheduler& scheduler_;
  int max_retries_;
  sim::SimTime retry_delay_;
  int retries_used_ = 0;
  std::string number_;
  CallListener* client_listener_ = nullptr;
  bool call_abandoned_ = false;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

// ---------------------------------------------------------------------------
// Access-control enrichment
// ---------------------------------------------------------------------------

/// Simple ACL: which proxy interfaces may be used, and which destination
/// prefixes (phone numbers) are permitted for Sms/Call.
class AccessPolicy {
 public:
  /// Default: everything denied until allowed.
  void AllowInterface(const std::string& name) { interfaces_.insert(name); }
  void AllowDestinationPrefix(const std::string& prefix) {
    prefixes_.push_back(prefix);
  }

  [[nodiscard]] bool InterfaceAllowed(const std::string& name) const {
    return interfaces_.count(name) > 0;
  }
  /// True when no prefixes are configured (unconstrained) or one matches.
  [[nodiscard]] bool DestinationAllowed(const std::string& number) const;

 private:
  std::set<std::string> interfaces_;
  std::vector<std::string> prefixes_;
};

// ---------------------------------------------------------------------------
// Authentication enrichment ("a layer of trust, authentication and access
// control", paper §3.3)
// ---------------------------------------------------------------------------

/// Decorator over any platform's Http proxy that manages a bearer token:
/// it fetches a token from `token_url` on first use, attaches it as an
/// Authorization header, and on a 401 response refreshes the token and
/// retries the exchange once. Application code stays token-free.
class AuthenticatingHttpProxy : public HttpProxy {
 public:
  AuthenticatingHttpProxy(std::unique_ptr<HttpProxy> inner,
                          std::string token_url, std::string credentials,
                          sim::Scheduler& scheduler);

  HttpResult get(const std::string& url) override;
  HttpResult post(const std::string& url, const std::string& body,
                  const std::string& content_type) override;
  void setHeader(const std::string& name, const std::string& value) override {
    inner_->setHeader(name, value);
  }
  void setProperty(const std::string& name, PropertyValue value) override {
    inner_->setProperty(name, std::move(value));
  }

  int token_fetches() const { return token_fetches_; }

 private:
  /// Fetch (or refresh) the bearer token. Throws ProxyError(kSecurity)
  /// when the token endpoint rejects the credentials.
  void EnsureToken(bool force_refresh);
  HttpResult Exchange(const std::function<HttpResult()>& send);

  std::unique_ptr<HttpProxy> inner_;
  std::string token_url_;
  std::string credentials_;
  std::string token_;
  int token_fetches_ = 0;
};

/// Decorators that enforce an AccessPolicy before delegating; violations
/// throw ProxyError(kSecurity) with no platform interaction at all.
class SecureSmsProxy : public SmsProxy {
 public:
  SecureSmsProxy(std::unique_ptr<SmsProxy> inner, const AccessPolicy& policy,
                 sim::Scheduler& scheduler);

  long long sendTextMessage(const std::string& destination,
                            const std::string& text,
                            SmsListener* listener) override;
  int segmentCount(const std::string& text) override;
  void setProperty(const std::string& name, PropertyValue value) override {
    inner_->setProperty(name, std::move(value));
  }

 private:
  std::unique_ptr<SmsProxy> inner_;
  const AccessPolicy& policy_;
};

class SecureCallProxy : public CallProxy {
 public:
  SecureCallProxy(std::unique_ptr<CallProxy> inner, const AccessPolicy& policy,
                  sim::Scheduler& scheduler);

  bool makeCall(const std::string& number, CallListener* listener) override;
  void endCall() override;
  CallProgress currentState() override;
  void setProperty(const std::string& name, PropertyValue value) override {
    inner_->setProperty(name, std::move(value));
  }

 private:
  std::unique_ptr<CallProxy> inner_;
  const AccessPolicy& policy_;
};

class SecureLocationProxy : public LocationProxy {
 public:
  SecureLocationProxy(std::unique_ptr<LocationProxy> inner,
                      const AccessPolicy& policy, sim::Scheduler& scheduler);

  void addProximityAlert(double latitude, double longitude, double altitude,
                         float radius_m, long long timer_ms,
                         ProximityListener* listener) override;
  void removeProximityAlert(ProximityListener* listener) override;
  Location getLocation() override;
  void setProperty(const std::string& name, PropertyValue value) override {
    inner_->setProperty(name, std::move(value));
  }

 private:
  void CheckAllowed();
  std::unique_ptr<LocationProxy> inner_;
  const AccessPolicy& policy_;
};

}  // namespace mobivine::core
