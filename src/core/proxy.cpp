#include "core/proxy.h"

#include <any>
#include <charconv>
#include <chrono>
#include <string_view>
#include <thread>

#include "support/fingerprint.h"
#include "support/strings.h"
#include "support/trace.h"

namespace mobivine::core {

void MProxy::BuildSpecTable() {
  spec_keys_.clear();
  for (const PropertySpec& spec : binding_->properties) {
    spec_keys_.push_back(support::Interner::Global().Intern(spec.name));
  }
}

void MProxy::ApplyDefaults() {
  for (std::size_t slot = 0; slot < binding_->properties.size(); ++slot) {
    const PropertySpec& spec = binding_->properties[slot];
    if (spec.default_value.empty()) continue;
    const support::Symbol key = spec_keys_[slot];
    if (spec.type == "int") {
      long long value = 0;
      if (support::ParseInt(spec.default_value, value)) {
        properties_.Set(key, value);
      }
    } else if (spec.type == "double") {
      double value = 0;
      if (support::ParseDouble(spec.default_value, value)) {
        properties_.Set(key, value);
      }
    } else if (spec.type == "bool") {
      bool value = false;
      if (support::ParseBool(spec.default_value, value)) {
        properties_.Set(key, value);
      }
    } else {  // string (handles have no defaults)
      properties_.Set(key, std::string(spec.default_value));
    }
  }
}

void MProxy::setProperty(const std::string& name, PropertyValue value) {
  support::trace::Span span("core.setProperty");
  meter_.Charge(Op::kPropertySet);
  if (binding_ == nullptr) {
    properties_.Set(name, std::move(value));
    return;
  }
  // One fingerprint probe resolves the spec; its slot also indexes the
  // interned bag key resolved at construction time.
  const PropertySpec* spec = binding_->FindProperty(name);
  if (spec == nullptr) {
    throw ProxyError(ErrorCode::kIllegalArgument,
                     "property '" + name + "' is not declared for " +
                         binding_->proxy + " on " + binding_->platform);
  }
  const support::Symbol key =
      spec_keys_[static_cast<std::size_t>(spec - binding_->properties.data())];
  meter_.Charge(Op::kValidation);
  if (!spec->allowed_values.empty()) {
    // Allowed-value checks apply to the scalar property types. The
    // comparison works on views into the incoming value (ints rendered
    // into a stack buffer) — no temporary strings on the hot path.
    char digits[24];
    std::string_view as_view;
    bool comparable = false;
    if (const std::string* s = value.AsString()) {
      as_view = *s;
      comparable = true;
    } else if (const long long* i = value.AsInt()) {
      const auto result = std::to_chars(digits, digits + sizeof(digits), *i);
      as_view = std::string_view(
          digits, static_cast<std::size_t>(result.ptr - digits));
      comparable = true;
    } else if (const std::any* box = value.AsAny()) {
      // Legacy callers may pass a plain int; it rides the any lane.
      if (const int* boxed = std::any_cast<int>(box)) {
        const auto result =
            std::to_chars(digits, digits + sizeof(digits), *boxed);
        as_view = std::string_view(
            digits, static_cast<std::size_t>(result.ptr - digits));
        comparable = true;
      }
    }
    if (comparable) {
      bool allowed = false;
      for (const std::string& candidate : spec->allowed_values) {
        if (support::FingerprintEquals(candidate, as_view)) {
          allowed = true;
          break;
        }
      }
      if (!allowed) {
        throw ProxyError(ErrorCode::kIllegalArgument,
                         "property '" + name + "' value '" +
                             std::string(as_view) + "' is not allowed on " +
                             binding_->platform);
      }
    }
  }
  properties_.Set(key, std::move(value));
}

void MProxy::ApplyFault(const char* op) {
  const support::FaultDecision decision = fault_gate_->Admit(fault_platform_, op);
  switch (decision.action) {
    case support::FaultAction::kNone:
      return;
    case support::FaultAction::kLatency:
      // Slow backend: charge the injected cost, then let the real
      // dispatch proceed. Wall rules really block the shard thread —
      // virtual charging is invisible to wire/cluster peers across a
      // socket, so cross-process capacity modelling needs the stall to
      // be real; the virtual clock is still advanced in both modes so
      // in-process metering stays comparable.
      support::trace::Instant("core.faultInject", "virt_cost_us",
                              static_cast<std::int64_t>(decision.latency_us));
      if (decision.wall) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(decision.latency_us));
      }
      meter_.scheduler().AdvanceBy(
          sim::SimTime::Micros(static_cast<std::int64_t>(decision.latency_us)));
      return;
    case support::FaultAction::kError:
      support::trace::Instant("core.faultInject");
      throw ProxyError(ErrorCodeFromName(decision.error),
                       "injected fault: " + std::string(decision.error),
                       fault_platform_, "fault.error");
    case support::FaultAction::kHang: {
      // Hanging backend: the gate has already sized latency_us to the
      // caller's patience budget (hedge threshold or remaining deadline);
      // burn it on the virtual clock, then surface as a timeout the
      // gateway can recognise by native_type.
      support::trace::Instant("core.faultInject", "virt_cost_us",
                              static_cast<std::int64_t>(decision.latency_us));
      meter_.scheduler().AdvanceBy(
          sim::SimTime::Micros(static_cast<std::int64_t>(decision.latency_us)));
      throw ProxyError(ErrorCode::kTimeout,
                       "injected hang exceeded patience budget",
                       fault_platform_, "fault.hang");
    }
  }
}

void MProxy::RequireProperties() const {
  if (binding_ == nullptr) return;
  for (std::size_t slot = 0; slot < binding_->properties.size(); ++slot) {
    const PropertySpec& spec = binding_->properties[slot];
    if (spec.required && !properties_.Has(spec_keys_[slot])) {
      throw ProxyError(ErrorCode::kIllegalArgument,
                       "required property '" + spec.name + "' not set for " +
                           binding_->proxy + " on " + binding_->platform);
    }
  }
}

}  // namespace mobivine::core
