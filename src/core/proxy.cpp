#include "core/proxy.h"

#include <algorithm>

#include "support/strings.h"

namespace mobivine::core {

void MProxy::ApplyDefaults() {
  for (const PropertySpec& spec : binding_->properties) {
    if (spec.default_value.empty()) continue;
    if (spec.type == "int") {
      long long value = 0;
      if (support::ParseInt(spec.default_value, value)) {
        properties_.Set(spec.name, value);
      }
    } else if (spec.type == "double") {
      double value = 0;
      if (support::ParseDouble(spec.default_value, value)) {
        properties_.Set(spec.name, value);
      }
    } else if (spec.type == "bool") {
      bool value = false;
      if (support::ParseBool(spec.default_value, value)) {
        properties_.Set(spec.name, value);
      }
    } else {  // string (handles have no defaults)
      properties_.Set(spec.name, std::string(spec.default_value));
    }
  }
}

void MProxy::setProperty(const std::string& name, std::any value) {
  meter_.Charge(Op::kPropertySet);
  if (binding_ != nullptr) {
    const PropertySpec* spec = binding_->FindProperty(name);
    if (spec == nullptr) {
      throw ProxyError(ErrorCode::kIllegalArgument,
                       "property '" + name + "' is not declared for " +
                           binding_->proxy + " on " + binding_->platform);
    }
    meter_.Charge(Op::kValidation);
    if (!spec->allowed_values.empty()) {
      // Allowed-value checks apply to the scalar property types.
      std::string as_string;
      bool comparable = false;
      if (const std::string* s = std::any_cast<std::string>(&value)) {
        as_string = *s;
        comparable = true;
      } else if (const long long* i = std::any_cast<long long>(&value)) {
        as_string = std::to_string(*i);
        comparable = true;
      } else if (const int* i = std::any_cast<int>(&value)) {
        as_string = std::to_string(*i);
        comparable = true;
      }
      if (comparable) {
        const bool allowed =
            std::find(spec->allowed_values.begin(), spec->allowed_values.end(),
                      as_string) != spec->allowed_values.end();
        if (!allowed) {
          throw ProxyError(ErrorCode::kIllegalArgument,
                           "property '" + name + "' value '" + as_string +
                               "' is not allowed on " + binding_->platform);
        }
      }
    }
  }
  properties_.Set(name, std::move(value));
}

void MProxy::RequireProperties() const {
  if (binding_ == nullptr) return;
  for (const PropertySpec& spec : binding_->properties) {
    if (spec.required && !properties_.Has(spec.name)) {
      throw ProxyError(ErrorCode::kIllegalArgument,
                       "required property '" + spec.name + "' not set for " +
                           binding_->proxy + " on " + binding_->platform);
    }
  }
}

}  // namespace mobivine::core
