// M-Proxy runtime base class.
//
// Holds the property bag behind the generic setProperty() mechanism,
// validates property names/values against the binding plane's property
// list, applies descriptor defaults, and carries the OverheadMeter that
// accounts for every de-fragmentation operation the binding performs.
//
// Fast path: the binding plane's PropertySpecs are resolved to interned
// Symbols once at construction, keyed by the plane's own property
// NameIndex, so each setProperty() call is a single fingerprint probe
// that yields both the spec and its bag key — no per-call string
// hashing, interning, or std::any boxing.
#pragma once

#include <memory>
#include <string>

#include "core/descriptor/planes.h"
#include "core/errors.h"
#include "core/meter.h"
#include "core/property.h"
#include "support/fault.h"
#include "support/interner.h"
#include "support/small_vector.h"

namespace mobivine::core {

class MProxy {
 public:
  MProxy(sim::Scheduler& scheduler, const BindingPlane* binding)
      : meter_(scheduler), binding_(binding) {
    if (binding_ != nullptr) {
      BuildSpecTable();
      ApplyDefaults();
    }
  }
  virtual ~MProxy() = default;

  MProxy(const MProxy&) = delete;
  MProxy& operator=(const MProxy&) = delete;

  /// The generic property mechanism (paper §4.1). When a binding plane is
  /// attached, unknown property names and disallowed string values are
  /// rejected with ProxyError(kIllegalArgument). Virtual so enrichment
  /// decorators can forward properties to the wrapped binding.
  virtual void setProperty(const std::string& name, PropertyValue value);

  template <typename T>
  [[nodiscard]] std::optional<T> getProperty(const std::string& name) const {
    return properties_.Get<T>(name);
  }
  template <typename T>
  [[nodiscard]] T getPropertyOr(const std::string& name, T fallback) const {
    return properties_.GetOr<T>(name, std::move(fallback));
  }
  [[nodiscard]] bool hasProperty(const std::string& name) const {
    return properties_.Has(name);
  }

  const BindingPlane* binding() const { return binding_; }
  OverheadMeter& meter() { return meter_; }
  const OverheadMeter& meter() const { return meter_; }

  /// Copy of the current property state, for save/restore around callers
  /// that apply caller-scoped properties (the gateway applies a request's
  /// properties to a shared long-lived proxy; without restore they would
  /// leak into the next request on that proxy).
  [[nodiscard]] PropertyBag snapshotProperties() const { return properties_; }
  void restoreProperties(PropertyBag saved) { properties_ = std::move(saved); }

  /// Attach a fault gate (M-Failover's injection plane). Every gateway-
  /// served binding method consults it via AdmitDispatch() right after
  /// charging the dispatch cost; a null gate (the default) keeps the
  /// fast path to a single pointer test. `platform_tag` must outlive the
  /// proxy ("android"/"s60"/"iphone" string literals in practice).
  void installFaultGate(support::FaultGate* gate, const char* platform_tag) {
    fault_gate_ = gate;
    fault_platform_ = platform_tag;
  }

 protected:
  /// Throws ProxyError(kIllegalArgument) if a property the binding plane
  /// marks required has not been set (called by bindings before first use).
  void RequireProperties() const;

  /// Fault hook for gateway-served binding methods. Inlined null test on
  /// the ungated path; with a gate installed, defers to ApplyFault which
  /// charges injected latency on the virtual clock or throws the
  /// injected ProxyError (native_type "fault.error" / "fault.hang").
  void AdmitDispatch(const char* op) {
    if (fault_gate_ != nullptr) ApplyFault(op);
  }

  PropertyBag properties_;

 private:
  void BuildSpecTable();
  void ApplyDefaults();
  void ApplyFault(const char* op);

  OverheadMeter meter_;
  const BindingPlane* binding_;
  support::FaultGate* fault_gate_ = nullptr;
  const char* fault_platform_ = "";
  /// Global-interner symbol of binding_->properties[i], same order; the
  /// plane's property NameIndex slot doubles as the index here.
  support::SmallVector<support::Symbol, 8> spec_keys_;
};

/// RAII save/restore of a proxy's property state. Snapshot at
/// construction, restore at destruction (including on unwind), so
/// request-scoped property overrides cannot leak into later invocations
/// on the same proxy. Note: this guards the bag of the proxy it is given;
/// enrichment decorators that forward setProperty to a wrapped inner
/// proxy must be guarded on that inner proxy.
class ScopedPropertyRestore {
 public:
  explicit ScopedPropertyRestore(MProxy& proxy)
      : proxy_(proxy), saved_(proxy.snapshotProperties()) {}
  ~ScopedPropertyRestore() { proxy_.restoreProperties(std::move(saved_)); }

  ScopedPropertyRestore(const ScopedPropertyRestore&) = delete;
  ScopedPropertyRestore& operator=(const ScopedPropertyRestore&) = delete;

 private:
  MProxy& proxy_;
  PropertyBag saved_;
};

}  // namespace mobivine::core
