#include "core/errors.h"

#include "android/exceptions.h"
#include "s60/exceptions.h"
#include "support/trace.h"
#include "webview/bridge.h"

namespace mobivine::core {

const char* ToString(ErrorCode code) {
  switch (code) {
    case ErrorCode::kSecurity:
      return "security";
    case ErrorCode::kIllegalArgument:
      return "illegal-argument";
    case ErrorCode::kLocationUnavailable:
      return "location-unavailable";
    case ErrorCode::kTimeout:
      return "timeout";
    case ErrorCode::kUnreachable:
      return "unreachable";
    case ErrorCode::kRadioFailure:
      return "radio-failure";
    case ErrorCode::kUnsupported:
      return "unsupported";
    case ErrorCode::kInvalidState:
      return "invalid-state";
    case ErrorCode::kNetwork:
      return "network";
    case ErrorCode::kOverloaded:
      return "overloaded";
    case ErrorCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case ErrorCode::kAllBackendsFailed:
      return "all-backends-failed";
    case ErrorCode::kUnknown:
      return "unknown";
  }
  return "?";
}

ErrorCode ErrorCodeFromName(std::string_view name) {
  // A dozen codes; linear probe against the canonical names keeps the
  // two directions trivially in sync.
  constexpr ErrorCode kAll[] = {
      ErrorCode::kSecurity,         ErrorCode::kIllegalArgument,
      ErrorCode::kLocationUnavailable, ErrorCode::kTimeout,
      ErrorCode::kUnreachable,      ErrorCode::kRadioFailure,
      ErrorCode::kUnsupported,      ErrorCode::kInvalidState,
      ErrorCode::kNetwork,          ErrorCode::kOverloaded,
      ErrorCode::kDeadlineExceeded, ErrorCode::kAllBackendsFailed,
  };
  for (ErrorCode code : kAll) {
    if (name == ToString(code)) return code;
  }
  return ErrorCode::kUnknown;
}

void RethrowAsProxyError(const std::string& platform) {
  // The span brackets the native -> ProxyError mapping itself; it ends
  // when the mapped exception unwinds out of this frame.
  support::trace::Span span("core.exceptionMap");
  try {
    throw;  // dispatch on the in-flight exception's dynamic type
  } catch (const ProxyError&) {
    throw;  // already unified
  }
  // --- Android exception set ---------------------------------------------
  catch (const android::SecurityException& e) {
    throw ProxyError(ErrorCode::kSecurity, e.what(), platform,
                     "android.SecurityException");
  } catch (const android::IllegalArgumentException& e) {
    throw ProxyError(ErrorCode::kIllegalArgument, e.what(), platform,
                     "android.IllegalArgumentException");
  } catch (const android::UnsupportedOperationException& e) {
    throw ProxyError(ErrorCode::kUnsupported, e.what(), platform,
                     "android.UnsupportedOperationException");
  } catch (const android::IllegalStateException& e) {
    throw ProxyError(ErrorCode::kInvalidState, e.what(), platform,
                     "android.IllegalStateException");
  } catch (const android::ConnectTimeoutException& e) {
    throw ProxyError(ErrorCode::kTimeout, e.what(), platform,
                     "android.ConnectTimeoutException");
  } catch (const android::ClientProtocolException& e) {
    throw ProxyError(ErrorCode::kUnreachable, e.what(), platform,
                     "android.ClientProtocolException");
  } catch (const android::RemoteException& e) {
    throw ProxyError(ErrorCode::kUnknown, e.what(), platform,
                     "android.RemoteException");
  }
  // --- S60 / J2ME exception set -----------------------------------------
  catch (const s60::SecurityException& e) {
    throw ProxyError(ErrorCode::kSecurity, e.what(), platform,
                     "s60.SecurityException");
  } catch (const s60::LocationException& e) {
    throw ProxyError(ErrorCode::kLocationUnavailable, e.what(), platform,
                     "s60.LocationException");
  } catch (const s60::IllegalArgumentException& e) {
    throw ProxyError(ErrorCode::kIllegalArgument, e.what(), platform,
                     "s60.IllegalArgumentException");
  } catch (const s60::NullPointerException& e) {
    throw ProxyError(ErrorCode::kIllegalArgument, e.what(), platform,
                     "s60.NullPointerException");
  } catch (const s60::InterruptedIOException& e) {
    throw ProxyError(ErrorCode::kRadioFailure, e.what(), platform,
                     "s60.InterruptedIOException");
  } catch (const s60::ConnectionNotFoundException& e) {
    throw ProxyError(ErrorCode::kIllegalArgument, e.what(), platform,
                     "s60.ConnectionNotFoundException");
  } catch (const s60::IOException& e) {
    throw ProxyError(ErrorCode::kNetwork, e.what(), platform,
                     "s60.IOException");
  }
  // --- anything else -----------------------------------------------------
  catch (const std::exception& e) {
    throw ProxyError(ErrorCode::kUnknown, e.what(), platform,
                     "std.exception");
  }
}

ErrorCode FromWebViewErrorCode(int code) {
  switch (code) {
    case webview::kErrorCodeSecurity:
      return ErrorCode::kSecurity;
    case webview::kErrorCodeIllegalArgument:
      return ErrorCode::kIllegalArgument;
    case webview::kErrorCodeUnsupportedOperation:
      return ErrorCode::kUnsupported;
    case webview::kErrorCodeIllegalState:
      return ErrorCode::kInvalidState;
    case webview::kErrorCodeConnectTimeout:
      return ErrorCode::kTimeout;
    case webview::kErrorCodeClientProtocol:
      return ErrorCode::kUnreachable;
    case webview::kErrorCodeRemote:
      return ErrorCode::kUnknown;
    default:
      return ErrorCode::kUnknown;
  }
}

}  // namespace mobivine::core
