// Android (m5-rc15 / 1.0) binding-plane implementations of the four
// M-Proxies.
//
// What these absorb (paper §4.1):
//  * Intent / IntentReceiver callback style — hidden behind the uniform
//    listener objects ("the use of Intent and IntentReceiver is hidden
//    from the application developer").
//  * The application-context requirement — setProperty("context", ...).
//  * The Android exception set — mapped to ProxyError.
//  * The m5 -> 1.0 addProximityAlert signature change (Intent ->
//    PendingIntent) — selected by the platform's ApiLevel, invisible to
//    the application (experiment E4).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "android/android_platform.h"
#include "android/calendar.h"
#include "android/contacts.h"
#include "android/http_client.h"
#include "android/intent.h"
#include "android/location_manager.h"
#include "core/calendar_proxy.h"
#include "core/call_proxy.h"
#include "core/http_proxy.h"
#include "core/location_proxy.h"
#include "core/pim_proxy.h"
#include "core/sms_proxy.h"

namespace mobivine::core {

class AndroidLocationProxy : public LocationProxy {
 public:
  AndroidLocationProxy(android::AndroidPlatform& platform,
                       const BindingPlane* binding);
  ~AndroidLocationProxy() override;

  void addProximityAlert(double latitude, double longitude, double altitude,
                         float radius_m, long long timer_ms,
                         ProximityListener* listener) override;
  void removeProximityAlert(ProximityListener* listener) override;
  Location getLocation() override;

 private:
  class AlertReceiver;
  struct Registration {
    ProximityListener* listener;
    std::string action;
    std::unique_ptr<AlertReceiver> receiver;
    std::shared_ptr<android::PendingIntent> pending;  // 1.0 path only
  };

  android::Context& RequireContext();
  Location ReadCurrentLocation();

  android::AndroidPlatform& platform_;
  std::vector<Registration> registrations_;
  int next_alert_id_ = 1;
};

class AndroidSmsProxy : public SmsProxy {
 public:
  AndroidSmsProxy(android::AndroidPlatform& platform,
                  const BindingPlane* binding);
  ~AndroidSmsProxy() override;

  long long sendTextMessage(const std::string& destination,
                            const std::string& text,
                            SmsListener* listener) override;
  int segmentCount(const std::string& text) override;

 private:
  class StatusReceiver;

  android::Context& RequireContext();
  /// Unregister and drop receivers whose message reached a terminal state
  /// (delivered or failed) — otherwise every send would leak a receiver
  /// registration for the application's lifetime.
  void PruneFinishedReceivers();

  android::AndroidPlatform& platform_;
  std::vector<std::unique_ptr<StatusReceiver>> receivers_;
  int next_send_id_ = 1;

 public:
  /// Live per-send status receivers (tests assert pruning works).
  std::size_t pending_receiver_count() const { return receivers_.size(); }
};

class AndroidCallProxy : public CallProxy {
 public:
  AndroidCallProxy(android::AndroidPlatform& platform,
                   const BindingPlane* binding);
  ~AndroidCallProxy() override;

  bool makeCall(const std::string& number, CallListener* listener) override;
  void endCall() override;
  CallProgress currentState() override;

 private:
  android::AndroidPlatform& platform_;
  CallListener* listener_ = nullptr;
};

class AndroidPimProxy : public PimProxy {
 public:
  AndroidPimProxy(android::AndroidPlatform& platform,
                  const BindingPlane* binding);

  std::vector<Contact> listContacts() override;
  std::optional<Contact> findByNumber(const std::string& phone_number) override;
  std::vector<Contact> findByName(const std::string& fragment) override;

 private:
  std::vector<Contact> Drain(android::Cursor cursor);
  android::AndroidPlatform& platform_;
};

class AndroidCalendarProxy : public CalendarProxy {
 public:
  AndroidCalendarProxy(android::AndroidPlatform& platform,
                       const BindingPlane* binding);

  std::vector<CalendarEvent> listEvents() override;
  std::vector<CalendarEvent> eventsBetween(long long from_ms,
                                           long long to_ms) override;
  std::optional<CalendarEvent> nextEvent(long long now_ms) override;

 private:
  std::vector<CalendarEvent> Drain(android::EventCursor cursor);
  android::AndroidPlatform& platform_;
};

class AndroidHttpProxy : public HttpProxy {
 public:
  AndroidHttpProxy(android::AndroidPlatform& platform,
                   const BindingPlane* binding);

  HttpResult get(const std::string& url) override;
  HttpResult post(const std::string& url, const std::string& body,
                  const std::string& content_type) override;
  void setHeader(const std::string& name, const std::string& value) override;

 private:
  HttpResult Execute(const android::HttpUriRequest& request);

  android::AndroidPlatform& platform_;
  std::vector<std::pair<std::string, std::string>> headers_;
};

}  // namespace mobivine::core
