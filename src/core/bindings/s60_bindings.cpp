#include "core/bindings/s60_bindings.h"

#include <algorithm>

#include "core/errors.h"
#include "s60/connector.h"
#include "support/geo_units.h"
#include "support/strings.h"
#include "support/trace.h"

namespace mobivine::core {

namespace {
constexpr const char* kPlatform = "s60";

Location ToUniform(const s60::Location& native) {
  const s60::QualifiedCoordinates& coords = native.getQualifiedCoordinates();
  Location out;
  out.latitude = coords.getLatitude();
  out.longitude = coords.getLongitude();
  out.altitude = coords.getAltitude();
  out.accuracy_m = coords.getHorizontalAccuracy();
  out.speed_mps = native.getSpeed();
  out.heading_deg = native.getCourse();
  out.timestamp_ms = native.getTimestamp().micros() / 1000;
  out.valid = native.isValid();
  return out;
}
}  // namespace

// ===========================================================================
// S60LocationProxy
// ===========================================================================

struct S60LocationProxy::AlertState {
  ProximityListener* uniform_listener = nullptr;
  double latitude = 0, longitude = 0, altitude = 0;
  float radius_m = 0;
  bool has_expiry = false;
  sim::SimTime expires_at;
  bool active = true;
  bool inside = false;
  std::shared_ptr<s60::LocationProvider> provider;  // exit detection
  std::unique_ptr<EntryListener> entry;
  std::unique_ptr<ExitDetector> exit;
  sim::EventId expiry_event = 0;
};

/// Receives the platform's ONE-SHOT entry event, forwards it as the uniform
/// entering=true callback, and starts exit detection.
class S60LocationProxy::EntryListener : public s60::ProximityListener {
 public:
  // Holds the alert weakly: the state owns the listener (unique_ptr), so a
  // strong back-pointer would form an unreclaimable shared_ptr cycle once
  // the alert leaves alerts_.
  EntryListener(S60LocationProxy& owner, std::shared_ptr<AlertState> state)
      : owner_(owner), state_(state) {}

  void proximityEvent(const s60::Coordinates& coordinates,
                      const s60::Location& location) override {
    (void)coordinates;
    auto state = state_.lock();
    if (!state || !state->active) return;
    owner_.meter().Charge(Op::kListenerAdaptation);
    owner_.meter().Charge(Op::kTypeConversion, 7);
    state->inside = true;
    state->uniform_listener->proximityEvent(
        state->latitude, state->longitude, state->altitude,
        ToUniform(location), /*entering=*/true);
    // The platform removed the one-shot registration before firing; watch
    // for the exit with a location listener, then re-arm.
    owner_.StartExitDetection(state);
  }

 private:
  S60LocationProxy& owner_;
  std::weak_ptr<AlertState> state_;
};

/// Location listener that detects leaving the region (Figure 2(b)'s
/// locationUpdated logic, inside the binding).
class S60LocationProxy::ExitDetector : public s60::LocationListener {
 public:
  // Weak for the same cycle-avoidance reason as EntryListener.
  ExitDetector(S60LocationProxy& owner, std::shared_ptr<AlertState> state)
      : owner_(owner), state_(state) {}

  void locationUpdated(s60::LocationProvider& provider,
                       const s60::Location& location) override {
    (void)provider;
    auto state = state_.lock();
    if (!state || !state->active || !state->inside) return;
    const s60::QualifiedCoordinates& here =
        location.getQualifiedCoordinates();
    const double distance = support::HaversineMeters(
        here.getLatitude(), here.getLongitude(), state->latitude,
        state->longitude);
    if (distance <= state->radius_m) return;  // still inside
    owner_.meter().Charge(Op::kListenerAdaptation);
    owner_.meter().Charge(Op::kTypeConversion, 7);
    state->inside = false;
    state->uniform_listener->proximityEvent(
        state->latitude, state->longitude, state->altitude,
        ToUniform(location), /*entering=*/false);
    owner_.Rearm(state);
  }

 private:
  S60LocationProxy& owner_;
  std::weak_ptr<AlertState> state_;
};

S60LocationProxy::S60LocationProxy(s60::S60Platform& platform,
                                   const BindingPlane* binding)
    : LocationProxy(platform.device().scheduler(), binding),
      platform_(platform) {}

S60LocationProxy::~S60LocationProxy() {
  for (auto& state : alerts_) Teardown(*state);
}

s60::Criteria S60LocationProxy::CriteriaFromProperties() {
  // Each consulted property is a lookup + a conversion into the platform's
  // Criteria representation.
  s60::Criteria criteria;
  meter().Charge(Op::kPropertyLookup, 5);
  meter().Charge(Op::kTypeConversion);
  criteria.setHorizontalAccuracy(static_cast<int>(
      getPropertyOr<long long>("horizontalAccuracy",
                               s60::Criteria::NO_REQUIREMENT)));
  criteria.setVerticalAccuracy(static_cast<int>(getPropertyOr<long long>(
      "verticalAccuracy", s60::Criteria::NO_REQUIREMENT)));
  criteria.setPreferredResponseTime(static_cast<int>(getPropertyOr<long long>(
      "preferredResponseTime", s60::Criteria::NO_REQUIREMENT)));
  criteria.setCostAllowed(getPropertyOr<bool>("costAllowed", true));
  const std::string power = getPropertyOr<std::string>("powerConsumption", "");
  if (power == "low") {
    criteria.setPreferredPowerConsumption(s60::Criteria::POWER_USAGE_LOW);
  } else if (power == "medium") {
    criteria.setPreferredPowerConsumption(s60::Criteria::POWER_USAGE_MEDIUM);
  } else if (power == "high") {
    criteria.setPreferredPowerConsumption(s60::Criteria::POWER_USAGE_HIGH);
  }
  return criteria;
}

std::shared_ptr<s60::LocationProvider> S60LocationProxy::AcquireProvider() {
  try {
    return s60::LocationProvider::getInstance(platform_,
                                              CriteriaFromProperties());
  } catch (...) {
    meter().Charge(Op::kExceptionMap);
    RethrowAsProxyError(kPlatform);
  }
}

Location S60LocationProxy::getLocation() {
  support::trace::Span span("s60.getLocation");
  meter().Charge(Op::kDispatch);
  AdmitDispatch("getLocation");
  RequireProperties();
  auto provider = AcquireProvider();
  meter().Charge(Op::kPropertyLookup);
  const int timeout = static_cast<int>(
      getPropertyOr<long long>("locationTimeout", 30));
  try {
    s60::Location native = provider->getLocation(timeout);
    meter().Charge(Op::kTypeConversion, 7);
    return ConvertUnits(ToUniform(native));
  } catch (...) {
    meter().Charge(Op::kExceptionMap);
    RethrowAsProxyError(kPlatform);
  }
}

void S60LocationProxy::addProximityAlert(double latitude, double longitude,
                                         double altitude, float radius_m,
                                         long long timer_ms,
                                         ProximityListener* listener) {
  meter().Charge(Op::kDispatch);
  meter().Charge(Op::kValidation);
  if (listener == nullptr) {
    throw ProxyError(ErrorCode::kIllegalArgument,
                     "proximity listener must not be null");
  }
  RequireProperties();

  auto state = std::make_shared<AlertState>();
  state->uniform_listener = listener;
  state->latitude = latitude;
  state->longitude = longitude;
  state->altitude = altitude;
  state->radius_m = radius_m;
  state->has_expiry = timer_ms >= 0;
  auto& scheduler = platform_.device().scheduler();
  if (state->has_expiry) {
    state->expires_at = scheduler.now() + sim::SimTime::Millis(timer_ms);
  }
  state->entry = std::make_unique<EntryListener>(*this, state);
  // Acquire the provider for exit detection up front (fail fast on bad
  // criteria; reused across re-arms).
  state->provider = AcquireProvider();

  // One-shot platform registration; adaptation logic re-arms it.
  meter().Charge(Op::kListenerAdaptation);
  try {
    s60::LocationProvider::addProximityListener(
        platform_, state->entry.get(),
        s60::Coordinates(latitude, longitude, static_cast<float>(altitude)),
        radius_m);
  } catch (...) {
    meter().Charge(Op::kExceptionMap);
    RethrowAsProxyError(kPlatform);
  }

  // The platform has no expiration concept — emulate the timer.
  if (state->has_expiry) {
    std::weak_ptr<AlertState> weak = state;
    state->expiry_event = scheduler.ScheduleAt(state->expires_at, [this, weak] {
      if (auto locked = weak.lock()) {
        meter().Charge(Op::kEnrichment);
        Teardown(*locked);
      }
    });
  }

  alerts_.push_back(std::move(state));
  ++active_alerts_;
}

void S60LocationProxy::StartExitDetection(
    const std::shared_ptr<AlertState>& state) {
  if (!state->active) return;
  state->exit = std::make_unique<ExitDetector>(*this, state);
  if (!state->provider) state->provider = AcquireProvider();
  meter().Charge(Op::kListenerAdaptation);
  state->provider->setLocationListener(state->exit.get(), /*interval=*/2,
                                       /*timeout=*/-1, /*max_age=*/-1);
}

void S60LocationProxy::Rearm(const std::shared_ptr<AlertState>& state) {
  if (!state->active) return;
  if (state->has_expiry &&
      platform_.device().scheduler().now() >= state->expires_at) {
    Teardown(*state);
    return;
  }
  // Stop exit detection (the provider is kept for the next pass) and
  // re-register the one-shot entry listener.
  if (state->provider) {
    state->provider->setLocationListener(nullptr, -1, -1, -1);
  }
  try {
    s60::LocationProvider::addProximityListener(
        platform_, state->entry.get(),
        s60::Coordinates(state->latitude, state->longitude,
                         static_cast<float>(state->altitude)),
        state->radius_m);
  } catch (...) {
    meter().Charge(Op::kExceptionMap);
    RethrowAsProxyError(kPlatform);
  }
}

void S60LocationProxy::Teardown(AlertState& state) {
  if (!state.active) return;
  state.active = false;
  s60::LocationProvider::removeProximityListener(platform_, state.entry.get());
  if (state.provider) {
    state.provider->setLocationListener(nullptr, -1, -1, -1);
    state.provider.reset();
  }
  if (state.expiry_event != 0) {
    platform_.device().scheduler().Cancel(state.expiry_event);
    state.expiry_event = 0;
  }
  if (active_alerts_ > 0) --active_alerts_;
}

void S60LocationProxy::removeProximityAlert(ProximityListener* listener) {
  meter().Charge(Op::kDispatch);
  for (auto& state : alerts_) {
    if (state->uniform_listener == listener) Teardown(*state);
  }
  alerts_.erase(std::remove_if(alerts_.begin(), alerts_.end(),
                               [](const std::shared_ptr<AlertState>& state) {
                                 return !state->active;
                               }),
                alerts_.end());
}

// ===========================================================================
// S60SmsProxy
// ===========================================================================

S60SmsProxy::S60SmsProxy(s60::S60Platform& platform,
                         const BindingPlane* binding)
    : SmsProxy(platform.device().scheduler(), binding), platform_(platform) {}

std::shared_ptr<s60::MessageConnection> S60SmsProxy::ConnectionFor(
    const std::string& destination) {
  auto it = connections_.find(destination);
  if (it != connections_.end() && it->second->isOpen()) return it->second;
  auto connection = platform_.openMessageConnection("sms://" + destination);
  connections_[destination] = connection;
  return connection;
}

int S60SmsProxy::segmentCount(const std::string& text) {
  support::trace::Span span("s60.segmentCount");
  meter().Charge(Op::kDispatch);
  AdmitDispatch("segmentCount");
  // JSR-120 exposes no segment computation; the proxy supplies it
  // (enrichment) with GSM 160-char segments.
  meter().Charge(Op::kEnrichment);
  if (text.empty()) return 1;
  return static_cast<int>((text.size() + 159) / 160);
}

long long S60SmsProxy::sendTextMessage(const std::string& destination,
                                       const std::string& text,
                                       SmsListener* listener) {
  support::trace::Span span("s60.sendTextMessage");
  meter().Charge(Op::kDispatch);
  AdmitDispatch("sendTextMessage");
  meter().Charge(Op::kValidation);
  if (destination.empty() || text.empty()) {
    throw ProxyError(ErrorCode::kIllegalArgument,
                     "destination and text must be non-empty");
  }
  RequireProperties();
  const long long id = next_message_id_++;
  try {
    auto connection = ConnectionFor(destination);
    s60::TextMessage message = connection->newTextMessage();
    meter().Charge(Op::kTypeConversion);
    message.setPayloadText(text);
    connection->send(message);
  } catch (...) {
    meter().Charge(Op::kExceptionMap);
    // Uniform semantics: transport failures reach the listener too.
    if (listener != nullptr) {
      meter().Charge(Op::kListenerAdaptation);
      listener->smsStatusChanged(id, SmsDeliveryStatus::kFailed);
    }
    RethrowAsProxyError(kPlatform);
  }
  // The blocking J2ME send() has succeeded -> submitted. S60 exposes no
  // delivery reports for outgoing messages, so kDelivered is never
  // produced on this platform (documented capability difference).
  if (listener != nullptr) {
    meter().Charge(Op::kListenerAdaptation);
    listener->smsStatusChanged(id, SmsDeliveryStatus::kSubmitted);
  }
  return id;
}

// ===========================================================================
// S60PimProxy
// ===========================================================================

S60PimProxy::S60PimProxy(s60::S60Platform& platform,
                         const BindingPlane* binding)
    : PimProxy(platform.device().scheduler(), binding), platform_(platform) {}

std::vector<Contact> S60PimProxy::Convert(
    const std::vector<s60::PIMItem>& items) {
  std::vector<Contact> out;
  for (const s60::PIMItem& item : items) {
    meter().Charge(Op::kTypeConversion);
    Contact contact;
    long long uid = 0;
    (void)support::ParseInt(item.getString(s60::Contact::UID, 0), uid);
    contact.id = uid;
    if (item.countValues(s60::Contact::NAME) > 0) {
      contact.display_name = item.getString(s60::Contact::NAME, 0);
    }
    if (item.countValues(s60::Contact::TEL) > 0) {
      contact.phone_number = item.getString(s60::Contact::TEL, 0);
    }
    if (item.countValues(s60::Contact::EMAIL) > 0) {
      contact.email = item.getString(s60::Contact::EMAIL, 0);
    }
    out.push_back(std::move(contact));
  }
  return out;
}

std::vector<Contact> S60PimProxy::listContacts() {
  meter().Charge(Op::kDispatch);
  try {
    auto list =
        s60::PIM::openContactList(platform_, s60::ContactList::READ_ONLY);
    auto contacts = Convert(list->items());
    list->close();
    return contacts;
  } catch (...) {
    meter().Charge(Op::kExceptionMap);
    RethrowAsProxyError(kPlatform);
  }
}

std::optional<Contact> S60PimProxy::findByNumber(
    const std::string& phone_number) {
  meter().Charge(Op::kDispatch);
  meter().Charge(Op::kEnrichment);  // JSR-75 matches on items, not numbers
  for (const Contact& contact : listContacts()) {
    if (contact.phone_number == phone_number) return contact;
  }
  return std::nullopt;
}

std::vector<Contact> S60PimProxy::findByName(const std::string& fragment) {
  meter().Charge(Op::kDispatch);
  try {
    auto list =
        s60::PIM::openContactList(platform_, s60::ContactList::READ_ONLY);
    auto contacts = Convert(list->items(fragment));
    list->close();
    return contacts;
  } catch (...) {
    meter().Charge(Op::kExceptionMap);
    RethrowAsProxyError(kPlatform);
  }
}

// ===========================================================================
// S60CalendarProxy
// ===========================================================================

S60CalendarProxy::S60CalendarProxy(s60::S60Platform& platform,
                                   const BindingPlane* binding)
    : CalendarProxy(platform.device().scheduler(), binding),
      platform_(platform) {}

std::vector<CalendarEvent> S60CalendarProxy::Convert(
    const std::vector<s60::PIMEvent>& items) {
  std::vector<CalendarEvent> out;
  for (const s60::PIMEvent& item : items) {
    meter().Charge(Op::kTypeConversion);
    CalendarEvent event;
    long long uid = 0;
    (void)support::ParseInt(item.getString(s60::Event::UID, 0), uid);
    event.id = uid;
    if (item.countValues(s60::Event::SUMMARY) > 0) {
      event.title = item.getString(s60::Event::SUMMARY, 0);
    }
    event.start_ms = item.getDate(s60::Event::START, 0);
    event.end_ms = item.getDate(s60::Event::END, 0);
    if (item.countValues(s60::Event::LOCATION) > 0) {
      event.location = item.getString(s60::Event::LOCATION, 0);
    }
    out.push_back(std::move(event));
  }
  std::sort(out.begin(), out.end(),
            [](const CalendarEvent& a, const CalendarEvent& b) {
              return a.start_ms < b.start_ms;
            });
  return out;
}

std::vector<CalendarEvent> S60CalendarProxy::listEvents() {
  meter().Charge(Op::kDispatch);
  try {
    auto list =
        s60::PIM::openEventList(platform_, s60::ContactList::READ_ONLY);
    auto events = Convert(list->items());
    list->close();
    return events;
  } catch (...) {
    meter().Charge(Op::kExceptionMap);
    RethrowAsProxyError(kPlatform);
  }
}

std::vector<CalendarEvent> S60CalendarProxy::eventsBetween(long long from_ms,
                                                           long long to_ms) {
  meter().Charge(Op::kDispatch);
  try {
    auto list =
        s60::PIM::openEventList(platform_, s60::ContactList::READ_ONLY);
    auto events = Convert(list->items(from_ms, to_ms));
    list->close();
    return events;
  } catch (...) {
    meter().Charge(Op::kExceptionMap);
    RethrowAsProxyError(kPlatform);
  }
}

std::optional<CalendarEvent> S60CalendarProxy::nextEvent(long long now_ms) {
  meter().Charge(Op::kDispatch);
  meter().Charge(Op::kEnrichment);
  for (const CalendarEvent& event : listEvents()) {
    if (event.start_ms >= now_ms) return event;
  }
  return std::nullopt;
}

// ===========================================================================
// S60HttpProxy
// ===========================================================================

S60HttpProxy::S60HttpProxy(s60::S60Platform& platform,
                           const BindingPlane* binding)
    : HttpProxy(platform.device().scheduler(), binding), platform_(platform) {}

void S60HttpProxy::setHeader(const std::string& name,
                             const std::string& value) {
  meter().Charge(Op::kPropertySet);
  // Replace-by-name: repeated setHeader (e.g. Authorization refresh)
  // must not accumulate stale values.
  for (auto& [existing, existing_value] : headers_) {
    if (existing == name) {
      existing_value = value;
      return;
    }
  }
  headers_.emplace_back(name, value);
}

HttpResult S60HttpProxy::Execute(const std::string& method,
                                 const std::string& url,
                                 const std::string& body,
                                 const std::string& content_type) {
  try {
    auto connection = platform_.openHttpConnection(url);
    connection->setRequestMethod(method);
    for (const auto& [name, value] : headers_) {
      connection->setRequestProperty(name, value);
    }
    if (!content_type.empty()) {
      connection->setRequestProperty("Content-Type", content_type);
    }
    if (!body.empty()) connection->setRequestBody(body);
    meter().Charge(Op::kTypeConversion, 3);
    HttpResult result;
    result.status = connection->getResponseCode();
    result.reason = connection->getResponseMessage();
    result.body = connection->readBody();
    return result;
  } catch (...) {
    meter().Charge(Op::kExceptionMap);
    RethrowAsProxyError(kPlatform);
  }
}

HttpResult S60HttpProxy::get(const std::string& url) {
  support::trace::Span span("s60.httpGet");
  meter().Charge(Op::kDispatch);
  AdmitDispatch("httpGet");
  return Execute("GET", url, "", "");
}

HttpResult S60HttpProxy::post(const std::string& url, const std::string& body,
                              const std::string& content_type) {
  support::trace::Span span("s60.httpPost");
  meter().Charge(Op::kDispatch);
  AdmitDispatch("httpPost");
  return Execute("POST", url, body, content_type);
}

}  // namespace mobivine::core
