// Nokia S60 binding-plane implementations.
//
// What these absorb (paper §2, §4.1):
//  * Criteria-driven provider acquisition — criteria values arrive through
//    setProperty() ("preferredResponseTime", "horizontalAccuracy",
//    "verticalAccuracy", "powerConsumption", "costAllowed").
//  * JSR-179's ONE-SHOT proximity listener — adapted to the uniform
//    continuous entry/exit semantics by (a) re-registering after each
//    entry, (b) running a location listener while inside the region to
//    detect the exit, and (c) emulating the expiration timer. This is the
//    logic the paper's Figure 2(b) forces into every application, moved
//    into the binding once.
//  * The S60 exception set — mapped to ProxyError.
//
// No Call proxy: S60 does not expose the core call functionality.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/calendar_proxy.h"
#include "core/http_proxy.h"
#include "core/location_proxy.h"
#include "core/pim_proxy.h"
#include "core/sms_proxy.h"
#include "s60/location_provider.h"
#include "s60/messaging.h"
#include "s60/pim.h"
#include "s60/s60_platform.h"

namespace mobivine::core {

class S60LocationProxy : public LocationProxy {
 public:
  S60LocationProxy(s60::S60Platform& platform, const BindingPlane* binding);
  ~S60LocationProxy() override;

  void addProximityAlert(double latitude, double longitude, double altitude,
                         float radius_m, long long timer_ms,
                         ProximityListener* listener) override;
  void removeProximityAlert(ProximityListener* listener) override;
  Location getLocation() override;

 private:
  struct AlertState;
  class EntryListener;
  class ExitDetector;

  /// Build a Criteria object from this proxy's properties.
  [[nodiscard]] s60::Criteria CriteriaFromProperties();
  std::shared_ptr<s60::LocationProvider> AcquireProvider();
  void StartExitDetection(const std::shared_ptr<AlertState>& state);
  void Teardown(AlertState& state);
  void Rearm(const std::shared_ptr<AlertState>& state);

  s60::S60Platform& platform_;
  std::vector<std::shared_ptr<AlertState>> alerts_;
};

class S60SmsProxy : public SmsProxy {
 public:
  S60SmsProxy(s60::S60Platform& platform, const BindingPlane* binding);

  long long sendTextMessage(const std::string& destination,
                            const std::string& text,
                            SmsListener* listener) override;
  int segmentCount(const std::string& text) override;

 private:
  std::shared_ptr<s60::MessageConnection> ConnectionFor(
      const std::string& destination);

  s60::S60Platform& platform_;
  std::map<std::string, std::shared_ptr<s60::MessageConnection>> connections_;
  long long next_message_id_ = 1;
};

class S60PimProxy : public PimProxy {
 public:
  S60PimProxy(s60::S60Platform& platform, const BindingPlane* binding);

  std::vector<Contact> listContacts() override;
  std::optional<Contact> findByNumber(const std::string& phone_number) override;
  std::vector<Contact> findByName(const std::string& fragment) override;

 private:
  std::vector<Contact> Convert(const std::vector<s60::PIMItem>& items);
  s60::S60Platform& platform_;
};

class S60CalendarProxy : public CalendarProxy {
 public:
  S60CalendarProxy(s60::S60Platform& platform, const BindingPlane* binding);

  std::vector<CalendarEvent> listEvents() override;
  std::vector<CalendarEvent> eventsBetween(long long from_ms,
                                           long long to_ms) override;
  std::optional<CalendarEvent> nextEvent(long long now_ms) override;

 private:
  std::vector<CalendarEvent> Convert(const std::vector<s60::PIMEvent>& items);
  s60::S60Platform& platform_;
};

class S60HttpProxy : public HttpProxy {
 public:
  S60HttpProxy(s60::S60Platform& platform, const BindingPlane* binding);

  HttpResult get(const std::string& url) override;
  HttpResult post(const std::string& url, const std::string& body,
                  const std::string& content_type) override;
  void setHeader(const std::string& name, const std::string& value) override;

 private:
  HttpResult Execute(const std::string& method, const std::string& url,
                     const std::string& body, const std::string& content_type);

  s60::S60Platform& platform_;
  std::vector<std::pair<std::string, std::string>> headers_;
};

}  // namespace mobivine::core
