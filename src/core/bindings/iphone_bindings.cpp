#include "core/bindings/iphone_bindings.h"

#include <algorithm>
#include <cctype>

#include "core/errors.h"
#include "iphone/address_book.h"
#include "support/geo_units.h"
#include "support/trace.h"

namespace mobivine::core {

namespace {
constexpr const char* kPlatform = "iphone";

Location ToUniform(const iphone::CLLocation& native) {
  Location out;
  out.latitude = native.latitude;
  out.longitude = native.longitude;
  out.altitude = native.altitude;
  out.accuracy_m = native.horizontalAccuracy;
  out.speed_mps = native.speed >= 0 ? native.speed : 0.0;
  out.heading_deg = native.course >= 0 ? native.course : 0.0;
  out.timestamp_ms = native.timestamp_ms;
  out.valid = native.valid();
  return out;
}

/// Map a CoreLocation NSError to the uniform error model. Denial is a
/// SECURITY condition even though no exception was thrown natively.
[[noreturn]] void ThrowFromCLError(const iphone::NSError& error) {
  if (error.code == iphone::kCLErrorDenied) {
    throw ProxyError(ErrorCode::kSecurity, error.localized_description,
                     kPlatform, "NSError(kCLErrorDomain/denied)");
  }
  throw ProxyError(ErrorCode::kLocationUnavailable,
                   error.localized_description, kPlatform,
                   "NSError(kCLErrorDomain)");
}
}  // namespace

// ===========================================================================
// IPhoneLocationProxy
// ===========================================================================

struct IPhoneLocationProxy::AlertState {
  ProximityListener* uniform_listener = nullptr;
  double latitude = 0, longitude = 0, altitude = 0;
  float radius_m = 0;
  bool inside = false;
  bool active = true;
  std::unique_ptr<iphone::CLLocationManager> manager;
  std::unique_ptr<StreamDelegate> delegate;
  sim::EventId expiry_event = 0;
};

/// Synthesizes enter/exit transitions from the CoreLocation update stream
/// (client-side geofencing — the only option before iOS 4's CLRegion).
class IPhoneLocationProxy::StreamDelegate
    : public iphone::CLLocationManagerDelegate {
 public:
  // Holds the alert weakly: the state owns the delegate (unique_ptr), so a
  // strong back-pointer would form an unreclaimable shared_ptr cycle once
  // the alert leaves alerts_.
  StreamDelegate(IPhoneLocationProxy& owner, std::shared_ptr<AlertState> state)
      : owner_(owner), state_(state) {}

  void locationManagerDidUpdateToLocation(
      const iphone::CLLocation& new_location,
      const iphone::CLLocation& old_location) override {
    (void)old_location;
    auto state = state_.lock();
    if (!state || !state->active) return;
    const double distance = support::HaversineMeters(
        new_location.latitude, new_location.longitude, state->latitude,
        state->longitude);
    const bool inside_now = distance <= state->radius_m;
    if (inside_now == state->inside) return;
    state->inside = inside_now;
    owner_.meter().Charge(Op::kListenerAdaptation);
    owner_.meter().Charge(Op::kTypeConversion, 7);
    state->uniform_listener->proximityEvent(state->latitude, state->longitude,
                                            state->altitude,
                                            ToUniform(new_location),
                                            inside_now);
  }

  void locationManagerDidFailWithError(const iphone::NSError& error) override {
    // A denial tears the alert down; transient kCLErrorLocationUnknown is
    // ignored (the stream resumes).
    auto state = state_.lock();
    if (!state) return;
    if (error.code == iphone::kCLErrorDenied && state->active) {
      owner_.meter().Charge(Op::kExceptionMap);
      owner_.Teardown(*state);
    }
  }

 private:
  IPhoneLocationProxy& owner_;
  std::weak_ptr<AlertState> state_;
};

IPhoneLocationProxy::IPhoneLocationProxy(iphone::IPhonePlatform& platform,
                                         const BindingPlane* binding)
    : LocationProxy(platform.device().scheduler(), binding),
      platform_(platform) {}

IPhoneLocationProxy::~IPhoneLocationProxy() {
  for (auto& state : alerts_) Teardown(*state);
}

double IPhoneLocationProxy::DesiredAccuracy() {
  meter().Charge(Op::kPropertyLookup);
  meter().Charge(Op::kTypeConversion);
  return getPropertyOr<double>("desiredAccuracy",
                               iphone::kCLLocationAccuracyHundredMeters);
}

Location IPhoneLocationProxy::getLocation() {
  support::trace::Span span("iphone.getLocation");
  meter().Charge(Op::kDispatch);
  AdmitDispatch("getLocation");
  RequireProperties();

  // Blocking facade over the streaming API: spin the run loop until the
  // first fix or error arrives, bounded by the timeout property.
  class OneShot : public iphone::CLLocationManagerDelegate {
   public:
    void locationManagerDidUpdateToLocation(
        const iphone::CLLocation& new_location,
        const iphone::CLLocation&) override {
      fix = new_location;
      done = true;
    }
    void locationManagerDidFailWithError(
        const iphone::NSError& e) override {
      if (e.code == iphone::kCLErrorDenied) {
        error = e;
        done = true;
      }
      // LocationUnknown: keep waiting for the stream to recover.
    }
    iphone::CLLocation fix;
    iphone::NSError error = iphone::NSError::None();
    bool done = false;
  } delegate;

  iphone::CLLocationManager manager(platform_);
  manager.setDesiredAccuracy(DesiredAccuracy());
  manager.setDelegate(&delegate);
  meter().Charge(Op::kListenerAdaptation);
  manager.startUpdatingLocation();

  meter().Charge(Op::kPropertyLookup);
  const long long timeout_s = getPropertyOr<long long>("locationTimeout", 30);
  auto& scheduler = platform_.device().scheduler();
  const sim::SimTime deadline =
      scheduler.now() + sim::SimTime::Seconds(timeout_s);
  while (!delegate.done && scheduler.now() < deadline) {
    if (!scheduler.Step()) break;  // queue drained: no fix is coming
  }
  manager.stopUpdatingLocation();

  if (!delegate.error.ok()) {
    meter().Charge(Op::kExceptionMap);
    ThrowFromCLError(delegate.error);
  }
  if (!delegate.done || !delegate.fix.valid()) {
    meter().Charge(Op::kExceptionMap);
    throw ProxyError(ErrorCode::kLocationUnavailable,
                     "no fix within " + std::to_string(timeout_s) + " s",
                     kPlatform, "NSError(kCLErrorDomain)");
  }
  meter().Charge(Op::kTypeConversion, 7);
  return ConvertUnits(ToUniform(delegate.fix));
}

void IPhoneLocationProxy::addProximityAlert(double latitude, double longitude,
                                            double altitude, float radius_m,
                                            long long timer_ms,
                                            ProximityListener* listener) {
  meter().Charge(Op::kDispatch);
  meter().Charge(Op::kValidation);
  if (listener == nullptr) {
    throw ProxyError(ErrorCode::kIllegalArgument,
                     "proximity listener must not be null");
  }
  if (!(radius_m > 0)) {
    throw ProxyError(ErrorCode::kIllegalArgument, "radius must be > 0");
  }
  RequireProperties();

  auto state = std::make_shared<AlertState>();
  state->uniform_listener = listener;
  state->latitude = latitude;
  state->longitude = longitude;
  state->altitude = altitude;
  state->radius_m = radius_m;
  state->manager = std::make_unique<iphone::CLLocationManager>(platform_);
  state->manager->setDesiredAccuracy(DesiredAccuracy());
  state->delegate = std::make_unique<StreamDelegate>(*this, state);
  state->manager->setDelegate(state->delegate.get());
  meter().Charge(Op::kListenerAdaptation);
  state->manager->startUpdatingLocation();

  if (timer_ms >= 0) {
    std::weak_ptr<AlertState> weak = state;
    state->expiry_event = platform_.device().scheduler().ScheduleAfter(
        sim::SimTime::Millis(timer_ms), [this, weak] {
          if (auto locked = weak.lock()) {
            meter().Charge(Op::kEnrichment);
            Teardown(*locked);
          }
        });
  }
  alerts_.push_back(std::move(state));
  ++active_alerts_;
}

void IPhoneLocationProxy::Teardown(AlertState& state) {
  if (!state.active) return;
  state.active = false;
  if (state.manager) state.manager->stopUpdatingLocation();
  if (state.expiry_event != 0) {
    platform_.device().scheduler().Cancel(state.expiry_event);
    state.expiry_event = 0;
  }
  if (active_alerts_ > 0) --active_alerts_;
}

void IPhoneLocationProxy::removeProximityAlert(ProximityListener* listener) {
  meter().Charge(Op::kDispatch);
  for (auto& state : alerts_) {
    if (state->uniform_listener == listener) Teardown(*state);
  }
  alerts_.erase(std::remove_if(alerts_.begin(), alerts_.end(),
                               [](const std::shared_ptr<AlertState>& state) {
                                 return !state->active;
                               }),
                alerts_.end());
}

// ===========================================================================
// IPhoneSmsProxy
// ===========================================================================

IPhoneSmsProxy::IPhoneSmsProxy(iphone::IPhonePlatform& platform,
                               const BindingPlane* binding)
    : SmsProxy(platform.device().scheduler(), binding), platform_(platform) {}

IPhoneSmsProxy::~IPhoneSmsProxy() {
  platform_.set_composer_observer(nullptr);
}

int IPhoneSmsProxy::segmentCount(const std::string& text) {
  support::trace::Span span("iphone.segmentCount");
  meter().Charge(Op::kDispatch);
  AdmitDispatch("segmentCount");
  meter().Charge(Op::kEnrichment);  // no native API for this on iPhone
  if (text.empty()) return 1;
  return static_cast<int>((text.size() + 159) / 160);
}

long long IPhoneSmsProxy::sendTextMessage(const std::string& destination,
                                          const std::string& text,
                                          SmsListener* listener) {
  support::trace::Span span("iphone.sendTextMessage");
  meter().Charge(Op::kDispatch);
  AdmitDispatch("sendTextMessage");
  meter().Charge(Op::kValidation);
  if (destination.empty() || text.empty()) {
    throw ProxyError(ErrorCode::kIllegalArgument,
                     "destination and text must be non-empty");
  }
  RequireProperties();
  const long long id = next_message_id_++;

  // iPhone OS cannot send silently: the composer opens and the USER
  // decides. The proxy turns the outcome into uniform statuses —
  // cancellation included.
  if (listener != nullptr) {
    meter().Charge(Op::kListenerAdaptation);
    platform_.set_composer_observer(
        [this, listener, id](iphone::IPhonePlatform::ComposerOutcome outcome) {
          meter().Charge(Op::kListenerAdaptation);
          switch (outcome) {
            case iphone::IPhonePlatform::ComposerOutcome::kSent:
              listener->smsStatusChanged(id, SmsDeliveryStatus::kSubmitted);
              break;
            case iphone::IPhonePlatform::ComposerOutcome::kCancelled:
            case iphone::IPhonePlatform::ComposerOutcome::kFailed:
              listener->smsStatusChanged(id, SmsDeliveryStatus::kFailed);
              break;
            case iphone::IPhonePlatform::ComposerOutcome::kNone:
              break;
          }
        });
  }
  const bool opened = platform_.openURL("sms:" + destination, text);
  if (!opened) {
    meter().Charge(Op::kExceptionMap);
    throw ProxyError(ErrorCode::kIllegalArgument,
                     "malformed sms destination: " + destination, kPlatform,
                     "UIApplication.openURL->NO");
  }
  return id;
}

// ===========================================================================
// IPhoneCallProxy
// ===========================================================================

IPhoneCallProxy::IPhoneCallProxy(iphone::IPhonePlatform& platform,
                                 const BindingPlane* binding)
    : CallProxy(platform.device().scheduler(), binding), platform_(platform) {}

IPhoneCallProxy::~IPhoneCallProxy() {
  platform_.set_composer_observer(nullptr);
}

bool IPhoneCallProxy::makeCall(const std::string& number,
                               CallListener* listener) {
  meter().Charge(Op::kDispatch);
  meter().Charge(Op::kValidation);
  if (number.empty()) {
    throw ProxyError(ErrorCode::kIllegalArgument, "phone number is empty");
  }
  if (composing_) return false;

  meter().Charge(Op::kListenerAdaptation);
  platform_.set_composer_observer(
      [this, listener](iphone::IPhonePlatform::ComposerOutcome outcome) {
        composing_ = false;
        meter().Charge(Op::kListenerAdaptation);
        switch (outcome) {
          case iphone::IPhonePlatform::ComposerOutcome::kSent:
            // The system dialer owns the call from here: apps see only
            // that dialing began (documented capability difference).
            last_known_ = CallProgress::kDialing;
            if (listener != nullptr) {
              listener->callStateChanged(CallProgress::kDialing);
            }
            break;
          case iphone::IPhonePlatform::ComposerOutcome::kCancelled:
          case iphone::IPhonePlatform::ComposerOutcome::kFailed:
            last_known_ = CallProgress::kFailed;
            if (listener != nullptr) {
              listener->callStateChanged(CallProgress::kFailed);
            }
            break;
          case iphone::IPhonePlatform::ComposerOutcome::kNone:
            break;
        }
      });
  const bool opened = platform_.openURL("tel:" + number);
  if (!opened) {
    meter().Charge(Op::kExceptionMap);
    throw ProxyError(ErrorCode::kIllegalArgument,
                     "malformed tel URL for: " + number, kPlatform,
                     "UIApplication.openURL->NO");
  }
  composing_ = true;
  return true;
}

void IPhoneCallProxy::endCall() {
  meter().Charge(Op::kDispatch);
  // Apps cannot hang up programmatically on iPhone OS; the modem hangup
  // here models the user doing it in the system UI.
  platform_.device().modem().HangUp();
  last_known_ = CallProgress::kEnded;
}

CallProgress IPhoneCallProxy::currentState() {
  meter().Charge(Op::kDispatch);
  return last_known_;
}

// ===========================================================================
// IPhoneHttpProxy
// ===========================================================================

IPhoneHttpProxy::IPhoneHttpProxy(iphone::IPhonePlatform& platform,
                                 const BindingPlane* binding)
    : HttpProxy(platform.device().scheduler(), binding), platform_(platform) {}

void IPhoneHttpProxy::setHeader(const std::string& name,
                                const std::string& value) {
  meter().Charge(Op::kPropertySet);
  // Replace-by-name: repeated setHeader (e.g. Authorization refresh)
  // must not accumulate stale values.
  for (auto& [existing, existing_value] : headers_) {
    if (existing == name) {
      existing_value = value;
      return;
    }
  }
  headers_.emplace_back(name, value);
}

HttpResult IPhoneHttpProxy::Execute(const std::string& method,
                                    const std::string& url,
                                    const std::string& body,
                                    const std::string& content_type) {
  iphone::NSError error = iphone::NSError::None();
  auto response = platform_.sendSynchronousRequest(method, url, body,
                                                   content_type, error,
                                                   headers_);
  if (!error.ok()) {
    meter().Charge(Op::kExceptionMap);
    switch (error.code) {
      case iphone::kNSURLErrorCannotFindHost:
        throw ProxyError(ErrorCode::kUnreachable, error.localized_description,
                         kPlatform, "NSError(NSURLErrorDomain)");
      case iphone::kNSURLErrorTimedOut:
        throw ProxyError(ErrorCode::kTimeout, error.localized_description,
                         kPlatform, "NSError(NSURLErrorDomain)");
      case iphone::kNSURLErrorBadURL:
        throw ProxyError(ErrorCode::kIllegalArgument,
                         error.localized_description, kPlatform,
                         "NSError(NSURLErrorDomain)");
      default:
        throw ProxyError(ErrorCode::kNetwork, error.localized_description,
                         kPlatform, "NSError(NSURLErrorDomain)");
    }
  }
  meter().Charge(Op::kTypeConversion, 3);
  HttpResult result;
  result.status = response.status_code;
  result.reason = device::ReasonPhrase(response.status_code);
  result.body = response.body;
  return result;
}

HttpResult IPhoneHttpProxy::get(const std::string& url) {
  support::trace::Span span("iphone.httpGet");
  meter().Charge(Op::kDispatch);
  AdmitDispatch("httpGet");
  return Execute("GET", url, "", "");
}

HttpResult IPhoneHttpProxy::post(const std::string& url,
                                 const std::string& body,
                                 const std::string& content_type) {
  support::trace::Span span("iphone.httpPost");
  meter().Charge(Op::kDispatch);
  AdmitDispatch("httpPost");
  return Execute("POST", url, body, content_type);
}

// ===========================================================================
// IPhonePimProxy
// ===========================================================================

IPhonePimProxy::IPhonePimProxy(iphone::IPhonePlatform& platform,
                               const BindingPlane* binding)
    : PimProxy(platform.device().scheduler(), binding), platform_(platform) {}

std::vector<Contact> IPhonePimProxy::listContacts() {
  meter().Charge(Op::kDispatch);
  iphone::ABAddressBook book(platform_);
  std::vector<Contact> out;
  for (const iphone::ABRecord& record : book.CopyArrayOfAllPeople()) {
    meter().Charge(Op::kTypeConversion);
    out.push_back({record.record_id,
                   record.CopyValue(iphone::kABPersonNameProperty),
                   record.CopyValue(iphone::kABPersonPhoneProperty),
                   record.CopyValue(iphone::kABPersonEmailProperty)});
  }
  return out;
}

std::optional<Contact> IPhonePimProxy::findByNumber(
    const std::string& phone_number) {
  meter().Charge(Op::kDispatch);
  meter().Charge(Op::kEnrichment);  // AddressBook has no number index
  for (const Contact& contact : listContacts()) {
    if (contact.phone_number == phone_number) return contact;
  }
  return std::nullopt;
}

std::vector<Contact> IPhonePimProxy::findByName(const std::string& fragment) {
  meter().Charge(Op::kDispatch);
  meter().Charge(Op::kEnrichment);
  std::vector<Contact> out;
  for (const Contact& contact : listContacts()) {
    std::string lower = contact.display_name;
    for (char& c : lower) c = static_cast<char>(std::tolower(c));
    std::string needle = fragment;
    for (char& c : needle) c = static_cast<char>(std::tolower(c));
    if (lower.find(needle) != std::string::npos) out.push_back(contact);
  }
  return out;
}

}  // namespace mobivine::core
