#include "core/bindings/android_bindings.h"

#include <algorithm>

#include "android/exceptions.h"
#include "android/http_client.h"
#include "android/sms_manager.h"
#include "android/telephony.h"
#include "core/errors.h"
#include "support/strings.h"
#include "support/trace.h"

namespace mobivine::core {

namespace {
constexpr const char* kPlatform = "android";

Location ToUniform(const android::Location& native) {
  Location out;
  out.latitude = native.getLatitude();
  out.longitude = native.getLongitude();
  out.altitude = native.hasAltitude() ? native.getAltitude() : 0.0;
  out.accuracy_m = native.getAccuracy();
  out.speed_mps = native.getSpeed();
  out.heading_deg = native.getBearing();
  out.timestamp_ms = native.getTime();
  out.valid = native.getTime() != 0;
  return out;
}
}  // namespace

// ===========================================================================
// AndroidLocationProxy
// ===========================================================================

/// Receives the platform's proximity broadcast and re-expresses it as the
/// uniform ProximityListener callback, fetching the current location the
/// way the paper's Figure 2(a) receiver does.
class AndroidLocationProxy::AlertReceiver : public android::IntentReceiver {
 public:
  AlertReceiver(AndroidLocationProxy& owner, ProximityListener* listener,
                double ref_latitude, double ref_longitude, double ref_altitude)
      : owner_(owner),
        listener_(listener),
        ref_latitude_(ref_latitude),
        ref_longitude_(ref_longitude),
        ref_altitude_(ref_altitude) {}

  void onReceiveIntent(android::Context& context,
                       const android::Intent& intent) override {
    (void)context;
    const bool entering = intent.getBooleanExtra("entering", false);
    owner_.meter().Charge(Op::kListenerAdaptation);
    Location current;
    try {
      current = owner_.ReadCurrentLocation();
    } catch (const ProxyError&) {
      current.valid = false;  // deliver the event even without a fix
    }
    listener_->proximityEvent(ref_latitude_, ref_longitude_, ref_altitude_,
                              current, entering);
  }

 private:
  AndroidLocationProxy& owner_;
  ProximityListener* listener_;
  double ref_latitude_;
  double ref_longitude_;
  double ref_altitude_;
};

AndroidLocationProxy::AndroidLocationProxy(android::AndroidPlatform& platform,
                                           const BindingPlane* binding)
    : LocationProxy(platform.device().scheduler(), binding),
      platform_(platform) {}

AndroidLocationProxy::~AndroidLocationProxy() {
  for (auto& reg : registrations_) {
    platform_.application_context().unregisterReceiver(reg.receiver.get());
  }
}

android::Context& AndroidLocationProxy::RequireContext() {
  meter().Charge(Op::kPropertyLookup);
  auto context = getProperty<android::Context*>("context");
  if (!context || *context == nullptr) {
    throw ProxyError(ErrorCode::kIllegalArgument,
                     "Location proxy on android requires "
                     "setProperty(\"context\", <Context*>)");
  }
  return **context;
}

Location AndroidLocationProxy::ReadCurrentLocation() {
  android::Context& context = RequireContext();
  meter().Charge(Op::kPropertyLookup);
  const std::string provider =
      getPropertyOr<std::string>("provider", "gps");
  auto* manager = static_cast<android::LocationManager*>(
      context.getSystemService(android::LOCATION_SERVICE));
  try {
    android::Location native = manager->getCurrentLocation(provider);
    meter().Charge(Op::kTypeConversion, 7);
    return ConvertUnits(ToUniform(native));
  } catch (...) {
    meter().Charge(Op::kExceptionMap);
    RethrowAsProxyError(kPlatform);
  }
}

Location AndroidLocationProxy::getLocation() {
  support::trace::Span span("android.getLocation");
  meter().Charge(Op::kDispatch);
  AdmitDispatch("getLocation");
  RequireProperties();
  return ReadCurrentLocation();
}

void AndroidLocationProxy::addProximityAlert(double latitude, double longitude,
                                             double altitude, float radius_m,
                                             long long timer_ms,
                                             ProximityListener* listener) {
  meter().Charge(Op::kDispatch);
  meter().Charge(Op::kValidation);
  if (listener == nullptr) {
    throw ProxyError(ErrorCode::kIllegalArgument,
                     "proximity listener must not be null");
  }
  RequireProperties();
  android::Context& context = RequireContext();
  auto* manager = static_cast<android::LocationManager*>(
      context.getSystemService(android::LOCATION_SERVICE));

  Registration reg;
  reg.listener = listener;
  reg.action = "com.ibm.proxies.android.intent.action.PROXIMITY_ALERT." +
               std::to_string(next_alert_id_++);
  reg.receiver = std::make_unique<AlertReceiver>(*this, listener, latitude,
                                                 longitude, altitude);
  // Wire the Intent mechanism onto the uniform listener object.
  meter().Charge(Op::kListenerAdaptation);
  context.registerReceiver(reg.receiver.get(),
                           android::IntentFilter(reg.action));
  try {
    if (platform_.api_level() == android::ApiLevel::k10) {
      // Android 1.0: the API takes a PendingIntent — absorbed here.
      meter().Charge(Op::kTypeConversion);
      reg.pending = android::PendingIntent::getBroadcast(
          context, next_alert_id_, android::Intent(reg.action), 0);
      manager->addProximityAlert(latitude, longitude, radius_m, timer_ms,
                                 reg.pending);
    } else {
      manager->addProximityAlert(latitude, longitude, radius_m, timer_ms,
                                 android::Intent(reg.action));
    }
  } catch (...) {
    context.unregisterReceiver(reg.receiver.get());
    meter().Charge(Op::kExceptionMap);
    RethrowAsProxyError(kPlatform);
  }
  registrations_.push_back(std::move(reg));
  ++active_alerts_;
}

void AndroidLocationProxy::removeProximityAlert(ProximityListener* listener) {
  meter().Charge(Op::kDispatch);
  android::Context& context = RequireContext();
  auto* manager = static_cast<android::LocationManager*>(
      context.getSystemService(android::LOCATION_SERVICE));
  for (auto it = registrations_.begin(); it != registrations_.end();) {
    if (it->listener == listener) {
      if (it->pending) {
        manager->removeProximityAlert(it->pending);
      } else {
        manager->removeProximityAlert(it->action);
      }
      context.unregisterReceiver(it->receiver.get());
      it = registrations_.erase(it);
      if (active_alerts_ > 0) --active_alerts_;
    } else {
      ++it;
    }
  }
}

// ===========================================================================
// AndroidSmsProxy
// ===========================================================================

/// Translates the platform's sent/delivered broadcasts into uniform
/// SmsListener callbacks.
class AndroidSmsProxy::StatusReceiver : public android::IntentReceiver {
 public:
  StatusReceiver(AndroidSmsProxy& owner, SmsListener* listener,
                 std::string sent_action, std::string delivered_action)
      : owner_(owner),
        listener_(listener),
        sent_action_(std::move(sent_action)),
        delivered_action_(std::move(delivered_action)) {}

  void onReceiveIntent(android::Context& context,
                       const android::Intent& intent) override {
    (void)context;
    if (listener_ == nullptr) return;
    owner_.meter().Charge(Op::kListenerAdaptation);
    const long long id = intent.getLongExtra("messageId", 0);
    const int result = intent.getIntExtra(
        "result", android::SmsManager::RESULT_ERROR_GENERIC_FAILURE);
    if (intent.getAction() == delivered_action_) {
      finished_ = true;  // delivery report is the last event
      listener_->smsStatusChanged(id, SmsDeliveryStatus::kDelivered);
      return;
    }
    const bool submitted = result == android::SmsManager::RESULT_OK;
    if (!submitted) finished_ = true;  // failures are terminal
    listener_->smsStatusChanged(id, submitted
                                        ? SmsDeliveryStatus::kSubmitted
                                        : SmsDeliveryStatus::kFailed);
  }

  bool finished() const { return finished_; }

 private:
  AndroidSmsProxy& owner_;
  SmsListener* listener_;
  std::string sent_action_;
  std::string delivered_action_;
  bool finished_ = false;
};

AndroidSmsProxy::AndroidSmsProxy(android::AndroidPlatform& platform,
                                 const BindingPlane* binding)
    : SmsProxy(platform.device().scheduler(), binding), platform_(platform) {}

AndroidSmsProxy::~AndroidSmsProxy() {
  for (auto& receiver : receivers_) {
    platform_.application_context().unregisterReceiver(receiver.get());
  }
}

android::Context& AndroidSmsProxy::RequireContext() {
  meter().Charge(Op::kPropertyLookup);
  auto context = getProperty<android::Context*>("context");
  if (!context || *context == nullptr) {
    throw ProxyError(ErrorCode::kIllegalArgument,
                     "Sms proxy on android requires "
                     "setProperty(\"context\", <Context*>)");
  }
  return **context;
}

void AndroidSmsProxy::PruneFinishedReceivers() {
  android::Context& context = platform_.application_context();
  receivers_.erase(
      std::remove_if(receivers_.begin(), receivers_.end(),
                     [&context](const std::unique_ptr<StatusReceiver>& r) {
                       if (!r->finished()) return false;
                       context.unregisterReceiver(r.get());
                       return true;
                     }),
      receivers_.end());
}

int AndroidSmsProxy::segmentCount(const std::string& text) {
  support::trace::Span span("android.segmentCount");
  meter().Charge(Op::kDispatch);
  AdmitDispatch("segmentCount");
  return platform_.sms_manager().divideMessage(text);
}

long long AndroidSmsProxy::sendTextMessage(const std::string& destination,
                                           const std::string& text,
                                           SmsListener* listener) {
  support::trace::Span span("android.sendTextMessage");
  meter().Charge(Op::kDispatch);
  AdmitDispatch("sendTextMessage");
  meter().Charge(Op::kValidation);
  if (destination.empty() || text.empty()) {
    throw ProxyError(ErrorCode::kIllegalArgument,
                     "destination and text must be non-empty");
  }
  RequireProperties();

  PruneFinishedReceivers();

  std::string sent_action;
  std::string delivered_action;
  if (listener != nullptr) {
    android::Context& context = RequireContext();
    const int id = next_send_id_++;
    sent_action = "com.ibm.proxies.android.intent.action.SMS_SENT." +
                  std::to_string(id);
    delivered_action = "com.ibm.proxies.android.intent.action.SMS_DELIVERED." +
                       std::to_string(id);
    auto receiver = std::make_unique<StatusReceiver>(
        *this, listener, sent_action, delivered_action);
    meter().Charge(Op::kListenerAdaptation);
    android::IntentFilter filter(sent_action);
    filter.addAction(delivered_action);
    context.registerReceiver(receiver.get(), std::move(filter));
    receivers_.push_back(std::move(receiver));
  }

  try {
    return platform_.sms_manager().sendTextMessage(
        destination, /*sc_address=*/"", text, sent_action, delivered_action);
  } catch (...) {
    meter().Charge(Op::kExceptionMap);
    RethrowAsProxyError(kPlatform);
  }
}

// ===========================================================================
// AndroidCallProxy
// ===========================================================================

namespace {
CallProgress ToUniform(device::CallState state) {
  switch (state) {
    case device::CallState::kDialing:
      return CallProgress::kDialing;
    case device::CallState::kRinging:
      return CallProgress::kRinging;
    case device::CallState::kConnected:
      return CallProgress::kConnected;
    case device::CallState::kFailed:
      return CallProgress::kFailed;
    case device::CallState::kIdle:
    case device::CallState::kEnded:
      return CallProgress::kEnded;
  }
  return CallProgress::kEnded;
}
}  // namespace

AndroidCallProxy::AndroidCallProxy(android::AndroidPlatform& platform,
                                   const BindingPlane* binding)
    : CallProxy(platform.device().scheduler(), binding), platform_(platform) {
  platform_.telephony_manager().setDetailedCallListener(
      [this](device::CallState state) {
        if (listener_ == nullptr) return;
        meter().Charge(Op::kListenerAdaptation);
        listener_->callStateChanged(ToUniform(state));
      });
}

AndroidCallProxy::~AndroidCallProxy() {
  platform_.telephony_manager().setDetailedCallListener(nullptr);
}

bool AndroidCallProxy::makeCall(const std::string& number,
                                CallListener* listener) {
  meter().Charge(Op::kDispatch);
  meter().Charge(Op::kValidation);
  listener_ = listener;
  try {
    return platform_.telephony_manager().call(number);
  } catch (...) {
    meter().Charge(Op::kExceptionMap);
    RethrowAsProxyError(kPlatform);
  }
}

void AndroidCallProxy::endCall() {
  meter().Charge(Op::kDispatch);
  platform_.telephony_manager().endCall();
}

CallProgress AndroidCallProxy::currentState() {
  meter().Charge(Op::kDispatch);
  return ToUniform(platform_.device().modem().call_state());
}

// ===========================================================================
// AndroidPimProxy
// ===========================================================================

AndroidPimProxy::AndroidPimProxy(android::AndroidPlatform& platform,
                                 const BindingPlane* binding)
    : PimProxy(platform.device().scheduler(), binding), platform_(platform) {}

std::vector<Contact> AndroidPimProxy::Drain(android::Cursor cursor) {
  // Cursor-iteration style absorbed into uniform records; the cursor is
  // closed afterwards (leaking it is the classic Android bug).
  std::vector<Contact> out;
  while (cursor.moveToNext()) {
    meter().Charge(Op::kTypeConversion);
    Contact contact;
    contact.id = cursor.getLong(android::Cursor::COLUMN_ID);
    contact.display_name =
        cursor.getString(android::Cursor::COLUMN_DISPLAY_NAME);
    contact.phone_number = cursor.getString(android::Cursor::COLUMN_NUMBER);
    contact.email = cursor.getString(android::Cursor::COLUMN_EMAIL);
    out.push_back(std::move(contact));
  }
  cursor.close();
  return out;
}

std::vector<Contact> AndroidPimProxy::listContacts() {
  meter().Charge(Op::kDispatch);
  try {
    android::ContactsProvider provider(platform_);
    return Drain(provider.query());
  } catch (...) {
    meter().Charge(Op::kExceptionMap);
    RethrowAsProxyError(kPlatform);
  }
}

std::optional<Contact> AndroidPimProxy::findByNumber(
    const std::string& phone_number) {
  meter().Charge(Op::kDispatch);
  try {
    android::ContactsProvider provider(platform_);
    auto matches = Drain(provider.queryByNumber(phone_number));
    if (matches.empty()) return std::nullopt;
    return matches.front();
  } catch (...) {
    meter().Charge(Op::kExceptionMap);
    RethrowAsProxyError(kPlatform);
  }
}

std::vector<Contact> AndroidPimProxy::findByName(const std::string& fragment) {
  meter().Charge(Op::kDispatch);
  meter().Charge(Op::kEnrichment);  // the 2009 provider had no name filter
  std::vector<Contact> out;
  for (const Contact& contact : listContacts()) {
    std::string lower = support::ToLower(contact.display_name);
    if (lower.find(support::ToLower(fragment)) != std::string::npos) {
      out.push_back(contact);
    }
  }
  return out;
}

// ===========================================================================
// AndroidCalendarProxy
// ===========================================================================

AndroidCalendarProxy::AndroidCalendarProxy(android::AndroidPlatform& platform,
                                           const BindingPlane* binding)
    : CalendarProxy(platform.device().scheduler(), binding),
      platform_(platform) {}

std::vector<CalendarEvent> AndroidCalendarProxy::Drain(
    android::EventCursor cursor) {
  std::vector<CalendarEvent> out;
  while (cursor.moveToNext()) {
    meter().Charge(Op::kTypeConversion);
    CalendarEvent event;
    event.id = cursor.getLong(android::EventCursor::COLUMN_ID);
    event.title = cursor.getString(android::EventCursor::COLUMN_TITLE);
    event.start_ms = cursor.getLong(android::EventCursor::COLUMN_DTSTART);
    event.end_ms = cursor.getLong(android::EventCursor::COLUMN_DTEND);
    event.location = cursor.getString(android::EventCursor::COLUMN_LOCATION);
    out.push_back(std::move(event));
  }
  cursor.close();
  std::sort(out.begin(), out.end(),
            [](const CalendarEvent& a, const CalendarEvent& b) {
              return a.start_ms < b.start_ms;
            });
  return out;
}

std::vector<CalendarEvent> AndroidCalendarProxy::listEvents() {
  meter().Charge(Op::kDispatch);
  try {
    android::CalendarProvider provider(platform_);
    return Drain(provider.query());
  } catch (...) {
    meter().Charge(Op::kExceptionMap);
    RethrowAsProxyError(kPlatform);
  }
}

std::vector<CalendarEvent> AndroidCalendarProxy::eventsBetween(
    long long from_ms, long long to_ms) {
  meter().Charge(Op::kDispatch);
  try {
    android::CalendarProvider provider(platform_);
    return Drain(provider.queryBetween(from_ms, to_ms));
  } catch (...) {
    meter().Charge(Op::kExceptionMap);
    RethrowAsProxyError(kPlatform);
  }
}

std::optional<CalendarEvent> AndroidCalendarProxy::nextEvent(
    long long now_ms) {
  meter().Charge(Op::kDispatch);
  meter().Charge(Op::kEnrichment);
  std::optional<CalendarEvent> best;
  for (const CalendarEvent& event : listEvents()) {
    if (event.start_ms >= now_ms) {
      best = event;
      break;  // listEvents is start-ordered
    }
  }
  return best;
}

// ===========================================================================
// AndroidHttpProxy
// ===========================================================================

AndroidHttpProxy::AndroidHttpProxy(android::AndroidPlatform& platform,
                                   const BindingPlane* binding)
    : HttpProxy(platform.device().scheduler(), binding), platform_(platform) {}

void AndroidHttpProxy::setHeader(const std::string& name,
                                 const std::string& value) {
  meter().Charge(Op::kPropertySet);
  // Replace-by-name: repeated setHeader (e.g. Authorization refresh)
  // must not accumulate stale values.
  for (auto& [existing, existing_value] : headers_) {
    if (existing == name) {
      existing_value = value;
      return;
    }
  }
  headers_.emplace_back(name, value);
}

HttpResult AndroidHttpProxy::Execute(const android::HttpUriRequest& request) {
  try {
    android::DefaultHttpClient client(platform_);
    android::ApacheHttpResponse response = client.execute(request);
    meter().Charge(Op::kTypeConversion, 3);
    HttpResult result;
    result.status = response.getStatusCode();
    result.reason = response.getReasonPhrase();
    result.body = response.getEntity();
    return result;
  } catch (...) {
    meter().Charge(Op::kExceptionMap);
    RethrowAsProxyError(kPlatform);
  }
}

HttpResult AndroidHttpProxy::get(const std::string& url) {
  support::trace::Span span("android.httpGet");
  meter().Charge(Op::kDispatch);
  AdmitDispatch("httpGet");
  android::HttpGet request(url);
  for (const auto& [name, value] : headers_) request.addHeader(name, value);
  return Execute(request);
}

HttpResult AndroidHttpProxy::post(const std::string& url,
                                  const std::string& body,
                                  const std::string& content_type) {
  support::trace::Span span("android.httpPost");
  meter().Charge(Op::kDispatch);
  AdmitDispatch("httpPost");
  android::HttpPost request(url);
  for (const auto& [name, value] : headers_) request.addHeader(name, value);
  request.addHeader("Content-Type", content_type);
  request.setEntity(body);
  return Execute(request);
}

}  // namespace mobivine::core
