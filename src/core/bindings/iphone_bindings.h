// iPhone OS binding-plane implementations — the §7 future-work platform.
//
// What these absorb:
//  * CoreLocation's streaming-only, delegate-based model: the uniform
//    blocking getLocation() is synthesized by pumping the run loop until
//    the first fix (exactly what 2009 iPhone apps did), and the uniform
//    continuous proximity semantics are synthesized client-side from the
//    update stream (no CLRegion before iOS 4).
//  * Consent-dialog security: location denial arrives as a delegate
//    NSError (kCLErrorDenied), not an exception — mapped to the same
//    ProxyError(kSecurity) as Android's and S60's SecurityException.
//  * openURL-based messaging/telephony: no silent sends; the user
//    confirmation and its cancellation surface as uniform SMS/call
//    statuses.
//  * NSError-out-parameter HTTP — mapped to the uniform error codes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/call_proxy.h"
#include "core/http_proxy.h"
#include "core/location_proxy.h"
#include "core/pim_proxy.h"
#include "core/sms_proxy.h"
#include "iphone/core_location.h"
#include "iphone/iphone_platform.h"

namespace mobivine::core {

class IPhoneLocationProxy : public LocationProxy {
 public:
  IPhoneLocationProxy(iphone::IPhonePlatform& platform,
                      const BindingPlane* binding);
  ~IPhoneLocationProxy() override;

  void addProximityAlert(double latitude, double longitude, double altitude,
                         float radius_m, long long timer_ms,
                         ProximityListener* listener) override;
  void removeProximityAlert(ProximityListener* listener) override;
  Location getLocation() override;

 private:
  struct AlertState;
  class StreamDelegate;

  double DesiredAccuracy();
  void Teardown(AlertState& state);

  iphone::IPhonePlatform& platform_;
  std::vector<std::shared_ptr<AlertState>> alerts_;
};

class IPhoneSmsProxy : public SmsProxy {
 public:
  IPhoneSmsProxy(iphone::IPhonePlatform& platform, const BindingPlane* binding);
  ~IPhoneSmsProxy() override;

  long long sendTextMessage(const std::string& destination,
                            const std::string& text,
                            SmsListener* listener) override;
  int segmentCount(const std::string& text) override;

 private:
  iphone::IPhonePlatform& platform_;
  long long next_message_id_ = 1;
};

class IPhoneCallProxy : public CallProxy {
 public:
  IPhoneCallProxy(iphone::IPhonePlatform& platform,
                  const BindingPlane* binding);
  ~IPhoneCallProxy() override;

  bool makeCall(const std::string& number, CallListener* listener) override;
  void endCall() override;
  CallProgress currentState() override;

 private:
  iphone::IPhonePlatform& platform_;
  CallProgress last_known_ = CallProgress::kEnded;
  bool composing_ = false;
};

class IPhoneHttpProxy : public HttpProxy {
 public:
  IPhoneHttpProxy(iphone::IPhonePlatform& platform,
                  const BindingPlane* binding);

  HttpResult get(const std::string& url) override;
  HttpResult post(const std::string& url, const std::string& body,
                  const std::string& content_type) override;
  void setHeader(const std::string& name, const std::string& value) override;

 private:
  HttpResult Execute(const std::string& method, const std::string& url,
                     const std::string& body, const std::string& content_type);
  iphone::IPhonePlatform& platform_;
  std::vector<std::pair<std::string, std::string>> headers_;
};

class IPhonePimProxy : public PimProxy {
 public:
  IPhonePimProxy(iphone::IPhonePlatform& platform,
                 const BindingPlane* binding);

  std::vector<Contact> listContacts() override;
  std::optional<Contact> findByNumber(const std::string& phone_number) override;
  std::vector<Contact> findByName(const std::string& fragment) override;

 private:
  iphone::IPhonePlatform& platform_;
};

}  // namespace mobivine::core
