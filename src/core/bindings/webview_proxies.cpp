#include "core/bindings/webview_proxies.h"

#include <map>
#include <memory>

#include "android/calendar.h"
#include "android/contacts.h"
#include "android/exceptions.h"
#include "android/http_client.h"
#include "android/location_manager.h"
#include "android/sms_manager.h"
#include "android/telephony.h"
#include "webview/bridge.h"

namespace mobivine::core {

using minijs::MakeHostFunction;
using minijs::Object;
using minijs::Value;

namespace {

// ===========================================================================
// Wrapper state objects (the "Java side" of each JS proxy)
// ===========================================================================

/// Shared by every wrapper: a string property map (the JS proxies'
/// setProperty travels through the wrapper, paper Figure 6 step 2).
struct WrapperProperties {
  std::map<std::string, std::string> values;
  std::string GetOr(const std::string& key, std::string fallback) const {
    auto it = values.find(key);
    return it == values.end() ? std::move(fallback) : it->second;
  }
};

// --- SMS -------------------------------------------------------------------

struct SmsWrapperState {
  explicit SmsWrapperState(webview::WebView& webview) : webview(webview) {}
  webview::WebView& webview;
  WrapperProperties properties;
  int next_id = 1;
  /// notification channel -> the action names whose broadcasts feed it.
  struct Channel {
    std::string sent_action;
    std::string delivered_action;
  };
  std::map<std::int64_t, Channel> channels;
};

/// Translate a raw sent/delivered broadcast notification into the uniform
/// {messageId, status} shape the JS callback receives.
Value TranslateSmsNotification(const SmsWrapperState::Channel& channel,
                               const minijs::Value& raw) {
  auto out = Object::Make();
  out->set_class_name("SmsStatus");
  const auto& raw_object = raw.as_object();
  out->Set("messageId", raw_object->Get("messageId"));
  const std::string action = raw_object->Get("action").ToDisplayString();
  const double result = raw_object->Get("result").ToNumber();
  if (action == channel.delivered_action) {
    out->Set("status", Value::String("delivered"));
  } else if (result == android::SmsManager::RESULT_OK) {
    out->Set("status", Value::String("submitted"));
  } else {
    out->Set("status", Value::String("failed"));
  }
  return Value::Obj(out);
}

Value MakeSmsWrapper(webview::WebView& webview) {
  auto state = std::make_shared<SmsWrapperState>(webview);
  auto object = Object::Make();
  object->set_class_name("SmsWrapper");

  object->Set("setProperty",
              MakeHostFunction("setProperty",
                               [state](minijs::Interpreter&, const Value&,
                                       std::vector<Value>& args) {
                                 state->webview.bridge().ChargeCall(2, false);
                                 if (args.size() >= 2) {
                                   state->properties
                                       .values[args[0].ToDisplayString()] =
                                       args[1].ToDisplayString();
                                 }
                                 return Value::Undefined();
                               }));

  object->Set(
      "sendTextMsg",
      MakeHostFunction(
          "sendTextMsg",
          [state](minijs::Interpreter&, const Value&,
                  std::vector<Value>& args) -> Value {
            auto& webview = state->webview;
            // Three marshalled values (destination, null service center,
            // text) plus Java-side callback registration — the wrapper
            // builds the action strings itself.
            webview.bridge().ChargeCall(/*primitive_count=*/3,
                                        /*registers_callback=*/true);
            if (args.size() < 2) {
              throw minijs::ScriptError(Value::Obj(minijs::MakeErrorObject(
                  "IllegalArgumentError",
                  "sendTextMsg needs destination and text",
                  webview::kErrorCodeIllegalArgument)));
            }
            const int id = state->next_id++;
            SmsWrapperState::Channel channel;
            channel.sent_action =
                "com.ibm.proxies.webview.SMS_SENT." + std::to_string(id);
            channel.delivered_action =
                "com.ibm.proxies.webview.SMS_DELIVERED." + std::to_string(id);
            // Both actions feed one notification channel.
            const std::int64_t notif_id =
                webview.ChannelForAction(channel.sent_action);
            // Register the delivered action onto the SAME channel by
            // reusing the per-action receiver mechanism, then remembering
            // the mapping for translation.
            webview.ChannelForAction(channel.delivered_action);
            state->channels[notif_id] = channel;
            try {
              const long long message_id =
                  webview.platform().sms_manager().sendTextMessage(
                      args[0].ToDisplayString(), "", args[1].ToDisplayString(),
                      channel.sent_action, channel.delivered_action);
              (void)message_id;
              return Value::Number(static_cast<double>(notif_id));
            } catch (...) {
              throw minijs::ScriptError(
                  webview.bridge().MapCurrentException());
            }
          }));

  object->Set(
      "getNotifications",
      MakeHostFunction(
          "getNotifications",
          [state](minijs::Interpreter&, const Value&,
                  std::vector<Value>& args) -> Value {
            auto& webview = state->webview;
            webview.bridge().ChargeCall(1, false);
            auto out = Object::MakeArray();
            if (args.empty()) return Value::Obj(out);
            const std::int64_t notif_id =
                static_cast<std::int64_t>(args[0].ToNumber());
            auto channel_it = state->channels.find(notif_id);
            if (channel_it == state->channels.end()) return Value::Obj(out);
            // Drain both action channels feeding this notification id.
            bool terminal = false;
            auto drain = [&](const std::string& action) {
              const std::int64_t channel = webview.ChannelForAction(action);
              for (Value& raw : webview.notifications().Drain(channel)) {
                Value translated =
                    TranslateSmsNotification(channel_it->second, raw);
                const std::string status =
                    translated.as_object()->Get("status").ToDisplayString();
                if (status == "delivered" || status == "failed") {
                  terminal = true;
                }
                out->elements().push_back(std::move(translated));
              }
            };
            drain(channel_it->second.sent_action);
            drain(channel_it->second.delivered_action);
            if (terminal) {
              // The conversation is over: release the action receivers so
              // long-running pages do not accumulate one pair per send.
              webview.ReleaseAction(channel_it->second.sent_action);
              webview.ReleaseAction(channel_it->second.delivered_action);
              state->channels.erase(channel_it);
            }
            return Value::Obj(out);
          }));

  object->Set("segmentCount",
              MakeHostFunction(
                  "segmentCount",
                  [state](minijs::Interpreter&, const Value&,
                          std::vector<Value>& args) -> Value {
                    state->webview.bridge().ChargeCall(1, false);
                    if (args.empty()) return Value::Number(1);
                    return Value::Number(
                        state->webview.platform().sms_manager().divideMessage(
                            args[0].ToDisplayString()));
                  }));
  return Value::Obj(object);
}

// --- Location ----------------------------------------------------------

/// Dedicated receiver that enriches each platform proximity broadcast with
/// the reference point and the current location before posting it, so the
/// JS callback receives the uniform 5-argument event of Figure 9.
class ProximityNotifReceiver : public android::IntentReceiver {
 public:
  ProximityNotifReceiver(webview::WebView& webview, std::int64_t channel,
                         double ref_latitude, double ref_longitude,
                         double ref_altitude, std::string provider)
      : webview_(webview),
        channel_(channel),
        ref_latitude_(ref_latitude),
        ref_longitude_(ref_longitude),
        ref_altitude_(ref_altitude),
        provider_(std::move(provider)) {}

  void onReceiveIntent(android::Context& context,
                       const android::Intent& intent) override {
    (void)context;
    auto note = Object::Make();
    note->set_class_name("ProximityEvent");
    note->Set("entering",
              Value::Boolean(intent.getBooleanExtra("entering", false)));
    note->Set("refLatitude", Value::Number(ref_latitude_));
    note->Set("refLongitude", Value::Number(ref_longitude_));
    note->Set("refAltitude", Value::Number(ref_altitude_));
    try {
      android::Location location =
          webview_.platform().location_manager().getCurrentLocation(provider_);
      webview_.bridge().ChargeObjectMarshal(7);
      note->Set("location", UniformLocationToJs(location));
    } catch (...) {
      note->Set("location", Value::Null());
    }
    webview_.notifications().Post(channel_, Value::Obj(note));
  }

  /// Uniform JS location object — note the MobiVine field names
  /// (heading/timestamp/valid), not the raw Android ones (bearing/time).
  static Value UniformLocationToJs(const android::Location& location) {
    auto object = Object::Make();
    object->set_class_name("Location");
    object->Set("latitude", Value::Number(location.getLatitude()));
    object->Set("longitude", Value::Number(location.getLongitude()));
    object->Set("altitude", Value::Number(location.getAltitude()));
    object->Set("accuracy", Value::Number(location.getAccuracy()));
    object->Set("speed", Value::Number(location.getSpeed()));
    object->Set("heading", Value::Number(location.getBearing()));
    object->Set("timestamp",
                Value::Number(static_cast<double>(location.getTime())));
    object->Set("valid", Value::Boolean(location.getTime() != 0));
    return Value::Obj(object);
  }

 private:
  webview::WebView& webview_;
  std::int64_t channel_;
  double ref_latitude_;
  double ref_longitude_;
  double ref_altitude_;
  std::string provider_;
};

struct LocationWrapperState {
  explicit LocationWrapperState(webview::WebView& webview) : webview(webview) {}
  ~LocationWrapperState() {
    for (auto& [id, entry] : alerts) {
      webview.platform().application_context().unregisterReceiver(
          entry.receiver.get());
    }
  }
  webview::WebView& webview;
  WrapperProperties properties;
  int next_id = 1;
  struct Alert {
    std::string action;
    std::unique_ptr<ProximityNotifReceiver> receiver;
  };
  std::map<std::int64_t, Alert> alerts;
};

Value MakeLocationWrapper(webview::WebView& webview) {
  auto state = std::make_shared<LocationWrapperState>(webview);
  auto object = Object::Make();
  object->set_class_name("LocationWrapper");

  object->Set("setProperty",
              MakeHostFunction("setProperty",
                               [state](minijs::Interpreter&, const Value&,
                                       std::vector<Value>& args) {
                                 state->webview.bridge().ChargeCall(2, false);
                                 if (args.size() >= 2) {
                                   state->properties
                                       .values[args[0].ToDisplayString()] =
                                       args[1].ToDisplayString();
                                 }
                                 return Value::Undefined();
                               }));

  object->Set(
      "getLocation",
      MakeHostFunction(
          "getLocation",
          [state](minijs::Interpreter&, const Value&,
                  std::vector<Value>&) -> Value {
            auto& webview = state->webview;
            // Crossing + the wrapper-side property-table consult.
            webview.bridge().ChargeCall(2, false);
            const std::string provider =
                state->properties.GetOr("provider", "gps");
            try {
              android::Location location =
                  webview.platform().location_manager().getCurrentLocation(
                      provider);
              webview.bridge().ChargeObjectMarshal(7);
              return ProximityNotifReceiver::UniformLocationToJs(location);
            } catch (...) {
              throw minijs::ScriptError(
                  webview.bridge().MapCurrentException());
            }
          }));

  object->Set(
      "addProximityAlert",
      MakeHostFunction(
          "addProximityAlert",
          [state](minijs::Interpreter&, const Value&,
                  std::vector<Value>& args) -> Value {
            auto& webview = state->webview;
            // Callback delivery is notification-table polling started on
            // the JS side, so no Java-side callback registration is
            // charged here (matches the raw path's cost shape).
            webview.bridge().ChargeCall(/*primitive_count=*/5,
                                        /*registers_callback=*/false);
            if (args.size() < 5) {
              throw minijs::ScriptError(Value::Obj(minijs::MakeErrorObject(
                  "IllegalArgumentError",
                  "addProximityAlert needs lat, lon, alt, radius, timer",
                  webview::kErrorCodeIllegalArgument)));
            }
            const double latitude = args[0].ToNumber();
            const double longitude = args[1].ToNumber();
            const double altitude = args[2].ToNumber();
            const float radius = static_cast<float>(args[3].ToNumber());
            const long long timer =
                static_cast<long long>(args[4].ToNumber());

            const int id = state->next_id++;
            LocationWrapperState::Alert alert;
            alert.action =
                "com.ibm.proxies.webview.PROXIMITY." + std::to_string(id);
            const std::int64_t channel = webview.notifications().NewChannel();
            alert.receiver = std::make_unique<ProximityNotifReceiver>(
                webview, channel, latitude, longitude, altitude,
                state->properties.GetOr("provider", "gps"));
            auto& context = webview.platform().application_context();
            context.registerReceiver(alert.receiver.get(),
                                     android::IntentFilter(alert.action));
            try {
              auto& manager = webview.platform().location_manager();
              if (webview.platform().api_level() == android::ApiLevel::k10) {
                manager.addProximityAlert(
                    latitude, longitude, radius, timer,
                    android::PendingIntent::getBroadcast(
                        context, id, android::Intent(alert.action), 0));
              } else {
                manager.addProximityAlert(latitude, longitude, radius, timer,
                                          android::Intent(alert.action));
              }
            } catch (...) {
              context.unregisterReceiver(alert.receiver.get());
              throw minijs::ScriptError(
                  webview.bridge().MapCurrentException());
            }
            state->alerts[channel] = std::move(alert);
            return Value::Number(static_cast<double>(channel));
          }));

  object->Set(
      "getNotifications",
      MakeHostFunction("getNotifications",
                       [state](minijs::Interpreter&, const Value&,
                               std::vector<Value>& args) -> Value {
                         state->webview.bridge().ChargeCall(1, false);
                         auto out = Object::MakeArray();
                         if (!args.empty()) {
                           out->elements() =
                               state->webview.notifications().Drain(
                                   static_cast<std::int64_t>(
                                       args[0].ToNumber()));
                         }
                         return Value::Obj(out);
                       }));

  object->Set(
      "removeProximityAlert",
      MakeHostFunction(
          "removeProximityAlert",
          [state](minijs::Interpreter&, const Value&,
                  std::vector<Value>& args) -> Value {
            auto& webview = state->webview;
            webview.bridge().ChargeCall(1, false);
            if (args.empty()) return Value::Undefined();
            const std::int64_t channel =
                static_cast<std::int64_t>(args[0].ToNumber());
            auto it = state->alerts.find(channel);
            if (it == state->alerts.end()) return Value::Undefined();
            webview.platform().location_manager().removeProximityAlert(
                it->second.action);
            webview.platform().application_context().unregisterReceiver(
                it->second.receiver.get());
            webview.notifications().CloseChannel(channel);
            state->alerts.erase(it);
            return Value::Undefined();
          }));
  return Value::Obj(object);
}

// --- Call ------------------------------------------------------------------

struct CallWrapperState {
  explicit CallWrapperState(webview::WebView& webview) : webview(webview) {}
  ~CallWrapperState() {
    if (listening) {
      webview.platform().telephony_manager().setDetailedCallListener(nullptr);
    }
  }
  webview::WebView& webview;
  WrapperProperties properties;
  std::int64_t channel = 0;
  bool listening = false;
};

const char* CallStateName(device::CallState state) {
  switch (state) {
    case device::CallState::kDialing:
      return "dialing";
    case device::CallState::kRinging:
      return "ringing";
    case device::CallState::kConnected:
      return "connected";
    case device::CallState::kFailed:
      return "failed";
    case device::CallState::kIdle:
    case device::CallState::kEnded:
      return "ended";
  }
  return "ended";
}

Value MakeCallWrapper(webview::WebView& webview) {
  auto state = std::make_shared<CallWrapperState>(webview);
  auto object = Object::Make();
  object->set_class_name("CallWrapper");

  object->Set("setProperty",
              MakeHostFunction("setProperty",
                               [state](minijs::Interpreter&, const Value&,
                                       std::vector<Value>& args) {
                                 state->webview.bridge().ChargeCall(2, false);
                                 if (args.size() >= 2) {
                                   state->properties
                                       .values[args[0].ToDisplayString()] =
                                       args[1].ToDisplayString();
                                 }
                                 return Value::Undefined();
                               }));

  object->Set(
      "makeCall",
      MakeHostFunction(
          "makeCall",
          [state](minijs::Interpreter&, const Value&,
                  std::vector<Value>& args) -> Value {
            auto& webview = state->webview;
            webview.bridge().ChargeCall(1, true);
            if (args.empty()) {
              throw minijs::ScriptError(Value::Obj(minijs::MakeErrorObject(
                  "IllegalArgumentError", "makeCall needs a number",
                  webview::kErrorCodeIllegalArgument)));
            }
            if (state->channel == 0) {
              state->channel = webview.notifications().NewChannel();
            }
            if (!state->listening) {
              state->listening = true;
              auto* table = &webview.notifications();
              const std::int64_t channel = state->channel;
              webview.platform().telephony_manager().setDetailedCallListener(
                  [table, channel](device::CallState call_state) {
                    auto note = Object::Make();
                    note->set_class_name("CallEvent");
                    note->Set("state",
                              Value::String(CallStateName(call_state)));
                    table->Post(channel, Value::Obj(note));
                  });
            }
            try {
              const bool started =
                  webview.platform().telephony_manager().call(
                      args[0].ToDisplayString());
              if (!started) return Value::Number(0);
              return Value::Number(static_cast<double>(state->channel));
            } catch (...) {
              throw minijs::ScriptError(
                  webview.bridge().MapCurrentException());
            }
          }));

  object->Set("endCall",
              MakeHostFunction("endCall",
                               [state](minijs::Interpreter&, const Value&,
                                       std::vector<Value>&) {
                                 state->webview.bridge().ChargeCall(0, false);
                                 state->webview.platform()
                                     .telephony_manager()
                                     .endCall();
                                 return Value::Undefined();
                               }));

  object->Set(
      "getNotifications",
      MakeHostFunction("getNotifications",
                       [state](minijs::Interpreter&, const Value&,
                               std::vector<Value>& args) -> Value {
                         state->webview.bridge().ChargeCall(1, false);
                         auto out = Object::MakeArray();
                         if (!args.empty()) {
                           out->elements() =
                               state->webview.notifications().Drain(
                                   static_cast<std::int64_t>(
                                       args[0].ToNumber()));
                         }
                         return Value::Obj(out);
                       }));
  return Value::Obj(object);
}

// --- Http --------------------------------------------------------------

Value MakeHttpWrapper(webview::WebView& webview) {
  auto state = std::make_shared<WrapperProperties>();
  auto headers =
      std::make_shared<std::vector<std::pair<std::string, std::string>>>();
  auto* webview_ptr = &webview;
  auto object = Object::Make();
  object->set_class_name("HttpWrapper");

  object->Set("setProperty",
              MakeHostFunction("setProperty",
                               [state, webview_ptr](minijs::Interpreter&,
                                                    const Value&,
                                                    std::vector<Value>& args) {
                                 webview_ptr->bridge().ChargeCall(2, false);
                                 if (args.size() >= 2) {
                                   state->values[args[0].ToDisplayString()] =
                                       args[1].ToDisplayString();
                                 }
                                 return Value::Undefined();
                               }));
  object->Set("setHeader",
              MakeHostFunction("setHeader",
                               [headers, webview_ptr](minijs::Interpreter&,
                                                      const Value&,
                                                      std::vector<Value>& args) {
                                 webview_ptr->bridge().ChargeCall(2, false);
                                 if (args.size() >= 2) {
                                   headers->emplace_back(
                                       args[0].ToDisplayString(),
                                       args[1].ToDisplayString());
                                 }
                                 return Value::Undefined();
                               }));

  auto execute = [headers, webview_ptr](const std::string& method,
                                        std::vector<Value>& args) -> Value {
    webview_ptr->bridge().ChargeCall(3, false);
    if (args.empty()) {
      throw minijs::ScriptError(Value::Obj(minijs::MakeErrorObject(
          "IllegalArgumentError", "url required",
          webview::kErrorCodeIllegalArgument)));
    }
    const std::string url = args[0].ToDisplayString();
    try {
      android::DefaultHttpClient client(webview_ptr->platform());
      android::ApacheHttpResponse response = [&] {
        if (method == "POST") {
          android::HttpPost post(url);
          for (const auto& [name, value] : *headers) {
            post.addHeader(name, value);
          }
          if (args.size() > 1 && !args[1].is_nullish()) {
            post.setEntity(args[1].ToDisplayString());
          }
          if (args.size() > 2 && !args[2].is_nullish()) {
            post.addHeader("Content-Type", args[2].ToDisplayString());
          }
          return client.execute(post);
        }
        android::HttpGet get(url);
        for (const auto& [name, value] : *headers) get.addHeader(name, value);
        return client.execute(get);
      }();
      webview_ptr->bridge().ChargeObjectMarshal(3);
      auto out = Object::Make();
      out->set_class_name("HttpResult");
      out->Set("status", Value::Number(response.getStatusCode()));
      out->Set("reason", Value::String(response.getReasonPhrase()));
      out->Set("body", Value::String(response.getEntity()));
      return Value::Obj(out);
    } catch (const minijs::ScriptError&) {
      throw;
    } catch (...) {
      throw minijs::ScriptError(webview_ptr->bridge().MapCurrentException());
    }
  };

  object->Set("get", MakeHostFunction(
                         "get", [execute](minijs::Interpreter&, const Value&,
                                          std::vector<Value>& args) {
                           return execute("GET", args);
                         }));
  object->Set("post", MakeHostFunction(
                          "post", [execute](minijs::Interpreter&, const Value&,
                                            std::vector<Value>& args) {
                            return execute("POST", args);
                          }));
  return Value::Obj(object);
}

// --- Contacts (Pim) ----------------------------------------------------

Value MakeContactsWrapper(webview::WebView& webview) {
  auto* webview_ptr = &webview;
  auto object = Object::Make();
  object->set_class_name("ContactsWrapper");

  auto to_js = [](const device::ContactRecord& record) {
    auto contact = Object::Make();
    contact->set_class_name("Contact");
    contact->Set("id", Value::Number(static_cast<double>(record.id)));
    contact->Set("displayName", Value::String(record.display_name));
    contact->Set("phoneNumber", Value::String(record.phone_number));
    contact->Set("email", Value::String(record.email));
    return Value::Obj(contact);
  };

  object->Set(
      "listContacts",
      MakeHostFunction(
          "listContacts",
          [webview_ptr, to_js](minijs::Interpreter&, const Value&,
                               std::vector<Value>&) -> Value {
            webview_ptr->bridge().ChargeCall(0, false);
            try {
              android::ContactsProvider provider(webview_ptr->platform());
              android::Cursor cursor = provider.query();
              auto out = Object::MakeArray();
              // One row = one marshalled 4-field object.
              while (cursor.moveToNext()) {
                webview_ptr->bridge().ChargeObjectMarshal(4);
                device::ContactRecord record;
                record.id = cursor.getLong(android::Cursor::COLUMN_ID);
                record.display_name =
                    cursor.getString(android::Cursor::COLUMN_DISPLAY_NAME);
                record.phone_number =
                    cursor.getString(android::Cursor::COLUMN_NUMBER);
                record.email = cursor.getString(android::Cursor::COLUMN_EMAIL);
                out->elements().push_back(to_js(record));
              }
              cursor.close();
              return Value::Obj(out);
            } catch (...) {
              throw minijs::ScriptError(
                  webview_ptr->bridge().MapCurrentException());
            }
          }));

  object->Set(
      "findByNumber",
      MakeHostFunction(
          "findByNumber",
          [webview_ptr, to_js](minijs::Interpreter&, const Value&,
                               std::vector<Value>& args) -> Value {
            webview_ptr->bridge().ChargeCall(1, false);
            if (args.empty()) return Value::Null();
            try {
              android::ContactsProvider provider(webview_ptr->platform());
              android::Cursor cursor =
                  provider.queryByNumber(args[0].ToDisplayString());
              if (!cursor.moveToNext()) return Value::Null();
              webview_ptr->bridge().ChargeObjectMarshal(4);
              device::ContactRecord record;
              record.id = cursor.getLong(android::Cursor::COLUMN_ID);
              record.display_name =
                  cursor.getString(android::Cursor::COLUMN_DISPLAY_NAME);
              record.phone_number =
                  cursor.getString(android::Cursor::COLUMN_NUMBER);
              record.email = cursor.getString(android::Cursor::COLUMN_EMAIL);
              cursor.close();
              return to_js(record);
            } catch (...) {
              throw minijs::ScriptError(
                  webview_ptr->bridge().MapCurrentException());
            }
          }));
  return Value::Obj(object);
}

// --- Calendar ---------------------------------------------------------

Value MakeCalendarWrapper(webview::WebView& webview) {
  auto* webview_ptr = &webview;
  auto object = Object::Make();
  object->set_class_name("CalendarWrapper");

  auto drain = [webview_ptr](android::EventCursor cursor) {
    auto out = Object::MakeArray();
    while (cursor.moveToNext()) {
      webview_ptr->bridge().ChargeObjectMarshal(5);
      auto event = Object::Make();
      event->set_class_name("CalendarEvent");
      event->Set("id", Value::Number(static_cast<double>(
                           cursor.getLong(android::EventCursor::COLUMN_ID))));
      event->Set("title", Value::String(cursor.getString(
                              android::EventCursor::COLUMN_TITLE)));
      event->Set("start",
                 Value::Number(static_cast<double>(cursor.getLong(
                     android::EventCursor::COLUMN_DTSTART))));
      event->Set("end", Value::Number(static_cast<double>(cursor.getLong(
                            android::EventCursor::COLUMN_DTEND))));
      event->Set("location", Value::String(cursor.getString(
                                 android::EventCursor::COLUMN_LOCATION)));
      out->elements().push_back(Value::Obj(event));
    }
    cursor.close();
    return Value::Obj(out);
  };

  object->Set("listEvents",
              MakeHostFunction(
                  "listEvents",
                  [webview_ptr, drain](minijs::Interpreter&, const Value&,
                                       std::vector<Value>&) -> Value {
                    webview_ptr->bridge().ChargeCall(0, false);
                    try {
                      android::CalendarProvider provider(
                          webview_ptr->platform());
                      return drain(provider.query());
                    } catch (...) {
                      throw minijs::ScriptError(
                          webview_ptr->bridge().MapCurrentException());
                    }
                  }));
  object->Set(
      "eventsBetween",
      MakeHostFunction(
          "eventsBetween",
          [webview_ptr, drain](minijs::Interpreter&, const Value&,
                               std::vector<Value>& args) -> Value {
            webview_ptr->bridge().ChargeCall(2, false);
            if (args.size() < 2) {
              throw minijs::ScriptError(Value::Obj(minijs::MakeErrorObject(
                  "IllegalArgumentError", "eventsBetween needs from and to",
                  webview::kErrorCodeIllegalArgument)));
            }
            try {
              android::CalendarProvider provider(webview_ptr->platform());
              return drain(provider.queryBetween(
                  static_cast<long long>(args[0].ToNumber()),
                  static_cast<long long>(args[1].ToNumber())));
            } catch (...) {
              throw minijs::ScriptError(
                  webview_ptr->bridge().MapCurrentException());
            }
          }));
  return Value::Obj(object);
}

}  // namespace

// ===========================================================================
// The JS proxy library (paper Figures 6 and 9)
// ===========================================================================

const std::string& WebViewProxyLibrarySource() {
  static const std::string source = R"JS(
// MobiVine JavaScript proxy library for Android WebView.
// Mirrors the architecture of the paper's Figure 6.

function notifHandler(wrapper, notifId, callBack, translate) {
  var timerId = 0;
  this.startPolling = function(intervalMs) {
    timerId = setInterval(function() {
      var notes = wrapper.getNotifications(notifId);
      for (var i = 0; i < notes.length; i++) {
        translate(callBack, notes[i]);
      }
    }, intervalMs);
  };
  this.stopPolling = function() {
    if (timerId !== 0) { clearInterval(timerId); timerId = 0; }
  };
}

function SmsProxyImpl() {
  var swi = createSmsWrapperInstance();
  var handlers = [];
  this.setProperty = function(key, value) { swi.setProperty(key, value); };
  this.sendTextMessage = function(destination, text, callBack) {
    var id = swi.sendTextMsg(destination, text);
    if (callBack !== null && callBack !== undefined) {
      var nH = null;
      nH = new notifHandler(swi, id, callBack, function(cb, n) {
        cb(n.messageId, n.status);
        // Delivery/failure ends the conversation: stop polling for it.
        if (n.status === 'delivered' || n.status === 'failed') {
          nH.stopPolling();
        }
      });
      nH.startPolling(MOBIVINE_POLL_MS);
      handlers.push(nH);
    }
    return id;
  };
  this.segmentCount = function(text) { return swi.segmentCount(text); };
  this.stopAll = function() {
    for (var i = 0; i < handlers.length; i++) { handlers[i].stopPolling(); }
  };
}

function LocationProxyImpl() {
  var lwi = createLocationWrapperInstance();
  var handlers = [];
  this.setProperty = function(key, value) { lwi.setProperty(key, value); };
  this.getLocation = function() { return lwi.getLocation(); };
  this.addProximityAlert = function(latitude, longitude, altitude, radius,
                                    timer, callBack) {
    var id = lwi.addProximityAlert(latitude, longitude, altitude, radius,
                                   timer);
    var nH = new notifHandler(lwi, id, callBack, function(cb, n) {
      cb(n.refLatitude, n.refLongitude, n.refAltitude, n.location, n.entering);
    });
    nH.startPolling(MOBIVINE_POLL_MS);
    handlers.push({ id: id, nH: nH });
    return id;
  };
  this.removeProximityAlert = function(id) {
    lwi.removeProximityAlert(id);
    for (var i = 0; i < handlers.length; i++) {
      if (handlers[i].id === id) { handlers[i].nH.stopPolling(); }
    }
  };
}

function CallProxyImpl() {
  var cwi = createCallWrapperInstance();
  var handler = null;
  this.setProperty = function(key, value) { cwi.setProperty(key, value); };
  this.makeCall = function(number, callBack) {
    var id = cwi.makeCall(number);
    if (id === 0) { return false; }
    if (callBack !== null && callBack !== undefined) {
      handler = new notifHandler(cwi, id, callBack, function(cb, n) {
        cb(n.state);
      });
      handler.startPolling(MOBIVINE_POLL_MS);
    }
    return true;
  };
  this.endCall = function() {
    cwi.endCall();
    if (handler !== null) { handler.stopPolling(); handler = null; }
  };
}

function HttpProxyImpl() {
  var hwi = createHttpWrapperInstance();
  this.setProperty = function(key, value) { hwi.setProperty(key, value); };
  this.setHeader = function(name, value) { hwi.setHeader(name, value); };
  this.get = function(url) { return hwi.get(url); };
  this.post = function(url, body, contentType) {
    return hwi.post(url, body, contentType);
  };
}

function CalendarProxyImpl() {
  var cwi = createCalendarWrapperInstance();
  this.listEvents = function() { return cwi.listEvents(); };
  this.eventsBetween = function(fromMs, toMs) {
    return cwi.eventsBetween(fromMs, toMs);
  };
  this.nextEvent = function(nowMs) {
    // Enrichment in the JS proxy: earliest event starting at/after nowMs.
    var all = cwi.listEvents();
    var best = null;
    for (var i = 0; i < all.length; i++) {
      if (all[i].start >= nowMs &&
          (best === null || all[i].start < best.start)) {
        best = all[i];
      }
    }
    return best;
  };
}

function PimProxyImpl() {
  var pwi = createPimWrapperInstance();
  this.listContacts = function() { return pwi.listContacts(); };
  this.findByNumber = function(number) { return pwi.findByNumber(number); };
  this.findByName = function(fragment) {
    // Enrichment in the JS proxy: the wrapper exposes no name filter.
    var all = pwi.listContacts();
    var out = [];
    for (var i = 0; i < all.length; i++) {
      if (all[i].displayName.toLowerCase()
              .indexOf(fragment.toLowerCase()) >= 0) {
        out.push(all[i]);
      }
    }
    return out;
  };
}
)JS";
  return source;
}

void InstallWebViewProxies(webview::WebView& webview,
                           int polling_interval_ms) {
  auto* webview_ptr = &webview;
  webview.addJavascriptInterface(
      MakeHostFunction("createSmsWrapperInstance",
                       [webview_ptr](minijs::Interpreter&, const Value&,
                                     std::vector<Value>&) {
                         webview_ptr->bridge().ChargeCall(0, false);
                         return MakeSmsWrapper(*webview_ptr);
                       }),
      "createSmsWrapperInstance");
  webview.addJavascriptInterface(
      MakeHostFunction("createLocationWrapperInstance",
                       [webview_ptr](minijs::Interpreter&, const Value&,
                                     std::vector<Value>&) {
                         webview_ptr->bridge().ChargeCall(0, false);
                         return MakeLocationWrapper(*webview_ptr);
                       }),
      "createLocationWrapperInstance");
  webview.addJavascriptInterface(
      MakeHostFunction("createCallWrapperInstance",
                       [webview_ptr](minijs::Interpreter&, const Value&,
                                     std::vector<Value>&) {
                         webview_ptr->bridge().ChargeCall(0, false);
                         return MakeCallWrapper(*webview_ptr);
                       }),
      "createCallWrapperInstance");
  webview.addJavascriptInterface(
      MakeHostFunction("createHttpWrapperInstance",
                       [webview_ptr](minijs::Interpreter&, const Value&,
                                     std::vector<Value>&) {
                         webview_ptr->bridge().ChargeCall(0, false);
                         return MakeHttpWrapper(*webview_ptr);
                       }),
      "createHttpWrapperInstance");
  webview.addJavascriptInterface(
      MakeHostFunction("createPimWrapperInstance",
                       [webview_ptr](minijs::Interpreter&, const Value&,
                                     std::vector<Value>&) {
                         webview_ptr->bridge().ChargeCall(0, false);
                         return MakeContactsWrapper(*webview_ptr);
                       }),
      "createPimWrapperInstance");
  webview.addJavascriptInterface(
      MakeHostFunction("createCalendarWrapperInstance",
                       [webview_ptr](minijs::Interpreter&, const Value&,
                                     std::vector<Value>&) {
                         webview_ptr->bridge().ChargeCall(0, false);
                         return MakeCalendarWrapper(*webview_ptr);
                       }),
      "createCalendarWrapperInstance");
  webview.interpreter().SetGlobal(
      "MOBIVINE_POLL_MS",
      Value::Number(static_cast<double>(polling_interval_ms)));
  webview.loadScript(WebViewProxyLibrarySource());
}

}  // namespace mobivine::core
