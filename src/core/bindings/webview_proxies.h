// MobiVine JavaScript proxies for the Android WebView platform, following
// the paper's Figure 6 three-step procedure:
//
//  1. Wrapper Java classes, reachable from JS via addJavaScriptInterface —
//     here host objects created by createSmsWrapperInstance() /
//     createLocationWrapperInstance() / createCallWrapperInstance() /
//     createHttpWrapperInstance().
//  2. JS proxy interfaces (SmsProxyImpl, LocationProxyImpl, CallProxyImpl,
//     HttpProxyImpl) that hold the wrapper handle (the paper's `swi`) and
//     forward calls through it; native exceptions arrive as error codes.
//  3. Callback support through the Notification Table: wrapper methods that
//     start asynchronous work return a notification id; the JS proxy's
//     notifHandler polls getNotifications(id) with startPolling() and
//     invokes the JS callback function.
//
// The application-facing JS API matches the paper's Figure 9:
//   var loc = new LocationProxyImpl();
//   loc.setProperty("provider", "gps");
//   loc.addProximityAlert(lat, lon, alt, radius, timer, proximityEvent);
#pragma once

#include <string>

#include "webview/webview.h"

namespace mobivine::core {

/// Inject the wrapper factories and load the JS proxy library into a
/// WebView. After this, scripts can construct the *ProxyImpl objects.
/// `polling_interval_ms` is the notifHandler poll period (ablation A1).
void InstallWebViewProxies(webview::WebView& webview,
                           int polling_interval_ms = 250);

/// The JS proxy library source (exposed for the plugin's packaging
/// extension, which injects it into WebView projects).
[[nodiscard]] const std::string& WebViewProxyLibrarySource();

}  // namespace mobivine::core
