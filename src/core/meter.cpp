#include "core/meter.h"

namespace mobivine::core {

const char* ToString(Op op) {
  switch (op) {
    case Op::kDispatch:
      return "dispatch";
    case Op::kPropertySet:
      return "property-set";
    case Op::kPropertyLookup:
      return "property-lookup";
    case Op::kValidation:
      return "validation";
    case Op::kTypeConversion:
      return "type-conversion";
    case Op::kListenerAdaptation:
      return "listener-adaptation";
    case Op::kExceptionMap:
      return "exception-map";
    case Op::kEnrichment:
      return "enrichment";
    case Op::kCount_:
      break;
  }
  return "?";
}

}  // namespace mobivine::core
