#include "core/meter.h"

namespace mobivine::core {

const char* ToString(Op op) {
  switch (op) {
    case Op::kDispatch:
      return "dispatch";
    case Op::kPropertySet:
      return "property-set";
    case Op::kPropertyLookup:
      return "property-lookup";
    case Op::kValidation:
      return "validation";
    case Op::kTypeConversion:
      return "type-conversion";
    case Op::kListenerAdaptation:
      return "listener-adaptation";
    case Op::kExceptionMap:
      return "exception-map";
    case Op::kEnrichment:
      return "enrichment";
    case Op::kCount_:
      break;
  }
  return "?";
}

const char* TraceNameOf(Op op) {
  switch (op) {
    case Op::kDispatch:
      return "op.dispatch";
    case Op::kPropertySet:
      return "op.property-set";
    case Op::kPropertyLookup:
      return "op.property-lookup";
    case Op::kValidation:
      return "op.validation";
    case Op::kTypeConversion:
      return "op.type-conversion";
    case Op::kListenerAdaptation:
      return "op.listener-adaptation";
    case Op::kExceptionMap:
      return "op.exception-map";
    case Op::kEnrichment:
      return "op.enrichment";
    case Op::kCount_:
      break;
  }
  return "op.?";
}

}  // namespace mobivine::core
