#include "core/descriptor/planes.h"

#include <stdexcept>

namespace mobivine::core {

// ---------------------------------------------------------------------------
// Lookups
//
// The indexed fast paths are inline in planes.h; here live the index
// builders and the linear fallbacks for planes used standalone before
// finalization. The *Linear variants stay public so the regression suite
// can assert index/scan agreement.
// ---------------------------------------------------------------------------

void SemanticPlane::BuildIndex() {
  method_index.Clear();
  for (const auto& method : methods) method_index.Add(method.name);
  method_index.Freeze();
}

const MethodSpec* SemanticPlane::FindMethodLinear(std::string_view name) const {
  for (const auto& method : methods) {
    if (method.name == name) return &method;
  }
  return nullptr;
}

void SyntacticPlane::BuildIndex() {
  method_index.Clear();
  for (const auto& method : methods) method_index.Add(method.method);
  method_index.Freeze();
}

const MethodSyntax* SyntacticPlane::FindMethodLinear(
    std::string_view name) const {
  for (const auto& method : methods) {
    if (method.method == name) return &method;
  }
  return nullptr;
}

void BindingPlane::BuildIndex() {
  property_index.Clear();
  for (const auto& property : properties) property_index.Add(property.name);
  property_index.Freeze();
}

const PropertySpec* BindingPlane::FindPropertyLinear(
    std::string_view name) const {
  for (const auto& property : properties) {
    if (property.name == name) return &property;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

namespace {
std::vector<std::string> ParseAllowedValues(const xml::Node& parent) {
  std::vector<std::string> out;
  for (const xml::Node* child : parent.Children("allowedValue")) {
    out.push_back(child->InnerText());
  }
  return out;
}
}  // namespace

SemanticPlane ParseSemantic(const xml::Node& root) {
  if (root.name() != "proxy") {
    throw std::invalid_argument("semantic plane root must be <proxy>");
  }
  SemanticPlane plane;
  plane.interface_name = root.GetAttributeOr("name", "");
  plane.category = root.GetAttributeOr("category", plane.interface_name);
  plane.description = root.ChildTextOr("description", "");
  for (const xml::Node* method_node : root.Children("method")) {
    MethodSpec method;
    method.name = method_node->GetAttributeOr("name", "");
    method.description = method_node->ChildTextOr("description", "");
    for (const xml::Node* param_node : method_node->Children("parameter")) {
      ParameterSpec param;
      param.name = param_node->GetAttributeOr("name", "");
      param.dimension = param_node->GetAttributeOr("dimension", "");
      param.description = param_node->ChildTextOr("description", "");
      param.allowed_values = ParseAllowedValues(*param_node);
      method.parameters.push_back(std::move(param));
    }
    if (const xml::Node* callback = method_node->FirstChild("callback")) {
      method.callback_name = callback->GetAttributeOr("name", "");
    }
    if (const xml::Node* returns = method_node->FirstChild("returns")) {
      method.return_dimension = returns->GetAttributeOr("dimension", "void");
    } else {
      method.return_dimension = "void";
    }
    plane.methods.push_back(std::move(method));
  }
  return plane;
}

SyntacticPlane ParseSyntactic(const xml::Node& root) {
  if (root.name() != "syntax") {
    throw std::invalid_argument("syntactic plane root must be <syntax>");
  }
  SyntacticPlane plane;
  plane.proxy = root.GetAttributeOr("proxy", "");
  plane.language = root.GetAttributeOr("language", "");
  for (const xml::Node* method_node : root.Children("method")) {
    MethodSyntax method;
    method.method = method_node->GetAttributeOr("name", "");
    method.return_type = method_node->GetAttributeOr("returnType", "void");
    for (const xml::Node* param_node : method_node->Children("param")) {
      method.parameter_types.push_back(param_node->GetAttributeOr("type", ""));
    }
    if (const xml::Node* callback = method_node->FirstChild("callback")) {
      method.callback_type = callback->GetAttributeOr("type", "");
      method.callback_method = callback->GetAttributeOr("method", "");
    }
    plane.methods.push_back(std::move(method));
  }
  return plane;
}

BindingPlane ParseBinding(const xml::Node& root) {
  if (root.name() != "binding") {
    throw std::invalid_argument("binding plane root must be <binding>");
  }
  BindingPlane plane;
  plane.proxy = root.GetAttributeOr("proxy", "");
  plane.platform = root.GetAttributeOr("platform", "");
  plane.language = root.GetAttributeOr("language", "");
  if (const xml::Node* impl = root.FirstChild("implementation")) {
    plane.implementation_class = impl->GetAttributeOr("class", "");
  }
  for (const xml::Node* artifact : root.Children("artifact")) {
    plane.artifacts.push_back(artifact->InnerText());
  }
  for (const xml::Node* exception : root.Children("exception")) {
    ExceptionSpec spec;
    spec.native_type = exception->GetAttributeOr("native", "");
    spec.mapped_code = exception->GetAttributeOr("code", "unknown");
    plane.exceptions.push_back(std::move(spec));
  }
  for (const xml::Node* property : root.Children("property")) {
    PropertySpec spec;
    spec.name = property->GetAttributeOr("name", "");
    spec.type = property->GetAttributeOr("type", "string");
    spec.default_value = property->GetAttributeOr("default", "");
    spec.required = property->GetAttributeOr("required", "false") == "true";
    spec.description = property->ChildTextOr("description", "");
    spec.allowed_values = ParseAllowedValues(*property);
    plane.properties.push_back(std::move(spec));
  }
  return plane;
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

namespace {
void AppendAllowedValues(xml::Node& parent,
                         const std::vector<std::string>& values) {
  for (const std::string& value : values) {
    parent.AppendElement("allowedValue", value);
  }
}
}  // namespace

xml::NodePtr ToXml(const SemanticPlane& plane) {
  auto root = xml::Node::Element("proxy");
  root->SetAttribute("name", plane.interface_name);
  root->SetAttribute("category", plane.category);
  if (!plane.description.empty()) {
    root->AppendElement("description", plane.description);
  }
  for (const MethodSpec& method : plane.methods) {
    xml::Node& method_node = root->AppendChild(xml::Node::Element("method"));
    method_node.SetAttribute("name", method.name);
    if (!method.description.empty()) {
      method_node.AppendElement("description", method.description);
    }
    for (const ParameterSpec& param : method.parameters) {
      xml::Node& param_node =
          method_node.AppendChild(xml::Node::Element("parameter"));
      param_node.SetAttribute("name", param.name);
      param_node.SetAttribute("dimension", param.dimension);
      if (!param.description.empty()) {
        param_node.AppendElement("description", param.description);
      }
      AppendAllowedValues(param_node, param.allowed_values);
    }
    if (!method.callback_name.empty()) {
      xml::Node& callback =
          method_node.AppendChild(xml::Node::Element("callback"));
      callback.SetAttribute("name", method.callback_name);
    }
    xml::Node& returns = method_node.AppendChild(xml::Node::Element("returns"));
    returns.SetAttribute("dimension", method.return_dimension);
  }
  return root;
}

xml::NodePtr ToXml(const SyntacticPlane& plane) {
  auto root = xml::Node::Element("syntax");
  root->SetAttribute("proxy", plane.proxy);
  root->SetAttribute("language", plane.language);
  for (const MethodSyntax& method : plane.methods) {
    xml::Node& method_node = root->AppendChild(xml::Node::Element("method"));
    method_node.SetAttribute("name", method.method);
    method_node.SetAttribute("returnType", method.return_type);
    for (const std::string& type : method.parameter_types) {
      xml::Node& param = method_node.AppendChild(xml::Node::Element("param"));
      param.SetAttribute("type", type);
    }
    if (!method.callback_type.empty() || !method.callback_method.empty()) {
      xml::Node& callback =
          method_node.AppendChild(xml::Node::Element("callback"));
      callback.SetAttribute("type", method.callback_type);
      callback.SetAttribute("method", method.callback_method);
    }
  }
  return root;
}

xml::NodePtr ToXml(const BindingPlane& plane) {
  auto root = xml::Node::Element("binding");
  root->SetAttribute("proxy", plane.proxy);
  root->SetAttribute("platform", plane.platform);
  root->SetAttribute("language", plane.language);
  if (!plane.implementation_class.empty()) {
    xml::Node& impl = root->AppendChild(xml::Node::Element("implementation"));
    impl.SetAttribute("class", plane.implementation_class);
  }
  for (const std::string& artifact : plane.artifacts) {
    root->AppendElement("artifact", artifact);
  }
  for (const ExceptionSpec& exception : plane.exceptions) {
    xml::Node& node = root->AppendChild(xml::Node::Element("exception"));
    node.SetAttribute("native", exception.native_type);
    node.SetAttribute("code", exception.mapped_code);
  }
  for (const PropertySpec& property : plane.properties) {
    xml::Node& node = root->AppendChild(xml::Node::Element("property"));
    node.SetAttribute("name", property.name);
    node.SetAttribute("type", property.type);
    if (!property.default_value.empty()) {
      node.SetAttribute("default", property.default_value);
    }
    if (property.required) node.SetAttribute("required", "true");
    if (!property.description.empty()) {
      node.AppendElement("description", property.description);
    }
    AppendAllowedValues(node, property.allowed_values);
  }
  return root;
}

}  // namespace mobivine::core
