// The five descriptor schemas (paper §4.1: "we designed five Schemas in the
// XML format - one for handling the semantic plane, one each for handling
// Java and JavaScript styles at the syntactic plane, and two at the
// implementation plane for binding Java (for S60 and Android), and
// JavaScript (for WebView)").
#pragma once

#include "xml/xml_schema.h"

namespace mobivine::core {

/// Semantic plane: <proxy name category> <method> <parameter .../> ...
[[nodiscard]] const xml::Schema& SemanticSchema();

/// Syntactic plane, Java style: listener-object callbacks required.
[[nodiscard]] const xml::Schema& SyntacticJavaSchema();

/// Syntactic plane, JavaScript style: function callbacks.
[[nodiscard]] const xml::Schema& SyntacticJavaScriptSchema();

/// Binding plane for Java platforms (Android, S60): jar artifacts.
[[nodiscard]] const xml::Schema& BindingJavaSchema();

/// Binding plane for JavaScript platforms (WebView): wrapper class +
/// JS artifacts.
[[nodiscard]] const xml::Schema& BindingJavaScriptSchema();

/// EXTENSION (paper §3.3/§7): the Objective-C pair added with the iPhone
/// platform. The original five schemas are untouched — extending the
/// platform set only adds schemas and binding documents.
[[nodiscard]] const xml::Schema& SyntacticObjCSchema();
[[nodiscard]] const xml::Schema& BindingObjCSchema();

/// Pick the schema for a parsed descriptor document root. Returns nullptr
/// for an unrecognized root/language combination.
[[nodiscard]] const xml::Schema* SchemaFor(const xml::Node& root);

}  // namespace mobivine::core
