#include "core/descriptor/schemas.h"

namespace mobivine::core {

namespace {

xml::Schema BuildSemantic() {
  xml::Schema schema("semantic", "proxy");
  schema.Rule("proxy", {.required_attributes = {"name"},
                        .optional_attributes = {"category"},
                        .children = {{"description", {0, 1}},
                                     {"method", {1, xml::kUnbounded}}}});
  schema.Rule("method", {.required_attributes = {"name"},
                         .optional_attributes = {},
                         .children = {{"description", {0, 1}},
                                      {"parameter", {0, xml::kUnbounded}},
                                      {"callback", {0, 1}},
                                      {"returns", {0, 1}}}});
  schema.Rule("parameter", {.required_attributes = {"name", "dimension"},
                            .optional_attributes = {},
                            .children = {{"description", {0, 1}},
                                         {"allowedValue",
                                          {0, xml::kUnbounded}}}});
  schema.Rule("callback", {.required_attributes = {"name"}});
  schema.Rule("returns", {.required_attributes = {"dimension"}});
  schema.Rule("description", {.text = xml::TextPolicy::kAllowed});
  schema.Rule("allowedValue", {.text = xml::TextPolicy::kRequired});
  return schema;
}

xml::Schema BuildSyntactic(const char* name) {
  xml::Schema schema(name, "syntax");
  schema.Rule("syntax", {.required_attributes = {"proxy", "language"},
                         .children = {{"method", {1, xml::kUnbounded}}}});
  schema.Rule("method", {.required_attributes = {"name"},
                         .optional_attributes = {"returnType"},
                         .children = {{"param", {0, xml::kUnbounded}},
                                      {"callback", {0, 1}}}});
  schema.Rule("param", {.required_attributes = {"type"}});
  schema.Rule("callback",
              {.required_attributes = {"type"},
               .optional_attributes = {"method"}});
  return schema;
}

xml::Schema BuildBinding(const char* name) {
  xml::Schema schema(name, "binding");
  schema.Rule("binding",
              {.required_attributes = {"proxy", "platform", "language"},
               .children = {{"implementation", {1, 1}},
                            {"artifact", {0, xml::kUnbounded}},
                            {"exception", {0, xml::kUnbounded}},
                            {"property", {0, xml::kUnbounded}}}});
  schema.Rule("implementation", {.required_attributes = {"class"}});
  schema.Rule("artifact", {.text = xml::TextPolicy::kRequired});
  schema.Rule("exception", {.required_attributes = {"native", "code"}});
  schema.Rule("property", {.required_attributes = {"name", "type"},
                           .optional_attributes = {"default", "required"},
                           .children = {{"description", {0, 1}},
                                        {"allowedValue",
                                         {0, xml::kUnbounded}}}});
  schema.Rule("description", {.text = xml::TextPolicy::kAllowed});
  schema.Rule("allowedValue", {.text = xml::TextPolicy::kRequired});
  return schema;
}

}  // namespace

const xml::Schema& SemanticSchema() {
  static const xml::Schema schema = BuildSemantic();
  return schema;
}

const xml::Schema& SyntacticJavaSchema() {
  static const xml::Schema schema = BuildSyntactic("syntactic-java");
  return schema;
}

const xml::Schema& SyntacticJavaScriptSchema() {
  static const xml::Schema schema = BuildSyntactic("syntactic-javascript");
  return schema;
}

const xml::Schema& BindingJavaSchema() {
  static const xml::Schema schema = BuildBinding("binding-java");
  return schema;
}

const xml::Schema& BindingJavaScriptSchema() {
  static const xml::Schema schema = BuildBinding("binding-javascript");
  return schema;
}

const xml::Schema& SyntacticObjCSchema() {
  static const xml::Schema schema = BuildSyntactic("syntactic-objc");
  return schema;
}

const xml::Schema& BindingObjCSchema() {
  static const xml::Schema schema = BuildBinding("binding-objc");
  return schema;
}

const xml::Schema* SchemaFor(const xml::Node& root) {
  if (root.name() == "proxy") return &SemanticSchema();
  if (root.name() == "syntax") {
    const std::string language = root.GetAttributeOr("language", "");
    if (language == "java") return &SyntacticJavaSchema();
    if (language == "javascript") return &SyntacticJavaScriptSchema();
    if (language == "objc") return &SyntacticObjCSchema();
    return nullptr;
  }
  if (root.name() == "binding") {
    const std::string language = root.GetAttributeOr("language", "");
    if (language == "java") return &BindingJavaSchema();
    if (language == "javascript") return &BindingJavaScriptSchema();
    if (language == "objc") return &BindingObjCSchema();
    return nullptr;
  }
  return nullptr;
}

}  // namespace mobivine::core
