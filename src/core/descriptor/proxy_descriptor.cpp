#include "core/descriptor/proxy_descriptor.h"

#include <algorithm>
#include <filesystem>
#include <stdexcept>

#include "core/descriptor/schemas.h"
#include "core/errors.h"
#include "support/logging.h"
#include "xml/xml_parser.h"

namespace mobivine::core {

// ---------------------------------------------------------------------------
// ProxyDescriptor
// ---------------------------------------------------------------------------

void ProxyDescriptor::AddSyntactic(SyntacticPlane plane) {
  syntactic_.push_back(std::move(plane));
  syntactic_index_.Clear();  // back to linear scans until BuildIndexes()
}

void ProxyDescriptor::AddBinding(BindingPlane plane) {
  bindings_.push_back(std::move(plane));
  binding_index_.Clear();
}

void ProxyDescriptor::BuildIndexes() {
  semantic_.BuildIndex();
  syntactic_index_.Clear();
  for (auto& plane : syntactic_) {
    plane.BuildIndex();
    syntactic_index_.Add(plane.language);
  }
  syntactic_index_.Freeze();
  binding_index_.Clear();
  for (auto& plane : bindings_) {
    plane.BuildIndex();
    binding_index_.Add(plane.platform);
  }
  binding_index_.Freeze();
}

const SyntacticPlane* ProxyDescriptor::FindSyntacticLinear(
    std::string_view language) const {
  for (const auto& plane : syntactic_) {
    if (plane.language == language) return &plane;
  }
  return nullptr;
}

const BindingPlane* ProxyDescriptor::FindBindingLinear(
    std::string_view platform) const {
  for (const auto& plane : bindings_) {
    if (plane.platform == platform) return &plane;
  }
  return nullptr;
}

std::vector<std::string> ProxyDescriptor::Platforms() const {
  std::vector<std::string> out;
  for (const auto& plane : bindings_) out.push_back(plane.platform);
  std::sort(out.begin(), out.end());
  return out;
}

namespace {
bool IsKnownErrorCode(const std::string& name) {
  static const char* kNames[] = {
      "security",  "illegal-argument", "location-unavailable",
      "timeout",   "unreachable",      "radio-failure",
      "unsupported", "invalid-state",  "network",
      "overloaded", "deadline-exceeded",
      "unknown"};
  return std::any_of(std::begin(kNames), std::end(kNames),
                     [&name](const char* known) { return name == known; });
}
}  // namespace

std::vector<std::string> ProxyDescriptor::Validate() const {
  std::vector<std::string> problems;
  const std::string& name = semantic_.interface_name;
  if (name.empty()) problems.push_back("semantic plane has no interface name");
  if (semantic_.methods.empty()) {
    problems.push_back(name + ": semantic plane declares no methods");
  }

  for (const SyntacticPlane& plane : syntactic_) {
    const std::string where = name + "/" + plane.language;
    if (plane.proxy != name) {
      problems.push_back(where + ": syntactic plane names proxy '" +
                         plane.proxy + "'");
    }
    for (const MethodSyntax& method : plane.methods) {
      const MethodSpec* spec = semantic_.FindMethod(method.method);
      if (spec == nullptr) {
        problems.push_back(where + ": method '" + method.method +
                           "' not in semantic plane");
        continue;
      }
      if (method.parameter_types.size() != spec->parameters.size()) {
        problems.push_back(
            where + ": method '" + method.method + "' binds " +
            std::to_string(method.parameter_types.size()) +
            " parameter types, semantic plane declares " +
            std::to_string(spec->parameters.size()));
      }
      if (!spec->callback_name.empty() && method.callback_type.empty()) {
        problems.push_back(where + ": method '" + method.method +
                           "' is missing its callback type");
      }
    }
  }

  for (const BindingPlane& plane : bindings_) {
    const std::string where = name + "/" + plane.platform;
    if (plane.proxy != name) {
      problems.push_back(where + ": binding plane names proxy '" +
                         plane.proxy + "'");
    }
    if (plane.implementation_class.empty()) {
      problems.push_back(where + ": no implementation class");
    }
    if (FindSyntactic(plane.language) == nullptr) {
      problems.push_back(where + ": binds language '" + plane.language +
                         "' but no such syntactic plane exists");
    }
    for (const ExceptionSpec& exception : plane.exceptions) {
      if (!IsKnownErrorCode(exception.mapped_code)) {
        problems.push_back(where + ": exception '" + exception.native_type +
                           "' maps to unknown code '" + exception.mapped_code +
                           "'");
      }
    }
    for (const PropertySpec& property : plane.properties) {
      if (property.required && !property.default_value.empty()) {
        problems.push_back(where + ": property '" + property.name +
                           "' is required but also has a default");
      }
      if (!property.default_value.empty() &&
          !property.allowed_values.empty()) {
        const bool default_allowed =
            std::find(property.allowed_values.begin(),
                      property.allowed_values.end(),
                      property.default_value) != property.allowed_values.end();
        if (!default_allowed) {
          problems.push_back(where + ": property '" + property.name +
                             "' default '" + property.default_value +
                             "' is not among its allowed values");
        }
      }
    }
  }
  return problems;
}

// ---------------------------------------------------------------------------
// DescriptorStore
// ---------------------------------------------------------------------------

void DescriptorStore::AddDocument(const xml::Node& root,
                                  const std::string& origin) {
  finalized_ = false;  // indexes go stale until the next Finalize()
  const xml::Schema* schema = SchemaFor(root);
  if (schema == nullptr) {
    throw std::runtime_error(origin + ": unrecognized descriptor document <" +
                             root.name() + ">");
  }
  auto violations = schema->Validate(root);
  if (!violations.empty()) {
    throw std::runtime_error(origin + ": schema '" + schema->name() +
                             "' violations:\n" +
                             xml::FormatViolations(violations));
  }

  if (root.name() == "proxy") {
    SemanticPlane plane = ParseSemantic(root);
    const std::string name = plane.interface_name;
    if (descriptors_.count(name)) {
      throw std::runtime_error(origin + ": duplicate semantic plane for '" +
                               name + "'");
    }
    auto descriptor = std::make_unique<ProxyDescriptor>(std::move(plane));
    // Attach planes that arrived first.
    auto pending = pending_.find(name);
    if (pending != pending_.end()) {
      for (auto& syntactic : pending->second.syntactic) {
        descriptor->AddSyntactic(std::move(syntactic));
      }
      for (auto& binding : pending->second.bindings) {
        descriptor->AddBinding(std::move(binding));
      }
      pending_.erase(pending);
    }
    descriptors_[name] = std::move(descriptor);
  } else if (root.name() == "syntax") {
    SyntacticPlane plane = ParseSyntactic(root);
    auto it = descriptors_.find(plane.proxy);
    if (it != descriptors_.end()) {
      it->second->AddSyntactic(std::move(plane));
    } else {
      pending_[plane.proxy].syntactic.push_back(std::move(plane));
    }
  } else {  // binding
    BindingPlane plane = ParseBinding(root);
    auto it = descriptors_.find(plane.proxy);
    if (it != descriptors_.end()) {
      it->second->AddBinding(std::move(plane));
    } else {
      pending_[plane.proxy].bindings.push_back(std::move(plane));
    }
  }
}

void DescriptorStore::Finalize() {
  finalized_ = false;  // loading again after a prior Finalize()
  if (!pending_.empty()) {
    std::string orphans;
    for (const auto& [name, _] : pending_) orphans += " '" + name + "'";
    throw std::runtime_error(
        "descriptor planes reference proxies with no semantic plane:" +
        orphans);
  }
  std::string report;
  for (const auto& [name, descriptor] : descriptors_) {
    for (const std::string& problem : descriptor->Validate()) {
      report += problem + "\n";
    }
  }
  if (!report.empty()) {
    throw std::runtime_error("descriptor validation failed:\n" + report);
  }
  // Build the invocation fast path: per-plane name indexes plus the
  // store's descriptor array. Interner symbol ids, NameIndex slots, and
  // by_symbol_ positions are all assigned in this one loop, so they
  // coincide and any of them indexes by_symbol_ directly.
  interner_ = support::Interner();
  name_index_.Clear();
  by_symbol_.clear();
  by_symbol_.reserve(descriptors_.size());
  for (const auto& [name, descriptor] : descriptors_) {
    descriptor->BuildIndexes();
    const support::Symbol symbol = interner_.Intern(name);
    if (symbol.id() != by_symbol_.size()) {
      throw std::logic_error("descriptor symbol ids must be dense");
    }
    name_index_.Add(name);
    by_symbol_.push_back(descriptor.get());
  }
  name_index_.Freeze();
  finalized_ = true;
}

DescriptorStore DescriptorStore::LoadDirectory(const std::string& directory) {
  namespace fs = std::filesystem;
  DescriptorStore store;
  if (!fs::exists(directory)) {
    throw std::runtime_error("descriptor directory does not exist: " +
                             directory);
  }
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(directory)) {
    if (entry.is_regular_file() && entry.path().extension() == ".xml") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& file : files) {
    xml::Document document = xml::ParseFile(file.string());
    store.AddDocument(*document.root, file.string());
  }
  store.Finalize();
  MOBIVINE_LOG_INFO << "loaded " << store.size() << " proxy descriptors from "
                    << directory;
  return store;
}

std::vector<std::string> DescriptorStore::ProxyNames() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : descriptors_) out.push_back(name);
  return out;
}

}  // namespace mobivine::core
