// A complete M-Proxy descriptor: one semantic plane refined by per-language
// syntactic planes and per-platform binding planes, plus the store that
// loads a directory of descriptor documents (the data behind the M-Plugin's
// Proxy Drawer).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/descriptor/planes.h"
#include "support/interner.h"
#include "support/name_index.h"

namespace mobivine::core {

class ProxyDescriptor {
 public:
  explicit ProxyDescriptor(SemanticPlane semantic)
      : semantic_(std::move(semantic)) {}

  const SemanticPlane& semantic() const { return semantic_; }
  const std::string& name() const { return semantic_.interface_name; }

  void AddSyntactic(SyntacticPlane plane);
  void AddBinding(BindingPlane plane);

  const std::vector<SyntacticPlane>& syntactic_planes() const {
    return syntactic_;
  }
  const std::vector<BindingPlane>& binding_planes() const { return bindings_; }

  [[nodiscard]] const SyntacticPlane* FindSyntactic(
      std::string_view language) const;
  [[nodiscard]] const BindingPlane* FindBinding(std::string_view platform) const;
  /// Linear-scan variants, kept public so tests can assert the indexed
  /// lookups agree with a straight scan.
  [[nodiscard]] const SyntacticPlane* FindSyntacticLinear(
      std::string_view language) const;
  [[nodiscard]] const BindingPlane* FindBindingLinear(
      std::string_view platform) const;

  /// Build the per-plane and per-descriptor lookup indexes. Called by
  /// DescriptorStore::Finalize(); planes must not be added afterwards
  /// (AddSyntactic/AddBinding drop the indexes back to linear scans).
  void BuildIndexes();

  /// True when the interface is implemented on the platform (the Call
  /// proxy has no S60 binding, per the paper).
  [[nodiscard]] bool SupportsPlatform(std::string_view platform) const {
    return FindBinding(platform) != nullptr;
  }
  [[nodiscard]] std::vector<std::string> Platforms() const;

  /// Cross-plane consistency: every syntactic/binding plane names this
  /// proxy; syntactic methods exist in the semantic plane with matching
  /// parameter counts; binding exception codes are valid ErrorCode names.
  /// Returns human-readable problems (empty = consistent).
  [[nodiscard]] std::vector<std::string> Validate() const;

 private:
  SemanticPlane semantic_;
  std::vector<SyntacticPlane> syntactic_;
  std::vector<BindingPlane> bindings_;
  support::NameIndex syntactic_index_;  // language -> plane slot
  support::NameIndex binding_index_;    // platform -> plane slot
};

/// Loads and owns a set of proxy descriptors.
class DescriptorStore {
 public:
  /// Load every *.xml under `directory` (one level of proxy subdirectories,
  /// e.g. descriptors/location/semantic.xml). Each document is validated
  /// against its schema; schema violations or cross-plane inconsistencies
  /// throw std::runtime_error with a full report.
  static DescriptorStore LoadDirectory(const std::string& directory);

  /// Assemble from in-memory XML documents (tests).
  void AddDocument(const xml::Node& root, const std::string& origin);
  /// Run cross-plane validation on everything added; throws on problems.
  void Finalize();

  /// O(1) after Finalize() (NameIndex probe -> dense array, slots shared
  /// with the per-store interner's symbol ids); falls back to the ordered
  /// map while documents are still loading.
  [[nodiscard]] const ProxyDescriptor* Find(std::string_view name) const;
  [[nodiscard]] std::vector<std::string> ProxyNames() const;
  std::size_t size() const { return descriptors_.size(); }

 private:
  struct Pending {
    std::vector<SyntacticPlane> syntactic;
    std::vector<BindingPlane> bindings;
  };

  // std::less<> so the pre-Finalize Find fallback can probe with a
  // string_view without materializing a key.
  std::map<std::string, std::unique_ptr<ProxyDescriptor>, std::less<>>
      descriptors_;
  std::map<std::string, Pending> pending_;  // planes seen before semantic
  /// Built by Finalize(): interner symbol ids, NameIndex slots, and
  /// by_symbol_ positions all coincide (dense, in finalize order).
  support::Interner interner_;
  support::NameIndex name_index_;
  std::vector<const ProxyDescriptor*> by_symbol_;
  bool finalized_ = false;
};

// ---------------------------------------------------------------------------
// Lookup fast paths, inline for the same reason as the plane Finds (see
// planes.h): the whole resolution chain should compile down to index
// probes. Linear fallbacks live in proxy_descriptor.cpp.
// ---------------------------------------------------------------------------

inline const SyntacticPlane* ProxyDescriptor::FindSyntactic(
    std::string_view language) const {
  if (syntactic_index_.built()) {
    const std::uint32_t slot = syntactic_index_.Lookup(language);
    return slot == support::NameIndex::npos ? nullptr : &syntactic_[slot];
  }
  return FindSyntacticLinear(language);
}

inline const BindingPlane* ProxyDescriptor::FindBinding(
    std::string_view platform) const {
  if (binding_index_.built()) {
    const std::uint32_t slot = binding_index_.Lookup(platform);
    return slot == support::NameIndex::npos ? nullptr : &bindings_[slot];
  }
  return FindBindingLinear(platform);
}

inline const ProxyDescriptor* DescriptorStore::Find(
    std::string_view name) const {
  if (finalized_) {
    const std::uint32_t slot = name_index_.Lookup(name);
    return slot == support::NameIndex::npos ? nullptr : by_symbol_[slot];
  }
  auto it = descriptors_.find(name);
  return it == descriptors_.end() ? nullptr : it->second.get();
}

}  // namespace mobivine::core
