// A complete M-Proxy descriptor: one semantic plane refined by per-language
// syntactic planes and per-platform binding planes, plus the store that
// loads a directory of descriptor documents (the data behind the M-Plugin's
// Proxy Drawer).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/descriptor/planes.h"

namespace mobivine::core {

class ProxyDescriptor {
 public:
  explicit ProxyDescriptor(SemanticPlane semantic)
      : semantic_(std::move(semantic)) {}

  const SemanticPlane& semantic() const { return semantic_; }
  const std::string& name() const { return semantic_.interface_name; }

  void AddSyntactic(SyntacticPlane plane);
  void AddBinding(BindingPlane plane);

  const std::vector<SyntacticPlane>& syntactic_planes() const {
    return syntactic_;
  }
  const std::vector<BindingPlane>& binding_planes() const { return bindings_; }

  [[nodiscard]] const SyntacticPlane* FindSyntactic(
      const std::string& language) const;
  [[nodiscard]] const BindingPlane* FindBinding(
      const std::string& platform) const;

  /// True when the interface is implemented on the platform (the Call
  /// proxy has no S60 binding, per the paper).
  [[nodiscard]] bool SupportsPlatform(const std::string& platform) const {
    return FindBinding(platform) != nullptr;
  }
  [[nodiscard]] std::vector<std::string> Platforms() const;

  /// Cross-plane consistency: every syntactic/binding plane names this
  /// proxy; syntactic methods exist in the semantic plane with matching
  /// parameter counts; binding exception codes are valid ErrorCode names.
  /// Returns human-readable problems (empty = consistent).
  [[nodiscard]] std::vector<std::string> Validate() const;

 private:
  SemanticPlane semantic_;
  std::vector<SyntacticPlane> syntactic_;
  std::vector<BindingPlane> bindings_;
};

/// Loads and owns a set of proxy descriptors.
class DescriptorStore {
 public:
  /// Load every *.xml under `directory` (one level of proxy subdirectories,
  /// e.g. descriptors/location/semantic.xml). Each document is validated
  /// against its schema; schema violations or cross-plane inconsistencies
  /// throw std::runtime_error with a full report.
  static DescriptorStore LoadDirectory(const std::string& directory);

  /// Assemble from in-memory XML documents (tests).
  void AddDocument(const xml::Node& root, const std::string& origin);
  /// Run cross-plane validation on everything added; throws on problems.
  void Finalize();

  [[nodiscard]] const ProxyDescriptor* Find(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> ProxyNames() const;
  std::size_t size() const { return descriptors_.size(); }

 private:
  struct Pending {
    std::vector<SyntacticPlane> syntactic;
    std::vector<BindingPlane> bindings;
  };

  std::map<std::string, std::unique_ptr<ProxyDescriptor>> descriptors_;
  std::map<std::string, Pending> pending_;  // planes seen before semantic
};

}  // namespace mobivine::core
