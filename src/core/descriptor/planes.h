// Data model for the three planes of an M-Proxy descriptor (paper §3.1).
//
//  * Semantic plane  — platform-neutral interface structure: method names,
//    parameter names/dimensions/allowed values, return dimension.
//  * Syntactic plane — per-language concrete types for the same methods.
//  * Binding plane   — per-platform implementation module, property list
//    and native exception set.
//
// Instances are parsed from XML documents validated against the five
// schemas in core/descriptor/schemas.h, and can be serialized back; a
// round-trip preserves structure (tested).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/name_index.h"
#include "xml/xml_node.h"

namespace mobivine::core {

// ---------------------------------------------------------------------------
// Semantic plane
// ---------------------------------------------------------------------------

struct ParameterSpec {
  std::string name;
  /// Unit / meaning, e.g. "degrees", "meters", "milliseconds", "text".
  std::string dimension;
  std::string description;
  std::vector<std::string> allowed_values;  // empty = unconstrained
};

struct MethodSpec {
  std::string name;
  std::vector<ParameterSpec> parameters;
  /// Name of the callback parameter, empty if none. Callbacks are listed
  /// separately because every plane refines them differently (object vs
  /// function vs polled).
  std::string callback_name;
  std::string return_dimension;  // "void", "location", "identifier", ...
  std::string description;
};

struct SemanticPlane {
  std::string interface_name;  // "Location", "Sms", "Call", "Http"
  std::string category;        // drawer category (usually == interface_name)
  std::string description;
  std::vector<MethodSpec> methods;
  /// Built at DescriptorStore::Finalize() time; `methods` must not change
  /// afterwards. Find falls back to a linear scan while unbuilt.
  support::NameIndex method_index;

  void BuildIndex();
  [[nodiscard]] const MethodSpec* FindMethod(std::string_view name) const;
  [[nodiscard]] const MethodSpec* FindMethodLinear(std::string_view name) const;
};

// ---------------------------------------------------------------------------
// Syntactic plane
// ---------------------------------------------------------------------------

struct MethodSyntax {
  std::string method;  // must exist in the semantic plane
  /// One concrete type per semantic parameter, in order.
  std::vector<std::string> parameter_types;
  std::string return_type;
  /// Callback realization for this language: a type (Java listener object)
  /// or "function" (JavaScript), plus the callback method name invoked.
  std::string callback_type;
  std::string callback_method;
};

struct SyntacticPlane {
  std::string proxy;     // semantic interface_name this refines
  std::string language;  // "java" | "javascript"
  std::vector<MethodSyntax> methods;
  support::NameIndex method_index;  // see SemanticPlane::method_index

  void BuildIndex();
  [[nodiscard]] const MethodSyntax* FindMethod(std::string_view name) const;
  [[nodiscard]] const MethodSyntax* FindMethodLinear(
      std::string_view name) const;
};

// ---------------------------------------------------------------------------
// Binding plane
// ---------------------------------------------------------------------------

struct PropertySpec {
  std::string name;
  std::string description;
  /// "string" | "int" | "double" | "bool" | "handle" (opaque native value)
  std::string type;
  std::string default_value;  // empty = no default
  std::vector<std::string> allowed_values;
  bool required = false;
};

struct ExceptionSpec {
  /// Native exception type, e.g. "javax.microedition.location.LocationException".
  std::string native_type;
  /// Unified ErrorCode name it maps to (core::ToString(ErrorCode)).
  std::string mapped_code;
};

struct BindingPlane {
  std::string proxy;     // semantic interface_name this implements
  std::string platform;  // "android" | "s60" | "webview"
  std::string language;  // which syntactic plane it binds ("java"/"javascript")
  std::string implementation_class;
  /// Implementation artifacts the plugin embeds (jar names, JS files).
  std::vector<std::string> artifacts;
  std::vector<ExceptionSpec> exceptions;
  std::vector<PropertySpec> properties;
  support::NameIndex property_index;  // see SemanticPlane::method_index

  void BuildIndex();
  [[nodiscard]] const PropertySpec* FindProperty(std::string_view name) const;
  [[nodiscard]] const PropertySpec* FindPropertyLinear(
      std::string_view name) const;
};

// ---------------------------------------------------------------------------
// Lookup fast paths. Inline so the five-deep resolution chain
// (store -> descriptor -> binding -> property/method/syntax) compiles to
// index probes without call overhead; the *Linear fallbacks live in
// planes.cpp and serve both pre-Finalize planes and the regression tests.
// ---------------------------------------------------------------------------

inline const MethodSpec* SemanticPlane::FindMethod(
    std::string_view name) const {
  if (method_index.built()) {
    const std::uint32_t slot = method_index.Lookup(name);
    return slot == support::NameIndex::npos ? nullptr : &methods[slot];
  }
  return FindMethodLinear(name);
}

inline const MethodSyntax* SyntacticPlane::FindMethod(
    std::string_view name) const {
  if (method_index.built()) {
    const std::uint32_t slot = method_index.Lookup(name);
    return slot == support::NameIndex::npos ? nullptr : &methods[slot];
  }
  return FindMethodLinear(name);
}

inline const PropertySpec* BindingPlane::FindProperty(
    std::string_view name) const {
  if (property_index.built()) {
    const std::uint32_t slot = property_index.Lookup(name);
    return slot == support::NameIndex::npos ? nullptr : &properties[slot];
  }
  return FindPropertyLinear(name);
}

// ---------------------------------------------------------------------------
// XML conversion (formats documented in descriptors/README and checked by
// the schemas)
// ---------------------------------------------------------------------------

[[nodiscard]] SemanticPlane ParseSemantic(const xml::Node& root);
[[nodiscard]] SyntacticPlane ParseSyntactic(const xml::Node& root);
[[nodiscard]] BindingPlane ParseBinding(const xml::Node& root);

[[nodiscard]] xml::NodePtr ToXml(const SemanticPlane& plane);
[[nodiscard]] xml::NodePtr ToXml(const SyntacticPlane& plane);
[[nodiscard]] xml::NodePtr ToXml(const BindingPlane& plane);

}  // namespace mobivine::core
