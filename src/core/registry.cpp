#include "core/registry.h"

#include "core/bindings/android_bindings.h"
#include "core/bindings/iphone_bindings.h"
#include "core/bindings/s60_bindings.h"
#include "core/bindings/webview_proxies.h"

namespace mobivine::core {

const BindingPlane* ProxyRegistry::BindingFor(const std::string& proxy_name,
                                              const std::string& platform,
                                              bool required) const {
  if (store_ == nullptr) return nullptr;
  const ProxyDescriptor* descriptor = store_->Find(proxy_name);
  const BindingPlane* binding =
      descriptor ? descriptor->FindBinding(platform) : nullptr;
  if (binding == nullptr && required) {
    throw ProxyError(ErrorCode::kUnsupported,
                     "proxy '" + proxy_name + "' has no binding for platform '" +
                         platform + "'");
  }
  return binding;
}

bool ProxyRegistry::Supports(const std::string& proxy_name,
                             const std::string& platform) const {
  if (store_ == nullptr) {
    // Without descriptors, availability follows the compiled bindings.
    if (proxy_name == "Call" && platform == "s60") return false;
    if (proxy_name == "Calendar" && platform == "iphone") return false;
    return true;
  }
  const ProxyDescriptor* descriptor = store_->Find(proxy_name);
  return descriptor != nullptr && descriptor->SupportsPlatform(platform);
}

std::vector<std::string> ProxyRegistry::AvailableProxies(
    const std::string& platform) const {
  std::vector<std::string> out;
  if (store_ == nullptr) return out;
  for (const std::string& name : store_->ProxyNames()) {
    if (store_->Find(name)->SupportsPlatform(platform)) out.push_back(name);
  }
  return out;
}

// --- Android -------------------------------------------------------------

std::unique_ptr<LocationProxy> ProxyRegistry::CreateLocationProxy(
    android::AndroidPlatform& platform) const {
  return std::make_unique<AndroidLocationProxy>(
      platform, BindingFor("Location", "android", store_ != nullptr));
}

std::unique_ptr<SmsProxy> ProxyRegistry::CreateSmsProxy(
    android::AndroidPlatform& platform) const {
  return std::make_unique<AndroidSmsProxy>(
      platform, BindingFor("Sms", "android", store_ != nullptr));
}

std::unique_ptr<CallProxy> ProxyRegistry::CreateCallProxy(
    android::AndroidPlatform& platform) const {
  return std::make_unique<AndroidCallProxy>(
      platform, BindingFor("Call", "android", store_ != nullptr));
}

std::unique_ptr<HttpProxy> ProxyRegistry::CreateHttpProxy(
    android::AndroidPlatform& platform) const {
  return std::make_unique<AndroidHttpProxy>(
      platform, BindingFor("Http", "android", store_ != nullptr));
}

std::unique_ptr<PimProxy> ProxyRegistry::CreatePimProxy(
    android::AndroidPlatform& platform) const {
  return std::make_unique<AndroidPimProxy>(
      platform, BindingFor("Pim", "android", store_ != nullptr));
}

std::unique_ptr<CalendarProxy> ProxyRegistry::CreateCalendarProxy(
    android::AndroidPlatform& platform) const {
  return std::make_unique<AndroidCalendarProxy>(
      platform, BindingFor("Calendar", "android", store_ != nullptr));
}

// --- S60 -----------------------------------------------------------------

std::unique_ptr<LocationProxy> ProxyRegistry::CreateLocationProxy(
    s60::S60Platform& platform) const {
  return std::make_unique<S60LocationProxy>(
      platform, BindingFor("Location", "s60", store_ != nullptr));
}

std::unique_ptr<SmsProxy> ProxyRegistry::CreateSmsProxy(
    s60::S60Platform& platform) const {
  return std::make_unique<S60SmsProxy>(
      platform, BindingFor("Sms", "s60", store_ != nullptr));
}

std::unique_ptr<CallProxy> ProxyRegistry::CreateCallProxy(
    s60::S60Platform& platform) const {
  (void)platform;
  // "Call proxy could not be created in this case because the core
  // functionality was not exposed on the S60 platform" (paper §4.1).
  throw ProxyError(ErrorCode::kUnsupported,
                   "the Call interface is not exposed on S60");
}

std::unique_ptr<HttpProxy> ProxyRegistry::CreateHttpProxy(
    s60::S60Platform& platform) const {
  return std::make_unique<S60HttpProxy>(
      platform, BindingFor("Http", "s60", store_ != nullptr));
}

std::unique_ptr<PimProxy> ProxyRegistry::CreatePimProxy(
    s60::S60Platform& platform) const {
  return std::make_unique<S60PimProxy>(
      platform, BindingFor("Pim", "s60", store_ != nullptr));
}

std::unique_ptr<CalendarProxy> ProxyRegistry::CreateCalendarProxy(
    s60::S60Platform& platform) const {
  return std::make_unique<S60CalendarProxy>(
      platform, BindingFor("Calendar", "s60", store_ != nullptr));
}

// --- iPhone ----------------------------------------------------------------

std::unique_ptr<LocationProxy> ProxyRegistry::CreateLocationProxy(
    iphone::IPhonePlatform& platform) const {
  return std::make_unique<IPhoneLocationProxy>(
      platform, BindingFor("Location", "iphone", store_ != nullptr));
}

std::unique_ptr<SmsProxy> ProxyRegistry::CreateSmsProxy(
    iphone::IPhonePlatform& platform) const {
  return std::make_unique<IPhoneSmsProxy>(
      platform, BindingFor("Sms", "iphone", store_ != nullptr));
}

std::unique_ptr<CallProxy> ProxyRegistry::CreateCallProxy(
    iphone::IPhonePlatform& platform) const {
  return std::make_unique<IPhoneCallProxy>(
      platform, BindingFor("Call", "iphone", store_ != nullptr));
}

std::unique_ptr<HttpProxy> ProxyRegistry::CreateHttpProxy(
    iphone::IPhonePlatform& platform) const {
  return std::make_unique<IPhoneHttpProxy>(
      platform, BindingFor("Http", "iphone", store_ != nullptr));
}

std::unique_ptr<PimProxy> ProxyRegistry::CreatePimProxy(
    iphone::IPhonePlatform& platform) const {
  return std::make_unique<IPhonePimProxy>(
      platform, BindingFor("Pim", "iphone", store_ != nullptr));
}

std::unique_ptr<CalendarProxy> ProxyRegistry::CreateCalendarProxy(
    iphone::IPhonePlatform& platform) const {
  (void)platform;
  // No public calendar API on iPhone OS 2009 (pre-EventKit) — the same
  // not-on-every-platform story as Call on S60.
  throw ProxyError(ErrorCode::kUnsupported,
                   "the Calendar interface is not exposed on iPhone OS");
}

// --- WebView ---------------------------------------------------------------

void ProxyRegistry::InstallWebViewProxies(webview::WebView& webview,
                                          int polling_interval_ms) const {
  core::InstallWebViewProxies(webview, polling_interval_ms);
}

}  // namespace mobivine::core
