// The Calendar M-Proxy — the second §7 future-work interface.
//
// Bindings exist for android (content-provider cursor), s60 (JSR-75
// EventList) and webview; iPhone OS 2009 has NO public calendar API (no
// EventKit before iOS 4), so — like Call on S60 — the registry refuses
// with ProxyError(kUnsupported). Proxies need not cover every platform
// (paper §3.3: no least-common-denominator requirement).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/proxy.h"
#include "core/uniform_types.h"

namespace mobivine::core {

class CalendarProxy : public MProxy {
 public:
  using MProxy::MProxy;

  /// Every event on the device, ordered by start time.
  [[nodiscard]] virtual std::vector<CalendarEvent> listEvents() = 0;

  /// Events overlapping [from_ms, to_ms), ordered by start time.
  [[nodiscard]] virtual std::vector<CalendarEvent> eventsBetween(
      long long from_ms, long long to_ms) = 0;

  /// The earliest event starting at or after `now_ms` (enrichment — no
  /// 2009 platform exposes this directly).
  [[nodiscard]] virtual std::optional<CalendarEvent> nextEvent(
      long long now_ms) = 0;
};

}  // namespace mobivine::core
