// The uniform data types of the semantic plane.
//
// Application code written against M-Proxies sees ONLY these types — e.g.
// the `currentLocation` object in proximityEvent() "is of the same type on
// both Android and S60 platforms" (paper §5). Bindings convert the native
// android::Location / s60::Location / JS objects into these.
#pragma once

#include <map>
#include <string>

namespace mobivine::core {

/// Angle unit selector for the Location proxy's enrichment feature
/// ("proxy for fetching location information can be made to offer output in
/// various formats - radians, degrees", paper §3.3).
enum class AngleUnit { kDegrees, kRadians };

/// Uniform location fix.
struct Location {
  double latitude = 0.0;   ///< in the proxy's configured AngleUnit
  double longitude = 0.0;  ///< in the proxy's configured AngleUnit
  double altitude = 0.0;   ///< meters
  double accuracy_m = 0.0;
  double speed_mps = 0.0;
  double heading_deg = 0.0;
  long long timestamp_ms = 0;
  bool valid = false;
};

/// Uniform proximity callback — the common callback parameter the semantic
/// plane fixes (signature mirrors the paper's Figure 8).
class ProximityListener {
 public:
  virtual ~ProximityListener() = default;
  virtual void proximityEvent(double ref_latitude, double ref_longitude,
                              double ref_altitude,
                              const Location& current_location,
                              bool entering) = 0;
};

/// Uniform SMS delivery status.
enum class SmsDeliveryStatus { kSubmitted, kDelivered, kFailed };

[[nodiscard]] const char* ToString(SmsDeliveryStatus status);

class SmsListener {
 public:
  virtual ~SmsListener() = default;
  virtual void smsStatusChanged(long long message_id,
                                SmsDeliveryStatus status) = 0;
};

/// Uniform call progress states.
enum class CallProgress { kDialing, kRinging, kConnected, kEnded, kFailed };

[[nodiscard]] const char* ToString(CallProgress progress);

class CallListener {
 public:
  virtual ~CallListener() = default;
  virtual void callStateChanged(CallProgress progress) = 0;
};

/// Uniform contact record (the Pim proxy's data type — paper §7 names
/// "contact list information" as the next interface to cover).
struct Contact {
  long long id = 0;
  std::string display_name;
  std::string phone_number;
  std::string email;
};

/// Uniform calendar event (the Calendar proxy's data type — the second
/// half of the paper's §7 "calendaring and contact list information").
struct CalendarEvent {
  long long id = 0;
  std::string title;
  long long start_ms = 0;
  long long end_ms = 0;
  std::string location;
};

/// Uniform HTTP exchange result.
struct HttpResult {
  int status = 0;
  std::string reason;
  std::string body;
  std::map<std::string, std::string> headers;

  bool ok() const { return status >= 200 && status < 300; }
};

}  // namespace mobivine::core
