#include "core/location_proxy.h"

#include "support/geo_units.h"

namespace mobivine::core {

Location LocationProxy::ConvertUnits(Location location) {
  if (angle_unit_ == AngleUnit::kRadians) {
    meter().Charge(Op::kEnrichment);
    location.latitude = support::DegreesToRadians(location.latitude);
    location.longitude = support::DegreesToRadians(location.longitude);
  }
  return location;
}

}  // namespace mobivine::core
