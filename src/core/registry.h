// The MobiVine proxy registry: the factory surface application code uses
// to obtain proxies for a concrete platform.
//
// Availability is descriptor-driven: a proxy can be created for a platform
// only when the loaded DescriptorStore has a binding plane for it ("in
// practice, proxies should be developed for an interface that exists on
// more than one platform, and not necessarily on 'all' platforms" — the
// Call proxy exists for android and webview but not s60).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "android/android_platform.h"
#include "core/calendar_proxy.h"
#include "core/call_proxy.h"
#include "core/descriptor/proxy_descriptor.h"
#include "core/http_proxy.h"
#include "core/location_proxy.h"
#include "core/pim_proxy.h"
#include "core/sms_proxy.h"
#include "iphone/iphone_platform.h"
#include "s60/s60_platform.h"
#include "webview/webview.h"

namespace mobivine::core {

class ProxyRegistry {
 public:
  /// `store` may be null: proxies are then created without descriptor
  /// validation (property names unchecked, everything assumed available).
  explicit ProxyRegistry(const DescriptorStore* store = nullptr)
      : store_(store) {}

  // --- Android ---------------------------------------------------------
  [[nodiscard]] std::unique_ptr<LocationProxy> CreateLocationProxy(
      android::AndroidPlatform& platform) const;
  [[nodiscard]] std::unique_ptr<SmsProxy> CreateSmsProxy(
      android::AndroidPlatform& platform) const;
  [[nodiscard]] std::unique_ptr<CallProxy> CreateCallProxy(
      android::AndroidPlatform& platform) const;
  [[nodiscard]] std::unique_ptr<HttpProxy> CreateHttpProxy(
      android::AndroidPlatform& platform) const;
  [[nodiscard]] std::unique_ptr<PimProxy> CreatePimProxy(
      android::AndroidPlatform& platform) const;
  [[nodiscard]] std::unique_ptr<CalendarProxy> CreateCalendarProxy(
      android::AndroidPlatform& platform) const;

  // --- S60 -----------------------------------------------------------
  [[nodiscard]] std::unique_ptr<LocationProxy> CreateLocationProxy(
      s60::S60Platform& platform) const;
  [[nodiscard]] std::unique_ptr<SmsProxy> CreateSmsProxy(
      s60::S60Platform& platform) const;
  /// Throws ProxyError(kUnsupported): S60 exposes no call functionality.
  [[nodiscard]] std::unique_ptr<CallProxy> CreateCallProxy(
      s60::S60Platform& platform) const;
  [[nodiscard]] std::unique_ptr<HttpProxy> CreateHttpProxy(
      s60::S60Platform& platform) const;
  [[nodiscard]] std::unique_ptr<PimProxy> CreatePimProxy(
      s60::S60Platform& platform) const;
  [[nodiscard]] std::unique_ptr<CalendarProxy> CreateCalendarProxy(
      s60::S60Platform& platform) const;

  // --- iPhone (the §7 future-work platform, added via new binding
  // planes only — the semantic/syntactic machinery is untouched) ----------
  [[nodiscard]] std::unique_ptr<LocationProxy> CreateLocationProxy(
      iphone::IPhonePlatform& platform) const;
  [[nodiscard]] std::unique_ptr<SmsProxy> CreateSmsProxy(
      iphone::IPhonePlatform& platform) const;
  [[nodiscard]] std::unique_ptr<CallProxy> CreateCallProxy(
      iphone::IPhonePlatform& platform) const;
  [[nodiscard]] std::unique_ptr<HttpProxy> CreateHttpProxy(
      iphone::IPhonePlatform& platform) const;
  [[nodiscard]] std::unique_ptr<PimProxy> CreatePimProxy(
      iphone::IPhonePlatform& platform) const;
  /// Throws ProxyError(kUnsupported): iPhone OS 2009 has no public
  /// calendar API (EventKit arrived with iOS 4).
  [[nodiscard]] std::unique_ptr<CalendarProxy> CreateCalendarProxy(
      iphone::IPhonePlatform& platform) const;

  // --- WebView -----------------------------------------------------------
  /// Inject wrapper factories + JS proxy library (the WebView proxies are
  /// consumed from JavaScript, not through C++ interfaces).
  void InstallWebViewProxies(webview::WebView& webview,
                             int polling_interval_ms = 250) const;

  /// Descriptor-driven availability ("Location" on "s60", ...).
  [[nodiscard]] bool Supports(const std::string& proxy_name,
                              const std::string& platform) const;
  [[nodiscard]] std::vector<std::string> AvailableProxies(
      const std::string& platform) const;

  const DescriptorStore* store() const { return store_; }

 private:
  [[nodiscard]] const BindingPlane* BindingFor(const std::string& proxy_name,
                                               const std::string& platform,
                                               bool required) const;

  const DescriptorStore* store_;
};

}  // namespace mobivine::core
