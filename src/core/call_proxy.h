// The Call M-Proxy (semantic plane "Call").
//
// Exposed on Android and WebView; the S60 platform does not expose the
// core functionality (paper §4.1), so the registry refuses to create it
// there with ProxyError(kUnsupported).
//
// Enrichment (paper §3.3): "proxy for invoking 'Call' can provide the
// utility for coordinating the number of retries in case the callee is
// unreachable" — the "retries" property drives automatic redial.
#pragma once

#include <string>

#include "core/proxy.h"
#include "core/uniform_types.h"

namespace mobivine::core {

class CallProxy : public MProxy {
 public:
  using MProxy::MProxy;

  /// Start a call; progress arrives on `listener` as uniform CallProgress
  /// states. Returns false when a call is already active.
  virtual bool makeCall(const std::string& number, CallListener* listener) = 0;

  virtual void endCall() = 0;

  [[nodiscard]] virtual CallProgress currentState() = 0;
};

}  // namespace mobivine::core
