#include "core/enrichment.h"

#include "support/strings.h"
#include "support/trace.h"

namespace mobivine::core {

// ---------------------------------------------------------------------------
// RetryingCallProxy
// ---------------------------------------------------------------------------

RetryingCallProxy::RetryingCallProxy(std::unique_ptr<CallProxy> inner,
                                     sim::Scheduler& scheduler,
                                     int max_retries, sim::SimTime retry_delay)
    : CallProxy(scheduler, /*binding=*/nullptr),
      inner_(std::move(inner)),
      scheduler_(scheduler),
      max_retries_(max_retries),
      retry_delay_(retry_delay) {}

RetryingCallProxy::~RetryingCallProxy() { *alive_ = false; }

bool RetryingCallProxy::makeCall(const std::string& number,
                                 CallListener* listener) {
  support::trace::Span span("enrich.retryingMakeCall");
  meter().Charge(Op::kEnrichment);
  number_ = number;
  client_listener_ = listener;
  retries_used_ = 0;
  call_abandoned_ = false;
  return inner_->makeCall(number, this);
}

void RetryingCallProxy::endCall() {
  call_abandoned_ = true;
  inner_->endCall();
}

CallProgress RetryingCallProxy::currentState() {
  return inner_->currentState();
}

void RetryingCallProxy::callStateChanged(CallProgress progress) {
  if (client_listener_ != nullptr) {
    client_listener_->callStateChanged(progress);
  }
  if (progress != CallProgress::kFailed || call_abandoned_) return;
  if (retries_used_ >= max_retries_) return;
  ++retries_used_;
  meter().Charge(Op::kEnrichment);
  std::weak_ptr<bool> alive = alive_;
  scheduler_.ScheduleAfter(retry_delay_, [this, alive] {
    auto locked = alive.lock();
    if (!locked || !*locked || call_abandoned_) return;
    inner_->makeCall(number_, this);
  });
}

// ---------------------------------------------------------------------------
// AccessPolicy
// ---------------------------------------------------------------------------

bool AccessPolicy::DestinationAllowed(const std::string& number) const {
  if (prefixes_.empty()) return true;
  for (const std::string& prefix : prefixes_) {
    if (support::StartsWith(number, prefix)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// AuthenticatingHttpProxy
// ---------------------------------------------------------------------------

AuthenticatingHttpProxy::AuthenticatingHttpProxy(
    std::unique_ptr<HttpProxy> inner, std::string token_url,
    std::string credentials, sim::Scheduler& scheduler)
    : HttpProxy(scheduler, /*binding=*/nullptr),
      inner_(std::move(inner)),
      token_url_(std::move(token_url)),
      credentials_(std::move(credentials)) {}

void AuthenticatingHttpProxy::EnsureToken(bool force_refresh) {
  if (!token_.empty() && !force_refresh) return;
  meter().Charge(Op::kEnrichment);
  ++token_fetches_;
  HttpResult response = inner_->post(token_url_, "credentials=" + credentials_,
                                     "application/x-www-form-urlencoded");
  if (!response.ok() || response.body.empty()) {
    throw ProxyError(ErrorCode::kSecurity,
                     "token endpoint rejected the credentials (" +
                         std::to_string(response.status) + ")");
  }
  token_ = response.body;
  inner_->setHeader("Authorization", "Bearer " + token_);
}

HttpResult AuthenticatingHttpProxy::Exchange(
    const std::function<HttpResult()>& send) {
  meter().Charge(Op::kEnrichment);
  EnsureToken(/*force_refresh=*/false);
  HttpResult response = send();
  if (response.status == 401) {
    // Token expired server-side: refresh and retry exactly once.
    EnsureToken(/*force_refresh=*/true);
    response = send();
  }
  return response;
}

HttpResult AuthenticatingHttpProxy::get(const std::string& url) {
  support::trace::Span span("enrich.authHttpGet");
  return Exchange([&] { return inner_->get(url); });
}

HttpResult AuthenticatingHttpProxy::post(const std::string& url,
                                         const std::string& body,
                                         const std::string& content_type) {
  support::trace::Span span("enrich.authHttpPost");
  return Exchange([&] { return inner_->post(url, body, content_type); });
}

// ---------------------------------------------------------------------------
// Secure decorators
// ---------------------------------------------------------------------------

SecureSmsProxy::SecureSmsProxy(std::unique_ptr<SmsProxy> inner,
                               const AccessPolicy& policy,
                               sim::Scheduler& scheduler)
    : SmsProxy(scheduler, /*binding=*/nullptr),
      inner_(std::move(inner)),
      policy_(policy) {}

long long SecureSmsProxy::sendTextMessage(const std::string& destination,
                                          const std::string& text,
                                          SmsListener* listener) {
  support::trace::Span span("enrich.secureSendTextMessage");
  meter().Charge(Op::kEnrichment);
  if (!policy_.InterfaceAllowed("Sms")) {
    throw ProxyError(ErrorCode::kSecurity,
                     "access policy denies the Sms interface");
  }
  if (!policy_.DestinationAllowed(destination)) {
    throw ProxyError(ErrorCode::kSecurity,
                     "access policy denies SMS to " + destination);
  }
  return inner_->sendTextMessage(destination, text, listener);
}

int SecureSmsProxy::segmentCount(const std::string& text) {
  return inner_->segmentCount(text);
}

SecureCallProxy::SecureCallProxy(std::unique_ptr<CallProxy> inner,
                                 const AccessPolicy& policy,
                                 sim::Scheduler& scheduler)
    : CallProxy(scheduler, /*binding=*/nullptr),
      inner_(std::move(inner)),
      policy_(policy) {}

bool SecureCallProxy::makeCall(const std::string& number,
                               CallListener* listener) {
  meter().Charge(Op::kEnrichment);
  if (!policy_.InterfaceAllowed("Call")) {
    throw ProxyError(ErrorCode::kSecurity,
                     "access policy denies the Call interface");
  }
  if (!policy_.DestinationAllowed(number)) {
    throw ProxyError(ErrorCode::kSecurity,
                     "access policy denies calling " + number);
  }
  return inner_->makeCall(number, listener);
}

void SecureCallProxy::endCall() { inner_->endCall(); }

CallProgress SecureCallProxy::currentState() { return inner_->currentState(); }

SecureLocationProxy::SecureLocationProxy(std::unique_ptr<LocationProxy> inner,
                                         const AccessPolicy& policy,
                                         sim::Scheduler& scheduler)
    : LocationProxy(scheduler, /*binding=*/nullptr),
      inner_(std::move(inner)),
      policy_(policy) {}

void SecureLocationProxy::CheckAllowed() {
  meter().Charge(Op::kEnrichment);
  if (!policy_.InterfaceAllowed("Location")) {
    throw ProxyError(ErrorCode::kSecurity,
                     "access policy denies the Location interface");
  }
}

void SecureLocationProxy::addProximityAlert(double latitude, double longitude,
                                            double altitude, float radius_m,
                                            long long timer_ms,
                                            ProximityListener* listener) {
  CheckAllowed();
  inner_->addProximityAlert(latitude, longitude, altitude, radius_m, timer_ms,
                            listener);
}

void SecureLocationProxy::removeProximityAlert(ProximityListener* listener) {
  inner_->removeProximityAlert(listener);
}

Location SecureLocationProxy::getLocation() {
  CheckAllowed();
  return inner_->getLocation();
}

}  // namespace mobivine::core
