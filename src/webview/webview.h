// The Android WebView substrate: a MiniJS engine embedded in an Android
// application, with addJavascriptInterface(), timers, the notification
// table, and the RAW platform interfaces a 2009 WebView developer used
// directly (the "Without Proxy" surface of Figure 10's WebView column).
//
// The MobiVine JavaScript proxies (src/core/bindings/webview_*) are layered
// on top of this class exactly as the paper's Figure 6 describes: wrapper
// host objects created by factories, JS proxy objects holding the wrapper
// handle, and callbacks bridged through the notification table + polling.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "android/android_platform.h"
#include "android/intent.h"
#include "minijs/interpreter.h"
#include "webview/bridge.h"
#include "webview/notification_table.h"

namespace mobivine::webview {

class WebView {
 public:
  explicit WebView(android::AndroidPlatform& platform, BridgeCost cost = {});
  ~WebView();

  WebView(const WebView&) = delete;
  WebView& operator=(const WebView&) = delete;

  android::AndroidPlatform& platform() { return platform_; }
  minijs::Interpreter& interpreter() { return interpreter_; }
  Bridge& bridge() { return bridge_; }
  NotificationTable& notifications() { return notifications_; }

  /// addJavaScriptInterface analog: expose a host object to scripts under
  /// a global name.
  void addJavascriptInterface(minijs::Value object, const std::string& name);

  /// Run a script in the page's global scope, charging interpreter steps
  /// as virtual time. ScriptError propagates to the caller.
  minijs::Value loadScript(std::string_view source);

  /// Invoke a global script function (used to deliver page events and by
  /// tests/benches), charging steps.
  minijs::Value callGlobal(const std::string& function_name,
                           std::vector<minijs::Value> arguments);

  // --- raw platform interfaces (the no-proxy developer surface) -----------
  /// Inject SmsManagerRaw / LocationManagerRaw / HttpClientRaw /
  /// TelephonyRaw host objects. Raw callbacks are NOT delivered into JS
  /// (paper footnote 8); instead progress intents land in pollable
  /// channels: SmsManagerRaw.pollStatus(action),
  /// LocationManagerRaw.pollProximity(action).
  void injectRawPlatformInterfaces();

  /// Channel used for intents with this action (created on demand); the
  /// registered IntentReceiver posts every matching broadcast's extras.
  std::int64_t ChannelForAction(const std::string& action);

  /// Tear down an action channel: unregister its receiver and drop pending
  /// notifications. Wrappers call this when a conversation reaches a
  /// terminal state — otherwise every send would leak a receiver.
  void ReleaseAction(const std::string& action);

  /// Live per-action receivers (tests assert boundedness).
  std::size_t action_receiver_count() const { return receivers_.size(); }

 private:
  class ActionReceiver;

  minijs::Value MakeRawSmsManager();
  minijs::Value MakeRawLocationManager();
  minijs::Value MakeRawHttpClient();
  minijs::Value MakeRawTelephony();
  minijs::Value MakeRawContacts();

  /// Run `fn` (a script closure) from native code, charging steps and
  /// swallowing script errors into the page's error log (like a browser
  /// console).
  void RunCallback(const minijs::Value& fn, std::vector<minijs::Value> args);

  // --- timers ----------------------------------------------------------
  minijs::Value SetTimer(std::vector<minijs::Value>& args, bool repeating);
  void InstallTimerBuiltins();

  android::AndroidPlatform& platform_;
  minijs::Interpreter interpreter_;
  Bridge bridge_;
  NotificationTable notifications_;

  std::map<std::string, std::int64_t> action_channels_;
  std::map<std::string, std::unique_ptr<ActionReceiver>> receivers_;

  struct Timer {
    bool repeating;
    sim::SimTime period;
    minijs::Value callback;
    bool cancelled = false;
    // Sole strong reference to the rescheduling closure (it captures the
    // timer and itself weakly, so erasing the timer reclaims the chain).
    std::shared_ptr<std::function<void()>> tick;
  };
  std::int64_t next_timer_id_ = 1;
  std::map<std::int64_t, std::shared_ptr<Timer>> timers_;

  std::vector<std::string> console_errors_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

 public:
  /// Uncaught errors from asynchronous callbacks (timers), like a browser
  /// console. Tests assert on this.
  const std::vector<std::string>& console_errors() const {
    return console_errors_;
  }
};

}  // namespace mobivine::webview
