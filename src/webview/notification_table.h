// The Notification Table from the paper's Figure 6.
//
// Callback notifications received by a Java object are not visible to the
// invoking JavaScript call (paper, footnote 8), so the WebView proxy
// pattern stores them here, keyed by a notification id returned from the
// wrapper invocation, and the JS side polls with startPolling(). The table
// itself is part of the WebView context and usable by any wrapper.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "minijs/value.h"

namespace mobivine::webview {

class NotificationTable {
 public:
  /// Allocate a fresh notification channel id (> 0).
  std::int64_t NewChannel();

  /// Append a notification object to a channel. Unknown channels are
  /// created implicitly (a wrapper may post before the JS side polls).
  void Post(std::int64_t channel, minijs::Value notification);

  /// Remove and return every pending notification for the channel.
  [[nodiscard]] std::vector<minijs::Value> Drain(std::int64_t channel);

  /// Pending count for a channel (diagnostics/tests).
  [[nodiscard]] std::size_t PendingCount(std::int64_t channel) const;

  /// Drop a channel entirely (wrapper teardown).
  void CloseChannel(std::int64_t channel);

  std::size_t channel_count() const { return channels_.size(); }

 private:
  std::int64_t next_channel_ = 1;
  std::map<std::int64_t, std::vector<minijs::Value>> channels_;
};

}  // namespace mobivine::webview
