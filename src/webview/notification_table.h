// The Notification Table from the paper's Figure 6.
//
// Callback notifications received by a Java object are not visible to the
// invoking JavaScript call (paper, footnote 8), so the WebView proxy
// pattern stores them here, keyed by a notification id returned from the
// wrapper invocation, and the JS side polls with startPolling(). The table
// itself is part of the WebView context and usable by any wrapper.
//
// Storage is an unordered_map (channel ids carry no ordering the polling
// loop cares about) and Drain moves the pending vector out wholesale, so
// a poll returns the buffer instead of copying it. Wrappers post bursts
// to one channel at a time, so the last channel touched is cached as a
// direct pointer (element addresses are stable in an unordered_map) and
// repeat posts skip the hash lookup entirely. Implicit channel creation
// on Post is bounded by the id watermark: a wrapper may re-post to a
// channel the JS side already drained or closed (id below
// next_channel_), but posts to ids never handed out by NewChannel() are
// dropped — a misbehaving wrapper can no longer grow the table without
// bound.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "minijs/value.h"

namespace mobivine::webview {

class NotificationTable {
 public:
  NotificationTable() = default;
  // The cache pointer aliases a map node, so copying would leave the
  // copy's cache pointing into the original. Moves transfer the nodes,
  // keeping the pointer valid.
  NotificationTable(const NotificationTable&) = delete;
  NotificationTable& operator=(const NotificationTable&) = delete;
  NotificationTable(NotificationTable&&) = default;
  NotificationTable& operator=(NotificationTable&&) = default;

  /// Allocate a fresh notification channel id (> 0).
  std::int64_t NewChannel();

  /// Append a notification object to a channel. Channels below the
  /// NewChannel() watermark are (re)created implicitly — a wrapper may
  /// post before the JS side polls, or after a drain dropped the entry.
  /// Posts to ids never allocated are dropped.
  void Post(std::int64_t channel, minijs::Value notification);

  /// Remove and return every pending notification for the channel
  /// (moves the buffer out; no per-element copies).
  [[nodiscard]] std::vector<minijs::Value> Drain(std::int64_t channel);

  /// Pending count for a channel (diagnostics/tests).
  [[nodiscard]] std::size_t PendingCount(std::int64_t channel) const;

  /// Drop a channel entirely (wrapper teardown).
  void CloseChannel(std::int64_t channel);

  std::size_t channel_count() const { return channels_.size(); }

 private:
  /// The channel's pending vector, via the one-entry cache when it hits.
  /// Creates the entry if missing. Refreshes the cache.
  std::vector<minijs::Value>& BufferOf(std::int64_t channel);

  std::int64_t next_channel_ = 1;
  std::unordered_map<std::int64_t, std::vector<minijs::Value>> channels_;
  // Last channel touched; node addresses are stable, so only
  // CloseChannel() invalidates this.
  std::int64_t cached_channel_ = 0;
  std::vector<minijs::Value>* cached_buffer_ = nullptr;
};

}  // namespace mobivine::webview
