// The Notification Table from the paper's Figure 6.
//
// Callback notifications received by a Java object are not visible to the
// invoking JavaScript call (paper, footnote 8), so the WebView proxy
// pattern stores them here, keyed by a notification id returned from the
// wrapper invocation, and the JS side polls with startPolling(). The table
// itself is part of the WebView context and usable by any wrapper.
//
// Storage is an unordered_map (channel ids carry no ordering the polling
// loop cares about) and Drain moves the pending vector out wholesale, so
// a poll returns the buffer instead of copying it. Wrappers post bursts
// to one channel at a time, so the last channel touched is cached as a
// direct pointer (element addresses are stable in an unordered_map) and
// repeat posts skip the hash lookup entirely. Implicit channel creation
// on Post is bounded by the id watermark: a wrapper may re-post to a
// channel the JS side already drained or closed (id below
// next_channel_), but posts to ids never handed out by NewChannel() are
// dropped — a misbehaving wrapper can no longer grow the table without
// bound.
//
// Loss is bounded AND counted: a channel's pending buffer is capped
// (drop-oldest past `pending_cap`, so a channel nobody polls cannot grow
// without bound while a prompt poller still sees the newest burst), and
// every dropped value — cap eviction or a post to a never-allocated id —
// bumps dropped() instead of vanishing silently. The post listener hook
// is the M-Push bridge: the owner routes accepted posts into a
// gateway::PushFeed so subscribed wire clients get them pushed instead
// of polled (the hook fires before the cap can evict the value — push
// delivery never loses what polling would have).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "minijs/value.h"

namespace mobivine::webview {

class NotificationTable {
 public:
  /// Per-channel pending bound: one burst's worth with slack. A JS side
  /// that polls at all stays far below it; one that never polls loses
  /// oldest-first, counted.
  static constexpr std::size_t kDefaultPendingCap = 256;

  explicit NotificationTable(std::size_t pending_cap = kDefaultPendingCap)
      : pending_cap_(pending_cap == 0 ? 1 : pending_cap) {}
  // The cache pointer aliases a map node, so copying would leave the
  // copy's cache pointing into the original. Moves transfer the nodes,
  // keeping the pointer valid.
  NotificationTable(const NotificationTable&) = delete;
  NotificationTable& operator=(const NotificationTable&) = delete;
  NotificationTable(NotificationTable&&) = default;
  NotificationTable& operator=(NotificationTable&&) = default;

  /// Observes every accepted Post (channel id + value) before it is
  /// buffered. The M-Push bridge point: WebView's owner forwards these
  /// into its shard's push feed.
  using PostListener =
      std::function<void(std::int64_t channel, const minijs::Value& value)>;
  void SetPostListener(PostListener listener) {
    post_listener_ = std::move(listener);
  }

  /// Allocate a fresh notification channel id (> 0).
  std::int64_t NewChannel();

  /// Append a notification object to a channel. Channels below the
  /// NewChannel() watermark are (re)created implicitly — a wrapper may
  /// post before the JS side polls, or after a drain dropped the entry.
  /// Posts to ids never allocated are dropped AND counted; a channel at
  /// its pending cap evicts its oldest value, also counted.
  void Post(std::int64_t channel, minijs::Value notification);

  /// Remove and return every pending notification for the channel
  /// (moves the buffer out; no per-element copies).
  [[nodiscard]] std::vector<minijs::Value> Drain(std::int64_t channel);

  /// Pending count for a channel (diagnostics/tests).
  [[nodiscard]] std::size_t PendingCount(std::int64_t channel) const;

  /// Drop a channel entirely (wrapper teardown).
  void CloseChannel(std::int64_t channel);

  std::size_t channel_count() const { return channels_.size(); }

  /// Values lost since construction: cap evictions + posts to ids never
  /// allocated. The `notifications_dropped` metric reads this.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  [[nodiscard]] std::size_t pending_cap() const { return pending_cap_; }

 private:
  /// The channel's pending vector, via the one-entry cache when it hits.
  /// Creates the entry if missing. Refreshes the cache.
  std::vector<minijs::Value>& BufferOf(std::int64_t channel);

  std::size_t pending_cap_;
  std::int64_t next_channel_ = 1;
  std::unordered_map<std::int64_t, std::vector<minijs::Value>> channels_;
  // Last channel touched; node addresses are stable, so only
  // CloseChannel() invalidates this.
  std::int64_t cached_channel_ = 0;
  std::vector<minijs::Value>* cached_buffer_ = nullptr;
  std::uint64_t dropped_ = 0;
  PostListener post_listener_;
};

}  // namespace mobivine::webview
