// The JavaScript-to-Java bridge: cost model and error-code mapping.
//
// Every host call from MiniJS into the Android substrate crosses this
// bridge. Costs are charged in virtual time, calibrated so the raw
// ("Without Proxy") WebView column of Figure 10 reproduces:
//   addProximityAlert = android 53.6 + crossing 19.8 + 5 primitives  ≈ 78.4
//   getLocation       = android 15.5 + crossing 19.8 + 1 primitive
//                       + 7 marshalled object fields (12 ms each)    ≈ 120.3
//   sendSMS           = android 52.7 + crossing 19.8 + 5 primitives
//                       + callback registration 14.1                 ≈ 91.6
//
// Exceptions: the paper propagates native exceptions to JavaScript as
// error codes. MapException converts the Android exception set to a
// {name, message, code} Error object per the table in kErrorCode*.
#pragma once

#include <exception>
#include <string>

#include "android/android_platform.h"
#include "android/location.h"
#include "minijs/value.h"
#include "sim/clock.h"

namespace mobivine::webview {

/// Error codes for the Android exception set (paper §4.1 step 2).
inline constexpr int kErrorCodeSecurity = 101;
inline constexpr int kErrorCodeIllegalArgument = 102;
inline constexpr int kErrorCodeUnsupportedOperation = 103;
inline constexpr int kErrorCodeRemote = 104;
inline constexpr int kErrorCodeClientProtocol = 105;
inline constexpr int kErrorCodeConnectTimeout = 106;
inline constexpr int kErrorCodeIllegalState = 107;
inline constexpr int kErrorCodeUnknown = 199;

struct BridgeCost {
  sim::SimTime crossing = sim::SimTime::MillisF(19.8);
  sim::SimTime marshal_primitive = sim::SimTime::MillisF(1.0);
  sim::SimTime marshal_object_field = sim::SimTime::MillisF(12.0);
  sim::SimTime callback_registration = sim::SimTime::MillisF(14.1);
  /// Virtual cost of one MiniJS interpreter step on 2009-class hardware.
  sim::SimTime js_step = sim::SimTime::Micros(30);
};

class Bridge {
 public:
  Bridge(android::AndroidPlatform& platform, BridgeCost cost = {})
      : platform_(platform), cost_(cost) {}

  android::AndroidPlatform& platform() { return platform_; }
  const BridgeCost& cost() const { return cost_; }

  /// Charge one host-call crossing: base + per-primitive marshalling +
  /// optional callback registration.
  void ChargeCall(int primitive_count, bool registers_callback);
  /// Charge conversion of a native object with `field_count` fields into a
  /// JS object.
  void ChargeObjectMarshal(int field_count);
  /// Charge `steps` interpreter steps of script execution.
  void ChargeScriptSteps(std::uint64_t steps);

  /// Convert the in-flight exception to a JS Error value with an error
  /// code. Must be called from inside a catch block.
  [[nodiscard]] minijs::Value MapCurrentException() const;

  /// Number of bridge crossings so far (ablation A3 counts these).
  std::uint64_t crossings() const { return crossings_; }

 private:
  android::AndroidPlatform& platform_;
  BridgeCost cost_;
  std::uint64_t crossings_ = 0;
};

/// Build an android::Location as a JS object (the 7 marshalled fields the
/// cost model charges: latitude, longitude, altitude, accuracy, speed,
/// bearing, time) plus the provider string.
[[nodiscard]] minijs::Value LocationToJs(const android::Location& location);

}  // namespace mobivine::webview
