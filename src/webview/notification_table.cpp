#include "webview/notification_table.h"

namespace mobivine::webview {

std::int64_t NotificationTable::NewChannel() {
  const std::int64_t id = next_channel_++;
  channels_[id];  // create empty
  return id;
}

void NotificationTable::Post(std::int64_t channel, minijs::Value notification) {
  channels_[channel].push_back(std::move(notification));
}

std::vector<minijs::Value> NotificationTable::Drain(std::int64_t channel) {
  auto it = channels_.find(channel);
  if (it == channels_.end()) return {};
  std::vector<minijs::Value> out = std::move(it->second);
  it->second.clear();
  return out;
}

std::size_t NotificationTable::PendingCount(std::int64_t channel) const {
  auto it = channels_.find(channel);
  return it == channels_.end() ? 0 : it->second.size();
}

void NotificationTable::CloseChannel(std::int64_t channel) {
  channels_.erase(channel);
}

}  // namespace mobivine::webview
