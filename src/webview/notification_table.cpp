#include "webview/notification_table.h"

#include <utility>

namespace mobivine::webview {

std::vector<minijs::Value>& NotificationTable::BufferOf(std::int64_t channel) {
  if (channel == cached_channel_) return *cached_buffer_;
  std::vector<minijs::Value>& buffer = channels_[channel];
  cached_channel_ = channel;
  cached_buffer_ = &buffer;
  return buffer;
}

std::int64_t NotificationTable::NewChannel() {
  const std::int64_t id = next_channel_++;
  channels_[id];  // create empty
  return id;
}

void NotificationTable::Post(std::int64_t channel, minijs::Value notification) {
  if (channel <= 0 || channel >= next_channel_) {
    // Never allocated: still dropped (the watermark bound stands), but
    // counted — silent loss was the bug.
    ++dropped_;
    return;
  }
  // The push bridge sees the value BEFORE the cap can evict anything:
  // a subscribed wire client receives every accepted post even when the
  // polling side has stopped draining.
  if (post_listener_) post_listener_(channel, notification);
  std::vector<minijs::Value>& buffer = BufferOf(channel);
  if (buffer.size() >= pending_cap_) {
    // Drop-oldest: a never-polled channel keeps the newest burst (what a
    // poller arriving late actually wants) at a bounded footprint.
    buffer.erase(buffer.begin());
    ++dropped_;
  }
  buffer.push_back(std::move(notification));
}

std::vector<minijs::Value> NotificationTable::Drain(std::int64_t channel) {
  // Hand the whole buffer to the caller; the channel entry stays (a
  // wrapper keeps posting to it until teardown) with a fresh vector.
  // Unlike Post, an unknown channel is NOT created here. The watermark
  // guard also keeps an out-of-range id (notably 0, the empty-cache
  // sentinel) away from the cache compare.
  if (channel <= 0 || channel >= next_channel_) return {};
  if (channel == cached_channel_) return std::exchange(*cached_buffer_, {});
  auto it = channels_.find(channel);
  if (it == channels_.end()) return {};
  cached_channel_ = channel;
  cached_buffer_ = &it->second;
  return std::exchange(it->second, {});
}

std::size_t NotificationTable::PendingCount(std::int64_t channel) const {
  auto it = channels_.find(channel);
  return it == channels_.end() ? 0 : it->second.size();
}

void NotificationTable::CloseChannel(std::int64_t channel) {
  if (channel == cached_channel_) {
    cached_channel_ = 0;
    cached_buffer_ = nullptr;
  }
  channels_.erase(channel);
}

}  // namespace mobivine::webview
