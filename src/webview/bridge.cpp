#include "webview/bridge.h"

#include "android/exceptions.h"
#include "android/location.h"

namespace mobivine::webview {

void Bridge::ChargeCall(int primitive_count, bool registers_callback) {
  ++crossings_;
  sim::SimTime total = cost_.crossing;
  for (int i = 0; i < primitive_count; ++i) total += cost_.marshal_primitive;
  if (registers_callback) total += cost_.callback_registration;
  platform_.device().scheduler().AdvanceBy(total);
}

void Bridge::ChargeObjectMarshal(int field_count) {
  sim::SimTime total = sim::SimTime::Zero();
  for (int i = 0; i < field_count; ++i) total += cost_.marshal_object_field;
  platform_.device().scheduler().AdvanceBy(total);
}

void Bridge::ChargeScriptSteps(std::uint64_t steps) {
  platform_.device().scheduler().AdvanceBy(
      cost_.js_step * static_cast<std::int64_t>(steps));
}

minijs::Value Bridge::MapCurrentException() const {
  try {
    throw;  // rethrow the in-flight exception to dispatch on its type
  } catch (const android::SecurityException& e) {
    return minijs::Value::Obj(minijs::MakeErrorObject(
        "SecurityError", e.what(), kErrorCodeSecurity));
  } catch (const android::IllegalArgumentException& e) {
    return minijs::Value::Obj(minijs::MakeErrorObject(
        "IllegalArgumentError", e.what(), kErrorCodeIllegalArgument));
  } catch (const android::UnsupportedOperationException& e) {
    return minijs::Value::Obj(minijs::MakeErrorObject(
        "UnsupportedOperationError", e.what(), kErrorCodeUnsupportedOperation));
  } catch (const android::IllegalStateException& e) {
    return minijs::Value::Obj(minijs::MakeErrorObject(
        "IllegalStateError", e.what(), kErrorCodeIllegalState));
  } catch (const android::ConnectTimeoutException& e) {
    return minijs::Value::Obj(minijs::MakeErrorObject(
        "ConnectTimeoutError", e.what(), kErrorCodeConnectTimeout));
  } catch (const android::ClientProtocolException& e) {
    return minijs::Value::Obj(minijs::MakeErrorObject(
        "ClientProtocolError", e.what(), kErrorCodeClientProtocol));
  } catch (const android::RemoteException& e) {
    return minijs::Value::Obj(
        minijs::MakeErrorObject("RemoteError", e.what(), kErrorCodeRemote));
  } catch (const std::exception& e) {
    return minijs::Value::Obj(
        minijs::MakeErrorObject("Error", e.what(), kErrorCodeUnknown));
  }
}

minijs::Value LocationToJs(const android::Location& location) {
  auto object = minijs::Object::Make();
  object->set_class_name("Location");
  object->Set("latitude", minijs::Value::Number(location.getLatitude()));
  object->Set("longitude", minijs::Value::Number(location.getLongitude()));
  object->Set("altitude", minijs::Value::Number(location.getAltitude()));
  object->Set("accuracy", minijs::Value::Number(location.getAccuracy()));
  object->Set("speed", minijs::Value::Number(location.getSpeed()));
  object->Set("bearing", minijs::Value::Number(location.getBearing()));
  object->Set("time",
              minijs::Value::Number(static_cast<double>(location.getTime())));
  object->Set("provider", minijs::Value::String(location.getProvider()));
  return minijs::Value::Obj(object);
}

}  // namespace mobivine::webview
