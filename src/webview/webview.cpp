#include "webview/webview.h"

#include "android/contacts.h"
#include "android/exceptions.h"
#include "android/http_client.h"
#include "android/location_manager.h"
#include "android/sms_manager.h"
#include "android/telephony.h"

namespace mobivine::webview {

using minijs::MakeHostFunction;
using minijs::Object;
using minijs::Value;

// ---------------------------------------------------------------------------
// ActionReceiver: posts every broadcast with a given action into a channel.
// ---------------------------------------------------------------------------

class WebView::ActionReceiver : public android::IntentReceiver {
 public:
  ActionReceiver(NotificationTable& table, std::int64_t channel)
      : table_(table), channel_(channel) {}

  void onReceiveIntent(android::Context& context,
                       const android::Intent& intent) override {
    (void)context;
    auto object = Object::Make();
    object->set_class_name("Notification");
    object->Set("action", Value::String(intent.getAction()));
    for (const auto& [key, value] : intent.getExtras().entries()) {
      std::visit(
          [&](const auto& v) {
            using T = std::decay_t<decltype(v)>;
            if constexpr (std::is_same_v<T, bool>) {
              object->Set(key, Value::Boolean(v));
            } else if constexpr (std::is_same_v<T, std::string>) {
              object->Set(key, Value::String(v));
            } else {
              object->Set(key, Value::Number(static_cast<double>(v)));
            }
          },
          value);
    }
    table_.Post(channel_, Value::Obj(object));
  }

 private:
  NotificationTable& table_;
  std::int64_t channel_;
};

// ---------------------------------------------------------------------------
// WebView
// ---------------------------------------------------------------------------

WebView::WebView(android::AndroidPlatform& platform, BridgeCost cost)
    : platform_(platform), bridge_(platform, cost) {
  InstallTimerBuiltins();
}

WebView::~WebView() {
  *alive_ = false;
  for (auto& [id, timer] : timers_) timer->cancelled = true;
  for (auto& [action, receiver] : receivers_) {
    platform_.application_context().unregisterReceiver(receiver.get());
  }
}

void WebView::addJavascriptInterface(Value object, const std::string& name) {
  interpreter_.SetGlobal(name, std::move(object));
}

Value WebView::loadScript(std::string_view source) {
  const std::uint64_t before = interpreter_.steps();
  Value result;
  try {
    result = interpreter_.Run(source);
  } catch (...) {
    bridge_.ChargeScriptSteps(interpreter_.steps() - before);
    throw;
  }
  bridge_.ChargeScriptSteps(interpreter_.steps() - before);
  return result;
}

Value WebView::callGlobal(const std::string& function_name,
                          std::vector<Value> arguments) {
  Value function = interpreter_.GetGlobal(function_name);
  const std::uint64_t before = interpreter_.steps();
  Value result;
  try {
    result = interpreter_.Call(function, Value::Undefined(),
                               std::move(arguments));
  } catch (...) {
    bridge_.ChargeScriptSteps(interpreter_.steps() - before);
    throw;
  }
  bridge_.ChargeScriptSteps(interpreter_.steps() - before);
  return result;
}

void WebView::RunCallback(const Value& fn, std::vector<Value> args) {
  if (!fn.is_function()) return;
  const std::uint64_t before = interpreter_.steps();
  try {
    interpreter_.Call(fn, Value::Undefined(), std::move(args));
  } catch (const minijs::ScriptError& error) {
    console_errors_.push_back(error.what());
  }
  bridge_.ChargeScriptSteps(interpreter_.steps() - before);
}

std::int64_t WebView::ChannelForAction(const std::string& action) {
  auto it = action_channels_.find(action);
  if (it != action_channels_.end()) return it->second;
  const std::int64_t channel = notifications_.NewChannel();
  action_channels_[action] = channel;
  auto receiver = std::make_unique<ActionReceiver>(notifications_, channel);
  platform_.application_context().registerReceiver(
      receiver.get(), android::IntentFilter(action));
  receivers_[action] = std::move(receiver);
  return channel;
}

void WebView::ReleaseAction(const std::string& action) {
  auto receiver = receivers_.find(action);
  if (receiver != receivers_.end()) {
    platform_.application_context().unregisterReceiver(
        receiver->second.get());
    receivers_.erase(receiver);
  }
  auto channel = action_channels_.find(action);
  if (channel != action_channels_.end()) {
    notifications_.CloseChannel(channel->second);
    action_channels_.erase(channel);
  }
}

// ---------------------------------------------------------------------------
// Timers
// ---------------------------------------------------------------------------

Value WebView::SetTimer(std::vector<Value>& args, bool repeating) {
  if (args.empty() || !args[0].is_function()) return Value::Number(0);
  const double ms = args.size() > 1 ? args[1].ToNumber() : 0.0;
  auto timer = std::make_shared<Timer>();
  timer->repeating = repeating;
  timer->period = sim::SimTime::MillisF(ms < 0 ? 0 : ms);
  timer->callback = args[0];
  const std::int64_t id = next_timer_id_++;
  timers_[id] = timer;

  auto& scheduler = platform_.device().scheduler();
  std::weak_ptr<bool> alive = alive_;
  // The closure references the timer and itself weakly; the strong
  // references live in timers_ (Timer owns its tick), so clearing the
  // timer reclaims everything instead of leaving a shared_ptr cycle.
  timer->tick = std::make_shared<std::function<void()>>();
  std::weak_ptr<Timer> weak_timer = timer;
  std::weak_ptr<std::function<void()>> weak_tick = timer->tick;
  *timer->tick = [this, weak_timer, weak_tick, alive, id] {
    auto locked = alive.lock();
    auto timer = weak_timer.lock();
    if (!locked || !*locked || !timer || timer->cancelled) return;
    RunCallback(timer->callback, {});
    if (timer->repeating && !timer->cancelled) {
      if (auto self = weak_tick.lock()) {
        platform_.device().scheduler().ScheduleAfter(timer->period, *self);
      }
    } else {
      timers_.erase(id);
    }
  };
  scheduler.ScheduleAfter(timer->period, *timer->tick);
  return Value::Number(static_cast<double>(id));
}

void WebView::InstallTimerBuiltins() {
  interpreter_.SetGlobal(
      "setTimeout",
      MakeHostFunction("setTimeout",
                       [this](minijs::Interpreter&, const Value&,
                              std::vector<Value>& args) {
                         return SetTimer(args, /*repeating=*/false);
                       }));
  interpreter_.SetGlobal(
      "setInterval",
      MakeHostFunction("setInterval",
                       [this](minijs::Interpreter&, const Value&,
                              std::vector<Value>& args) {
                         return SetTimer(args, /*repeating=*/true);
                       }));
  auto clear = [this](minijs::Interpreter&, const Value&,
                      std::vector<Value>& args) {
    if (!args.empty()) {
      auto it = timers_.find(static_cast<std::int64_t>(args[0].ToNumber()));
      if (it != timers_.end()) {
        it->second->cancelled = true;
        timers_.erase(it);
      }
    }
    return Value::Undefined();
  };
  interpreter_.SetGlobal("clearTimeout",
                         MakeHostFunction("clearTimeout", clear));
  interpreter_.SetGlobal("clearInterval",
                         MakeHostFunction("clearInterval", clear));
}

// ---------------------------------------------------------------------------
// Raw platform interfaces
// ---------------------------------------------------------------------------

void WebView::injectRawPlatformInterfaces() {
  addJavascriptInterface(MakeRawSmsManager(), "SmsManagerRaw");
  addJavascriptInterface(MakeRawLocationManager(), "LocationManagerRaw");
  addJavascriptInterface(MakeRawHttpClient(), "HttpClientRaw");
  addJavascriptInterface(MakeRawTelephony(), "TelephonyRaw");
  addJavascriptInterface(MakeRawContacts(), "ContactsRaw");
}

Value WebView::MakeRawContacts() {
  auto object = Object::Make();
  object->set_class_name("ContactsRaw");
  object->Set(
      "listContacts",
      MakeHostFunction(
          "listContacts",
          [this](minijs::Interpreter&, const Value&,
                 std::vector<Value>&) -> Value {
            bridge_.ChargeCall(0, false);
            try {
              android::ContactsProvider provider(platform_);
              android::Cursor cursor = provider.query();
              auto out = Object::MakeArray();
              while (cursor.moveToNext()) {
                bridge_.ChargeObjectMarshal(4);
                // Raw Android column names, unlike the proxy's uniform
                // shape.
                auto row = Object::Make();
                row->Set("_id",
                         Value::Number(static_cast<double>(
                             cursor.getLong(android::Cursor::COLUMN_ID))));
                row->Set("display_name",
                         Value::String(cursor.getString(
                             android::Cursor::COLUMN_DISPLAY_NAME)));
                row->Set("number",
                         Value::String(cursor.getString(
                             android::Cursor::COLUMN_NUMBER)));
                row->Set("email", Value::String(cursor.getString(
                                      android::Cursor::COLUMN_EMAIL)));
                out->elements().push_back(Value::Obj(row));
              }
              cursor.close();
              return Value::Obj(out);
            } catch (...) {
              throw minijs::ScriptError(bridge_.MapCurrentException());
            }
          }));
  return Value::Obj(object);
}

Value WebView::MakeRawSmsManager() {
  auto object = Object::Make();
  object->set_class_name("SmsManagerRaw");
  object->Set(
      "sendTextMessage",
      MakeHostFunction(
          "sendTextMessage",
          [this](minijs::Interpreter&, const Value&,
                 std::vector<Value>& args) -> Value {
            bridge_.ChargeCall(/*primitive_count=*/5,
                               /*registers_callback=*/true);
            if (args.size() < 3) {
              throw minijs::ScriptError(Value::Obj(minijs::MakeErrorObject(
                  "IllegalArgumentError", "sendTextMessage needs 5 arguments",
                  kErrorCodeIllegalArgument)));
            }
            const std::string destination = args[0].ToDisplayString();
            const std::string sc =
                args[1].is_nullish() ? "" : args[1].ToDisplayString();
            const std::string text = args[2].ToDisplayString();
            const std::string sent_action =
                args.size() > 3 && !args[3].is_nullish()
                    ? args[3].ToDisplayString()
                    : "";
            const std::string delivered_action =
                args.size() > 4 && !args[4].is_nullish()
                    ? args[4].ToDisplayString()
                    : "";
            // Raw JS cannot receive Java callbacks (paper footnote 8):
            // progress intents are captured into pollable channels instead.
            if (!sent_action.empty()) ChannelForAction(sent_action);
            if (!delivered_action.empty()) ChannelForAction(delivered_action);
            try {
              const long long id = platform_.sms_manager().sendTextMessage(
                  destination, sc, text, sent_action, delivered_action);
              return Value::Number(static_cast<double>(id));
            } catch (...) {
              throw minijs::ScriptError(bridge_.MapCurrentException());
            }
          }));
  object->Set("pollStatus",
              MakeHostFunction(
                  "pollStatus",
                  [this](minijs::Interpreter&, const Value&,
                         std::vector<Value>& args) -> Value {
                    bridge_.ChargeCall(1, false);
                    if (args.empty()) return Value::Obj(Object::MakeArray());
                    auto out = Object::MakeArray();
                    out->elements() = notifications_.Drain(
                        ChannelForAction(args[0].ToDisplayString()));
                    return Value::Obj(out);
                  }));
  return Value::Obj(object);
}

Value WebView::MakeRawLocationManager() {
  auto object = Object::Make();
  object->set_class_name("LocationManagerRaw");
  object->Set(
      "getCurrentLocation",
      MakeHostFunction(
          "getCurrentLocation",
          [this](minijs::Interpreter&, const Value&,
                 std::vector<Value>& args) -> Value {
            bridge_.ChargeCall(/*primitive_count=*/1,
                               /*registers_callback=*/false);
            const std::string provider =
                args.empty() ? "gps" : args[0].ToDisplayString();
            try {
              android::Location location =
                  platform_.location_manager().getCurrentLocation(provider);
              bridge_.ChargeObjectMarshal(/*field_count=*/7);
              return LocationToJs(location);
            } catch (...) {
              throw minijs::ScriptError(bridge_.MapCurrentException());
            }
          }));
  object->Set(
      "addProximityAlert",
      MakeHostFunction(
          "addProximityAlert",
          [this](minijs::Interpreter&, const Value&,
                 std::vector<Value>& args) -> Value {
            bridge_.ChargeCall(/*primitive_count=*/5,
                               /*registers_callback=*/false);
            if (args.size() < 5) {
              throw minijs::ScriptError(Value::Obj(minijs::MakeErrorObject(
                  "IllegalArgumentError",
                  "addProximityAlert needs lat, lon, radius, expiration, "
                  "action",
                  kErrorCodeIllegalArgument)));
            }
            const std::string action = args[4].ToDisplayString();
            ChannelForAction(action);
            try {
              android::Intent intent(action);
              platform_.location_manager().addProximityAlert(
                  args[0].ToNumber(), args[1].ToNumber(),
                  static_cast<float>(args[2].ToNumber()),
                  static_cast<long long>(args[3].ToNumber()), intent);
              return Value::Undefined();
            } catch (...) {
              throw minijs::ScriptError(bridge_.MapCurrentException());
            }
          }));
  object->Set("pollProximity",
              MakeHostFunction(
                  "pollProximity",
                  [this](minijs::Interpreter&, const Value&,
                         std::vector<Value>& args) -> Value {
                    bridge_.ChargeCall(1, false);
                    if (args.empty()) return Value::Obj(Object::MakeArray());
                    auto out = Object::MakeArray();
                    out->elements() = notifications_.Drain(
                        ChannelForAction(args[0].ToDisplayString()));
                    return Value::Obj(out);
                  }));
  object->Set(
      "removeProximityAlert",
      MakeHostFunction("removeProximityAlert",
                       [this](minijs::Interpreter&, const Value&,
                              std::vector<Value>& args) -> Value {
                         bridge_.ChargeCall(1, false);
                         if (!args.empty()) {
                           platform_.location_manager().removeProximityAlert(
                               args[0].ToDisplayString());
                         }
                         return Value::Undefined();
                       }));
  return Value::Obj(object);
}

Value WebView::MakeRawHttpClient() {
  auto object = Object::Make();
  object->set_class_name("HttpClientRaw");
  object->Set(
      "execute",
      MakeHostFunction(
          "execute",
          [this](minijs::Interpreter&, const Value&,
                 std::vector<Value>& args) -> Value {
            bridge_.ChargeCall(/*primitive_count=*/3,
                               /*registers_callback=*/false);
            if (args.size() < 2) {
              throw minijs::ScriptError(Value::Obj(minijs::MakeErrorObject(
                  "IllegalArgumentError", "execute needs method and url",
                  kErrorCodeIllegalArgument)));
            }
            const std::string method = args[0].ToDisplayString();
            const std::string url = args[1].ToDisplayString();
            try {
              android::DefaultHttpClient client(platform_);
              android::ApacheHttpResponse response = [&] {
                if (method == "POST") {
                  android::HttpPost post(url);
                  if (args.size() > 2 && !args[2].is_nullish()) {
                    post.setEntity(args[2].ToDisplayString());
                  }
                  return client.execute(post);
                }
                android::HttpGet get(url);
                return client.execute(get);
              }();
              bridge_.ChargeObjectMarshal(/*field_count=*/3);
              auto out = Object::Make();
              out->set_class_name("HttpResponse");
              out->Set("status", Value::Number(response.getStatusCode()));
              out->Set("reason", Value::String(response.getReasonPhrase()));
              out->Set("body", Value::String(response.getEntity()));
              return Value::Obj(out);
            } catch (const minijs::ScriptError&) {
              throw;
            } catch (...) {
              throw minijs::ScriptError(bridge_.MapCurrentException());
            }
          }));
  return Value::Obj(object);
}

Value WebView::MakeRawTelephony() {
  auto object = Object::Make();
  object->set_class_name("TelephonyRaw");
  object->Set("call",
              MakeHostFunction(
                  "call",
                  [this](minijs::Interpreter&, const Value&,
                         std::vector<Value>& args) -> Value {
                    bridge_.ChargeCall(1, false);
                    if (args.empty()) {
                      throw minijs::ScriptError(
                          Value::Obj(minijs::MakeErrorObject(
                              "IllegalArgumentError", "call needs a number",
                              kErrorCodeIllegalArgument)));
                    }
                    try {
                      return Value::Boolean(platform_.telephony_manager().call(
                          args[0].ToDisplayString()));
                    } catch (...) {
                      throw minijs::ScriptError(bridge_.MapCurrentException());
                    }
                  }));
  object->Set("endCall", MakeHostFunction(
                             "endCall",
                             [this](minijs::Interpreter&, const Value&,
                                    std::vector<Value>&) -> Value {
                               bridge_.ChargeCall(0, false);
                               platform_.telephony_manager().endCall();
                               return Value::Undefined();
                             }));
  object->Set("getCallState",
              MakeHostFunction("getCallState",
                               [this](minijs::Interpreter&, const Value&,
                                      std::vector<Value>&) -> Value {
                                 bridge_.ChargeCall(0, false);
                                 return Value::Number(
                                     platform_.telephony_manager()
                                         .getCallState());
                               }));
  return Value::Obj(object);
}

}  // namespace mobivine::webview
