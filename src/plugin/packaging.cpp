#include "plugin/packaging.h"

#include <algorithm>
#include <stdexcept>

#include "android/android_platform.h"
#include "s60/s60_platform.h"
#include "support/strings.h"

namespace mobivine::plugin {

bool Jar::HasEntry(const std::string& path) const {
  return std::any_of(entries.begin(), entries.end(),
                     [&path](const JarEntry& entry) {
                       return entry.path == path;
                     });
}

std::size_t Jar::TotalSize() const {
  std::size_t total = 0;
  for (const auto& entry : entries) total += entry.size;
  return total;
}

Jar ArtifactJar(const std::string& artifact_name) {
  // Synthesized contents: class entries named after the artifact. Sizes are
  // representative constants so merge bookkeeping is observable in tests.
  Jar jar;
  jar.name = artifact_name;
  const std::string stem =
      artifact_name.substr(0, artifact_name.rfind('.'));
  if (support::EndsWith(artifact_name, ".js")) {
    jar.entries.push_back({stem + ".js", 4096});
    return jar;
  }
  if (support::EndsWith(artifact_name, ".a")) {
    jar.entries.push_back({"lib/" + artifact_name, 24576});
    return jar;
  }
  jar.entries.push_back({"com/ibm/proxies/" + stem + "/ProxyImpl.class", 6144});
  jar.entries.push_back(
      {"com/ibm/proxies/" + stem + "/Listeners.class", 2048});
  jar.entries.push_back({"META-INF/MANIFEST.MF", 128});
  return jar;
}

std::vector<std::string> RequiredPermissions(const std::string& proxy,
                                             const std::string& platform) {
  if (platform == "android" || platform == "webview") {
    if (proxy == "Location") return {android::permissions::kFineLocation};
    if (proxy == "Sms") return {android::permissions::kSendSms};
    if (proxy == "Call") return {android::permissions::kCallPhone};
    if (proxy == "Http") return {android::permissions::kInternet};
    if (proxy == "Pim") return {android::permissions::kReadContacts};
    if (proxy == "Calendar") return {android::permissions::kReadCalendar};
    return {};
  }
  if (platform == "s60") {
    if (proxy == "Location") return {s60::permissions::kLocation};
    if (proxy == "Sms") return {s60::permissions::kSmsSend};
    if (proxy == "Http") return {s60::permissions::kHttp};
    if (proxy == "Pim") return {s60::permissions::kPimRead};
    if (proxy == "Calendar") return {s60::permissions::kPimEventRead};
    return {};
  }
  // iphone: runtime consent dialogs, nothing declared at package time.
  return {};
}

// ---------------------------------------------------------------------------
// S60
// ---------------------------------------------------------------------------

S60Package S60Packager::Package(
    const Jar& application_jar, const std::vector<std::string>& used_proxies,
    const std::string& suite_name,
    const std::vector<std::pair<std::string, std::string>>& ota_properties)
    const {
  S60Package package;
  package.suite_jar.name = suite_name + ".jar";
  package.suite_jar.entries = application_jar.entries;
  package.descriptor.suite_name = suite_name;
  package.descriptor.vendor = "MobiVine";
  package.descriptor.properties = ota_properties;

  for (const std::string& proxy : used_proxies) {
    const core::ProxyDescriptor* descriptor = store_.Find(proxy);
    const core::BindingPlane* binding =
        descriptor ? descriptor->FindBinding("s60") : nullptr;
    if (binding == nullptr) {
      throw std::invalid_argument("proxy '" + proxy +
                                  "' has no s60 binding to package");
    }
    // Merge every artifact jar into the single suite jar.
    for (const std::string& artifact : binding->artifacts) {
      Jar artifact_jar = ArtifactJar(artifact);
      for (JarEntry& entry : artifact_jar.entries) {
        if (entry.path == "META-INF/MANIFEST.MF") continue;  // app's wins
        if (package.suite_jar.HasEntry(entry.path)) {
          package.warnings.push_back("duplicate entry skipped: " + entry.path +
                                     " (from " + artifact + ")");
          continue;
        }
        package.suite_jar.entries.push_back(std::move(entry));
      }
    }
    // Descriptor permissions.
    for (const std::string& permission : RequiredPermissions(proxy, "s60")) {
      auto& permissions = package.descriptor.permissions;
      if (std::find(permissions.begin(), permissions.end(), permission) ==
          permissions.end()) {
        permissions.push_back(permission);
      }
    }
  }
  return package;
}

// ---------------------------------------------------------------------------
// Android
// ---------------------------------------------------------------------------

void AndroidPackager::Absorb(AndroidProject& project,
                             const std::vector<std::string>& used_proxies)
    const {
  for (const std::string& proxy : used_proxies) {
    const core::ProxyDescriptor* descriptor = store_.Find(proxy);
    const core::BindingPlane* binding =
        descriptor ? descriptor->FindBinding("android") : nullptr;
    if (binding == nullptr) {
      throw std::invalid_argument("proxy '" + proxy +
                                  "' has no android binding to absorb");
    }
    for (const std::string& artifact : binding->artifacts) {
      if (std::find(project.classpath.begin(), project.classpath.end(),
                    artifact) == project.classpath.end()) {
        project.classpath.push_back(artifact);
      }
    }
    for (const std::string& permission :
         RequiredPermissions(proxy, "android")) {
      if (std::find(project.manifest_permissions.begin(),
                    project.manifest_permissions.end(),
                    permission) == project.manifest_permissions.end()) {
        project.manifest_permissions.push_back(permission);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// iPhone
// ---------------------------------------------------------------------------

void IPhonePackager::Absorb(IPhoneAppBundle& bundle,
                            const std::vector<std::string>& used_proxies)
    const {
  for (const std::string& proxy : used_proxies) {
    const core::ProxyDescriptor* descriptor = store_.Find(proxy);
    const core::BindingPlane* binding =
        descriptor ? descriptor->FindBinding("iphone") : nullptr;
    if (binding == nullptr) {
      throw std::invalid_argument("proxy '" + proxy +
                                  "' has no iphone binding to link");
    }
    for (const std::string& artifact : binding->artifacts) {
      if (std::find(bundle.linked_libraries.begin(),
                    bundle.linked_libraries.end(),
                    artifact) == bundle.linked_libraries.end()) {
        bundle.linked_libraries.push_back(artifact);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// WebView
// ---------------------------------------------------------------------------

void WebViewPackager::Absorb(WebViewProject& project,
                             const std::vector<std::string>& used_proxies)
    const {
  auto add_unique = [](std::vector<std::string>& list,
                       const std::string& value) {
    if (std::find(list.begin(), list.end(), value) == list.end()) {
      list.push_back(value);
    }
  };
  for (const std::string& proxy : used_proxies) {
    const core::ProxyDescriptor* descriptor = store_.Find(proxy);
    const core::BindingPlane* binding =
        descriptor ? descriptor->FindBinding("webview") : nullptr;
    if (binding == nullptr) {
      throw std::invalid_argument("proxy '" + proxy +
                                  "' has no webview binding to absorb");
    }
    for (const std::string& artifact : binding->artifacts) {
      if (support::EndsWith(artifact, ".js")) {
        add_unique(project.page_assets, artifact);
      } else {
        // Wrapper jar -> the factory to inject through
        // addJavaScriptInterface().
        add_unique(project.injected_wrappers,
                   "create" + proxy + "WrapperInstance");
      }
    }
  }
}

}  // namespace mobivine::plugin
