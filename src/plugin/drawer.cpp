#include "plugin/drawer.h"

#include <algorithm>
#include <sstream>

namespace mobivine::plugin {

ProxyDrawer::ProxyDrawer(const core::DescriptorStore& store,
                         std::string platform)
    : platform_(std::move(platform)) {
  for (const std::string& name : store.ProxyNames()) {
    const core::ProxyDescriptor* descriptor = store.Find(name);
    if (!descriptor->SupportsPlatform(platform_)) continue;
    const core::SemanticPlane& semantic = descriptor->semantic();

    DrawerCategory* category = nullptr;
    for (auto& existing : categories_) {
      if (existing.name == semantic.category) category = &existing;
    }
    if (category == nullptr) {
      categories_.push_back({semantic.category, {}});
      category = &categories_.back();
    }
    for (const core::MethodSpec& method : semantic.methods) {
      category->items.push_back(
          {semantic.interface_name, method.name, method.description});
    }
  }
  std::sort(categories_.begin(), categories_.end(),
            [](const DrawerCategory& a, const DrawerCategory& b) {
              return a.name < b.name;
            });
}

const DrawerItem* ProxyDrawer::Find(const std::string& proxy,
                                    const std::string& method) const {
  for (const auto& category : categories_) {
    for (const auto& item : category.items) {
      if (item.proxy == proxy && item.method == method) return &item;
    }
  }
  return nullptr;
}

std::size_t ProxyDrawer::item_count() const {
  std::size_t count = 0;
  for (const auto& category : categories_) count += category.items.size();
  return count;
}

std::string ProxyDrawer::Render() const {
  std::ostringstream out;
  out << "Proxy Drawer [" << platform_ << "]\n";
  for (const auto& category : categories_) {
    out << "  " << category.name << "\n";
    for (const auto& item : category.items) {
      out << "    - " << item.proxy << "." << item.method << "\n";
    }
  }
  return out.str();
}

}  // namespace mobivine::plugin
