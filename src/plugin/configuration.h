// The Proxy Configuration dialog model (paper §4.2, Figure 7(b)).
//
// For a chosen (proxy, method, platform), the dialog shows two columns:
// Variables (the common interface's parameters, typed by the platform's
// syntactic plane) and Properties (the binding plane's platform-specific
// attributes with description, default and allowed values). The developer
// fills values; Validate() reports problems; the result feeds codegen.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/descriptor/proxy_descriptor.h"

namespace mobivine::plugin {

struct VariableField {
  std::string name;        // semantic parameter name
  std::string dimension;   // semantic dimension ("degrees", ...)
  std::string type;        // syntactic type for the platform's language
  std::string description;
  std::vector<std::string> allowed_values;
  std::string value;  // the developer's input (source literal)
};

struct PropertyField {
  std::string name;
  std::string type;
  std::string description;
  std::string default_value;
  std::vector<std::string> allowed_values;
  bool required = false;
  std::string value;  // empty = use default / unset
};

class ProxyConfiguration {
 public:
  /// Build the dialog model. Throws std::invalid_argument when the method
  /// is unknown or the proxy has no binding for the platform.
  static ProxyConfiguration For(const core::ProxyDescriptor& descriptor,
                                const std::string& method,
                                const std::string& platform);

  const std::string& proxy() const { return proxy_; }
  const std::string& method() const { return method_; }
  const std::string& platform() const { return platform_; }
  const std::string& language() const { return language_; }
  const std::string& implementation_class() const {
    return implementation_class_;
  }
  bool has_callback() const { return !callback_name_.empty(); }
  const std::string& callback_name() const { return callback_name_; }
  const std::string& callback_type() const { return callback_type_; }
  const std::string& callback_method() const { return callback_method_; }
  const std::string& return_type() const { return return_type_; }

  std::vector<VariableField>& variables() { return variables_; }
  const std::vector<VariableField>& variables() const { return variables_; }
  std::vector<PropertyField>& properties() { return properties_; }
  const std::vector<PropertyField>& properties() const { return properties_; }

  /// Set a variable/property value. Returns false for unknown names.
  bool SetVariable(const std::string& name, const std::string& value);
  bool SetProperty(const std::string& name, const std::string& value);

  /// Effective property value (explicit value, else default).
  [[nodiscard]] std::string EffectiveProperty(const std::string& name) const;

  /// Problems: required property unset, value outside allowed set, or a
  /// variable left empty. Empty result = ready for codegen.
  [[nodiscard]] std::vector<std::string> Validate() const;

 private:
  std::string proxy_;
  std::string method_;
  std::string platform_;
  std::string language_;
  std::string implementation_class_;
  std::string callback_name_;
  std::string callback_type_;
  std::string callback_method_;
  std::string return_type_;
  std::vector<VariableField> variables_;
  std::vector<PropertyField> properties_;
};

}  // namespace mobivine::plugin
