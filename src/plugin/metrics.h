// Code metrics for the software-engineering evaluation (paper §5).
//
// E2 (complexity) measures generated fragments with and without proxies;
// E3 (portability) measures cross-platform similarity of the same
// fragment. The measures are deliberately simple and language-agnostic:
// non-blank LoC, lexical token count (comments stripped), branch-point
// count, and a line-based LCS similarity.
#pragma once

#include <string>
#include <vector>

namespace mobivine::plugin {

struct CodeMetrics {
  int lines = 0;     ///< non-blank, non-comment-only lines
  int tokens = 0;    ///< lexical tokens, comments and whitespace stripped
  int branches = 0;  ///< if / else / for / while / catch / case / ?: count
};

[[nodiscard]] CodeMetrics Measure(const std::string& code);

/// Similarity in [0, 1]: 2 * LCS(lines) / (|a| + |b|) over trimmed
/// non-blank lines. 1.0 = identical modulo whitespace.
[[nodiscard]] double LineSimilarity(const std::string& a,
                                    const std::string& b);

/// The trimmed non-blank lines of a fragment (exposed for tests).
[[nodiscard]] std::vector<std::string> SignificantLines(
    const std::string& code);

}  // namespace mobivine::plugin
