#include "plugin/metrics.h"

#include <algorithm>
#include <cctype>

#include "support/strings.h"

namespace mobivine::plugin {

namespace {

/// Strip // and /* */ comments (string-literal aware, both quote styles).
std::string StripComments(const std::string& code) {
  std::string out;
  out.reserve(code.size());
  enum class State { kCode, kLineComment, kBlockComment, kString } state =
      State::kCode;
  char quote = '"';
  for (size_t i = 0; i < code.size(); ++i) {
    char c = code[i];
    char next = i + 1 < code.size() ? code[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"' || c == '\'') {
          state = State::kString;
          quote = c;
          out += c;
        } else {
          out += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out += c;
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        } else if (c == '\n') {
          out += c;  // keep line structure
        }
        break;
      case State::kString:
        out += c;
        if (c == '\\' && next != '\0') {
          out += next;
          ++i;
        } else if (c == quote) {
          state = State::kCode;
        }
        break;
    }
  }
  return out;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$' ||
         c == '.';
}

}  // namespace

std::vector<std::string> SignificantLines(const std::string& code) {
  std::vector<std::string> out;
  const std::string stripped = StripComments(code);
  for (const std::string& raw : support::Split(stripped, '\n')) {
    std::string line(support::Trim(raw));
    if (!line.empty()) out.push_back(std::move(line));
  }
  return out;
}

CodeMetrics Measure(const std::string& code) {
  CodeMetrics metrics;
  const std::string stripped = StripComments(code);
  metrics.lines = static_cast<int>(SignificantLines(code).size());

  // Tokenize: identifiers/numbers (with dots), string literals, and single
  // punctuation characters.
  std::vector<std::string> words;
  for (size_t i = 0; i < stripped.size();) {
    char c = stripped[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      size_t j = i + 1;
      while (j < stripped.size() && stripped[j] != quote) {
        if (stripped[j] == '\\') ++j;
        ++j;
      }
      words.emplace_back("<string>");
      i = std::min(j + 1, stripped.size());
      continue;
    }
    if (IsIdentChar(c)) {
      size_t j = i;
      while (j < stripped.size() && IsIdentChar(stripped[j])) ++j;
      words.emplace_back(stripped.substr(i, j - i));
      i = j;
      continue;
    }
    words.emplace_back(1, c);
    ++i;
  }
  metrics.tokens = static_cast<int>(words.size());

  for (size_t i = 0; i < words.size(); ++i) {
    const std::string& word = words[i];
    if (word == "if" || word == "else" || word == "for" || word == "while" ||
        word == "catch" || word == "case" || word == "?") {
      ++metrics.branches;
    }
  }
  return metrics;
}

double LineSimilarity(const std::string& a, const std::string& b) {
  const std::vector<std::string> lines_a = SignificantLines(a);
  const std::vector<std::string> lines_b = SignificantLines(b);
  if (lines_a.empty() && lines_b.empty()) return 1.0;
  if (lines_a.empty() || lines_b.empty()) return 0.0;

  // Classic O(n*m) LCS on lines.
  const size_t n = lines_a.size();
  const size_t m = lines_b.size();
  std::vector<std::vector<int>> dp(n + 1, std::vector<int>(m + 1, 0));
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      if (lines_a[i - 1] == lines_b[j - 1]) {
        dp[i][j] = dp[i - 1][j - 1] + 1;
      } else {
        dp[i][j] = std::max(dp[i - 1][j], dp[i][j - 1]);
      }
    }
  }
  return 2.0 * dp[n][m] / static_cast<double>(n + m);
}

}  // namespace mobivine::plugin
