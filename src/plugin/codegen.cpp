#include "plugin/codegen.h"

#include <sstream>
#include <stdexcept>

#include "support/strings.h"

namespace mobivine::plugin {

namespace {

using support::Indent;

std::string Var(const ProxyConfiguration& config, const std::string& name) {
  for (const auto& field : config.variables()) {
    if (field.name == name) return field.value.empty() ? name : field.value;
  }
  return name;
}

/// Render a property value as a source literal for its type.
std::string PropertyLiteral(const PropertyField& field,
                            const std::string& effective) {
  if (field.type == "handle") return "this";
  if (field.type == "string") return "\"" + effective + "\"";
  return effective;  // int / double / bool
}

// ===========================================================================
// Proxy-style generation (Figures 8 and 9)
// ===========================================================================

std::string ProxyObjectName(const std::string& proxy) {
  std::string lower = support::ToLower(proxy);
  return lower.substr(0, 3);  // loc, sms, cal, htt — matches Figure 8 style
}

std::string ProxySetup(const ProxyConfiguration& config) {
  std::ostringstream out;
  const std::string object = ProxyObjectName(config.proxy());
  if (config.language() == "objc") {
    out << config.implementation_class() << " *" << object << " = [["
        << config.implementation_class() << " alloc] init];\n";
    for (const auto& field : config.properties()) {
      if (field.value.empty()) continue;
      out << "[" << object << " setProperty:@\"" << field.name
          << "\" value:@\"" << field.value << "\"];\n";
    }
    return out.str();
  }
  if (config.language() == "javascript") {
    out << "var " << object << " = new " << config.implementation_class()
        << "();\n";
  } else {
    const std::string type = config.implementation_class().substr(
        config.implementation_class().rfind('.') + 1);
    out << type << " " << object << " = new " << type << "();\n";
  }
  for (const auto& field : config.properties()) {
    // Only user-provided values and required handles are emitted; defaults
    // live in the descriptor, not the application (Figure 8 shape).
    const bool emit = !field.value.empty() ||
                      (field.type == "handle" && field.required);
    if (!emit) continue;
    if (field.type == "handle" && config.language() == "javascript") {
      continue;  // handles are wrapper-internal on WebView
    }
    const std::string effective =
        field.value.empty() ? field.default_value : field.value;
    out << object << ".setProperty(\"" << field.name << "\", "
        << PropertyLiteral(field, effective) << ");\n";
  }
  return out.str();
}

std::string ProxyArguments(const ProxyConfiguration& config,
                           const std::string& callback_expr) {
  std::string args;
  for (const auto& field : config.variables()) {
    if (!args.empty()) args += ", ";
    args += field.value.empty() ? field.name : field.value;
  }
  if (config.has_callback()) {
    if (!args.empty()) args += ", ";
    args += callback_expr;
  }
  return args;
}

std::string ProxyInvocationJava(const ProxyConfiguration& config) {
  std::ostringstream out;
  const std::string object = ProxyObjectName(config.proxy());
  out << "try {\n";
  out << Indent(ProxySetup(config), 4) << "\n";
  out << "    " << object << "." << config.method() << "("
      << ProxyArguments(config, "this") << ");\n";
  out << "} catch (ProxyException e) {\n";
  out << "    // uniform MobiVine error codes on every platform\n";
  out << "}\n";
  return out.str();
}

std::string ProxyInvocationJs(const ProxyConfiguration& config) {
  std::ostringstream out;
  const std::string object = ProxyObjectName(config.proxy());
  out << "try {\n";
  out << Indent(ProxySetup(config), 4) << "\n";
  out << "    " << object << "." << config.method() << "("
      << ProxyArguments(config, config.callback_method()) << ");\n";
  out << "} catch (ex) {\n";
  out << "    // uniform MobiVine error codes on every platform\n";
  out << "}\n";
  return out.str();
}

std::string ProxyCallbackJava(const ProxyConfiguration& config) {
  if (!config.has_callback()) return "";
  std::ostringstream out;
  if (config.proxy() == "Location") {
    out << "public void proximityEvent(double refLatitude, double "
           "refLongitude,\n"
           "        double refAltitude, Location currentLocation, boolean "
           "entering) {\n"
           "    /* business logic for handling proximity events */\n"
           "}\n";
  } else if (config.proxy() == "Sms") {
    out << "public void smsStatusChanged(long messageId, SmsStatus status) "
           "{\n"
           "    /* business logic for delivery tracking */\n"
           "}\n";
  } else if (config.proxy() == "Call") {
    out << "public void callStateChanged(CallProgress progress) {\n"
           "    /* business logic for call progress */\n"
           "}\n";
  }
  return out.str();
}

std::string ProxyCallbackJs(const ProxyConfiguration& config) {
  if (!config.has_callback()) return "";
  std::ostringstream out;
  if (config.proxy() == "Location") {
    out << "function proximityEvent(refLatitude, refLongitude, refAltitude,\n"
           "                        currentLocation, entering) {\n"
           "    /* business logic for handling proximity events */\n"
           "}\n";
  } else if (config.proxy() == "Sms") {
    out << "function smsStatusChanged(messageId, status) {\n"
           "    /* business logic for delivery tracking */\n"
           "}\n";
  } else if (config.proxy() == "Call") {
    out << "function callStateChanged(state) {\n"
           "    /* business logic for call progress */\n"
           "}\n";
  }
  return out.str();
}

std::string ProxyApplicationAndroid(const ProxyConfiguration& config) {
  std::ostringstream out;
  out << "public class GeneratedApp extends Activity";
  if (config.proxy() == "Location") out << " implements ProximityListener";
  if (config.proxy() == "Sms") out << " implements SmsListener";
  if (config.proxy() == "Call") out << " implements CallListener";
  out << " {\n";
  out << "    public void onCreate() {\n";
  out << Indent(ProxyInvocationJava(config), 8);
  out << "    }\n";
  const std::string callback = ProxyCallbackJava(config);
  if (!callback.empty()) out << "\n" << Indent(callback, 4);
  out << "}\n";
  return out.str();
}

std::string ProxyApplicationS60(const ProxyConfiguration& config) {
  std::ostringstream out;
  out << "public class GeneratedApp extends MIDlet";
  if (config.proxy() == "Location") out << " implements ProximityListener";
  if (config.proxy() == "Sms") out << " implements SmsListener";
  out << " {\n";
  out << "    public void startApp() {\n";
  out << Indent(ProxyInvocationJava(config), 8);
  out << "    }\n";
  const std::string callback = ProxyCallbackJava(config);
  if (!callback.empty()) out << "\n" << Indent(callback, 4);
  out << "}\n";
  return out.str();
}

std::string ProxyInvocationObjC(const ProxyConfiguration& config) {
  std::ostringstream out;
  const std::string object = ProxyObjectName(config.proxy());
  out << "@try {\n";
  out << Indent(ProxySetup(config), 4) << "\n";
  const std::string arguments = ProxyArguments(config, "self");
  out << "    [" << object << " " << config.method();
  if (!arguments.empty()) out << ":" << arguments;
  out << "];\n";
  out << "} @catch (MVProxyException *e) {\n";
  out << "    // uniform MobiVine error codes on every platform\n";
  out << "}\n";
  return out.str();
}

std::string ProxyApplicationIPhone(const ProxyConfiguration& config) {
  std::ostringstream out;
  out << "@implementation GeneratedAppViewController";
  if (config.proxy() == "Location") out << " // <MVProximityListener>";
  if (config.proxy() == "Sms") out << " // <MVSmsListener>";
  out << "\n";
  out << "- (void)viewDidLoad {\n";
  out << Indent(ProxyInvocationObjC(config), 4);
  out << "}\n";
  if (config.proxy() == "Location" && config.has_callback()) {
    out << "\n- (void)proximityEvent:(double)refLatitude "
           "lon:(double)refLongitude\n"
           "        alt:(double)refAltitude loc:(MVLocation *)current\n"
           "        entering:(BOOL)entering {\n"
           "    /* business logic for handling proximity events */\n"
           "}\n";
  }
  if (config.proxy() == "Sms" && config.has_callback()) {
    out << "\n- (void)smsStatusChanged:(long long)messageId "
           "status:(MVSmsStatus)status {\n"
           "    /* business logic for delivery tracking */\n"
           "}\n";
  }
  out << "@end\n";
  return out.str();
}

std::string ProxyApplicationWebView(const ProxyConfiguration& config) {
  std::ostringstream out;
  out << "function JSInit() {\n";
  out << Indent(ProxyInvocationJs(config), 4);
  out << "}\n";
  const std::string callback = ProxyCallbackJs(config);
  if (!callback.empty()) out << "\n" << callback;
  return out.str();
}

// ===========================================================================
// Raw-style generation (Figure 2): the code a developer writes WITHOUT
// MobiVine, per platform and per API.
// ===========================================================================

std::string RawLocationAlertAndroid(const ProxyConfiguration& config) {
  std::ostringstream out;
  out << "public class GeneratedApp extends Activity {\n"
         "    class ProximityIntentReceiver extends IntentReceiver {\n"
         "        double latitude;\n"
         "        double longitude;\n"
         "\n"
         "        public ProximityIntentReceiver(double latitude, double "
         "longitude) {\n"
         "            this.latitude = latitude;\n"
         "            this.longitude = longitude;\n"
         "        }\n"
         "\n"
         "        public void onReceiveIntent(Context ctxt, Intent i) {\n"
         "            String action = i.getAction();\n"
         "            if (action.equals(PROXIMITY_ALERT)) {\n"
         "                boolean entering = "
         "i.getBooleanExtra(\"entering\", false);\n"
         "                LocationManager lm = (LocationManager)\n"
         "                        "
         "ctxt.getSystemService(Context.LOCATION_SERVICE);\n"
         "                Location loc = lm.getCurrentLocation(\""
      << config.EffectiveProperty("provider")
      << "\");\n"
         "                /* business logic for handling proximity events "
         "*/\n"
         "            }\n"
         "        }\n"
         "    }\n"
         "\n"
         "    static final String PROXIMITY_ALERT =\n"
         "            "
         "\"com.ibm.proxies.android.intent.action.PROXIMITY_ALERT\";\n"
         "\n"
         "    public void onCreate() {\n"
         "        Context context = this;\n"
         "        try {\n"
         "            ProximityIntentReceiver proximityReceiver =\n"
         "                    new ProximityIntentReceiver("
      << Var(config, "latitude") << ", " << Var(config, "longitude")
      << ");\n"
         "            context.registerReceiver(proximityReceiver,\n"
         "                    new IntentFilter(PROXIMITY_ALERT));\n"
         "            LocationManager lm = (LocationManager)\n"
         "                    "
         "context.getSystemService(Context.LOCATION_SERVICE);\n"
         "            Intent i = new Intent(PROXIMITY_ALERT);\n"
         "            lm.addProximityAlert("
      << Var(config, "latitude") << ", " << Var(config, "longitude") << ", "
      << Var(config, "radius") << ", " << Var(config, "timer")
      << ", i);\n"
         "        } catch (SecurityException e) {\n"
         "            // Handle Android specific exception\n"
         "        }\n"
         "    }\n"
         "}\n";
  return out.str();
}

std::string RawLocationAlertS60(const ProxyConfiguration& config) {
  std::ostringstream out;
  out << "public class GeneratedApp extends MIDlet\n"
         "        implements ProximityListener, LocationListener {\n"
         "    float radius;\n"
         "    Coordinates coordinates = null;\n"
         "    boolean entering = false;\n"
         "    long startTime, timeOut;\n"
         "    LocationProvider lp;\n"
         "\n"
         "    public void proximityEvent(Coordinates coordinates, Location "
         "lo) {\n"
         "        long currentTime = System.currentTimeMillis() / 1000;\n"
         "        if ((currentTime - startTime) > timeOut) { // time out\n"
         "            lp.setLocationListener(null, -1, -1, -1);\n"
         "            LocationProvider.removeProximityListener(this);\n"
         "            return;\n"
         "        }\n"
         "        entering = true;\n"
         "        // business logic for entry event\n"
         "    }\n"
         "\n"
         "    public void locationUpdated(LocationProvider lp, Location lo) "
         "{\n"
         "        long currentTime = System.currentTimeMillis() / 1000;\n"
         "        if ((currentTime - startTime) > timeOut) { // time out\n"
         "            lp.setLocationListener(null, -1, -1, -1);\n"
         "            LocationProvider.removeProximityListener(this);\n"
         "            return;\n"
         "        }\n"
         "        if (entering == false) return;\n"
         "        float distance = getDistance(coordinates, lo);\n"
         "        if (distance > radius) {\n"
         "            entering = false;\n"
         "            // add business logic for exit event\n"
         "            try { // registering for proximity events again\n"
         "                LocationProvider.addProximityListener(this, "
         "coordinates, radius);\n"
         "            } catch (Exception e) {\n"
         "                // Handle S60 specific exceptions\n"
         "            }\n"
         "        }\n"
         "    }\n"
         "\n"
         "    public void startApp() {\n"
         "        this.radius = "
      << Var(config, "radius")
      << ";\n"
         "        this.coordinates = new Coordinates("
      << Var(config, "latitude") << ", " << Var(config, "longitude") << ", "
      << "(float) " << Var(config, "altitude")
      << ");\n"
         "        this.timeOut = "
      << Var(config, "timer")
      << " / 1000;\n"
         "        this.startTime = System.currentTimeMillis() / 1000;\n"
         "        try {\n"
         "            Criteria criteria = new Criteria();\n"
         "            "
         "criteria.setPreferredResponseTime(Criteria.NO_REQUIREMENT);\n"
         "            criteria.setVerticalAccuracy(50);\n"
         "            lp = LocationProvider.getInstance(criteria);\n"
         "            lp.setLocationListener(this, -1, -1, -1);\n"
         "            LocationProvider.addProximityListener(this, "
         "coordinates, radius);\n"
         "        } catch (LocationException e) {\n"
         "            // Handle S60 specific exceptions\n"
         "        } catch (SecurityException e) {\n"
         "            // Handle S60 specific exceptions\n"
         "        }\n"
         "    }\n"
         "}\n";
  return out.str();
}

std::string RawLocationAlertWebView(const ProxyConfiguration& config) {
  std::ostringstream out;
  out << "function JSInit() {\n"
         "    try {\n"
         "        var action = \"raw.PROXIMITY_ALERT\";\n"
         "        LocationManagerRaw.addProximityAlert("
      << Var(config, "latitude") << ", " << Var(config, "longitude") << ",\n"
      << "                " << Var(config, "radius") << ", "
      << Var(config, "timer")
      << ", action);\n"
         "        // Raw WebView cannot receive Java callbacks: poll "
         "manually.\n"
         "        setInterval(function() {\n"
         "            var events = "
         "LocationManagerRaw.pollProximity(action);\n"
         "            for (var i = 0; i < events.length; i++) {\n"
         "                var entering = events[i].entering;\n"
         "                var loc = LocationManagerRaw.getCurrentLocation(\""
      << config.EffectiveProperty("provider")
      << "\");\n"
         "                /* business logic for handling proximity events "
         "*/\n"
         "            }\n"
         "        }, 250);\n"
         "    } catch (ex) {\n"
         "        // inspect Android-specific error codes on ex.code\n"
         "    }\n"
         "}\n";
  return out.str();
}

std::string RawGetLocation(const ProxyConfiguration& config,
                           const std::string& platform) {
  std::ostringstream out;
  if (platform == "android") {
    out << "try {\n"
           "    LocationManager lm = (LocationManager)\n"
           "            context.getSystemService(Context.LOCATION_SERVICE);\n"
           "    Location loc = lm.getCurrentLocation(\""
        << config.EffectiveProperty("provider")
        << "\");\n"
           "} catch (SecurityException e) {\n"
           "    // Handle Android specific exception\n"
           "}\n";
  } else if (platform == "s60") {
    out << "try {\n"
           "    Criteria criteria = new Criteria();\n"
           "    criteria.setVerticalAccuracy("
        << config.EffectiveProperty("verticalAccuracy")
        << ");\n"
           "    criteria.setPreferredResponseTime("
        << config.EffectiveProperty("preferredResponseTime")
        << ");\n"
           "    LocationProvider lp = LocationProvider.getInstance(criteria);\n"
           "    Location lo = lp.getLocation("
        << config.EffectiveProperty("locationTimeout")
        << ");\n"
           "    QualifiedCoordinates qc = lo.getQualifiedCoordinates();\n"
           "} catch (LocationException e) {\n"
           "    // Handle S60 specific exceptions\n"
           "} catch (SecurityException e) {\n"
           "    // Handle S60 specific exceptions\n"
           "}\n";
  } else {  // webview
    out << "try {\n"
           "    var loc = LocationManagerRaw.getCurrentLocation(\""
        << config.EffectiveProperty("provider")
        << "\");\n"
           "    // raw object uses Android field names (bearing, time)\n"
           "} catch (ex) {\n"
           "    // inspect Android-specific error codes on ex.code\n"
           "}\n";
  }
  return out.str();
}

std::string RawSendSms(const ProxyConfiguration& config,
                       const std::string& platform) {
  std::ostringstream out;
  if (platform == "android") {
    out << "public class GeneratedApp extends Activity {\n"
           "    class SentReceiver extends IntentReceiver {\n"
           "        public void onReceiveIntent(Context ctxt, Intent i) {\n"
           "            int result = i.getIntExtra(\"result\", 1);\n"
           "            /* business logic for delivery tracking */\n"
           "        }\n"
           "    }\n"
           "\n"
           "    static final String SMS_SENT = \"raw.SMS_SENT\";\n"
           "    static final String SMS_DELIVERED = \"raw.SMS_DELIVERED\";\n"
           "\n"
           "    public void onCreate() {\n"
           "        try {\n"
           "            SentReceiver receiver = new SentReceiver();\n"
           "            IntentFilter filter = new IntentFilter(SMS_SENT);\n"
           "            filter.addAction(SMS_DELIVERED);\n"
           "            registerReceiver(receiver, filter);\n"
           "            SmsManager sm = SmsManager.getDefault();\n"
           "            sm.sendTextMessage("
        << Var(config, "destination") << ", null, " << Var(config, "text")
        << ",\n"
           "                    SMS_SENT, SMS_DELIVERED);\n"
           "        } catch (IllegalArgumentException e) {\n"
           "            // Handle Android specific exception\n"
           "        } catch (SecurityException e) {\n"
           "            // Handle Android specific exception\n"
           "        }\n"
           "    }\n"
           "}\n";
  } else if (platform == "s60") {
    out << "public class GeneratedApp extends MIDlet {\n"
           "    public void startApp() {\n"
           "        MessageConnection conn = null;\n"
           "        try {\n"
           "            conn = (MessageConnection) Connector.open(\"sms://\" "
           "+ "
        << Var(config, "destination")
        << ");\n"
           "            TextMessage msg = (TextMessage)\n"
           "                    "
           "conn.newMessage(MessageConnection.TEXT_MESSAGE);\n"
           "            msg.setPayloadText("
        << Var(config, "text")
        << ");\n"
           "            conn.send(msg);\n"
           "            // blocking send: no delivery reports on S60\n"
           "        } catch (InterruptedIOException e) {\n"
           "            // Handle S60 specific exceptions\n"
           "        } catch (IOException e) {\n"
           "            // Handle S60 specific exceptions\n"
           "        } catch (SecurityException e) {\n"
           "            // Handle S60 specific exceptions\n"
           "        } finally {\n"
           "            try { if (conn != null) conn.close(); } catch "
           "(IOException e) {}\n"
           "        }\n"
           "    }\n"
           "}\n";
  } else {  // webview
    out << "function JSInit() {\n"
           "    try {\n"
           "        var sentAction = \"raw.SMS_SENT\";\n"
           "        var deliveredAction = \"raw.SMS_DELIVERED\";\n"
           "        SmsManagerRaw.sendTextMessage("
        << Var(config, "destination") << ", null, " << Var(config, "text")
        << ",\n"
           "                sentAction, deliveredAction);\n"
           "        // Raw WebView cannot receive Java callbacks: poll.\n"
           "        setInterval(function() {\n"
           "            var notes = SmsManagerRaw.pollStatus(sentAction);\n"
           "            for (var i = 0; i < notes.length; i++) {\n"
           "                var result = notes[i].result;\n"
           "                /* business logic for delivery tracking */\n"
           "            }\n"
           "        }, 250);\n"
           "    } catch (ex) {\n"
           "        // inspect Android-specific error codes on ex.code\n"
           "    }\n"
           "}\n";
  }
  return out.str();
}

std::string RawCall(const ProxyConfiguration& config,
                    const std::string& platform) {
  std::ostringstream out;
  if (platform == "android") {
    out << "try {\n"
           "    TelephonyManager tm = (TelephonyManager)\n"
           "            context.getSystemService(Context.TELEPHONY_SERVICE);\n"
           "    // semi-internal IPhone surface\n"
           "    tm.call("
        << Var(config, "number")
        << ");\n"
           "} catch (SecurityException e) {\n"
           "    // Handle Android specific exception\n"
           "}\n";
  } else if (platform == "webview") {
    out << "try {\n"
           "    TelephonyRaw.call("
        << Var(config, "number")
        << ");\n"
           "} catch (ex) {\n"
           "    // inspect Android-specific error codes on ex.code\n"
           "}\n";
  } else {
    out << "// The Call interface is not exposed on S60.\n";
  }
  return out.str();
}

std::string RawHttp(const ProxyConfiguration& config,
                    const std::string& platform, const std::string& method) {
  std::ostringstream out;
  const bool is_post = method == "post";
  if (platform == "android") {
    out << "try {\n"
           "    DefaultHttpClient client = new DefaultHttpClient();\n";
    if (is_post) {
      out << "    HttpPost request = new HttpPost(" << Var(config, "url")
          << ");\n"
             "    request.setEntity(new StringEntity("
          << Var(config, "body")
          << "));\n"
             "    request.addHeader(\"Content-Type\", "
          << Var(config, "contentType") << ");\n";
    } else {
      out << "    HttpGet request = new HttpGet(" << Var(config, "url")
          << ");\n";
    }
    out << "    HttpResponse response = client.execute(request);\n"
           "    int status = response.getStatusLine().getStatusCode();\n"
           "} catch (ClientProtocolException e) {\n"
           "    // Handle Android specific exception\n"
           "} catch (ConnectTimeoutException e) {\n"
           "    // Handle Android specific exception\n"
           "}\n";
  } else if (platform == "s60") {
    out << "HttpConnection conn = null;\n"
           "try {\n"
           "    conn = (HttpConnection) Connector.open("
        << Var(config, "url") << ");\n";
    if (is_post) {
      out << "    conn.setRequestMethod(HttpConnection.POST);\n"
             "    conn.setRequestProperty(\"Content-Type\", "
          << Var(config, "contentType")
          << ");\n"
             "    OutputStream os = conn.openOutputStream();\n"
             "    os.write("
          << Var(config, "body") << ".getBytes());\n";
    } else {
      out << "    conn.setRequestMethod(HttpConnection.GET);\n";
    }
    out << "    int status = conn.getResponseCode();\n"
           "} catch (InterruptedIOException e) {\n"
           "    // Handle S60 specific exceptions\n"
           "} catch (IOException e) {\n"
           "    // Handle S60 specific exceptions\n"
           "} finally {\n"
           "    try { if (conn != null) conn.close(); } catch (IOException "
           "e) {}\n"
           "}\n";
  } else {  // webview
    out << "try {\n";
    if (is_post) {
      out << "    var response = HttpClientRaw.execute(\"POST\", "
          << Var(config, "url") << ", " << Var(config, "body") << ");\n";
    } else {
      out << "    var response = HttpClientRaw.execute(\"GET\", "
          << Var(config, "url") << ");\n";
    }
    out << "    var status = response.status;\n"
           "} catch (ex) {\n"
           "    // inspect Android-specific error codes on ex.code\n"
           "}\n";
  }
  return out.str();
}

// --- iPhone raw templates (the verbose delegate/openURL boilerplate) -----

std::string RawLocationAlertIPhone(const ProxyConfiguration& config) {
  std::ostringstream out;
  out << "// iPhone OS has no region monitoring (pre-iOS 4): geofence by\n"
         "// hand from the CoreLocation update stream.\n"
         "@implementation GeneratedAppViewController // "
         "<CLLocationManagerDelegate>\n"
         "- (void)viewDidLoad {\n"
         "    self.inside = NO;\n"
         "    self.manager = [[CLLocationManager alloc] init];\n"
         "    self.manager.delegate = self;\n"
         "    self.manager.desiredAccuracy = "
         "kCLLocationAccuracyHundredMeters;\n"
         "    [self.manager startUpdatingLocation];\n"
         "}\n"
         "\n"
         "- (void)locationManager:(CLLocationManager *)manager\n"
         "    didUpdateToLocation:(CLLocation *)newLocation\n"
         "           fromLocation:(CLLocation *)oldLocation {\n"
         "    CLLocation *center = [[CLLocation alloc] initWithLatitude:"
      << Var(config, "latitude") << "\n                    longitude:"
      << Var(config, "longitude")
      << "];\n"
         "    CLLocationDistance d = [newLocation "
         "getDistanceFrom:center];\n"
         "    BOOL insideNow = d <= "
      << Var(config, "radius")
      << ";\n"
         "    if (insideNow != self.inside) {\n"
         "        self.inside = insideNow;\n"
         "        /* business logic for handling proximity events */\n"
         "    }\n"
         "}\n"
         "\n"
         "- (void)locationManager:(CLLocationManager *)manager\n"
         "       didFailWithError:(NSError *)error {\n"
         "    if (error.code == kCLErrorDenied) {\n"
         "        // Handle iPhone specific error\n"
         "        [self.manager stopUpdatingLocation];\n"
         "    }\n"
         "}\n"
         "@end\n";
  return out.str();
}

std::string RawGetLocationIPhone(const ProxyConfiguration&) {
  return "// CoreLocation is streaming-only: block on the run loop for the\n"
         "// first fix by hand.\n"
         "self.manager = [[CLLocationManager alloc] init];\n"
         "self.manager.delegate = self;\n"
         "[self.manager startUpdatingLocation];\n"
         "while (!self.gotFix && !self.denied) {\n"
         "    [[NSRunLoop currentRunLoop]\n"
         "        runMode:NSDefaultRunLoopMode\n"
         "        beforeDate:[NSDate dateWithTimeIntervalSinceNow:0.1]];\n"
         "}\n"
         "[self.manager stopUpdatingLocation];\n"
         "if (self.denied) {\n"
         "    // Handle iPhone specific error (kCLErrorDenied)\n"
         "}\n";
}

std::string RawSendSmsIPhone(const ProxyConfiguration& config) {
  std::ostringstream out;
  out << "// No programmatic SMS on iPhone OS: hand off to the system\n"
         "// composer; the app cannot observe delivery at all.\n"
         "NSString *url = [NSString stringWithFormat:@\"sms:%@\", "
      << Var(config, "destination")
      << "];\n"
         "BOOL opened = [[UIApplication sharedApplication]\n"
         "    openURL:[NSURL URLWithString:url]];\n"
         "if (!opened) {\n"
         "    // Handle iPhone specific error\n"
         "}\n";
  return out.str();
}

std::string RawCallIPhone(const ProxyConfiguration& config) {
  std::ostringstream out;
  out << "NSString *url = [NSString stringWithFormat:@\"tel:%@\", "
      << Var(config, "number")
      << "];\n"
         "BOOL opened = [[UIApplication sharedApplication]\n"
         "    openURL:[NSURL URLWithString:url]];\n"
         "if (!opened) {\n"
         "    // Handle iPhone specific error\n"
         "}\n";
  return out.str();
}

std::string RawHttpIPhone(const ProxyConfiguration& config,
                          const std::string& method) {
  std::ostringstream out;
  const bool is_post = method == "post";
  out << "NSMutableURLRequest *request = [NSMutableURLRequest\n"
         "    requestWithURL:[NSURL URLWithString:"
      << Var(config, "url") << "]];\n";
  if (is_post) {
    out << "[request setHTTPMethod:@\"POST\"];\n"
           "[request setHTTPBody:[" << Var(config, "body")
        << " dataUsingEncoding:NSUTF8StringEncoding]];\n"
           "[request setValue:" << Var(config, "contentType")
        << " forHTTPHeaderField:@\"Content-Type\"];\n";
  }
  out << "NSError *error = nil;\n"
         "NSURLResponse *response = nil;\n"
         "NSData *data = [NSURLConnection sendSynchronousRequest:request\n"
         "    returningResponse:&response error:&error];\n"
         "if (error != nil) {\n"
         "    // Handle iPhone specific NSError (NSURLErrorDomain)\n"
         "}\n";
  return out.str();
}

// --- Pim raw templates ----------------------------------------------------

std::string RawPim(const ProxyConfiguration& config,
                   const std::string& platform) {
  (void)config;
  std::ostringstream out;
  if (platform == "android") {
    out << "Cursor cursor = null;\n"
           "try {\n"
           "    cursor = context.getContentResolver().query(\n"
           "            Contacts.People.CONTENT_URI, PROJECTION, null, "
           "null, null);\n"
           "    while (cursor.moveToNext()) {\n"
           "        long id = cursor.getLong(0);\n"
           "        String name = cursor.getString(1);\n"
           "        String number = cursor.getString(2);\n"
           "        /* business logic per contact */\n"
           "    }\n"
           "} catch (SecurityException e) {\n"
           "    // Handle Android specific exception\n"
           "} finally {\n"
           "    if (cursor != null) cursor.close();\n"
           "}\n";
  } else if (platform == "s60") {
    out << "ContactList list = null;\n"
           "try {\n"
           "    list = (ContactList) PIM.getInstance()\n"
           "            .openPIMList(PIM.CONTACT_LIST, PIM.READ_ONLY);\n"
           "    Enumeration items = list.items();\n"
           "    while (items.hasMoreElements()) {\n"
           "        Contact c = (Contact) items.nextElement();\n"
           "        String name = c.countValues(Contact.NAME) > 0\n"
           "                ? c.getString(Contact.NAME, 0) : \"\";\n"
           "        String tel = c.countValues(Contact.TEL) > 0\n"
           "                ? c.getString(Contact.TEL, 0) : \"\";\n"
           "        /* business logic per contact */\n"
           "    }\n"
           "} catch (PIMException e) {\n"
           "    // Handle S60 specific exceptions\n"
           "} catch (SecurityException e) {\n"
           "    // Handle S60 specific exceptions\n"
           "} finally {\n"
           "    try { if (list != null) list.close(); } catch (PIMException "
           "e) {}\n"
           "}\n";
  } else if (platform == "iphone") {
    out << "ABAddressBookRef book = ABAddressBookCreate();\n"
           "CFArrayRef people = "
           "ABAddressBookCopyArrayOfAllPeople(book);\n"
           "for (CFIndex i = 0; i < CFArrayGetCount(people); i++) {\n"
           "    ABRecordRef person = CFArrayGetValueAtIndex(people, i);\n"
           "    CFStringRef name = ABRecordCopyCompositeName(person);\n"
           "    ABMultiValueRef phones = ABRecordCopyValue(person,\n"
           "            kABPersonPhoneProperty);\n"
           "    /* business logic per contact */\n"
           "    CFRelease(name);\n"
           "    CFRelease(phones);\n"
           "}\n"
           "CFRelease(people);\n"
           "CFRelease(book);\n";
  } else {  // webview
    out << "try {\n"
           "    var contacts = ContactsRaw.listContacts();\n"
           "    for (var i = 0; i < contacts.length; i++) {\n"
           "        var name = contacts[i].display_name;\n"
           "        var number = contacts[i].number;\n"
           "        /* business logic per contact */\n"
           "    }\n"
           "} catch (ex) {\n"
           "    // inspect Android-specific error codes on ex.code\n"
           "}\n";
  }
  return out.str();
}

std::string RawCalendar(const ProxyConfiguration&,
                        const std::string& platform) {
  std::ostringstream out;
  if (platform == "android") {
    out << "Cursor cursor = null;\n"
           "try {\n"
           "    cursor = context.getContentResolver().query(\n"
           "            Uri.parse(\"content://calendar/events\"),\n"
           "            PROJECTION, null, null, \"dtstart ASC\");\n"
           "    while (cursor.moveToNext()) {\n"
           "        String title = cursor.getString(1);\n"
           "        long dtstart = cursor.getLong(2);\n"
           "        /* business logic per event */\n"
           "    }\n"
           "} catch (SecurityException e) {\n"
           "    // Handle Android specific exception\n"
           "} finally {\n"
           "    if (cursor != null) cursor.close();\n"
           "}\n";
  } else if (platform == "s60") {
    out << "EventList list = null;\n"
           "try {\n"
           "    list = (EventList) PIM.getInstance()\n"
           "            .openPIMList(PIM.EVENT_LIST, PIM.READ_ONLY);\n"
           "    Enumeration items = list.items();\n"
           "    while (items.hasMoreElements()) {\n"
           "        Event e = (Event) items.nextElement();\n"
           "        String summary = e.countValues(Event.SUMMARY) > 0\n"
           "                ? e.getString(Event.SUMMARY, 0) : \"\";\n"
           "        long start = e.getDate(Event.START, 0);\n"
           "        /* business logic per event */\n"
           "    }\n"
           "} catch (PIMException e) {\n"
           "    // Handle S60 specific exceptions\n"
           "} catch (SecurityException e) {\n"
           "    // Handle S60 specific exceptions\n"
           "} finally {\n"
           "    try { if (list != null) list.close(); } catch (PIMException "
           "e) {}\n"
           "}\n";
  } else if (platform == "webview") {
    out << "try {\n"
           "    var events = CalendarRaw.listEvents();\n"
           "    for (var i = 0; i < events.length; i++) {\n"
           "        /* business logic per event */\n"
           "    }\n"
           "} catch (ex) {\n"
           "    // inspect Android-specific error codes on ex.code\n"
           "}\n";
  } else {
    out << "// iPhone OS exposes no public calendar API (pre-EventKit).\n";
  }
  return out.str();
}

std::string RawApplication(const ProxyConfiguration& config) {
  const std::string& platform = config.platform();
  const std::string& proxy = config.proxy();
  const std::string& method = config.method();
  if (proxy == "Location" && method == "addProximityAlert") {
    if (platform == "android") return RawLocationAlertAndroid(config);
    if (platform == "s60") return RawLocationAlertS60(config);
    if (platform == "iphone") return RawLocationAlertIPhone(config);
    return RawLocationAlertWebView(config);
  }
  if (proxy == "Location" && method == "getLocation") {
    if (platform == "iphone") return RawGetLocationIPhone(config);
    return RawGetLocation(config, platform);
  }
  if (proxy == "Sms" && method == "sendTextMessage") {
    if (platform == "iphone") return RawSendSmsIPhone(config);
    return RawSendSms(config, platform);
  }
  if (proxy == "Call") {
    if (platform == "iphone") return RawCallIPhone(config);
    return RawCall(config, platform);
  }
  if (proxy == "Http") {
    if (platform == "iphone") return RawHttpIPhone(config, method);
    return RawHttp(config, platform, method);
  }
  if (proxy == "Pim") return RawPim(config, platform);
  if (proxy == "Calendar") return RawCalendar(config, platform);
  throw std::invalid_argument("no raw template for " + proxy + "." + method +
                              " on " + platform);
}

}  // namespace

GeneratedCode CodeGenerator::InvocationSnippet(const ProxyConfiguration& config,
                                               CodeStyle style) const {
  GeneratedCode out;
  out.language = config.language();
  if (style == CodeStyle::kProxy) {
    if (config.language() == "javascript") {
      out.code = ProxyInvocationJs(config);
    } else if (config.language() == "objc") {
      out.code = ProxyInvocationObjC(config);
    } else {
      out.code = ProxyInvocationJava(config);
    }
  } else {
    out.code = RawApplication(config);
  }
  return out;
}

GeneratedCode CodeGenerator::ApplicationFragment(
    const ProxyConfiguration& config, CodeStyle style) const {
  GeneratedCode out;
  out.language = config.language();
  if (style == CodeStyle::kRaw) {
    out.code = RawApplication(config);
    return out;
  }
  if (config.platform() == "android") {
    out.code = ProxyApplicationAndroid(config);
  } else if (config.platform() == "s60") {
    out.code = ProxyApplicationS60(config);
  } else if (config.platform() == "iphone") {
    out.code = ProxyApplicationIPhone(config);
  } else {
    out.code = ProxyApplicationWebView(config);
  }
  return out;
}

}  // namespace mobivine::plugin
