// Code generation (paper §4.2 "Proxy Configuration and Code Generation").
//
// From a validated ProxyConfiguration the plugin generates the invocation
// snippet a developer would drag-and-drop, and a complete application
// fragment around it. Both come in two styles:
//
//  * kProxy — through the M-Proxy model (the paper's Figures 8 and 9);
//  * kRaw   — directly against the native platform APIs (Figure 2).
//
// Generating BOTH from one configuration is what makes the complexity (E2)
// and portability (E3) measurements honest: the same functionality, the
// same parameter values, with and without MobiVine.
#pragma once

#include <string>

#include "plugin/configuration.h"

namespace mobivine::plugin {

enum class CodeStyle { kProxy, kRaw };

struct GeneratedCode {
  std::string language;  // "java" | "javascript"
  std::string code;
};

class CodeGenerator {
 public:
  explicit CodeGenerator(const core::DescriptorStore& store) : store_(store) {}

  /// The drag-and-drop snippet (the dialog's Source preview): the
  /// configured API invocation with surrounding error handling.
  [[nodiscard]] GeneratedCode InvocationSnippet(
      const ProxyConfiguration& config, CodeStyle style) const;

  /// A complete minimal application exercising the configured API:
  /// lifecycle wrapper (Activity / MIDlet / JSInit) + invocation +
  /// callback handler. This is what the E2/E3 metrics measure.
  [[nodiscard]] GeneratedCode ApplicationFragment(
      const ProxyConfiguration& config, CodeStyle style) const;

 private:
  const core::DescriptorStore& store_;
};

}  // namespace mobivine::plugin
