#include "plugin/configuration.h"

#include <algorithm>
#include <stdexcept>

namespace mobivine::plugin {

ProxyConfiguration ProxyConfiguration::For(
    const core::ProxyDescriptor& descriptor, const std::string& method,
    const std::string& platform) {
  const core::MethodSpec* spec = descriptor.semantic().FindMethod(method);
  if (spec == nullptr) {
    throw std::invalid_argument("proxy '" + descriptor.name() +
                                "' has no method '" + method + "'");
  }
  const core::BindingPlane* binding = descriptor.FindBinding(platform);
  if (binding == nullptr) {
    throw std::invalid_argument("proxy '" + descriptor.name() +
                                "' has no binding for platform '" + platform +
                                "'");
  }
  const core::SyntacticPlane* syntax =
      descriptor.FindSyntactic(binding->language);
  const core::MethodSyntax* method_syntax =
      syntax ? syntax->FindMethod(method) : nullptr;

  ProxyConfiguration config;
  config.proxy_ = descriptor.name();
  config.method_ = method;
  config.platform_ = platform;
  config.language_ = binding->language;
  config.implementation_class_ = binding->implementation_class;
  config.callback_name_ = spec->callback_name;
  if (method_syntax != nullptr) {
    config.callback_type_ = method_syntax->callback_type;
    config.callback_method_ = method_syntax->callback_method;
    config.return_type_ = method_syntax->return_type;
  }

  for (size_t i = 0; i < spec->parameters.size(); ++i) {
    const core::ParameterSpec& param = spec->parameters[i];
    VariableField field;
    field.name = param.name;
    field.dimension = param.dimension;
    field.description = param.description;
    field.allowed_values = param.allowed_values;
    if (method_syntax != nullptr &&
        i < method_syntax->parameter_types.size()) {
      field.type = method_syntax->parameter_types[i];
    }
    config.variables_.push_back(std::move(field));
  }

  for (const core::PropertySpec& spec_property : binding->properties) {
    PropertyField field;
    field.name = spec_property.name;
    field.type = spec_property.type;
    field.description = spec_property.description;
    field.default_value = spec_property.default_value;
    field.allowed_values = spec_property.allowed_values;
    field.required = spec_property.required;
    config.properties_.push_back(std::move(field));
  }
  return config;
}

bool ProxyConfiguration::SetVariable(const std::string& name,
                                     const std::string& value) {
  for (auto& field : variables_) {
    if (field.name == name) {
      field.value = value;
      return true;
    }
  }
  return false;
}

bool ProxyConfiguration::SetProperty(const std::string& name,
                                     const std::string& value) {
  for (auto& field : properties_) {
    if (field.name == name) {
      field.value = value;
      return true;
    }
  }
  return false;
}

std::string ProxyConfiguration::EffectiveProperty(
    const std::string& name) const {
  for (const auto& field : properties_) {
    if (field.name == name) {
      return field.value.empty() ? field.default_value : field.value;
    }
  }
  return "";
}

std::vector<std::string> ProxyConfiguration::Validate() const {
  std::vector<std::string> problems;
  for (const auto& field : variables_) {
    if (field.value.empty()) {
      problems.push_back("variable '" + field.name + "' has no value");
      continue;
    }
    if (!field.allowed_values.empty() &&
        std::find(field.allowed_values.begin(), field.allowed_values.end(),
                  field.value) == field.allowed_values.end()) {
      problems.push_back("variable '" + field.name + "' value '" +
                         field.value + "' is not allowed");
    }
  }
  for (const auto& field : properties_) {
    const std::string effective =
        field.value.empty() ? field.default_value : field.value;
    if (field.required && effective.empty() && field.type != "handle") {
      problems.push_back("required property '" + field.name + "' is not set");
    }
    if (!effective.empty() && !field.allowed_values.empty() &&
        std::find(field.allowed_values.begin(), field.allowed_values.end(),
                  effective) == field.allowed_values.end()) {
      problems.push_back("property '" + field.name + "' value '" + effective +
                         "' is not allowed");
    }
  }
  return problems;
}

}  // namespace mobivine::plugin
