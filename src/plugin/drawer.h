// The Proxy Drawer (paper §4.2, Figure 7(a)): a store of proxies organized
// as categories with the proxy APIs as items, filtered to what the target
// platform supports. The Eclipse Snippet-Contributor UI is out of scope;
// this is the model it would render, and what the codegen consumes.
#pragma once

#include <string>
#include <vector>

#include "core/descriptor/proxy_descriptor.h"

namespace mobivine::plugin {

struct DrawerItem {
  std::string proxy;   // "Location"
  std::string method;  // "addProximityAlert"
  std::string description;
};

struct DrawerCategory {
  std::string name;  // semantic plane's category ("Location", "Messaging"…)
  std::vector<DrawerItem> items;
};

class ProxyDrawer {
 public:
  /// Build the drawer for one platform: only proxies with a binding plane
  /// for it appear (the S60 drawer has no Call category).
  ProxyDrawer(const core::DescriptorStore& store, std::string platform);

  const std::string& platform() const { return platform_; }
  const std::vector<DrawerCategory>& categories() const { return categories_; }

  [[nodiscard]] const DrawerItem* Find(const std::string& proxy,
                                       const std::string& method) const;
  [[nodiscard]] std::size_t item_count() const;

  /// Plain-text rendering (one line per item), used by the codegen_tool
  /// example and tests.
  [[nodiscard]] std::string Render() const;

 private:
  std::string platform_;
  std::vector<DrawerCategory> categories_;
};

}  // namespace mobivine::plugin
