// Platform Specific Extensions (paper §4.2): packaging the proxy
// implementation artifacts into an application the way each platform
// demands.
//
//  * S60 — the whole application MUST ship as a single MIDlet-suite jar:
//    proxy artifact jars are merged into the application jar, and the .jad
//    descriptor carries the permissions and OTA properties.
//  * Android — proxy jars are absorbed into the project classpath and the
//    manifest gains the required permissions.
//  * WebView — the JS proxy library is added to the page assets and the
//    wrapper objects are listed for addJavaScriptInterface() injection.
#pragma once

#include <string>
#include <vector>

#include "core/descriptor/proxy_descriptor.h"
#include "s60/midlet.h"

namespace mobivine::plugin {

/// In-memory jar analog: named archive with entries.
struct JarEntry {
  std::string path;
  std::size_t size = 0;
};

struct Jar {
  std::string name;
  std::vector<JarEntry> entries;

  [[nodiscard]] bool HasEntry(const std::string& path) const;
  [[nodiscard]] std::size_t TotalSize() const;
};

/// The proxy artifact jars the plugin ships (synthesized from the binding
/// planes' artifact lists).
[[nodiscard]] Jar ArtifactJar(const std::string& artifact_name);

// ---------------------------------------------------------------------------
// S60
// ---------------------------------------------------------------------------

struct S60Package {
  Jar suite_jar;  ///< single merged jar (the platform's hard requirement)
  s60::MidletSuiteDescriptor descriptor;
  std::vector<std::string> warnings;  ///< duplicate entries skipped, ...
};

class S60Packager {
 public:
  explicit S60Packager(const core::DescriptorStore& store) : store_(store) {}

  /// Merge the application jar with every used proxy's S60 artifacts, and
  /// build the .jad with the permissions those proxies need plus the given
  /// OTA properties. Throws std::invalid_argument when a used proxy has no
  /// s60 binding (e.g. "Call").
  [[nodiscard]] S60Package Package(
      const Jar& application_jar, const std::vector<std::string>& used_proxies,
      const std::string& suite_name,
      const std::vector<std::pair<std::string, std::string>>& ota_properties =
          {}) const;

 private:
  const core::DescriptorStore& store_;
};

// ---------------------------------------------------------------------------
// Android
// ---------------------------------------------------------------------------

struct AndroidProject {
  std::string name;
  std::vector<std::string> classpath;             ///< absorbed proxy jars
  std::vector<std::string> manifest_permissions;  ///< uses-permission entries
};

class AndroidPackager {
 public:
  explicit AndroidPackager(const core::DescriptorStore& store)
      : store_(store) {}

  /// Add each used proxy's android artifacts to the classpath and the
  /// required permissions to the manifest (idempotent).
  void Absorb(AndroidProject& project,
              const std::vector<std::string>& used_proxies) const;

 private:
  const core::DescriptorStore& store_;
};

// ---------------------------------------------------------------------------
// WebView
// ---------------------------------------------------------------------------

struct WebViewProject {
  std::string name;
  std::vector<std::string> page_assets;       ///< html/js files
  std::vector<std::string> injected_wrappers; ///< addJavaScriptInterface list
};

class WebViewPackager {
 public:
  explicit WebViewPackager(const core::DescriptorStore& store)
      : store_(store) {}

  /// Add mobivine-proxies.js to the page assets and list the wrapper
  /// factories to inject for each used proxy (idempotent).
  void Absorb(WebViewProject& project,
              const std::vector<std::string>& used_proxies) const;

 private:
  const core::DescriptorStore& store_;
};

// ---------------------------------------------------------------------------
// iPhone (extension platform)
// ---------------------------------------------------------------------------

/// An Xcode-project analog: static proxy libraries linked into the app
/// bundle. iPhone OS 2009 has no manifest permissions — consent is
/// runtime dialogs — so only the link set is managed.
struct IPhoneAppBundle {
  std::string name;
  std::vector<std::string> linked_libraries;
};

class IPhonePackager {
 public:
  explicit IPhonePackager(const core::DescriptorStore& store)
      : store_(store) {}

  /// Link each used proxy's static library into the bundle (idempotent).
  void Absorb(IPhoneAppBundle& bundle,
              const std::vector<std::string>& used_proxies) const;

 private:
  const core::DescriptorStore& store_;
};

/// The platform permissions a proxy needs ("Location" on "android" ->
/// ACCESS_FINE_LOCATION; on "s60" -> javax.microedition.location.Location;
/// always empty on "iphone", whose 2009 model is runtime consent dialogs).
[[nodiscard]] std::vector<std::string> RequiredPermissions(
    const std::string& proxy, const std::string& platform);

}  // namespace mobivine::plugin
