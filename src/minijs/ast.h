// MiniJS abstract syntax tree.
//
// Plain struct hierarchy with a `kind` discriminator; the interpreter
// switches on kind and static_casts — no virtual evaluation methods, so
// the AST stays a passive data structure.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace mobivine::minijs {

// --------------------------------------------------------------------------
// Expressions
// --------------------------------------------------------------------------

enum class ExprKind {
  kNumber,
  kString,
  kBool,
  kNull,
  kUndefined,
  kIdentifier,
  kThis,
  kArray,
  kObjectLiteral,
  kFunction,     // function expression
  kUnary,        // ! - typeof and prefix ++/--
  kBinary,       // arithmetic / comparison
  kLogical,      // && || (short-circuit)
  kConditional,  // ?:
  kAssign,       // = += -=
  kCall,
  kNew,
  kMember,   // obj.name
  kIndex,    // obj[expr]
  kPostfix,  // x++ x--
};

struct Expr {
  ExprKind kind;
  int line;
  virtual ~Expr() = default;

 protected:
  Expr(ExprKind k, int l) : kind(k), line(l) {}
};
using ExprPtr = std::unique_ptr<Expr>;

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct NumberExpr : Expr {
  double value;
  NumberExpr(double v, int l) : Expr(ExprKind::kNumber, l), value(v) {}
};

struct StringExpr : Expr {
  std::string value;
  StringExpr(std::string v, int l)
      : Expr(ExprKind::kString, l), value(std::move(v)) {}
};

struct BoolExpr : Expr {
  bool value;
  BoolExpr(bool v, int l) : Expr(ExprKind::kBool, l), value(v) {}
};

struct NullExpr : Expr {
  explicit NullExpr(int l) : Expr(ExprKind::kNull, l) {}
};

struct UndefinedExpr : Expr {
  explicit UndefinedExpr(int l) : Expr(ExprKind::kUndefined, l) {}
};

struct IdentifierExpr : Expr {
  std::string name;
  IdentifierExpr(std::string n, int l)
      : Expr(ExprKind::kIdentifier, l), name(std::move(n)) {}
};

struct ThisExpr : Expr {
  explicit ThisExpr(int l) : Expr(ExprKind::kThis, l) {}
};

struct ArrayExpr : Expr {
  std::vector<ExprPtr> elements;
  explicit ArrayExpr(int l) : Expr(ExprKind::kArray, l) {}
};

struct ObjectLiteralExpr : Expr {
  std::vector<std::pair<std::string, ExprPtr>> properties;
  explicit ObjectLiteralExpr(int l) : Expr(ExprKind::kObjectLiteral, l) {}
};

struct FunctionExpr : Expr {
  std::string name;  // empty for anonymous
  std::vector<std::string> params;
  std::vector<StmtPtr> body;
  explicit FunctionExpr(int l) : Expr(ExprKind::kFunction, l) {}
};

enum class UnaryOp { kNot, kNegate, kTypeof, kPreIncrement, kPreDecrement };

struct UnaryExpr : Expr {
  UnaryOp op;
  ExprPtr operand;
  UnaryExpr(UnaryOp o, ExprPtr e, int l)
      : Expr(ExprKind::kUnary, l), op(o), operand(std::move(e)) {}
};

enum class BinaryOp {
  kAdd,
  kSubtract,
  kMultiply,
  kDivide,
  kModulo,
  kEq,
  kStrictEq,
  kNotEq,
  kStrictNotEq,
  kLess,
  kLessEq,
  kGreater,
  kGreaterEq,
};

struct BinaryExpr : Expr {
  BinaryOp op;
  ExprPtr left;
  ExprPtr right;
  BinaryExpr(BinaryOp o, ExprPtr a, ExprPtr b, int l)
      : Expr(ExprKind::kBinary, l),
        op(o),
        left(std::move(a)),
        right(std::move(b)) {}
};

enum class LogicalOp { kAnd, kOr };

struct LogicalExpr : Expr {
  LogicalOp op;
  ExprPtr left;
  ExprPtr right;
  LogicalExpr(LogicalOp o, ExprPtr a, ExprPtr b, int l)
      : Expr(ExprKind::kLogical, l),
        op(o),
        left(std::move(a)),
        right(std::move(b)) {}
};

struct ConditionalExpr : Expr {
  ExprPtr condition;
  ExprPtr then_value;
  ExprPtr else_value;
  ConditionalExpr(ExprPtr c, ExprPtr t, ExprPtr e, int l)
      : Expr(ExprKind::kConditional, l),
        condition(std::move(c)),
        then_value(std::move(t)),
        else_value(std::move(e)) {}
};

enum class AssignOp { kAssign, kAddAssign, kSubtractAssign };

struct AssignExpr : Expr {
  AssignOp op;
  ExprPtr target;  // IdentifierExpr, MemberExpr or IndexExpr
  ExprPtr value;
  AssignExpr(AssignOp o, ExprPtr t, ExprPtr v, int l)
      : Expr(ExprKind::kAssign, l),
        op(o),
        target(std::move(t)),
        value(std::move(v)) {}
};

struct CallExpr : Expr {
  ExprPtr callee;
  std::vector<ExprPtr> arguments;
  CallExpr(ExprPtr c, int l) : Expr(ExprKind::kCall, l), callee(std::move(c)) {}
};

struct NewExpr : Expr {
  ExprPtr callee;
  std::vector<ExprPtr> arguments;
  NewExpr(ExprPtr c, int l) : Expr(ExprKind::kNew, l), callee(std::move(c)) {}
};

struct MemberExpr : Expr {
  ExprPtr object;
  std::string property;
  MemberExpr(ExprPtr o, std::string p, int l)
      : Expr(ExprKind::kMember, l),
        object(std::move(o)),
        property(std::move(p)) {}
};

struct IndexExpr : Expr {
  ExprPtr object;
  ExprPtr index;
  IndexExpr(ExprPtr o, ExprPtr i, int l)
      : Expr(ExprKind::kIndex, l),
        object(std::move(o)),
        index(std::move(i)) {}
};

enum class PostfixOp { kIncrement, kDecrement };

struct PostfixExpr : Expr {
  PostfixOp op;
  ExprPtr target;
  PostfixExpr(PostfixOp o, ExprPtr t, int l)
      : Expr(ExprKind::kPostfix, l), op(o), target(std::move(t)) {}
};

// --------------------------------------------------------------------------
// Statements
// --------------------------------------------------------------------------

enum class StmtKind {
  kExpression,
  kVar,
  kFunctionDecl,
  kReturn,
  kIf,
  kWhile,
  kFor,
  kBlock,
  kBreak,
  kContinue,
  kThrow,
  kTry,
};

struct Stmt {
  StmtKind kind;
  int line;
  virtual ~Stmt() = default;

 protected:
  Stmt(StmtKind k, int l) : kind(k), line(l) {}
};

struct ExpressionStmt : Stmt {
  ExprPtr expression;
  ExpressionStmt(ExprPtr e, int l)
      : Stmt(StmtKind::kExpression, l), expression(std::move(e)) {}
};

struct VarStmt : Stmt {
  /// One statement may declare several variables: var a = 1, b;
  std::vector<std::pair<std::string, ExprPtr>> declarations;
  explicit VarStmt(int l) : Stmt(StmtKind::kVar, l) {}
};

struct FunctionDeclStmt : Stmt {
  std::unique_ptr<FunctionExpr> function;  // carries the name
  FunctionDeclStmt(std::unique_ptr<FunctionExpr> f, int l)
      : Stmt(StmtKind::kFunctionDecl, l), function(std::move(f)) {}
};

struct ReturnStmt : Stmt {
  ExprPtr value;  // may be null (return;)
  ReturnStmt(ExprPtr v, int l) : Stmt(StmtKind::kReturn, l), value(std::move(v)) {}
};

struct IfStmt : Stmt {
  ExprPtr condition;
  StmtPtr then_branch;
  StmtPtr else_branch;  // may be null
  IfStmt(ExprPtr c, StmtPtr t, StmtPtr e, int l)
      : Stmt(StmtKind::kIf, l),
        condition(std::move(c)),
        then_branch(std::move(t)),
        else_branch(std::move(e)) {}
};

struct WhileStmt : Stmt {
  ExprPtr condition;
  StmtPtr body;
  WhileStmt(ExprPtr c, StmtPtr b, int l)
      : Stmt(StmtKind::kWhile, l),
        condition(std::move(c)),
        body(std::move(b)) {}
};

struct ForStmt : Stmt {
  StmtPtr init;       // VarStmt or ExpressionStmt; may be null
  ExprPtr condition;  // may be null (infinite)
  ExprPtr update;     // may be null
  StmtPtr body;
  explicit ForStmt(int l) : Stmt(StmtKind::kFor, l) {}
};

struct BlockStmt : Stmt {
  std::vector<StmtPtr> statements;
  explicit BlockStmt(int l) : Stmt(StmtKind::kBlock, l) {}
};

struct BreakStmt : Stmt {
  explicit BreakStmt(int l) : Stmt(StmtKind::kBreak, l) {}
};

struct ContinueStmt : Stmt {
  explicit ContinueStmt(int l) : Stmt(StmtKind::kContinue, l) {}
};

struct ThrowStmt : Stmt {
  ExprPtr value;
  ThrowStmt(ExprPtr v, int l) : Stmt(StmtKind::kThrow, l), value(std::move(v)) {}
};

struct TryStmt : Stmt {
  StmtPtr try_block;
  std::string catch_name;  // empty when no catch clause
  StmtPtr catch_block;     // may be null
  StmtPtr finally_block;   // may be null
  explicit TryStmt(int l) : Stmt(StmtKind::kTry, l) {}
};

/// A parsed program: top-level statements.
struct Program {
  std::vector<StmtPtr> statements;
};

}  // namespace mobivine::minijs
