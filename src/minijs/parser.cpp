#include "minijs/parser.h"

#include "minijs/lexer.h"

namespace mobivine::minijs {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Program Run() {
    Program program;
    while (!Check(TokenType::kEof)) {
      program.statements.push_back(ParseStatement());
    }
    return program;
  }

 private:
  // --- token plumbing ----------------------------------------------------
  const Token& Peek(size_t ahead = 0) const {
    size_t index = pos_ + ahead;
    if (index >= tokens_.size()) index = tokens_.size() - 1;  // kEof
    return tokens_[index];
  }
  bool Check(TokenType type) const { return Peek().type == type; }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool Match(TokenType type) {
    if (!Check(type)) return false;
    Advance();
    return true;
  }
  const Token& Expect(TokenType type, const std::string& context) {
    if (!Check(type)) {
      Fail("expected '" + std::string(ToString(type)) + "' " + context +
           ", found '" +
           (Peek().text.empty() ? ToString(Peek().type) : Peek().text) + "'");
    }
    return Advance();
  }
  [[noreturn]] void Fail(const std::string& message) const {
    throw SyntaxError(message, Peek().line, Peek().column);
  }
  int Line() const { return Peek().line; }

  // --- statements ---------------------------------------------------------
  StmtPtr ParseStatement() {
    switch (Peek().type) {
      case TokenType::kLeftBrace:
        return ParseBlock();
      case TokenType::kVar:
        return ParseVar();
      case TokenType::kFunction:
        return ParseFunctionDecl();
      case TokenType::kReturn:
        return ParseReturn();
      case TokenType::kIf:
        return ParseIf();
      case TokenType::kWhile:
        return ParseWhile();
      case TokenType::kFor:
        return ParseFor();
      case TokenType::kBreak: {
        int line = Line();
        Advance();
        Expect(TokenType::kSemicolon, "after 'break'");
        return std::make_unique<BreakStmt>(line);
      }
      case TokenType::kContinue: {
        int line = Line();
        Advance();
        Expect(TokenType::kSemicolon, "after 'continue'");
        return std::make_unique<ContinueStmt>(line);
      }
      case TokenType::kThrow: {
        int line = Line();
        Advance();
        ExprPtr value = ParseExpression();
        Expect(TokenType::kSemicolon, "after 'throw' expression");
        return std::make_unique<ThrowStmt>(std::move(value), line);
      }
      case TokenType::kTry:
        return ParseTry();
      case TokenType::kSemicolon: {  // empty statement
        int line = Line();
        Advance();
        auto block = std::make_unique<BlockStmt>(line);
        return block;
      }
      default: {
        int line = Line();
        ExprPtr expression = ParseExpression();
        Expect(TokenType::kSemicolon, "after expression statement");
        return std::make_unique<ExpressionStmt>(std::move(expression), line);
      }
    }
  }

  StmtPtr ParseBlock() {
    int line = Line();
    Expect(TokenType::kLeftBrace, "to open block");
    auto block = std::make_unique<BlockStmt>(line);
    while (!Check(TokenType::kRightBrace)) {
      if (Check(TokenType::kEof)) Fail("unterminated block");
      block->statements.push_back(ParseStatement());
    }
    Expect(TokenType::kRightBrace, "to close block");
    return block;
  }

  StmtPtr ParseVar() {
    int line = Line();
    Expect(TokenType::kVar, "");
    auto stmt = std::make_unique<VarStmt>(line);
    while (true) {
      std::string name =
          Expect(TokenType::kIdentifier, "in var declaration").text;
      ExprPtr init;
      if (Match(TokenType::kAssign)) init = ParseAssignment();
      stmt->declarations.emplace_back(std::move(name), std::move(init));
      if (!Match(TokenType::kComma)) break;
    }
    Expect(TokenType::kSemicolon, "after var declaration");
    return stmt;
  }

  std::unique_ptr<FunctionExpr> ParseFunctionRest(bool require_name) {
    int line = Line();
    auto function = std::make_unique<FunctionExpr>(line);
    if (Check(TokenType::kIdentifier)) {
      function->name = Advance().text;
    } else if (require_name) {
      Fail("function declaration requires a name");
    }
    Expect(TokenType::kLeftParen, "after function name");
    if (!Check(TokenType::kRightParen)) {
      while (true) {
        function->params.push_back(
            Expect(TokenType::kIdentifier, "in parameter list").text);
        if (!Match(TokenType::kComma)) break;
      }
    }
    Expect(TokenType::kRightParen, "after parameter list");
    Expect(TokenType::kLeftBrace, "to open function body");
    while (!Check(TokenType::kRightBrace)) {
      if (Check(TokenType::kEof)) Fail("unterminated function body");
      function->body.push_back(ParseStatement());
    }
    Expect(TokenType::kRightBrace, "to close function body");
    return function;
  }

  StmtPtr ParseFunctionDecl() {
    int line = Line();
    Expect(TokenType::kFunction, "");
    auto function = ParseFunctionRest(/*require_name=*/true);
    return std::make_unique<FunctionDeclStmt>(std::move(function), line);
  }

  StmtPtr ParseReturn() {
    int line = Line();
    Expect(TokenType::kReturn, "");
    ExprPtr value;
    if (!Check(TokenType::kSemicolon)) value = ParseExpression();
    Expect(TokenType::kSemicolon, "after return");
    return std::make_unique<ReturnStmt>(std::move(value), line);
  }

  StmtPtr ParseIf() {
    int line = Line();
    Expect(TokenType::kIf, "");
    Expect(TokenType::kLeftParen, "after 'if'");
    ExprPtr condition = ParseExpression();
    Expect(TokenType::kRightParen, "after if condition");
    StmtPtr then_branch = ParseStatement();
    StmtPtr else_branch;
    if (Match(TokenType::kElse)) else_branch = ParseStatement();
    return std::make_unique<IfStmt>(std::move(condition),
                                    std::move(then_branch),
                                    std::move(else_branch), line);
  }

  StmtPtr ParseWhile() {
    int line = Line();
    Expect(TokenType::kWhile, "");
    Expect(TokenType::kLeftParen, "after 'while'");
    ExprPtr condition = ParseExpression();
    Expect(TokenType::kRightParen, "after while condition");
    StmtPtr body = ParseStatement();
    return std::make_unique<WhileStmt>(std::move(condition), std::move(body),
                                       line);
  }

  StmtPtr ParseFor() {
    int line = Line();
    Expect(TokenType::kFor, "");
    Expect(TokenType::kLeftParen, "after 'for'");
    auto stmt = std::make_unique<ForStmt>(line);
    if (Check(TokenType::kVar)) {
      stmt->init = ParseVar();  // consumes its ';'
    } else if (Match(TokenType::kSemicolon)) {
      // no init
    } else {
      int init_line = Line();
      ExprPtr init = ParseExpression();
      Expect(TokenType::kSemicolon, "after for-init");
      stmt->init = std::make_unique<ExpressionStmt>(std::move(init), init_line);
    }
    if (!Check(TokenType::kSemicolon)) stmt->condition = ParseExpression();
    Expect(TokenType::kSemicolon, "after for-condition");
    if (!Check(TokenType::kRightParen)) stmt->update = ParseExpression();
    Expect(TokenType::kRightParen, "after for clauses");
    stmt->body = ParseStatement();
    return stmt;
  }

  StmtPtr ParseTry() {
    int line = Line();
    Expect(TokenType::kTry, "");
    auto stmt = std::make_unique<TryStmt>(line);
    stmt->try_block = ParseBlock();
    if (Match(TokenType::kCatch)) {
      Expect(TokenType::kLeftParen, "after 'catch'");
      stmt->catch_name =
          Expect(TokenType::kIdentifier, "as catch binding").text;
      Expect(TokenType::kRightParen, "after catch binding");
      stmt->catch_block = ParseBlock();
    }
    if (Match(TokenType::kFinally)) {
      stmt->finally_block = ParseBlock();
    }
    if (!stmt->catch_block && !stmt->finally_block) {
      Fail("try requires catch or finally");
    }
    return stmt;
  }

  // --- expressions ----------------------------------------------------
  ExprPtr ParseExpression() { return ParseAssignment(); }

  ExprPtr ParseAssignment() {
    ExprPtr left = ParseConditional();
    AssignOp op;
    if (Check(TokenType::kAssign)) {
      op = AssignOp::kAssign;
    } else if (Check(TokenType::kPlusAssign)) {
      op = AssignOp::kAddAssign;
    } else if (Check(TokenType::kMinusAssign)) {
      op = AssignOp::kSubtractAssign;
    } else {
      return left;
    }
    if (left->kind != ExprKind::kIdentifier &&
        left->kind != ExprKind::kMember && left->kind != ExprKind::kIndex) {
      Fail("invalid assignment target");
    }
    int line = Line();
    Advance();
    ExprPtr value = ParseAssignment();
    return std::make_unique<AssignExpr>(op, std::move(left), std::move(value),
                                        line);
  }

  ExprPtr ParseConditional() {
    ExprPtr condition = ParseLogicalOr();
    if (!Match(TokenType::kQuestion)) return condition;
    int line = Line();
    ExprPtr then_value = ParseAssignment();
    Expect(TokenType::kColon, "in conditional expression");
    ExprPtr else_value = ParseAssignment();
    return std::make_unique<ConditionalExpr>(std::move(condition),
                                             std::move(then_value),
                                             std::move(else_value), line);
  }

  ExprPtr ParseLogicalOr() {
    ExprPtr left = ParseLogicalAnd();
    while (Check(TokenType::kOrOr)) {
      int line = Line();
      Advance();
      ExprPtr right = ParseLogicalAnd();
      left = std::make_unique<LogicalExpr>(LogicalOp::kOr, std::move(left),
                                           std::move(right), line);
    }
    return left;
  }

  ExprPtr ParseLogicalAnd() {
    ExprPtr left = ParseEquality();
    while (Check(TokenType::kAndAnd)) {
      int line = Line();
      Advance();
      ExprPtr right = ParseEquality();
      left = std::make_unique<LogicalExpr>(LogicalOp::kAnd, std::move(left),
                                           std::move(right), line);
    }
    return left;
  }

  ExprPtr ParseEquality() {
    ExprPtr left = ParseRelational();
    while (true) {
      BinaryOp op;
      if (Check(TokenType::kEq)) {
        op = BinaryOp::kEq;
      } else if (Check(TokenType::kStrictEq)) {
        op = BinaryOp::kStrictEq;
      } else if (Check(TokenType::kNotEq)) {
        op = BinaryOp::kNotEq;
      } else if (Check(TokenType::kStrictNotEq)) {
        op = BinaryOp::kStrictNotEq;
      } else {
        return left;
      }
      int line = Line();
      Advance();
      ExprPtr right = ParseRelational();
      left = std::make_unique<BinaryExpr>(op, std::move(left),
                                          std::move(right), line);
    }
  }

  ExprPtr ParseRelational() {
    ExprPtr left = ParseAdditive();
    while (true) {
      BinaryOp op;
      if (Check(TokenType::kLess)) {
        op = BinaryOp::kLess;
      } else if (Check(TokenType::kLessEq)) {
        op = BinaryOp::kLessEq;
      } else if (Check(TokenType::kGreater)) {
        op = BinaryOp::kGreater;
      } else if (Check(TokenType::kGreaterEq)) {
        op = BinaryOp::kGreaterEq;
      } else {
        return left;
      }
      int line = Line();
      Advance();
      ExprPtr right = ParseAdditive();
      left = std::make_unique<BinaryExpr>(op, std::move(left),
                                          std::move(right), line);
    }
  }

  ExprPtr ParseAdditive() {
    ExprPtr left = ParseMultiplicative();
    while (Check(TokenType::kPlus) || Check(TokenType::kMinus)) {
      BinaryOp op = Check(TokenType::kPlus) ? BinaryOp::kAdd
                                            : BinaryOp::kSubtract;
      int line = Line();
      Advance();
      ExprPtr right = ParseMultiplicative();
      left = std::make_unique<BinaryExpr>(op, std::move(left),
                                          std::move(right), line);
    }
    return left;
  }

  ExprPtr ParseMultiplicative() {
    ExprPtr left = ParseUnary();
    while (Check(TokenType::kStar) || Check(TokenType::kSlash) ||
           Check(TokenType::kPercent)) {
      BinaryOp op = Check(TokenType::kStar)
                        ? BinaryOp::kMultiply
                        : (Check(TokenType::kSlash) ? BinaryOp::kDivide
                                                    : BinaryOp::kModulo);
      int line = Line();
      Advance();
      ExprPtr right = ParseUnary();
      left = std::make_unique<BinaryExpr>(op, std::move(left),
                                          std::move(right), line);
    }
    return left;
  }

  ExprPtr ParseUnary() {
    int line = Line();
    if (Match(TokenType::kBang)) {
      return std::make_unique<UnaryExpr>(UnaryOp::kNot, ParseUnary(), line);
    }
    if (Match(TokenType::kMinus)) {
      return std::make_unique<UnaryExpr>(UnaryOp::kNegate, ParseUnary(), line);
    }
    if (Match(TokenType::kTypeof)) {
      return std::make_unique<UnaryExpr>(UnaryOp::kTypeof, ParseUnary(), line);
    }
    if (Match(TokenType::kPlusPlus)) {
      return std::make_unique<UnaryExpr>(UnaryOp::kPreIncrement, ParseUnary(),
                                         line);
    }
    if (Match(TokenType::kMinusMinus)) {
      return std::make_unique<UnaryExpr>(UnaryOp::kPreDecrement, ParseUnary(),
                                         line);
    }
    return ParsePostfix();
  }

  ExprPtr ParsePostfix() {
    ExprPtr expression = ParseCallChain(ParsePrimary());
    if (Check(TokenType::kPlusPlus) || Check(TokenType::kMinusMinus)) {
      PostfixOp op = Check(TokenType::kPlusPlus) ? PostfixOp::kIncrement
                                                 : PostfixOp::kDecrement;
      int line = Line();
      if (expression->kind != ExprKind::kIdentifier &&
          expression->kind != ExprKind::kMember &&
          expression->kind != ExprKind::kIndex) {
        Fail("invalid increment/decrement target");
      }
      Advance();
      expression =
          std::make_unique<PostfixExpr>(op, std::move(expression), line);
    }
    return expression;
  }

  ExprPtr ParseCallChain(ExprPtr base) {
    while (true) {
      if (Check(TokenType::kLeftParen)) {
        int line = Line();
        Advance();
        auto call = std::make_unique<CallExpr>(std::move(base), line);
        if (!Check(TokenType::kRightParen)) {
          while (true) {
            call->arguments.push_back(ParseAssignment());
            if (!Match(TokenType::kComma)) break;
          }
        }
        Expect(TokenType::kRightParen, "after call arguments");
        base = std::move(call);
      } else if (Check(TokenType::kDot)) {
        int line = Line();
        Advance();
        std::string name =
            Expect(TokenType::kIdentifier, "after '.'").text;
        base = std::make_unique<MemberExpr>(std::move(base), std::move(name),
                                            line);
      } else if (Check(TokenType::kLeftBracket)) {
        int line = Line();
        Advance();
        ExprPtr index = ParseExpression();
        Expect(TokenType::kRightBracket, "after index expression");
        base = std::make_unique<IndexExpr>(std::move(base), std::move(index),
                                           line);
      } else {
        return base;
      }
    }
  }

  ExprPtr ParsePrimary() {
    int line = Line();
    switch (Peek().type) {
      case TokenType::kNumber: {
        double value = Peek().number;
        Advance();
        return std::make_unique<NumberExpr>(value, line);
      }
      case TokenType::kString: {
        std::string value = Peek().text;
        Advance();
        return std::make_unique<StringExpr>(std::move(value), line);
      }
      case TokenType::kTrue:
        Advance();
        return std::make_unique<BoolExpr>(true, line);
      case TokenType::kFalse:
        Advance();
        return std::make_unique<BoolExpr>(false, line);
      case TokenType::kNull:
        Advance();
        return std::make_unique<NullExpr>(line);
      case TokenType::kUndefined:
        Advance();
        return std::make_unique<UndefinedExpr>(line);
      case TokenType::kThis:
        Advance();
        return std::make_unique<ThisExpr>(line);
      case TokenType::kIdentifier: {
        std::string name = Peek().text;
        Advance();
        return std::make_unique<IdentifierExpr>(std::move(name), line);
      }
      case TokenType::kLeftParen: {
        Advance();
        ExprPtr inner = ParseExpression();
        Expect(TokenType::kRightParen, "after parenthesized expression");
        return inner;
      }
      case TokenType::kLeftBracket: {
        Advance();
        auto array = std::make_unique<ArrayExpr>(line);
        if (!Check(TokenType::kRightBracket)) {
          while (true) {
            array->elements.push_back(ParseAssignment());
            if (!Match(TokenType::kComma)) break;
          }
        }
        Expect(TokenType::kRightBracket, "after array literal");
        return array;
      }
      case TokenType::kLeftBrace: {
        Advance();
        auto object = std::make_unique<ObjectLiteralExpr>(line);
        if (!Check(TokenType::kRightBrace)) {
          while (true) {
            std::string key;
            if (Check(TokenType::kIdentifier) || Check(TokenType::kString)) {
              key = Peek().text;
              Advance();
            } else {
              Fail("expected property name in object literal");
            }
            Expect(TokenType::kColon, "after property name");
            object->properties.emplace_back(std::move(key), ParseAssignment());
            if (!Match(TokenType::kComma)) break;
          }
        }
        Expect(TokenType::kRightBrace, "after object literal");
        return object;
      }
      case TokenType::kFunction: {
        Advance();
        return ParseFunctionRest(/*require_name=*/false);
      }
      case TokenType::kNew: {
        Advance();
        // new Callee(args) — callee may be a member chain but the argument
        // list binds to `new`.
        ExprPtr callee = ParsePrimary();
        while (Check(TokenType::kDot)) {
          int member_line = Line();
          Advance();
          std::string name = Expect(TokenType::kIdentifier, "after '.'").text;
          callee = std::make_unique<MemberExpr>(std::move(callee),
                                                std::move(name), member_line);
        }
        auto expr = std::make_unique<NewExpr>(std::move(callee), line);
        if (Match(TokenType::kLeftParen)) {
          if (!Check(TokenType::kRightParen)) {
            while (true) {
              expr->arguments.push_back(ParseAssignment());
              if (!Match(TokenType::kComma)) break;
            }
          }
          Expect(TokenType::kRightParen, "after constructor arguments");
        }
        return expr;
      }
      default:
        Fail(std::string("unexpected token '") +
             (Peek().text.empty() ? ToString(Peek().type) : Peek().text) +
             "'");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Program ParseProgram(std::string_view source) {
  return Parser(Tokenize(source)).Run();
}

}  // namespace mobivine::minijs
