// Runtime values for MiniJS.
//
// Value is a small tagged union: undefined, null, boolean, number, string,
// object (shared, mutable — includes arrays) and function (script closure
// or C++ host function). Host objects are plain Objects whose properties
// are host functions, which keeps the bridge surface uniform.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace mobivine::minijs {

class Interpreter;
class Object;
struct Function;
struct FunctionExpr;
class Environment;

class Value {
 public:
  enum class Type {
    kUndefined,
    kNull,
    kBool,
    kNumber,
    kString,
    kObject,
    kFunction
  };

  Value() : data_(UndefinedTag{}) {}
  static Value Undefined() { return Value(); }
  static Value Null() {
    Value v;
    v.data_ = NullTag{};
    return v;
  }
  static Value Boolean(bool b) {
    Value v;
    v.data_ = b;
    return v;
  }
  static Value Number(double d) {
    Value v;
    v.data_ = d;
    return v;
  }
  static Value String(std::string s) {
    Value v;
    v.data_ = std::move(s);
    return v;
  }
  static Value Obj(std::shared_ptr<Object> o) {
    Value v;
    v.data_ = std::move(o);
    return v;
  }
  static Value Func(std::shared_ptr<Function> f) {
    Value v;
    v.data_ = std::move(f);
    return v;
  }

  Type type() const {
    switch (data_.index()) {
      case 0: return Type::kUndefined;
      case 1: return Type::kNull;
      case 2: return Type::kBool;
      case 3: return Type::kNumber;
      case 4: return Type::kString;
      case 5: return Type::kObject;
      case 6: return Type::kFunction;
    }
    return Type::kUndefined;
  }

  bool is_undefined() const { return type() == Type::kUndefined; }
  bool is_null() const { return type() == Type::kNull; }
  bool is_nullish() const { return is_undefined() || is_null(); }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_number() const { return type() == Type::kNumber; }
  bool is_string() const { return type() == Type::kString; }
  bool is_object() const { return type() == Type::kObject; }
  bool is_function() const { return type() == Type::kFunction; }

  bool as_bool() const { return std::get<bool>(data_); }
  double as_number() const { return std::get<double>(data_); }
  const std::string& as_string() const { return std::get<std::string>(data_); }
  const std::shared_ptr<Object>& as_object() const {
    return std::get<std::shared_ptr<Object>>(data_);
  }
  const std::shared_ptr<Function>& as_function() const {
    return std::get<std::shared_ptr<Function>>(data_);
  }

  /// JS truthiness.
  [[nodiscard]] bool Truthy() const;
  /// Numeric coercion (undefined -> NaN, null -> 0, "12" -> 12, ...).
  [[nodiscard]] double ToNumber() const;
  /// Display string ("[object]", "function f", "1.5", ...).
  [[nodiscard]] std::string ToDisplayString() const;
  /// typeof operator result.
  [[nodiscard]] const char* TypeName() const;

  /// === / !== semantics.
  [[nodiscard]] bool StrictEquals(const Value& other) const;
  /// == / != (simplified coercion: number<->string, bool->number,
  /// null==undefined).
  [[nodiscard]] bool LooseEquals(const Value& other) const;

 private:
  struct UndefinedTag {};
  struct NullTag {};
  std::variant<UndefinedTag, NullTag, bool, double, std::string,
               std::shared_ptr<Object>, std::shared_ptr<Function>>
      data_;
};

/// A mutable object. Arrays are Objects with is_array() true and dense
/// element storage; named properties coexist (e.g. custom fields).
class Object {
 public:
  Object() = default;
  static std::shared_ptr<Object> Make() { return std::make_shared<Object>(); }
  static std::shared_ptr<Object> MakeArray() {
    auto o = std::make_shared<Object>();
    o->is_array_ = true;
    return o;
  }

  bool is_array() const { return is_array_; }
  std::vector<Value>& elements() { return elements_; }
  const std::vector<Value>& elements() const { return elements_; }

  [[nodiscard]] bool Has(const std::string& name) const {
    return properties_.count(name) > 0;
  }
  [[nodiscard]] Value Get(const std::string& name) const {
    auto it = properties_.find(name);
    return it == properties_.end() ? Value::Undefined() : it->second;
  }
  void Set(const std::string& name, Value value) {
    properties_[name] = std::move(value);
  }
  const std::map<std::string, Value>& properties() const {
    return properties_;
  }

  /// Diagnostic tag ("SmsWrapper", "Error", ...) set by constructors and
  /// the host bridge.
  const std::string& class_name() const { return class_name_; }
  void set_class_name(std::string name) { class_name_ = std::move(name); }

 private:
  bool is_array_ = false;
  std::vector<Value> elements_;
  std::map<std::string, Value> properties_;
  std::string class_name_;
};

/// Host function signature: (interpreter, this, args) -> value.
using HostFn =
    std::function<Value(Interpreter&, const Value&, std::vector<Value>&)>;

/// A callable: exactly one of {script closure, host function} is set.
struct Function {
  std::string name;
  // Script function: AST node (owned by the interpreter's loaded programs)
  // plus captured environment.
  const FunctionExpr* decl = nullptr;
  std::shared_ptr<Environment> closure;
  // Host function.
  HostFn host;

  bool is_host() const { return static_cast<bool>(host); }
};

/// Convenience: build a host-function value.
[[nodiscard]] Value MakeHostFunction(std::string name, HostFn fn);

/// Convenience: build an Error-like object {name, message, code}.
[[nodiscard]] std::shared_ptr<Object> MakeErrorObject(const std::string& name,
                                                      const std::string& message,
                                                      int code = 0);

}  // namespace mobivine::minijs
