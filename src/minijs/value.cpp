#include "minijs/value.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "support/strings.h"

namespace mobivine::minijs {

bool Value::Truthy() const {
  switch (type()) {
    case Type::kUndefined:
    case Type::kNull:
      return false;
    case Type::kBool:
      return as_bool();
    case Type::kNumber:
      return as_number() != 0.0 && !std::isnan(as_number());
    case Type::kString:
      return !as_string().empty();
    case Type::kObject:
    case Type::kFunction:
      return true;
  }
  return false;
}

double Value::ToNumber() const {
  switch (type()) {
    case Type::kUndefined:
      return std::nan("");
    case Type::kNull:
      return 0.0;
    case Type::kBool:
      return as_bool() ? 1.0 : 0.0;
    case Type::kNumber:
      return as_number();
    case Type::kString: {
      double out = 0.0;
      if (support::ParseDouble(as_string(), out)) return out;
      return std::nan("");
    }
    case Type::kObject:
    case Type::kFunction:
      return std::nan("");
  }
  return std::nan("");
}

std::string Value::ToDisplayString() const {
  switch (type()) {
    case Type::kUndefined:
      return "undefined";
    case Type::kNull:
      return "null";
    case Type::kBool:
      return as_bool() ? "true" : "false";
    case Type::kNumber: {
      double d = as_number();
      if (std::isnan(d)) return "NaN";
      // Integers print without a decimal point, like JS.
      if (d == static_cast<long long>(d) && std::abs(d) < 1e15) {
        return std::to_string(static_cast<long long>(d));
      }
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%g", d);
      return buffer;
    }
    case Type::kString:
      return as_string();
    case Type::kObject: {
      const auto& object = as_object();
      if (object->is_array()) {
        std::ostringstream out;
        for (size_t i = 0; i < object->elements().size(); ++i) {
          if (i) out << ',';
          out << object->elements()[i].ToDisplayString();
        }
        return out.str();
      }
      if (object->Has("message")) {
        // Error-like objects display name: message.
        std::string name = object->Get("name").ToDisplayString();
        if (name == "undefined") name = "Error";
        return name + ": " + object->Get("message").ToDisplayString();
      }
      return object->class_name().empty()
                 ? "[object]"
                 : "[object " + object->class_name() + "]";
    }
    case Type::kFunction:
      return "function " + as_function()->name;
  }
  return "?";
}

const char* Value::TypeName() const {
  switch (type()) {
    case Type::kUndefined:
      return "undefined";
    case Type::kNull:
      return "object";  // JS quirk: typeof null === "object"
    case Type::kBool:
      return "boolean";
    case Type::kNumber:
      return "number";
    case Type::kString:
      return "string";
    case Type::kObject:
      return "object";
    case Type::kFunction:
      return "function";
  }
  return "undefined";
}

bool Value::StrictEquals(const Value& other) const {
  if (type() != other.type()) return false;
  switch (type()) {
    case Type::kUndefined:
    case Type::kNull:
      return true;
    case Type::kBool:
      return as_bool() == other.as_bool();
    case Type::kNumber:
      return as_number() == other.as_number();
    case Type::kString:
      return as_string() == other.as_string();
    case Type::kObject:
      return as_object() == other.as_object();
    case Type::kFunction:
      return as_function() == other.as_function();
  }
  return false;
}

bool Value::LooseEquals(const Value& other) const {
  if (type() == other.type()) return StrictEquals(other);
  if (is_nullish() && other.is_nullish()) return true;
  if (is_nullish() || other.is_nullish()) return false;
  // Object vs anything non-object: not equal in this simplified model.
  if (is_object() || other.is_object() || is_function() ||
      other.is_function()) {
    return false;
  }
  // Remaining mixed primitive comparisons coerce to number.
  const double a = ToNumber();
  const double b = other.ToNumber();
  return !std::isnan(a) && !std::isnan(b) && a == b;
}

Value MakeHostFunction(std::string name, HostFn fn) {
  auto function = std::make_shared<Function>();
  function->name = std::move(name);
  function->host = std::move(fn);
  return Value::Func(std::move(function));
}

std::shared_ptr<Object> MakeErrorObject(const std::string& name,
                                        const std::string& message, int code) {
  auto object = Object::Make();
  object->set_class_name("Error");
  object->Set("name", Value::String(name));
  object->Set("message", Value::String(message));
  object->Set("code", Value::Number(code));
  return object;
}

}  // namespace mobivine::minijs
