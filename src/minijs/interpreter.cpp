#include "minijs/interpreter.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <limits>

#include "minijs/parser.h"

namespace mobivine::minijs {

// ---------------------------------------------------------------------------
// Environment
// ---------------------------------------------------------------------------

bool Environment::Get(const std::string& name, Value& out) const {
  auto it = variables_.find(name);
  if (it != variables_.end()) {
    out = it->second;
    return true;
  }
  return parent_ ? parent_->Get(name, out) : false;
}

bool Environment::Assign(const std::string& name, Value value) {
  auto it = variables_.find(name);
  if (it != variables_.end()) {
    it->second = std::move(value);
    return true;
  }
  if (parent_) return parent_->Assign(name, std::move(value));
  // Sloppy-mode global creation.
  variables_[name] = std::move(value);
  return false;
}

// ---------------------------------------------------------------------------
// Interpreter
// ---------------------------------------------------------------------------

Interpreter::Interpreter() : globals_(std::make_shared<Environment>()) {
  InstallBuiltins();
}

void Interpreter::Step(int line) {
  (void)line;
  if (++steps_ > step_limit_) {
    throw ScriptError(
        Value::Obj(MakeErrorObject("RangeError", "step limit exceeded")));
  }
  if (step_observer_ && ++steps_since_observe_ >= observer_interval_) {
    const std::uint64_t delta = steps_since_observe_;
    steps_since_observe_ = 0;
    step_observer_(delta);
  }
}

void Interpreter::ChargeAllocation(std::size_t bytes) {
  const std::uint64_t extra = bytes / 64;
  if (extra == 0) return;
  steps_ += extra;
  if (steps_ > step_limit_) {
    throw ScriptError(
        Value::Obj(MakeErrorObject("RangeError", "step limit exceeded")));
  }
  if (step_observer_) {
    steps_since_observe_ += extra;
    if (steps_since_observe_ >= observer_interval_) {
      const std::uint64_t delta = steps_since_observe_;
      steps_since_observe_ = 0;
      step_observer_(delta);
    }
  }
}

Value Interpreter::Run(std::string_view source) {
  return Run(std::make_shared<const Program>(ParseProgram(source)));
}

Value Interpreter::Run(std::shared_ptr<const Program> program) {
  const Program& ref = *program;
  // Retain the AST for this interpreter's lifetime: closures created by
  // the run point into it. Shared ownership is what lets a host-side
  // parse cache hand the same immutable Program to many interpreters.
  loaded_programs_.push_back(std::move(program));

  Value last;
  try {
    // Hoist top-level function declarations (JS semantics).
    for (const StmtPtr& stmt : ref.statements) {
      if (stmt->kind == StmtKind::kFunctionDecl) {
        Execute(*stmt, globals_, Value::Undefined());
      }
    }
    for (const StmtPtr& stmt : ref.statements) {
      if (stmt->kind == StmtKind::kFunctionDecl) continue;
      if (stmt->kind == StmtKind::kExpression) {
        last = Evaluate(*static_cast<const ExpressionStmt&>(*stmt).expression,
                        globals_, Value::Undefined());
      } else {
        last = Value::Undefined();
        Execute(*stmt, globals_, Value::Undefined());
      }
    }
  } catch (const ThrowSignal& signal) {
    throw ScriptError(signal.value);
  }
  return last;
}

Value Interpreter::GetGlobal(const std::string& name) const {
  Value out;
  if (globals_->Get(name, out)) return out;
  return Value::Undefined();
}

void Interpreter::SetGlobal(const std::string& name, Value value) {
  globals_->Define(name, std::move(value));
}

Value Interpreter::Call(const Value& function, const Value& this_value,
                        std::vector<Value> arguments) {
  if (!function.is_function()) {
    throw ScriptError(Value::Obj(
        MakeErrorObject("TypeError", "value is not callable")));
  }
  try {
    return CallFunction(function.as_function(), this_value, arguments);
  } catch (const ThrowSignal& signal) {
    throw ScriptError(signal.value);
  }
}

Value Interpreter::CallFunction(const std::shared_ptr<Function>& function,
                                const Value& this_value,
                                std::vector<Value>& arguments) {
  if (function->is_host()) {
    // Host errors re-enter the script world as throwable values so that
    // script-level try/catch sees them (the WebView error-code path).
    try {
      return function->host(*this, this_value, arguments);
    } catch (const ScriptError& error) {
      throw ThrowSignal{error.thrown()};
    }
  }
  if (call_depth_ >= call_depth_limit_) {
    // Script recursion recurses THIS function on the C++ stack; without
    // a ceiling a hostile `function f(){f()}` is a stack smash, not an
    // error. Catchable by design (see set_call_depth_limit).
    throw ThrowSignal{Value::Obj(
        MakeErrorObject("RangeError", "maximum call depth exceeded"))};
  }
  ++call_depth_;
  struct DepthGuard {
    std::uint64_t& depth;
    ~DepthGuard() { --depth; }
  } depth_guard{call_depth_};
  auto env = std::make_shared<Environment>(function->closure);
  const FunctionExpr& decl = *function->decl;
  for (size_t i = 0; i < decl.params.size(); ++i) {
    env->Define(decl.params[i],
                i < arguments.size() ? arguments[i] : Value::Undefined());
  }
  // `arguments` array.
  auto args_array = Object::MakeArray();
  args_array->elements() = arguments;
  env->Define("arguments", Value::Obj(args_array));

  try {
    ExecuteBlock(decl.body, env, this_value);
  } catch (ReturnSignal& signal) {
    return std::move(signal.value);
  }
  return Value::Undefined();
}

void Interpreter::ExecuteBlock(const std::vector<StmtPtr>& statements,
                               const std::shared_ptr<Environment>& env,
                               const Value& this_value) {
  // Hoist function declarations first (JS semantics the proxy scripts use).
  for (const StmtPtr& stmt : statements) {
    if (stmt->kind == StmtKind::kFunctionDecl) {
      const auto& decl = static_cast<const FunctionDeclStmt&>(*stmt);
      auto function = std::make_shared<Function>();
      function->name = decl.function->name;
      function->decl = decl.function.get();
      function->closure = env;
      const std::string name = function->name;
      env->Define(name, Value::Func(std::move(function)));
    }
  }
  for (const StmtPtr& stmt : statements) {
    if (stmt->kind == StmtKind::kFunctionDecl) continue;  // already hoisted
    Execute(*stmt, env, this_value);
  }
}

void Interpreter::Execute(const Stmt& stmt,
                          const std::shared_ptr<Environment>& env,
                          const Value& this_value) {
  Step(stmt.line);
  switch (stmt.kind) {
    case StmtKind::kExpression:
      Evaluate(*static_cast<const ExpressionStmt&>(stmt).expression, env,
               this_value);
      return;
    case StmtKind::kVar: {
      const auto& var = static_cast<const VarStmt&>(stmt);
      for (const auto& [name, init] : var.declarations) {
        env->Define(name,
                    init ? Evaluate(*init, env, this_value) : Value::Undefined());
      }
      return;
    }
    case StmtKind::kFunctionDecl: {
      const auto& decl = static_cast<const FunctionDeclStmt&>(stmt);
      auto function = std::make_shared<Function>();
      function->name = decl.function->name;
      function->decl = decl.function.get();
      function->closure = env;
      const std::string name = function->name;
      env->Define(name, Value::Func(std::move(function)));
      return;
    }
    case StmtKind::kReturn: {
      const auto& ret = static_cast<const ReturnStmt&>(stmt);
      ReturnSignal signal;
      signal.value =
          ret.value ? Evaluate(*ret.value, env, this_value) : Value::Undefined();
      throw signal;
    }
    case StmtKind::kIf: {
      const auto& branch = static_cast<const IfStmt&>(stmt);
      if (Evaluate(*branch.condition, env, this_value).Truthy()) {
        Execute(*branch.then_branch, env, this_value);
      } else if (branch.else_branch) {
        Execute(*branch.else_branch, env, this_value);
      }
      return;
    }
    case StmtKind::kWhile: {
      const auto& loop = static_cast<const WhileStmt&>(stmt);
      while (Evaluate(*loop.condition, env, this_value).Truthy()) {
        try {
          Execute(*loop.body, env, this_value);
        } catch (const BreakSignal&) {
          break;
        } catch (const ContinueSignal&) {
          continue;
        }
      }
      return;
    }
    case StmtKind::kFor: {
      const auto& loop = static_cast<const ForStmt&>(stmt);
      auto scope = std::make_shared<Environment>(env);
      if (loop.init) Execute(*loop.init, scope, this_value);
      while (!loop.condition ||
             Evaluate(*loop.condition, scope, this_value).Truthy()) {
        try {
          Execute(*loop.body, scope, this_value);
        } catch (const BreakSignal&) {
          break;
        } catch (const ContinueSignal&) {
          // fall through to update
        }
        if (loop.update) Evaluate(*loop.update, scope, this_value);
      }
      return;
    }
    case StmtKind::kBlock: {
      const auto& block = static_cast<const BlockStmt&>(stmt);
      auto scope = std::make_shared<Environment>(env);
      ExecuteBlock(block.statements, scope, this_value);
      return;
    }
    case StmtKind::kBreak:
      throw BreakSignal{};
    case StmtKind::kContinue:
      throw ContinueSignal{};
    case StmtKind::kThrow: {
      const auto& thr = static_cast<const ThrowStmt&>(stmt);
      throw ThrowSignal{Evaluate(*thr.value, env, this_value)};
    }
    case StmtKind::kTry: {
      const auto& trys = static_cast<const TryStmt&>(stmt);
      bool rethrow = false;
      ThrowSignal pending{Value::Undefined()};
      try {
        Execute(*trys.try_block, env, this_value);
      } catch (const ThrowSignal& signal) {
        if (trys.catch_block) {
          auto scope = std::make_shared<Environment>(env);
          scope->Define(trys.catch_name, signal.value);
          try {
            Execute(*trys.catch_block, scope, this_value);
          } catch (const ThrowSignal& inner) {
            rethrow = true;
            pending = inner;
          }
        } else {
          rethrow = true;
          pending = signal;
        }
      }
      if (trys.finally_block) Execute(*trys.finally_block, env, this_value);
      if (rethrow) throw pending;
      return;
    }
  }
}

namespace {
/// Bug-guard for loop bodies: break/continue must not escape functions —
/// CallFunction boundary converts them to errors.
}  // namespace

Value Interpreter::Evaluate(const Expr& expr,
                            const std::shared_ptr<Environment>& env,
                            const Value& this_value) {
  Step(expr.line);
  switch (expr.kind) {
    case ExprKind::kNumber:
      return Value::Number(static_cast<const NumberExpr&>(expr).value);
    case ExprKind::kString:
      return Value::String(static_cast<const StringExpr&>(expr).value);
    case ExprKind::kBool:
      return Value::Boolean(static_cast<const BoolExpr&>(expr).value);
    case ExprKind::kNull:
      return Value::Null();
    case ExprKind::kUndefined:
      return Value::Undefined();
    case ExprKind::kThis:
      return this_value;
    case ExprKind::kIdentifier: {
      const auto& ident = static_cast<const IdentifierExpr&>(expr);
      Value out;
      if (env->Get(ident.name, out)) return out;
      throw ThrowSignal{Value::Obj(MakeErrorObject(
          "ReferenceError", ident.name + " is not defined"))};
    }
    case ExprKind::kArray: {
      const auto& array = static_cast<const ArrayExpr&>(expr);
      auto object = Object::MakeArray();
      object->elements().reserve(array.elements.size());
      for (const ExprPtr& element : array.elements) {
        object->elements().push_back(Evaluate(*element, env, this_value));
      }
      return Value::Obj(object);
    }
    case ExprKind::kObjectLiteral: {
      const auto& literal = static_cast<const ObjectLiteralExpr&>(expr);
      auto object = Object::Make();
      for (const auto& [key, value_expr] : literal.properties) {
        object->Set(key, Evaluate(*value_expr, env, this_value));
      }
      return Value::Obj(object);
    }
    case ExprKind::kFunction: {
      const auto& fn = static_cast<const FunctionExpr&>(expr);
      auto function = std::make_shared<Function>();
      function->name = fn.name;
      function->decl = &fn;
      function->closure = env;
      return Value::Func(std::move(function));
    }
    case ExprKind::kUnary: {
      const auto& unary = static_cast<const UnaryExpr&>(expr);
      if (unary.op == UnaryOp::kPreIncrement ||
          unary.op == UnaryOp::kPreDecrement) {
        const double delta = unary.op == UnaryOp::kPreIncrement ? 1.0 : -1.0;
        Value current = Evaluate(*unary.operand, env, this_value);
        Value next = Value::Number(current.ToNumber() + delta);
        // Write back through a synthetic assignment.
        AssignExpr assign(AssignOp::kAssign, nullptr, nullptr, unary.line);
        (void)assign;
        // Only identifier/member/index targets parse, so re-dispatch:
        if (unary.operand->kind == ExprKind::kIdentifier) {
          env->Assign(static_cast<const IdentifierExpr&>(*unary.operand).name,
                      next);
        } else if (unary.operand->kind == ExprKind::kMember) {
          const auto& member = static_cast<const MemberExpr&>(*unary.operand);
          Value object = Evaluate(*member.object, env, this_value);
          if (object.is_object()) object.as_object()->Set(member.property, next);
        } else if (unary.operand->kind == ExprKind::kIndex) {
          const auto& index = static_cast<const IndexExpr&>(*unary.operand);
          Value object = Evaluate(*index.object, env, this_value);
          Value key = Evaluate(*index.index, env, this_value);
          if (object.is_object() && object.as_object()->is_array() &&
              key.is_number()) {
            auto& elements = object.as_object()->elements();
            size_t i = static_cast<size_t>(key.as_number());
            if (i < elements.size()) elements[i] = next;
          } else if (object.is_object()) {
            object.as_object()->Set(key.ToDisplayString(), next);
          }
        }
        return next;
      }
      Value operand = Evaluate(*unary.operand, env, this_value);
      switch (unary.op) {
        case UnaryOp::kNot:
          return Value::Boolean(!operand.Truthy());
        case UnaryOp::kNegate:
          return Value::Number(-operand.ToNumber());
        case UnaryOp::kTypeof:
          return Value::String(operand.TypeName());
        default:
          return Value::Undefined();
      }
    }
    case ExprKind::kBinary: {
      const auto& binary = static_cast<const BinaryExpr&>(expr);
      Value left = Evaluate(*binary.left, env, this_value);
      Value right = Evaluate(*binary.right, env, this_value);
      return EvaluateBinary(binary, std::move(left), std::move(right));
    }
    case ExprKind::kLogical: {
      const auto& logical = static_cast<const LogicalExpr&>(expr);
      Value left = Evaluate(*logical.left, env, this_value);
      if (logical.op == LogicalOp::kAnd) {
        return left.Truthy() ? Evaluate(*logical.right, env, this_value)
                             : left;
      }
      return left.Truthy() ? left : Evaluate(*logical.right, env, this_value);
    }
    case ExprKind::kConditional: {
      const auto& cond = static_cast<const ConditionalExpr&>(expr);
      return Evaluate(*cond.condition, env, this_value).Truthy()
                 ? Evaluate(*cond.then_value, env, this_value)
                 : Evaluate(*cond.else_value, env, this_value);
    }
    case ExprKind::kAssign: {
      const auto& assign = static_cast<const AssignExpr&>(expr);
      Value value = Evaluate(*assign.value, env, this_value);
      if (assign.op != AssignOp::kAssign) {
        Value current = Evaluate(*assign.target, env, this_value);
        if (assign.op == AssignOp::kAddAssign) {
          // Mirror '+' semantics (string concat or numeric add).
          if (current.is_string() || value.is_string()) {
            value = Value::String(current.ToDisplayString() +
                                  value.ToDisplayString());
          } else {
            value = Value::Number(current.ToNumber() + value.ToNumber());
          }
        } else {
          value = Value::Number(current.ToNumber() - value.ToNumber());
        }
      }
      if (assign.target->kind == ExprKind::kIdentifier) {
        env->Assign(static_cast<const IdentifierExpr&>(*assign.target).name,
                    value);
      } else if (assign.target->kind == ExprKind::kMember) {
        const auto& member = static_cast<const MemberExpr&>(*assign.target);
        Value object = Evaluate(*member.object, env, this_value);
        if (!object.is_object()) {
          throw ThrowSignal{Value::Obj(MakeErrorObject(
              "TypeError", "cannot set property '" + member.property +
                               "' of " + object.ToDisplayString()))};
        }
        object.as_object()->Set(member.property, value);
      } else {  // kIndex
        const auto& index = static_cast<const IndexExpr&>(*assign.target);
        Value object = Evaluate(*index.object, env, this_value);
        Value key = Evaluate(*index.index, env, this_value);
        if (!object.is_object()) {
          throw ThrowSignal{Value::Obj(
              MakeErrorObject("TypeError", "cannot index non-object"))};
        }
        auto target = object.as_object();
        if (target->is_array() && key.is_number()) {
          size_t i = static_cast<size_t>(key.as_number());
          if (i >= target->elements().size()) {
            target->elements().resize(i + 1);
          }
          target->elements()[i] = value;
        } else {
          target->Set(key.ToDisplayString(), value);
        }
      }
      return value;
    }
    case ExprKind::kCall: {
      const auto& call = static_cast<const CallExpr&>(expr);
      // Method call: evaluate the receiver once and bind `this`.
      Value callee;
      Value receiver = Value::Undefined();
      if (call.callee->kind == ExprKind::kMember) {
        const auto& member = static_cast<const MemberExpr&>(*call.callee);
        receiver = Evaluate(*member.object, env, this_value);
        if (receiver.is_object() && receiver.as_object()->Has(member.property)) {
          callee = receiver.as_object()->Get(member.property);
        } else if (!BuiltinMember(receiver, member.property, callee)) {
          throw ThrowSignal{Value::Obj(MakeErrorObject(
              "TypeError", member.property + " is not a function on " +
                               receiver.ToDisplayString()))};
        }
      } else {
        callee = Evaluate(*call.callee, env, this_value);
      }
      if (!callee.is_function()) {
        throw ThrowSignal{Value::Obj(
            MakeErrorObject("TypeError", "value is not callable"))};
      }
      std::vector<Value> arguments;
      arguments.reserve(call.arguments.size());
      for (const ExprPtr& argument : call.arguments) {
        arguments.push_back(Evaluate(*argument, env, this_value));
      }
      return CallFunction(callee.as_function(), receiver, arguments);
    }
    case ExprKind::kNew: {
      const auto& ctor = static_cast<const NewExpr&>(expr);
      Value callee = Evaluate(*ctor.callee, env, this_value);
      if (!callee.is_function()) {
        throw ThrowSignal{Value::Obj(
            MakeErrorObject("TypeError", "constructor is not callable"))};
      }
      std::vector<Value> arguments;
      arguments.reserve(ctor.arguments.size());
      for (const ExprPtr& argument : ctor.arguments) {
        arguments.push_back(Evaluate(*argument, env, this_value));
      }
      auto instance = Object::Make();
      instance->set_class_name(callee.as_function()->name);
      Value result = CallFunction(callee.as_function(), Value::Obj(instance),
                                  arguments);
      // JS: if the constructor returns an object, that wins.
      return result.is_object() ? result : Value::Obj(instance);
    }
    case ExprKind::kMember: {
      const auto& member = static_cast<const MemberExpr&>(expr);
      Value object = Evaluate(*member.object, env, this_value);
      if (object.is_object() && object.as_object()->Has(member.property)) {
        return object.as_object()->Get(member.property);
      }
      Value out;
      if (BuiltinMember(object, member.property, out)) return out;
      if (object.is_nullish()) {
        throw ThrowSignal{Value::Obj(MakeErrorObject(
            "TypeError", "cannot read property '" + member.property +
                             "' of " + object.ToDisplayString()))};
      }
      return Value::Undefined();
    }
    case ExprKind::kIndex: {
      const auto& index = static_cast<const IndexExpr&>(expr);
      Value object = Evaluate(*index.object, env, this_value);
      Value key = Evaluate(*index.index, env, this_value);
      if (object.is_object()) {
        auto target = object.as_object();
        if (target->is_array() && key.is_number()) {
          size_t i = static_cast<size_t>(key.as_number());
          return i < target->elements().size() ? target->elements()[i]
                                               : Value::Undefined();
        }
        return target->Get(key.ToDisplayString());
      }
      if (object.is_string() && key.is_number()) {
        size_t i = static_cast<size_t>(key.as_number());
        const std::string& s = object.as_string();
        return i < s.size() ? Value::String(std::string(1, s[i]))
                            : Value::Undefined();
      }
      throw ThrowSignal{
          Value::Obj(MakeErrorObject("TypeError", "cannot index value"))};
    }
    case ExprKind::kPostfix: {
      const auto& postfix = static_cast<const PostfixExpr&>(expr);
      Value current = Evaluate(*postfix.target, env, this_value);
      const double delta = postfix.op == PostfixOp::kIncrement ? 1.0 : -1.0;
      Value next = Value::Number(current.ToNumber() + delta);
      if (postfix.target->kind == ExprKind::kIdentifier) {
        env->Assign(static_cast<const IdentifierExpr&>(*postfix.target).name,
                    next);
      } else if (postfix.target->kind == ExprKind::kMember) {
        const auto& member = static_cast<const MemberExpr&>(*postfix.target);
        Value object = Evaluate(*member.object, env, this_value);
        if (object.is_object()) object.as_object()->Set(member.property, next);
      }
      return Value::Number(current.ToNumber());
    }
  }
  return Value::Undefined();
}

Value Interpreter::EvaluateBinary(const BinaryExpr& expr, Value left,
                                  Value right) {
  switch (expr.op) {
    case BinaryOp::kAdd:
      if (left.is_string() || right.is_string()) {
        std::string joined =
            left.ToDisplayString() + right.ToDisplayString();
        ChargeAllocation(joined.size());
        return Value::String(std::move(joined));
      }
      return Value::Number(left.ToNumber() + right.ToNumber());
    case BinaryOp::kSubtract:
      return Value::Number(left.ToNumber() - right.ToNumber());
    case BinaryOp::kMultiply:
      return Value::Number(left.ToNumber() * right.ToNumber());
    case BinaryOp::kDivide:
      return Value::Number(left.ToNumber() / right.ToNumber());
    case BinaryOp::kModulo:
      return Value::Number(std::fmod(left.ToNumber(), right.ToNumber()));
    case BinaryOp::kEq:
      return Value::Boolean(left.LooseEquals(right));
    case BinaryOp::kNotEq:
      return Value::Boolean(!left.LooseEquals(right));
    case BinaryOp::kStrictEq:
      return Value::Boolean(left.StrictEquals(right));
    case BinaryOp::kStrictNotEq:
      return Value::Boolean(!left.StrictEquals(right));
    case BinaryOp::kLess:
      if (left.is_string() && right.is_string()) {
        return Value::Boolean(left.as_string() < right.as_string());
      }
      return Value::Boolean(left.ToNumber() < right.ToNumber());
    case BinaryOp::kLessEq:
      if (left.is_string() && right.is_string()) {
        return Value::Boolean(left.as_string() <= right.as_string());
      }
      return Value::Boolean(left.ToNumber() <= right.ToNumber());
    case BinaryOp::kGreater:
      if (left.is_string() && right.is_string()) {
        return Value::Boolean(left.as_string() > right.as_string());
      }
      return Value::Boolean(left.ToNumber() > right.ToNumber());
    case BinaryOp::kGreaterEq:
      if (left.is_string() && right.is_string()) {
        return Value::Boolean(left.as_string() >= right.as_string());
      }
      return Value::Boolean(left.ToNumber() >= right.ToNumber());
  }
  return Value::Undefined();
}

bool Interpreter::BuiltinMember(const Value& object, const std::string& name,
                                Value& out) {
  if (object.is_string()) {
    const std::string s = object.as_string();
    if (name == "length") {
      out = Value::Number(static_cast<double>(s.size()));
      return true;
    }
    if (name == "indexOf") {
      out = MakeHostFunction(
          "indexOf", [s](Interpreter&, const Value&, std::vector<Value>& args) {
            const std::string needle =
                args.empty() ? "" : args[0].ToDisplayString();
            size_t pos = s.find(needle);
            return Value::Number(pos == std::string::npos
                                     ? -1.0
                                     : static_cast<double>(pos));
          });
      return true;
    }
    if (name == "substring") {
      out = MakeHostFunction(
          "substring",
          [s](Interpreter&, const Value&, std::vector<Value>& args) {
            long long begin =
                args.empty() ? 0
                             : static_cast<long long>(args[0].ToNumber());
            long long end = args.size() > 1
                                ? static_cast<long long>(args[1].ToNumber())
                                : static_cast<long long>(s.size());
            begin = std::max(0LL, std::min<long long>(begin, s.size()));
            end = std::max(begin, std::min<long long>(end, s.size()));
            return Value::String(s.substr(begin, end - begin));
          });
      return true;
    }
    if (name == "charAt") {
      out = MakeHostFunction(
          "charAt", [s](Interpreter&, const Value&, std::vector<Value>& args) {
            size_t i = args.empty()
                           ? 0
                           : static_cast<size_t>(args[0].ToNumber());
            return i < s.size() ? Value::String(std::string(1, s[i]))
                                : Value::String("");
          });
      return true;
    }
    if (name == "toUpperCase" || name == "toLowerCase") {
      const bool upper = name == "toUpperCase";
      out = MakeHostFunction(
          name, [s, upper](Interpreter&, const Value&, std::vector<Value>&) {
            std::string copy = s;
            for (char& c : copy) {
              c = upper ? static_cast<char>(std::toupper(
                              static_cast<unsigned char>(c)))
                        : static_cast<char>(std::tolower(
                              static_cast<unsigned char>(c)));
            }
            return Value::String(copy);
          });
      return true;
    }
    return false;
  }
  if (object.is_object() && object.as_object()->is_array()) {
    auto array = object.as_object();
    if (name == "length") {
      out = Value::Number(static_cast<double>(array->elements().size()));
      return true;
    }
    if (name == "push") {
      out = MakeHostFunction(
          "push", [array](Interpreter&, const Value&, std::vector<Value>& args) {
            for (Value& value : args) array->elements().push_back(value);
            return Value::Number(static_cast<double>(array->elements().size()));
          });
      return true;
    }
    if (name == "pop") {
      out = MakeHostFunction(
          "pop", [array](Interpreter&, const Value&, std::vector<Value>&) {
            if (array->elements().empty()) return Value::Undefined();
            Value back = array->elements().back();
            array->elements().pop_back();
            return back;
          });
      return true;
    }
    if (name == "shift") {
      out = MakeHostFunction(
          "shift", [array](Interpreter&, const Value&, std::vector<Value>&) {
            if (array->elements().empty()) return Value::Undefined();
            Value front = array->elements().front();
            array->elements().erase(array->elements().begin());
            return front;
          });
      return true;
    }
    if (name == "join") {
      out = MakeHostFunction(
          "join", [array](Interpreter&, const Value&, std::vector<Value>& args) {
            const std::string sep =
                args.empty() ? "," : args[0].ToDisplayString();
            std::string result;
            for (size_t i = 0; i < array->elements().size(); ++i) {
              if (i) result += sep;
              result += array->elements()[i].ToDisplayString();
            }
            return Value::String(result);
          });
      return true;
    }
    return false;
  }
  return false;
}

void Interpreter::InstallBuiltins() {
  SetGlobal("print", MakeHostFunction(
                         "print", [this](Interpreter&, const Value&,
                                         std::vector<Value>& args) {
                           std::string line;
                           for (size_t i = 0; i < args.size(); ++i) {
                             if (i) line += ' ';
                             line += args[i].ToDisplayString();
                           }
                           output_.push_back(std::move(line));
                           return Value::Undefined();
                         }));
  SetGlobal("log", GetGlobal("print"));

  SetGlobal("isNaN", MakeHostFunction(
                         "isNaN", [](Interpreter&, const Value&,
                                     std::vector<Value>& args) {
                           return Value::Boolean(
                               args.empty() || std::isnan(args[0].ToNumber()));
                         }));
  SetGlobal("Number", MakeHostFunction("Number", [](Interpreter&, const Value&,
                                                    std::vector<Value>& args) {
              return Value::Number(args.empty() ? 0.0 : args[0].ToNumber());
            }));
  SetGlobal("String", MakeHostFunction("String", [](Interpreter&, const Value&,
                                                    std::vector<Value>& args) {
              return Value::String(args.empty() ? ""
                                                : args[0].ToDisplayString());
            }));
  SetGlobal("Error",
            MakeHostFunction("Error", [](Interpreter&, const Value& self,
                                         std::vector<Value>& args) {
              // Usable both as Error("m") and new Error("m").
              const std::string message =
                  args.empty() ? "" : args[0].ToDisplayString();
              if (self.is_object()) {
                self.as_object()->set_class_name("Error");
                self.as_object()->Set("name", Value::String("Error"));
                self.as_object()->Set("message", Value::String(message));
                return self;
              }
              return Value::Obj(MakeErrorObject("Error", message));
            }));

  auto math = Object::Make();
  math->set_class_name("Math");
  math->Set("abs", MakeHostFunction("abs", [](Interpreter&, const Value&,
                                              std::vector<Value>& args) {
              return Value::Number(
                  args.empty() ? std::nan("") : std::fabs(args[0].ToNumber()));
            }));
  math->Set("floor", MakeHostFunction("floor", [](Interpreter&, const Value&,
                                                  std::vector<Value>& args) {
              return Value::Number(args.empty() ? std::nan("")
                                                : std::floor(args[0].ToNumber()));
            }));
  math->Set("ceil", MakeHostFunction("ceil", [](Interpreter&, const Value&,
                                                std::vector<Value>& args) {
              return Value::Number(args.empty() ? std::nan("")
                                                : std::ceil(args[0].ToNumber()));
            }));
  math->Set("sqrt", MakeHostFunction("sqrt", [](Interpreter&, const Value&,
                                                std::vector<Value>& args) {
              return Value::Number(args.empty() ? std::nan("")
                                                : std::sqrt(args[0].ToNumber()));
            }));
  math->Set("min", MakeHostFunction("min", [](Interpreter&, const Value&,
                                              std::vector<Value>& args) {
              double best = std::numeric_limits<double>::infinity();
              for (const Value& value : args) {
                best = std::min(best, value.ToNumber());
              }
              return Value::Number(best);
            }));
  math->Set("max", MakeHostFunction("max", [](Interpreter&, const Value&,
                                              std::vector<Value>& args) {
              double best = -std::numeric_limits<double>::infinity();
              for (const Value& value : args) {
                best = std::max(best, value.ToNumber());
              }
              return Value::Number(best);
            }));
  math->Set("pow", MakeHostFunction("pow", [](Interpreter&, const Value&,
                                              std::vector<Value>& args) {
              if (args.size() < 2) return Value::Number(std::nan(""));
              return Value::Number(
                  std::pow(args[0].ToNumber(), args[1].ToNumber()));
            }));
  math->Set("PI", Value::Number(3.14159265358979323846));
  SetGlobal("Math", Value::Obj(math));
}

}  // namespace mobivine::minijs
