#include "minijs/lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

namespace mobivine::minijs {

const char* ToString(TokenType type) {
  switch (type) {
    case TokenType::kNumber: return "number";
    case TokenType::kString: return "string";
    case TokenType::kIdentifier: return "identifier";
    case TokenType::kVar: return "var";
    case TokenType::kFunction: return "function";
    case TokenType::kReturn: return "return";
    case TokenType::kIf: return "if";
    case TokenType::kElse: return "else";
    case TokenType::kWhile: return "while";
    case TokenType::kFor: return "for";
    case TokenType::kBreak: return "break";
    case TokenType::kContinue: return "continue";
    case TokenType::kTrue: return "true";
    case TokenType::kFalse: return "false";
    case TokenType::kNull: return "null";
    case TokenType::kUndefined: return "undefined";
    case TokenType::kNew: return "new";
    case TokenType::kThis: return "this";
    case TokenType::kTypeof: return "typeof";
    case TokenType::kThrow: return "throw";
    case TokenType::kTry: return "try";
    case TokenType::kCatch: return "catch";
    case TokenType::kFinally: return "finally";
    case TokenType::kLeftParen: return "(";
    case TokenType::kRightParen: return ")";
    case TokenType::kLeftBrace: return "{";
    case TokenType::kRightBrace: return "}";
    case TokenType::kLeftBracket: return "[";
    case TokenType::kRightBracket: return "]";
    case TokenType::kComma: return ",";
    case TokenType::kSemicolon: return ";";
    case TokenType::kColon: return ":";
    case TokenType::kDot: return ".";
    case TokenType::kQuestion: return "?";
    case TokenType::kAssign: return "=";
    case TokenType::kPlus: return "+";
    case TokenType::kMinus: return "-";
    case TokenType::kStar: return "*";
    case TokenType::kSlash: return "/";
    case TokenType::kPercent: return "%";
    case TokenType::kPlusAssign: return "+=";
    case TokenType::kMinusAssign: return "-=";
    case TokenType::kPlusPlus: return "++";
    case TokenType::kMinusMinus: return "--";
    case TokenType::kEq: return "==";
    case TokenType::kStrictEq: return "===";
    case TokenType::kNotEq: return "!=";
    case TokenType::kStrictNotEq: return "!==";
    case TokenType::kLess: return "<";
    case TokenType::kLessEq: return "<=";
    case TokenType::kGreater: return ">";
    case TokenType::kGreaterEq: return ">=";
    case TokenType::kAndAnd: return "&&";
    case TokenType::kOrOr: return "||";
    case TokenType::kBang: return "!";
    case TokenType::kEof: return "<eof>";
  }
  return "?";
}

namespace {

const std::unordered_map<std::string, TokenType>& Keywords() {
  static const std::unordered_map<std::string, TokenType> keywords = {
      {"var", TokenType::kVar},         {"function", TokenType::kFunction},
      {"return", TokenType::kReturn},   {"if", TokenType::kIf},
      {"else", TokenType::kElse},       {"while", TokenType::kWhile},
      {"for", TokenType::kFor},         {"break", TokenType::kBreak},
      {"continue", TokenType::kContinue}, {"true", TokenType::kTrue},
      {"false", TokenType::kFalse},     {"null", TokenType::kNull},
      {"undefined", TokenType::kUndefined}, {"new", TokenType::kNew},
      {"this", TokenType::kThis},       {"typeof", TokenType::kTypeof},
      {"throw", TokenType::kThrow},     {"try", TokenType::kTry},
      {"catch", TokenType::kCatch},     {"finally", TokenType::kFinally},
  };
  return keywords;
}

class Lexer {
 public:
  explicit Lexer(std::string_view source) : source_(source) {}

  std::vector<Token> Run() {
    std::vector<Token> tokens;
    while (true) {
      SkipWhitespaceAndComments();
      Token token = Next();
      const bool done = token.type == TokenType::kEof;
      tokens.push_back(std::move(token));
      if (done) return tokens;
    }
  }

 private:
  [[noreturn]] void Fail(const std::string& message) const {
    throw LexError(message, line_, column_);
  }

  bool AtEnd() const { return pos_ >= source_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
  }
  char Advance() {
    char c = source_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }
  bool Match(char expected) {
    if (AtEnd() || Peek() != expected) return false;
    Advance();
    return true;
  }

  void SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '/' && Peek(1) == '/') {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else if (c == '/' && Peek(1) == '*') {
        int start_line = line_, start_col = column_;
        Advance();
        Advance();
        while (!(Peek() == '*' && Peek(1) == '/')) {
          if (AtEnd()) {
            throw LexError("unterminated block comment", start_line,
                           start_col);
          }
          Advance();
        }
        Advance();
        Advance();
      } else {
        return;
      }
    }
  }

  Token Make(TokenType type, std::string text = "") {
    Token token;
    token.type = type;
    token.text = std::move(text);
    token.line = token_line_;
    token.column = token_column_;
    return token;
  }

  Token Next() {
    token_line_ = line_;
    token_column_ = column_;
    if (AtEnd()) return Make(TokenType::kEof);
    char c = Advance();
    switch (c) {
      case '(': return Make(TokenType::kLeftParen);
      case ')': return Make(TokenType::kRightParen);
      case '{': return Make(TokenType::kLeftBrace);
      case '}': return Make(TokenType::kRightBrace);
      case '[': return Make(TokenType::kLeftBracket);
      case ']': return Make(TokenType::kRightBracket);
      case ',': return Make(TokenType::kComma);
      case ';': return Make(TokenType::kSemicolon);
      case ':': return Make(TokenType::kColon);
      case '.': return Make(TokenType::kDot);
      case '?': return Make(TokenType::kQuestion);
      case '%': return Make(TokenType::kPercent);
      case '*': return Make(TokenType::kStar);
      case '/': return Make(TokenType::kSlash);
      case '+':
        if (Match('+')) return Make(TokenType::kPlusPlus);
        if (Match('=')) return Make(TokenType::kPlusAssign);
        return Make(TokenType::kPlus);
      case '-':
        if (Match('-')) return Make(TokenType::kMinusMinus);
        if (Match('=')) return Make(TokenType::kMinusAssign);
        return Make(TokenType::kMinus);
      case '=':
        if (Match('=')) {
          return Match('=') ? Make(TokenType::kStrictEq)
                            : Make(TokenType::kEq);
        }
        return Make(TokenType::kAssign);
      case '!':
        if (Match('=')) {
          return Match('=') ? Make(TokenType::kStrictNotEq)
                            : Make(TokenType::kNotEq);
        }
        return Make(TokenType::kBang);
      case '<':
        return Match('=') ? Make(TokenType::kLessEq) : Make(TokenType::kLess);
      case '>':
        return Match('=') ? Make(TokenType::kGreaterEq)
                          : Make(TokenType::kGreater);
      case '&':
        if (Match('&')) return Make(TokenType::kAndAnd);
        Fail("unexpected '&' (only && supported)");
      case '|':
        if (Match('|')) return Make(TokenType::kOrOr);
        Fail("unexpected '|' (only || supported)");
      case '"':
      case '\'':
        return LexString(c);
      default:
        break;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) return LexNumber(c);
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$') {
      return LexIdentifier(c);
    }
    Fail(std::string("unexpected character '") + c + "'");
  }

  Token LexString(char quote) {
    std::string value;
    while (true) {
      if (AtEnd()) Fail("unterminated string literal");
      char c = Advance();
      if (c == quote) break;
      if (c == '\n') Fail("newline in string literal");
      if (c == '\\') {
        if (AtEnd()) Fail("unterminated escape sequence");
        char esc = Advance();
        switch (esc) {
          case 'n': value += '\n'; break;
          case 't': value += '\t'; break;
          case 'r': value += '\r'; break;
          case '\\': value += '\\'; break;
          case '\'': value += '\''; break;
          case '"': value += '"'; break;
          case '0': value += '\0'; break;
          default: Fail(std::string("unknown escape '\\") + esc + "'");
        }
      } else {
        value += c;
      }
    }
    return Make(TokenType::kString, std::move(value));
  }

  Token LexNumber(char first) {
    std::string text(1, first);
    while (std::isdigit(static_cast<unsigned char>(Peek()))) text += Advance();
    if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
      text += Advance();
      while (std::isdigit(static_cast<unsigned char>(Peek()))) {
        text += Advance();
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      size_t mark = 1;
      if (Peek(mark) == '+' || Peek(mark) == '-') ++mark;
      if (std::isdigit(static_cast<unsigned char>(Peek(mark)))) {
        text += Advance();  // e
        if (Peek() == '+' || Peek() == '-') text += Advance();
        while (std::isdigit(static_cast<unsigned char>(Peek()))) {
          text += Advance();
        }
      }
    }
    Token token = Make(TokenType::kNumber, text);
    token.number = std::strtod(text.c_str(), nullptr);
    return token;
  }

  Token LexIdentifier(char first) {
    std::string text(1, first);
    while (std::isalnum(static_cast<unsigned char>(Peek())) || Peek() == '_' ||
           Peek() == '$') {
      text += Advance();
    }
    auto it = Keywords().find(text);
    if (it != Keywords().end()) return Make(it->second, std::move(text));
    return Make(TokenType::kIdentifier, std::move(text));
  }

  std::string_view source_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
  int token_line_ = 1;
  int token_column_ = 1;
};

}  // namespace

std::vector<Token> Tokenize(std::string_view source) {
  return Lexer(source).Run();
}

}  // namespace mobivine::minijs
