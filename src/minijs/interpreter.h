// Tree-walking interpreter for MiniJS.
//
// The interpreter owns the global environment and keeps every loaded
// program's AST alive (script closures point into it). Execution counts
// interpreter steps, which the WebView substrate converts to virtual time —
// that is how the JS layer's extra cost shows up in Figure 10's WebView
// column.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "minijs/ast.h"
#include "minijs/value.h"

namespace mobivine::minijs {

/// A thrown script value (from `throw` or a host-raised error) that escaped
/// to the C++ caller.
class ScriptError : public std::runtime_error {
 public:
  explicit ScriptError(Value thrown)
      : std::runtime_error("MiniJS uncaught: " + thrown.ToDisplayString()),
        thrown_(std::move(thrown)) {}
  const Value& thrown() const { return thrown_; }

 private:
  Value thrown_;
};

/// Lexical scope chain node.
class Environment {
 public:
  explicit Environment(std::shared_ptr<Environment> parent = nullptr)
      : parent_(std::move(parent)) {}

  /// Declare in THIS scope (var / parameter / function declaration).
  void Define(const std::string& name, Value value) {
    variables_[name] = std::move(value);
  }
  /// Lookup through the chain; true if found.
  bool Get(const std::string& name, Value& out) const;
  /// Assign through the chain; falls back to defining a global (sloppy-mode
  /// JS behaviour) and returns false in that case.
  bool Assign(const std::string& name, Value value);

 private:
  // std::map (not unordered_map) on purpose: ordered iteration makes
  // global dumps and scope walks deterministic, which the golden-output
  // tests and trace comparisons rely on.
  std::map<std::string, Value> variables_;
  std::shared_ptr<Environment> parent_;
};

class Interpreter {
 public:
  Interpreter();

  // --- loading and calling ----------------------------------------------
  /// Parse + execute top-level statements in the global scope.
  /// Returns the value of the final expression statement (undefined if the
  /// program ends with a non-expression statement).
  Value Run(std::string_view source);

  /// Execute an already-parsed program. The interpreter retains a
  /// reference for its lifetime (closures point into the AST) but never
  /// mutates it, so one Program may be shared by any number of
  /// interpreters — the seam the gateway's script parse cache uses to
  /// skip re-parsing repeat composites while still giving every
  /// execution a fresh sandbox.
  Value Run(std::shared_ptr<const Program> program);

  /// Call a function value with an explicit `this` and arguments.
  Value Call(const Value& function, const Value& this_value,
             std::vector<Value> arguments);

  /// Look up / define a global.
  [[nodiscard]] Value GetGlobal(const std::string& name) const;
  void SetGlobal(const std::string& name, Value value);

  // --- instrumentation ----------------------------------------------------
  /// Steps executed since construction (one per AST node evaluated).
  std::uint64_t steps() const { return steps_; }
  void ResetSteps() { steps_ = 0; }
  /// Abort with ScriptError after this many steps (runaway guard).
  void set_step_limit(std::uint64_t limit) { step_limit_ = limit; }
  /// Nested script-function call ceiling. The interpreter walks the AST
  /// on the C++ stack, so unbounded script recursion is a real stack
  /// smash, not just a slow loop; past the limit the call throws a
  /// catchable RangeError (JS "maximum call stack" semantics — catching
  /// it is safe because the stack has already unwound to the catch).
  void set_call_depth_limit(std::uint64_t limit) {
    call_depth_limit_ = limit == 0 ? 1 : limit;
  }

  /// Periodic execution observer: invoked from Step() every `interval`
  /// steps with the number of steps executed since the previous
  /// invocation. Hosts use it to charge script execution onto an
  /// external clock (the WebView bridge, a gateway shard's virtual
  /// scheduler) and to enforce time budgets — an observer may throw,
  /// and whatever it throws propagates out of Run()/Call() *without*
  /// being catchable by script-level try/catch (only ThrowSignal is),
  /// so a budget kill cannot be swallowed by a hostile script. Pass a
  /// null observer to detach.
  using StepObserver = std::function<void(std::uint64_t steps_delta)>;
  void set_step_observer(StepObserver observer, std::uint64_t interval = 256) {
    step_observer_ = std::move(observer);
    observer_interval_ = interval == 0 ? 1 : interval;
    steps_since_observe_ = 0;
  }
  /// Deliver any steps accumulated since the last periodic callback to
  /// the observer. Hosts call this after Run()/Call() returns so the
  /// final partial interval is still charged.
  void FlushStepObserver() {
    if (step_observer_ && steps_since_observe_ > 0) {
      const std::uint64_t delta = steps_since_observe_;
      steps_since_observe_ = 0;
      step_observer_(delta);
    }
  }

  /// Lines printed by the built-in print()/log() functions.
  const std::vector<std::string>& output() const { return output_; }
  void ClearOutput() { output_.clear(); }

  std::shared_ptr<Environment> globals() { return globals_; }

 private:
  friend struct EvalVisitor;

  // Control-flow signals (internal C++ exceptions).
  struct ReturnSignal {
    Value value;
  };
  struct BreakSignal {};
  struct ContinueSignal {};
  struct ThrowSignal {
    Value value;
  };

  void Step(int line);
  /// Charge allocated bytes as extra steps (1 per 64 bytes), with the
  /// same limit check and observer delivery as Step(). String building
  /// happens inside single AST nodes, so without this a sandboxed
  /// `s = s + s` doubling loop would reach gigabytes in ~30 "steps" —
  /// memory growth must burn the step budget at the rate it allocates.
  void ChargeAllocation(std::size_t bytes);
  void ExecuteBlock(const std::vector<StmtPtr>& statements,
                    const std::shared_ptr<Environment>& env,
                    const Value& this_value);
  void Execute(const Stmt& stmt, const std::shared_ptr<Environment>& env,
               const Value& this_value);
  Value Evaluate(const Expr& expr, const std::shared_ptr<Environment>& env,
                 const Value& this_value);
  Value CallFunction(const std::shared_ptr<Function>& function,
                     const Value& this_value, std::vector<Value>& arguments);
  Value EvaluateBinary(const BinaryExpr& expr, Value left, Value right);
  /// Built-in members on primitive values and arrays ("abc".length,
  /// arr.push, ...). Returns true when handled.
  bool BuiltinMember(const Value& object, const std::string& name, Value& out);

  void InstallBuiltins();

  std::shared_ptr<Environment> globals_;
  std::vector<std::shared_ptr<const Program>> loaded_programs_;
  std::uint64_t steps_ = 0;
  std::uint64_t step_limit_ = 50'000'000;
  std::uint64_t call_depth_ = 0;
  std::uint64_t call_depth_limit_ = 256;
  StepObserver step_observer_;
  std::uint64_t observer_interval_ = 256;
  std::uint64_t steps_since_observe_ = 0;
  std::vector<std::string> output_;
};

}  // namespace mobivine::minijs
