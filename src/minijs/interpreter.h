// Tree-walking interpreter for MiniJS.
//
// The interpreter owns the global environment and keeps every loaded
// program's AST alive (script closures point into it). Execution counts
// interpreter steps, which the WebView substrate converts to virtual time —
// that is how the JS layer's extra cost shows up in Figure 10's WebView
// column.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "minijs/ast.h"
#include "minijs/value.h"

namespace mobivine::minijs {

/// A thrown script value (from `throw` or a host-raised error) that escaped
/// to the C++ caller.
class ScriptError : public std::runtime_error {
 public:
  explicit ScriptError(Value thrown)
      : std::runtime_error("MiniJS uncaught: " + thrown.ToDisplayString()),
        thrown_(std::move(thrown)) {}
  const Value& thrown() const { return thrown_; }

 private:
  Value thrown_;
};

/// Lexical scope chain node.
class Environment {
 public:
  explicit Environment(std::shared_ptr<Environment> parent = nullptr)
      : parent_(std::move(parent)) {}

  /// Declare in THIS scope (var / parameter / function declaration).
  void Define(const std::string& name, Value value) {
    variables_[name] = std::move(value);
  }
  /// Lookup through the chain; true if found.
  bool Get(const std::string& name, Value& out) const;
  /// Assign through the chain; falls back to defining a global (sloppy-mode
  /// JS behaviour) and returns false in that case.
  bool Assign(const std::string& name, Value value);

 private:
  std::map<std::string, Value> variables_;
  std::shared_ptr<Environment> parent_;
};

class Interpreter {
 public:
  Interpreter();

  // --- loading and calling ----------------------------------------------
  /// Parse + execute top-level statements in the global scope.
  /// Returns the value of the final expression statement (undefined if the
  /// program ends with a non-expression statement).
  Value Run(std::string_view source);

  /// Call a function value with an explicit `this` and arguments.
  Value Call(const Value& function, const Value& this_value,
             std::vector<Value> arguments);

  /// Look up / define a global.
  [[nodiscard]] Value GetGlobal(const std::string& name) const;
  void SetGlobal(const std::string& name, Value value);

  // --- instrumentation ----------------------------------------------------
  /// Steps executed since construction (one per AST node evaluated).
  std::uint64_t steps() const { return steps_; }
  void ResetSteps() { steps_ = 0; }
  /// Abort with ScriptError after this many steps (runaway guard).
  void set_step_limit(std::uint64_t limit) { step_limit_ = limit; }

  /// Lines printed by the built-in print()/log() functions.
  const std::vector<std::string>& output() const { return output_; }
  void ClearOutput() { output_.clear(); }

  std::shared_ptr<Environment> globals() { return globals_; }

 private:
  friend struct EvalVisitor;

  // Control-flow signals (internal C++ exceptions).
  struct ReturnSignal {
    Value value;
  };
  struct BreakSignal {};
  struct ContinueSignal {};
  struct ThrowSignal {
    Value value;
  };

  void Step(int line);
  void ExecuteBlock(const std::vector<StmtPtr>& statements,
                    const std::shared_ptr<Environment>& env,
                    const Value& this_value);
  void Execute(const Stmt& stmt, const std::shared_ptr<Environment>& env,
               const Value& this_value);
  Value Evaluate(const Expr& expr, const std::shared_ptr<Environment>& env,
                 const Value& this_value);
  Value CallFunction(const std::shared_ptr<Function>& function,
                     const Value& this_value, std::vector<Value>& arguments);
  Value EvaluateBinary(const BinaryExpr& expr, Value left, Value right);
  /// Built-in members on primitive values and arrays ("abc".length,
  /// arr.push, ...). Returns true when handled.
  bool BuiltinMember(const Value& object, const std::string& name, Value& out);

  void InstallBuiltins();

  std::shared_ptr<Environment> globals_;
  std::vector<std::unique_ptr<Program>> loaded_programs_;
  std::uint64_t steps_ = 0;
  std::uint64_t step_limit_ = 50'000'000;
  std::vector<std::string> output_;
};

}  // namespace mobivine::minijs
