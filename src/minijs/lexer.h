// Hand-written lexer for MiniJS. Supports line ('//') and block comments,
// single- and double-quoted strings with the common escapes, and decimal
// number literals (integer, fraction, exponent).
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "minijs/token.h"

namespace mobivine::minijs {

/// Thrown for unterminated strings/comments and unknown characters.
class LexError : public std::runtime_error {
 public:
  LexError(const std::string& message, int line, int column)
      : std::runtime_error("MiniJS lex error at " + std::to_string(line) +
                           ":" + std::to_string(column) + ": " + message),
        line_(line),
        column_(column) {}
  int line() const { return line_; }
  int column() const { return column_; }

 private:
  int line_;
  int column_;
};

/// Tokenize a complete source text (final token is always kEof).
[[nodiscard]] std::vector<Token> Tokenize(std::string_view source);

}  // namespace mobivine::minijs
