// Recursive-descent parser for MiniJS. Grammar summary (highest binding
// last):
//
//   program      := statement*
//   statement    := block | var | function | return | if | while | for
//                 | break | continue | throw | try | expression ';'
//   expression   := assignment
//   assignment   := conditional (('=' | '+=' | '-=') assignment)?
//   conditional  := logical_or ('?' assignment ':' assignment)?
//   logical_or   := logical_and ('||' logical_and)*
//   logical_and  := equality ('&&' equality)*
//   equality     := relational (('=='|'==='|'!='|'!==') relational)*
//   relational   := additive (('<'|'<='|'>'|'>=') additive)*
//   additive     := multiplicative (('+'|'-') multiplicative)*
//   multiplicative := unary (('*'|'/'|'%') unary)*
//   unary        := ('!'|'-'|'typeof'|'++'|'--') unary | postfix
//   postfix      := call_chain ('++'|'--')?
//   call_chain   := primary ( '(' args ')' | '.' name | '[' expr ']' )*
//   primary      := literal | identifier | this | '(' expr ')'
//                 | array | object | function_expr | 'new' call_chain
//
// Semicolons are required statement terminators (no ASI).
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "minijs/ast.h"
#include "minijs/token.h"

namespace mobivine::minijs {

class SyntaxError : public std::runtime_error {
 public:
  SyntaxError(const std::string& message, int line, int column)
      : std::runtime_error("MiniJS syntax error at " + std::to_string(line) +
                           ":" + std::to_string(column) + ": " + message),
        line_(line),
        column_(column) {}
  int line() const { return line_; }
  int column() const { return column_; }

 private:
  int line_;
  int column_;
};

/// Parse a full program. Throws LexError or SyntaxError.
[[nodiscard]] Program ParseProgram(std::string_view source);

}  // namespace mobivine::minijs
