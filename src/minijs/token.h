// Token definitions for MiniJS, the small JavaScript-like language that
// hosts the WebView proxy scripts.
#pragma once

#include <string>

namespace mobivine::minijs {

enum class TokenType {
  // Literals and names
  kNumber,
  kString,
  kIdentifier,
  // Keywords
  kVar,
  kFunction,
  kReturn,
  kIf,
  kElse,
  kWhile,
  kFor,
  kBreak,
  kContinue,
  kTrue,
  kFalse,
  kNull,
  kUndefined,
  kNew,
  kThis,
  kTypeof,
  kThrow,
  kTry,
  kCatch,
  kFinally,
  // Punctuation
  kLeftParen,
  kRightParen,
  kLeftBrace,
  kRightBrace,
  kLeftBracket,
  kRightBracket,
  kComma,
  kSemicolon,
  kColon,
  kDot,
  kQuestion,
  // Operators
  kAssign,        // =
  kPlus,          // +
  kMinus,         // -
  kStar,          // *
  kSlash,         // /
  kPercent,       // %
  kPlusAssign,    // +=
  kMinusAssign,   // -=
  kPlusPlus,      // ++
  kMinusMinus,    // --
  kEq,            // ==
  kStrictEq,      // ===
  kNotEq,         // !=
  kStrictNotEq,   // !==
  kLess,          // <
  kLessEq,        // <=
  kGreater,       // >
  kGreaterEq,     // >=
  kAndAnd,        // &&
  kOrOr,          // ||
  kBang,          // !
  // End of input
  kEof,
};

struct Token {
  TokenType type = TokenType::kEof;
  std::string text;     // raw lexeme (decoded for strings)
  double number = 0.0;  // value for kNumber
  int line = 1;
  int column = 1;
};

[[nodiscard]] const char* ToString(TokenType type);

}  // namespace mobivine::minijs
