#include "cluster/client.h"

#include <chrono>
#include <limits>
#include <thread>
#include <utility>

#include "support/trace.h"

namespace mobivine::cluster {

std::uint64_t ParseWrongWorkerEpoch(const std::string& body) {
  // Strict by construction (the strtoull predecessor accepted trailing
  // garbage and — worse — saturated overflow to ULLONG_MAX, turning one
  // hostile byte string into a refresh target no controller will ever
  // publish): non-empty, all digits, overflow-checked, or 0.
  if (body.empty()) return 0;
  std::uint64_t value = 0;
  for (const char c : body) {
    if (c < '0' || c > '9') return 0;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      return 0;
    }
    value = value * 10 + digit;
  }
  return value;
}

Client::Client(ClientConfig config) : config_(config) {}

Client::~Client() { Stop(); }

bool Client::Start(std::string* error) {
  if (started_.load(std::memory_order_acquire)) {
    if (error) *error = "cluster client already started";
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(control_mutex_);
    if (!control_.Connect(config_.controller_port, config_.connect, error)) {
      return false;
    }
  }
  if (!RefreshPlanAtLeast(1)) {
    if (error) *error = "controller has no partition plan (no workers yet)";
    std::lock_guard<std::mutex> lock(control_mutex_);
    control_.Close();
    return false;
  }
  closing_.store(false, std::memory_order_release);
  started_.store(true, std::memory_order_release);
  return true;
}

void Client::Stop() {
  closing_.store(true, std::memory_order_release);
  started_.store(false, std::memory_order_release);
  std::unordered_map<std::uint64_t, std::shared_ptr<wire::WireClient>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    conns.swap(conns_);
  }
  for (auto& [worker_id, conn] : conns) conn->Close();
  DrainGraveyard();
  std::lock_guard<std::mutex> lock(control_mutex_);
  control_.Close();
}

ClientStats Client::Stats() const {
  ClientStats stats;
  stats.calls = calls_.load(std::memory_order_relaxed);
  stats.wrong_worker_retries =
      wrong_worker_retries_.load(std::memory_order_relaxed);
  stats.transport_retries = transport_retries_.load(std::memory_order_relaxed);
  stats.plan_refreshes = plan_refreshes_.load(std::memory_order_relaxed);
  stats.exhausted = exhausted_.load(std::memory_order_relaxed);
  stats.push_subscribes = push_subscribes_.load(std::memory_order_relaxed);
  stats.push_resubscribes =
      push_resubscribes_.load(std::memory_order_relaxed);
  return stats;
}

std::uint64_t Client::OwnerOf(std::uint64_t client_id) const {
  std::lock_guard<std::mutex> lock(plan_mutex_);
  if (plan_.members.empty()) return 0;
  return ring_.OwnerFor(client_id);
}

bool Client::Resolve(std::uint64_t client_id, Route* route) {
  std::uint64_t worker_id = 0;
  std::uint16_t data_port = 0;
  {
    std::lock_guard<std::mutex> lock(plan_mutex_);
    if (plan_.epoch == 0 || ring_.empty()) return false;
    worker_id = ring_.OwnerFor(client_id);
    for (const PlanMember& member : plan_.members) {
      if (member.worker_id == worker_id) {
        data_port = member.data_port;
        break;
      }
    }
    route->epoch = plan_.epoch;
  }
  if (data_port == 0) return false;
  route->worker_id = worker_id;

  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    const auto it = conns_.find(worker_id);
    if (it != conns_.end()) {
      if (it->second->connected()) {
        route->conn = it->second;
        return true;
      }
      graveyard_.push_back(std::move(it->second));
      conns_.erase(it);
    }
  }

  // Dial outside conns_mutex_ (a connect can take the full timeout).
  auto conn = std::make_shared<wire::WireClient>();
  std::string error;
  if (!conn->Connect(data_port, config_.connect, &error)) return false;

  std::lock_guard<std::mutex> lock(conns_mutex_);
  auto [it, inserted] = conns_.emplace(worker_id, conn);
  if (!inserted) {
    // Another thread dialed the same worker first; keep theirs.
    conn->Close();
    route->conn = it->second;
    return true;
  }
  route->conn = std::move(conn);
  return true;
}

bool Client::RefreshPlanAtLeast(std::uint64_t min_epoch) {
  if (min_epoch != 0 &&
      plan_epoch_.load(std::memory_order_acquire) >= min_epoch) {
    return true;  // another thread already refreshed past the target
  }
  std::lock_guard<std::mutex> lock(control_mutex_);
  if (min_epoch != 0 &&
      plan_epoch_.load(std::memory_order_acquire) >= min_epoch) {
    return true;
  }
  if (!control_.connected()) {
    std::string error;
    if (!control_.Connect(config_.controller_port, config_.connect, &error)) {
      return false;
    }
  }
  ControlMessage request;
  request.op = ControlOp::kPlanGet;
  ControlMessage reply;
  std::string error;
  const bool ok = control_.Roundtrip(
      std::move(request), &reply, config_.control_timeout_us, &error,
      [this](const ControlMessage& push) {
        if (push.op == ControlOp::kPlanPush) ApplyPlan(push.plan);
      });
  if (!ok) {
    control_.Close();  // dead control link; next refresh re-dials
    return false;
  }
  if (reply.op != ControlOp::kPlanPush) return false;
  ApplyPlan(reply.plan);
  plan_refreshes_.fetch_add(1, std::memory_order_relaxed);
  support::trace::Instant("cluster.client_plan_refresh", "epoch",
                          static_cast<std::int64_t>(reply.plan.epoch));
  return plan_epoch_.load(std::memory_order_acquire) >= min_epoch;
}

void Client::ApplyPlan(const PartitionPlan& plan) {
  std::vector<std::uint64_t> stale;
  {
    std::lock_guard<std::mutex> lock(plan_mutex_);
    if (plan.epoch <= plan_.epoch) return;
    plan_ = plan;
    ring_.Rebuild(plan_);
    plan_epoch_.store(plan_.epoch, std::memory_order_release);
  }
  // Prune cached connections to workers that left the plan — their
  // sockets may linger half-dead (a drained worker exits eventually);
  // better to drop them now than discover it with a failed call.
  std::lock_guard<std::mutex> lock(conns_mutex_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    bool planned = false;
    for (const PlanMember& member : plan.members) {
      if (member.worker_id == it->first) {
        planned = true;
        break;
      }
    }
    if (planned) {
      ++it;
    } else {
      graveyard_.push_back(std::move(it->second));
      it = conns_.erase(it);
    }
  }
}

void Client::DropConn(std::uint64_t worker_id,
                      const std::shared_ptr<wire::WireClient>& conn) {
  std::lock_guard<std::mutex> lock(conns_mutex_);
  const auto it = conns_.find(worker_id);
  if (it != conns_.end() && it->second == conn) {
    graveyard_.push_back(std::move(it->second));
    conns_.erase(it);
  }
}

void Client::DrainGraveyard() {
  std::vector<std::shared_ptr<wire::WireClient>> dead;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    dead.swap(graveyard_);
  }
  for (auto& conn : dead) conn->Close();  // joins reader threads
}

bool Client::Call(const wire::WireRequest& request,
                  wire::WireResponse* response) {
  calls_.fetch_add(1, std::memory_order_relaxed);
  DrainGraveyard();
  for (int attempt = 0; attempt < config_.max_attempts; ++attempt) {
    if (closing_.load(std::memory_order_acquire)) break;
    if (attempt > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(config_.retry_backoff_us));
    }
    Route route;
    if (!Resolve(request.client_id, &route)) {
      transport_retries_.fetch_add(1, std::memory_order_relaxed);
      (void)RefreshPlanAtLeast(0);
      continue;
    }
    wire::WireResponse reply;
    if (!route.conn->Call(request, &reply)) {
      // Transport death: drop the conn, refresh (the controller may
      // already know), try again.
      transport_retries_.fetch_add(1, std::memory_order_relaxed);
      support::trace::Instant("cluster.client_transport_retry");
      DropConn(route.worker_id, route.conn);
      DrainGraveyard();
      (void)RefreshPlanAtLeast(0);
      continue;
    }
    if (reply.status == wire::WireStatus::kWrongWorker) {
      // Refresh past the epoch the worker stamped; when we already hold
      // it (a fenced worker whose leave the controller has not processed
      // yet), force a real fetch for the NEXT epoch — retrying the same
      // plan would just bounce off the same fence.
      wrong_worker_retries_.fetch_add(1, std::memory_order_relaxed);
      support::trace::Instant("cluster.client_wrong_worker");
      std::uint64_t want = ParseWrongWorkerEpoch(reply.body);
      const std::uint64_t held = plan_epoch_.load(std::memory_order_acquire);
      if (want <= held) want = held + 1;
      (void)RefreshPlanAtLeast(want);
      continue;
    }
    *response = std::move(reply);
    return true;
  }
  exhausted_.fetch_add(1, std::memory_order_relaxed);
  if (response != nullptr) {
    response->status = wire::WireStatus::kTransportError;
    response->body = "cluster route attempts exhausted";
  }
  return false;
}

bool Client::Submit(const wire::WireRequest& request, Callback callback) {
  calls_.fetch_add(1, std::memory_order_relaxed);
  DrainGraveyard();
  SubmitAttempt(request, 0, std::move(callback));
  return true;
}

void Client::SubmitAttempt(const wire::WireRequest& request, int attempt,
                           Callback callback) {
  if (attempt >= config_.max_attempts ||
      closing_.load(std::memory_order_acquire)) {
    if (attempt >= config_.max_attempts) {
      exhausted_.fetch_add(1, std::memory_order_relaxed);
    }
    wire::WireResponse failure;
    failure.request_id = request.request_id;
    failure.status = wire::WireStatus::kTransportError;
    failure.body = "cluster route attempts exhausted";
    callback(failure);
    return;
  }
  if (attempt > 0) {
    // Same pacing as Call(). This can run on a reader thread, delaying
    // that connection's other callbacks by one backoff — acceptable:
    // retries only happen mid-plan-change, when that connection's
    // responses are stalled anyway.
    std::this_thread::sleep_for(
        std::chrono::microseconds(config_.retry_backoff_us));
  }
  Route route;
  if (!Resolve(request.client_id, &route)) {
    transport_retries_.fetch_add(1, std::memory_order_relaxed);
    (void)RefreshPlanAtLeast(0);
    SubmitAttempt(request, attempt + 1, std::move(callback));
    return;
  }
  auto conn = route.conn;
  const bool sent =
      conn->Submit(request, RetryCallback(request, attempt, std::move(callback),
                                          route.worker_id, conn));
  if (!sent) {
    // Submit already fired the callback (with kTransportError), which
    // re-routed above; nothing more to do here.
  }
}

Client::Callback Client::RetryCallback(const wire::WireRequest& request,
                                       int attempt, Callback callback,
                                       std::uint64_t worker_id,
                                       std::shared_ptr<wire::WireClient> conn) {
  // This wrapper runs on conn's reader thread. Re-routing from there is
  // allowed — RefreshPlanAtLeast and Resolve touch the control channel
  // and OTHER connections; the one thing forbidden is Close()ing conn
  // itself, which is why failures park it in the graveyard instead
  // (drained later from user threads).
  return [this, request, attempt, worker_id, conn = std::move(conn),
          callback =
              std::move(callback)](const wire::WireResponse& reply) mutable {
    if (reply.status == wire::WireStatus::kWrongWorker &&
        !closing_.load(std::memory_order_acquire)) {
      wrong_worker_retries_.fetch_add(1, std::memory_order_relaxed);
      support::trace::Instant("cluster.client_wrong_worker");
      std::uint64_t want = ParseWrongWorkerEpoch(reply.body);
      const std::uint64_t held = plan_epoch_.load(std::memory_order_acquire);
      if (want <= held) want = held + 1;
      (void)RefreshPlanAtLeast(want);
      SubmitAttempt(request, attempt + 1, std::move(callback));
      return;
    }
    if (reply.status == wire::WireStatus::kTransportError &&
        !closing_.load(std::memory_order_acquire)) {
      transport_retries_.fetch_add(1, std::memory_order_relaxed);
      support::trace::Instant("cluster.client_transport_retry");
      DropConn(worker_id, conn);
      (void)RefreshPlanAtLeast(0);
      SubmitAttempt(request, attempt + 1, std::move(callback));
      return;
    }
    callback(reply);
  };
}

bool Client::CallScript(const wire::WireScriptRequest& script,
                        wire::WireResponse* response) {
  calls_.fetch_add(1, std::memory_order_relaxed);
  DrainGraveyard();
  for (int attempt = 0; attempt < config_.max_attempts; ++attempt) {
    if (closing_.load(std::memory_order_acquire)) break;
    if (attempt > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(config_.retry_backoff_us));
    }
    Route route;
    if (!Resolve(script.client_id, &route)) {
      transport_retries_.fetch_add(1, std::memory_order_relaxed);
      (void)RefreshPlanAtLeast(0);
      continue;
    }
    wire::WireResponse reply;
    if (!route.conn->CallScript(script, &reply)) {
      transport_retries_.fetch_add(1, std::memory_order_relaxed);
      support::trace::Instant("cluster.client_transport_retry");
      DropConn(route.worker_id, route.conn);
      DrainGraveyard();
      (void)RefreshPlanAtLeast(0);
      continue;
    }
    if (reply.status == wire::WireStatus::kWrongWorker) {
      wrong_worker_retries_.fetch_add(1, std::memory_order_relaxed);
      support::trace::Instant("cluster.client_wrong_worker");
      std::uint64_t want = ParseWrongWorkerEpoch(reply.body);
      const std::uint64_t held = plan_epoch_.load(std::memory_order_acquire);
      if (want <= held) want = held + 1;
      (void)RefreshPlanAtLeast(want);
      continue;
    }
    *response = std::move(reply);
    return true;
  }
  exhausted_.fetch_add(1, std::memory_order_relaxed);
  if (response != nullptr) {
    response->status = wire::WireStatus::kTransportError;
    response->body = "cluster route attempts exhausted";
  }
  return false;
}

bool Client::SubmitScript(const wire::WireScriptRequest& script,
                          Callback callback) {
  calls_.fetch_add(1, std::memory_order_relaxed);
  DrainGraveyard();
  SubmitScriptAttempt(script, 0, std::move(callback));
  return true;
}

void Client::SubmitScriptAttempt(const wire::WireScriptRequest& script,
                                 int attempt, Callback callback) {
  if (attempt >= config_.max_attempts ||
      closing_.load(std::memory_order_acquire)) {
    if (attempt >= config_.max_attempts) {
      exhausted_.fetch_add(1, std::memory_order_relaxed);
    }
    wire::WireResponse failure;
    failure.request_id = script.request_id;
    failure.status = wire::WireStatus::kTransportError;
    failure.body = "cluster route attempts exhausted";
    callback(failure);
    return;
  }
  if (attempt > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(config_.retry_backoff_us));
  }
  Route route;
  if (!Resolve(script.client_id, &route)) {
    transport_retries_.fetch_add(1, std::memory_order_relaxed);
    (void)RefreshPlanAtLeast(0);
    SubmitScriptAttempt(script, attempt + 1, std::move(callback));
    return;
  }
  auto conn = route.conn;
  (void)conn->SubmitScript(
      script, ScriptRetryCallback(script, attempt, std::move(callback),
                                  route.worker_id, conn));
}

Client::Callback Client::ScriptRetryCallback(
    const wire::WireScriptRequest& script, int attempt, Callback callback,
    std::uint64_t worker_id, std::shared_ptr<wire::WireClient> conn) {
  // Same reader-thread contract as RetryCallback. kScriptError is a
  // terminal, typed outcome (the sandbox spoke) — only routing and
  // transport failures repair.
  return [this, script, attempt, worker_id, conn = std::move(conn),
          callback =
              std::move(callback)](const wire::WireResponse& reply) mutable {
    if (reply.status == wire::WireStatus::kWrongWorker &&
        !closing_.load(std::memory_order_acquire)) {
      wrong_worker_retries_.fetch_add(1, std::memory_order_relaxed);
      support::trace::Instant("cluster.client_wrong_worker");
      std::uint64_t want = ParseWrongWorkerEpoch(reply.body);
      const std::uint64_t held = plan_epoch_.load(std::memory_order_acquire);
      if (want <= held) want = held + 1;
      (void)RefreshPlanAtLeast(want);
      SubmitScriptAttempt(script, attempt + 1, std::move(callback));
      return;
    }
    if (reply.status == wire::WireStatus::kTransportError &&
        !closing_.load(std::memory_order_acquire)) {
      transport_retries_.fetch_add(1, std::memory_order_relaxed);
      support::trace::Instant("cluster.client_transport_retry");
      DropConn(worker_id, conn);
      (void)RefreshPlanAtLeast(0);
      SubmitScriptAttempt(script, attempt + 1, std::move(callback));
      return;
    }
    callback(reply);
  };
}

/// Everything one routed subscription needs to survive repairs: the
/// filter, the user callbacks, the exactly-once ack latch, and — the
/// load-bearing part — the last cursor the stream delivered, which every
/// re-subscribe carries so the new owner's replay ring covers the
/// failover window.
struct Client::PushSub {
  std::uint64_t client_id = 0;
  wire::PushTopic topic = wire::PushTopic::kAll;
  std::atomic<std::uint64_t> last_cursor{0};
  std::atomic<bool> acked{false};  ///< user's on_ack already fired
  wire::WireClient::EventHandler on_event;
  wire::WireClient::AckCallback on_ack;
};

bool Client::Subscribe(std::uint64_t client_id, wire::PushTopic topic,
                       std::uint64_t cursor,
                       wire::WireClient::EventHandler on_event,
                       wire::WireClient::AckCallback on_ack) {
  push_subscribes_.fetch_add(1, std::memory_order_relaxed);
  DrainGraveyard();
  auto sub = std::make_shared<PushSub>();
  sub->client_id = client_id;
  sub->topic = topic;
  sub->last_cursor.store(cursor, std::memory_order_relaxed);
  sub->on_event = std::move(on_event);
  sub->on_ack = std::move(on_ack);
  SubscribeAttempt(std::move(sub), 0);
  return true;
}

void Client::FailSubscription(const std::shared_ptr<PushSub>& sub,
                              wire::WireStatus status) {
  if (!sub->acked.exchange(true, std::memory_order_acq_rel)) {
    if (sub->on_ack) {
      wire::WireSubscribeAck dead;
      dead.status = status;
      sub->on_ack(dead);
    }
    return;
  }
  // The stream was already live: the user hears about its death the same
  // way the wire client signals it — one synthetic cursor-0 gap marker.
  if (sub->on_event) {
    wire::WireEvent dead;
    dead.kind = wire::EventKind::kEventsDropped;
    sub->on_event(dead);
  }
}

void Client::SubscribeAttempt(std::shared_ptr<PushSub> sub, int attempt) {
  if (attempt >= config_.max_attempts ||
      closing_.load(std::memory_order_acquire)) {
    if (attempt >= config_.max_attempts) {
      exhausted_.fetch_add(1, std::memory_order_relaxed);
    }
    FailSubscription(sub, wire::WireStatus::kTransportError);
    return;
  }
  if (attempt > 0) {
    // Same pacing rationale as SubmitAttempt: this may run on a reader
    // thread, and mid-plan-change that connection is stalled anyway.
    std::this_thread::sleep_for(
        std::chrono::microseconds(config_.retry_backoff_us));
  }
  Route route;
  if (!Resolve(sub->client_id, &route)) {
    transport_retries_.fetch_add(1, std::memory_order_relaxed);
    (void)RefreshPlanAtLeast(0);
    SubscribeAttempt(std::move(sub), attempt + 1);
    return;
  }
  wire::WireSubscribe request;
  request.client_id = sub->client_id;
  request.topic = sub->topic;
  request.mode = wire::SubscribeMode::kFromCursor;
  request.cursor = sub->last_cursor.load(std::memory_order_acquire);
  auto conn = route.conn;
  const std::uint64_t worker_id = route.worker_id;
  (void)conn->Subscribe(
      request,
      // Event path (reader thread). Tracks the resume cursor and spots
      // the wire client's synthetic death marker (kEventsDropped with
      // cursor 0 — real shed ranges always carry cursors >= 1).
      [this, sub](const wire::WireEvent& event) {
        if (event.kind == wire::EventKind::kEventsDropped &&
            event.cursor == 0) {
          if (closing_.load(std::memory_order_acquire)) return;
          transport_retries_.fetch_add(1, std::memory_order_relaxed);
          push_resubscribes_.fetch_add(1, std::memory_order_relaxed);
          support::trace::Instant("cluster.push_resubscribe", "cursor",
                                  static_cast<std::int64_t>(
                                      sub->last_cursor.load(
                                          std::memory_order_relaxed)));
          (void)RefreshPlanAtLeast(0);
          // The dead stream was this repair round's first failure.
          SubscribeAttempt(sub, 1);
          return;
        }
        if (event.cursor >
            sub->last_cursor.load(std::memory_order_relaxed)) {
          sub->last_cursor.store(event.cursor, std::memory_order_release);
        }
        sub->on_event(event);
      },
      // Ack path (reader thread): kOk settles the user's latch; the two
      // retriable statuses re-route exactly like request traffic.
      [this, sub, attempt, worker_id,
       conn](const wire::WireSubscribeAck& ack) {
        if (ack.status == wire::WireStatus::kOk) {
          if (ack.start_cursor >
              sub->last_cursor.load(std::memory_order_relaxed)) {
            // The owner's replay already covered past our cursor:
            // adopt its resume point so the NEXT repair doesn't ask
            // for that span again.
            sub->last_cursor.store(ack.start_cursor,
                                   std::memory_order_release);
          }
          if (!sub->acked.exchange(true, std::memory_order_acq_rel) &&
              sub->on_ack) {
            sub->on_ack(ack);
          }
          return;
        }
        if (closing_.load(std::memory_order_acquire)) {
          FailSubscription(sub, ack.status);
          return;
        }
        if (ack.status == wire::WireStatus::kWrongWorker) {
          wrong_worker_retries_.fetch_add(1, std::memory_order_relaxed);
          push_resubscribes_.fetch_add(1, std::memory_order_relaxed);
          support::trace::Instant("cluster.client_wrong_worker");
          // The epoch rides the ack's start_cursor varint — unlike
          // request traffic there is no decimal body to parse.
          std::uint64_t want = ack.start_cursor;
          const std::uint64_t held =
              plan_epoch_.load(std::memory_order_acquire);
          if (want <= held) want = held + 1;
          (void)RefreshPlanAtLeast(want);
          SubscribeAttempt(sub, attempt + 1);
          return;
        }
        if (ack.status == wire::WireStatus::kTransportError) {
          transport_retries_.fetch_add(1, std::memory_order_relaxed);
          push_resubscribes_.fetch_add(1, std::memory_order_relaxed);
          support::trace::Instant("cluster.client_transport_retry");
          DropConn(worker_id, conn);
          (void)RefreshPlanAtLeast(0);
          SubscribeAttempt(sub, attempt + 1);
          return;
        }
        // Typed rejection (malformed subscribe etc.): terminal.
        FailSubscription(sub, ack.status);
      });
  // A failed send already fired the ack callback with kTransportError,
  // which re-routed above; nothing more to do.
}

std::size_t Client::SubmitBatch(const std::vector<wire::WireRequest>& requests,
                                const Callback& callback) {
  calls_.fetch_add(requests.size(), std::memory_order_relaxed);
  DrainGraveyard();
  // Group by owning worker so each connection gets one contiguous
  // write. Requests whose owner cannot be resolved right now skip the
  // batch and enter the normal retry path (attempt 1: the failed
  // resolve was their first).
  struct Group {
    std::shared_ptr<wire::WireClient> conn;
    std::vector<wire::WireRequest> requests;
    std::vector<Callback> callbacks;
  };
  std::unordered_map<std::uint64_t, Group> groups;
  const auto shared = std::make_shared<const Callback>(callback);
  for (const wire::WireRequest& request : requests) {
    Callback once = [shared](const wire::WireResponse& reply) {
      (*shared)(reply);
    };
    Route route;
    if (!Resolve(request.client_id, &route)) {
      transport_retries_.fetch_add(1, std::memory_order_relaxed);
      (void)RefreshPlanAtLeast(0);
      SubmitAttempt(request, 1, std::move(once));
      continue;
    }
    Group& group = groups[route.worker_id];
    if (!group.conn) group.conn = route.conn;
    group.callbacks.push_back(RetryCallback(request, 0, std::move(once),
                                            route.worker_id, route.conn));
    group.requests.push_back(request);
  }
  for (auto& [worker_id, group] : groups) {
    // A failed write fires the parked RetryCallbacks with
    // kTransportError, which re-route — every request's callback still
    // fires exactly once.
    (void)group.conn->SubmitBatch(group.requests, std::move(group.callbacks));
  }
  return requests.size();
}

}  // namespace mobivine::cluster
