// M-Cluster client: plan-aware routing on top of wire::WireClient.
//
// The client fetches the partition plan from the controller once
// (kPlanGet), then routes every request DIRECTLY to the owning worker —
// the controller is never on the data path. Routing is the same
// consistent-hash lookup the workers run (cluster/plan.h), keyed on
// WireRequest::client_id, so in steady state a request hits the right
// worker on the first try and costs exactly what a plain WireClient
// call costs plus one binary search.
//
// Staleness is repaired in-band, not by polling: a worker that no longer
// owns the key answers WireStatus::kWrongWorker with ITS plan epoch as
// the body, and the client refreshes until it holds at least that epoch,
// re-routes, and retries — a bounded loop (RouteOptions::max_attempts),
// with a small backoff once the plan stops changing (covers the window
// where a worker has fenced but the controller has not yet republished).
// A dead worker surfaces as kTransportError; same loop, plus the
// connection is dropped so the next attempt re-dials.
//
// Connections are cached per worker id and shared (WireClient pipelines
// freely). A dropped connection is never Close()d from a reader-thread
// callback (WireClient forbids it — Close joins the reader); it moves to
// a graveyard that user threads drain on their next call. Submit() is
// fully pipelined and performs the same bounded re-route from the
// callback path, so a closed-loop bench window keeps its depth across a
// plan change.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/control.h"
#include "cluster/plan.h"
#include "wire/client.h"
#include "wire/protocol.h"

namespace mobivine::cluster {

struct ClientConfig {
  std::uint16_t controller_port = 0;
  /// Dialing the controller and workers.
  wire::ConnectOptions connect{.connect_timeout =
                                   std::chrono::microseconds(2'000'000),
                               .max_attempts = 3,
                               .initial_backoff =
                                   std::chrono::microseconds(25'000)};
  /// Route attempts per request before giving up (first try included).
  int max_attempts = 8;
  /// Backoff between attempts when the plan has not advanced.
  std::uint64_t retry_backoff_us = 25'000;
  /// Deadline for each control-plane roundtrip (plan fetches).
  std::uint64_t control_timeout_us = 2'000'000;
};

struct ClientStats {
  std::uint64_t calls = 0;
  std::uint64_t wrong_worker_retries = 0;
  std::uint64_t transport_retries = 0;
  std::uint64_t plan_refreshes = 0;
  std::uint64_t exhausted = 0;  ///< requests that ran out of attempts
  std::uint64_t push_subscribes = 0;    ///< Subscribe() calls
  std::uint64_t push_resubscribes = 0;  ///< repairs: wrong worker / death
};

/// Parse a kWrongWorker response body (the worker's plan epoch as a
/// decimal string). STRICT: returns 0 — "unknown; refresh to anything
/// newer" — unless the body is non-empty, entirely ASCII digits, and
/// fits in 64 bits. Empty, garbage, trailing bytes and overflow all map
/// to 0: an overflow lazily parsed as ULLONG_MAX would demand an epoch
/// no controller will ever publish and burn the whole retry budget on
/// futile refreshes. Exposed for tests and the malformed-body fuzzer.
[[nodiscard]] std::uint64_t ParseWrongWorkerEpoch(const std::string& body);

class Client {
 public:
  using Callback = wire::WireClient::Callback;

  explicit Client(ClientConfig config);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to the controller and fetch the initial plan. False (with
  /// `error`) when the controller is unreachable or has no members yet.
  [[nodiscard]] bool Start(std::string* error = nullptr);

  /// Close every worker connection and the control channel. Idempotent.
  /// In-flight Submit callbacks fire with kTransportError.
  void Stop();

  /// Synchronous routed call. False only when every attempt failed;
  /// protocol-level errors (kInvalidRequest etc.) come back as response
  /// statuses on the first try — only kWrongWorker and kTransportError
  /// are retried.
  bool Call(const wire::WireRequest& request, wire::WireResponse* response);

  /// Pipelined routed send: the callback fires exactly once, from a
  /// worker connection's reader thread, after internal re-routing. Keep
  /// callbacks short (same contract as WireClient::Submit).
  bool Submit(const wire::WireRequest& request, Callback callback);

  /// M-Script: synchronous routed composite invocation. The script is
  /// plan-routed by its client id (it executes against the owning
  /// shard's state) with the same bounded kWrongWorker / transport
  /// repair as Call(). NOTE the re-route caveat: a worker that
  /// *executed* the script and then died before answering looks like a
  /// transport failure, and the retry re-executes it — scripts are
  /// exactly-once per worker, at-least-once across repairs. Composites
  /// with side effects should be written idempotently (or submitted with
  /// a client-side dedup key in args) when that matters.
  bool CallScript(const wire::WireScriptRequest& script,
                  wire::WireResponse* response);

  /// Pipelined routed script send; same contract (and the same re-route
  /// caveat) as CallScript, callback-shaped like Submit().
  bool SubmitScript(const wire::WireScriptRequest& script, Callback callback);

  /// M-Push: open a routed subscription for `client_id`, starting after
  /// `cursor` (0 = from the beginning of what the owner's shard feed
  /// still retains). The stream follows the partition plan: a
  /// kWrongWorker ack (epoch carried in the ack's start_cursor varint —
  /// no body parsing) refreshes the plan and re-subscribes against the
  /// new owner; a dead worker (transport ack, or the wire client's
  /// synthetic cursor-0 gap marker) drops the connection and
  /// re-subscribes the same way. Every repair re-subscribes
  /// kFromCursor with the LAST cursor the stream delivered, so the new
  /// owner's replay ring covers the failover window — anything it no
  /// longer retains arrives as a typed kEventsDropped gap marker, never
  /// silent loss. `on_event` runs on worker-connection reader threads.
  /// `on_ack` fires exactly once, with the first kOk ack or with the
  /// error that exhausted the route attempts; if the stream dies later
  /// and repair exhausts its attempts, `on_event` receives one final
  /// synthetic kEventsDropped event with cursor == 0. Returns true when
  /// the subscription entered the routed-retry machinery (the eventual
  /// outcome arrives via the callbacks).
  bool Subscribe(std::uint64_t client_id, wire::PushTopic topic,
                 std::uint64_t cursor, wire::WireClient::EventHandler on_event,
                 wire::WireClient::AckCallback on_ack);

  /// Routed batch: resolve every request's owner, then issue ONE
  /// coalesced write per worker connection
  /// (WireClient::SubmitBatch) — without this, fanning a request
  /// stream out over N workers trades away the write batching that
  /// dominates loopback throughput. `callback` fires exactly once per
  /// request (any order, reader threads), and each request keeps the
  /// same bounded re-route as Submit(). Returns requests.size().
  std::size_t SubmitBatch(const std::vector<wire::WireRequest>& requests,
                          const Callback& callback);

  [[nodiscard]] std::uint64_t plan_epoch() const {
    return plan_epoch_.load(std::memory_order_acquire);
  }
  /// The worker id `client_id` routes to under the currently held plan
  /// (0 when no plan). Locality introspection: callers that batch work
  /// per backend — or pin per-connection pipelining windows — group by
  /// this without a round trip.
  [[nodiscard]] std::uint64_t OwnerOf(std::uint64_t client_id) const;
  [[nodiscard]] ClientStats Stats() const;

 private:
  struct Route {
    std::shared_ptr<wire::WireClient> conn;
    std::uint64_t worker_id = 0;
    std::uint64_t epoch = 0;
  };

  /// Resolve client_id -> (worker, live connection) under the current
  /// plan, dialing if needed. False when the owner is unreachable (the
  /// caller refreshes and retries).
  bool Resolve(std::uint64_t client_id, Route* route);
  /// Fetch plans from the controller until epoch >= min_epoch or the
  /// control deadline passes. min_epoch 0 = any newer plan is fine.
  bool RefreshPlanAtLeast(std::uint64_t min_epoch);
  void ApplyPlan(const PartitionPlan& plan);
  /// Drop a (presumed dead) connection: unmap it and park it in the
  /// graveyard. Safe from reader-thread callbacks.
  void DropConn(std::uint64_t worker_id,
                const std::shared_ptr<wire::WireClient>& conn);
  /// Close + destroy parked connections. User threads only.
  void DrainGraveyard();
  /// One asynchronous attempt; re-routes from the callback on
  /// kWrongWorker / kTransportError until attempts run out.
  void SubmitAttempt(const wire::WireRequest& request, int attempt,
                     Callback callback);
  /// The completion wrapper SubmitAttempt parks on a connection: passes
  /// terminal replies through to `callback`, re-routes kWrongWorker /
  /// kTransportError via SubmitAttempt(attempt + 1).
  Callback RetryCallback(const wire::WireRequest& request, int attempt,
                         Callback callback, std::uint64_t worker_id,
                         std::shared_ptr<wire::WireClient> conn);
  /// Script twins of SubmitAttempt/RetryCallback (scripts route and
  /// repair identically; only the frame type and send entry differ).
  void SubmitScriptAttempt(const wire::WireScriptRequest& script, int attempt,
                           Callback callback);
  Callback ScriptRetryCallback(const wire::WireScriptRequest& script,
                               int attempt, Callback callback,
                               std::uint64_t worker_id,
                               std::shared_ptr<wire::WireClient> conn);

  /// One routed subscription's cross-repair state.
  struct PushSub;
  /// One subscribe attempt; kWrongWorker / transport failures re-enter
  /// with attempt + 1 (bounded by max_attempts), always carrying the
  /// last cursor the stream delivered.
  void SubscribeAttempt(std::shared_ptr<PushSub> sub, int attempt);
  /// Terminal failure: fire the user's ack exactly once, or — when the
  /// stream was already live — one synthetic cursor-0 gap marker.
  void FailSubscription(const std::shared_ptr<PushSub>& sub,
                        wire::WireStatus status);

  const ClientConfig config_;

  std::mutex control_mutex_;  ///< serializes the ControlChannel
  ControlChannel control_;

  mutable std::mutex plan_mutex_;
  PartitionPlan plan_;
  HashRing ring_;
  std::atomic<std::uint64_t> plan_epoch_{0};

  std::mutex conns_mutex_;
  std::unordered_map<std::uint64_t, std::shared_ptr<wire::WireClient>> conns_;
  std::vector<std::shared_ptr<wire::WireClient>> graveyard_;

  std::atomic<bool> started_{false};
  std::atomic<bool> closing_{false};

  std::atomic<std::uint64_t> calls_{0};
  std::atomic<std::uint64_t> wrong_worker_retries_{0};
  std::atomic<std::uint64_t> transport_retries_{0};
  std::atomic<std::uint64_t> plan_refreshes_{0};
  std::atomic<std::uint64_t> exhausted_{0};
  std::atomic<std::uint64_t> push_subscribes_{0};
  std::atomic<std::uint64_t> push_resubscribes_{0};
};

}  // namespace mobivine::cluster
