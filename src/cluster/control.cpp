#include "cluster/control.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "support/varint.h"

namespace mobivine::cluster {

namespace {

using support::GetVarint;
using support::PutVarint;
using support::VarintStatus;

/// Plans are small (a handful of workers), but the decoder still bounds
/// the count before reserving — same discipline as the data plane's caps.
constexpr std::uint64_t kMaxPlanMembers = 4096;

constexpr std::size_t kReadChunk = 16 * 1024;

void PutString(std::vector<std::uint8_t>& out, const std::string& s) {
  PutVarint(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

/// Minimal sequential payload reader (the data-plane Reader is file-local
/// to protocol.cpp; control frames need only these three getters).
struct Reader {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;

  bool Varint(std::uint64_t* value) {
    std::size_t consumed = 0;
    if (GetVarint(data + pos, size - pos, value, &consumed) !=
        VarintStatus::kOk) {
      return false;
    }
    pos += consumed;
    return true;
  }

  bool Byte(std::uint8_t* value) {
    if (pos >= size) return false;
    *value = data[pos++];
    return true;
  }

  bool String(std::string* value) {
    std::uint64_t len = 0;
    if (!Varint(&len)) return false;
    if (len > wire::kMaxStringBytes || len > size - pos) return false;
    value->assign(reinterpret_cast<const char*>(data + pos),
                  static_cast<std::size_t>(len));
    pos += static_cast<std::size_t>(len);
    return true;
  }
};

[[nodiscard]] bool Fail(std::string* error, const char* why) {
  if (error != nullptr) *error = why;
  return false;
}

}  // namespace

const char* ToString(ControlOp op) {
  switch (op) {
    case ControlOp::kRegister:
      return "register";
    case ControlOp::kRegisterAck:
      return "register-ack";
    case ControlOp::kHeartbeat:
      return "heartbeat";
    case ControlOp::kHeartbeatAck:
      return "heartbeat-ack";
    case ControlOp::kPlanGet:
      return "plan-get";
    case ControlOp::kPlanPush:
      return "plan-push";
    case ControlOp::kLeave:
      return "leave";
    case ControlOp::kLeaveAck:
      return "leave-ack";
    case ControlOp::kDrain:
      return "drain";
    case ControlOp::kDrainAck:
      return "drain-ack";
    case ControlOp::kError:
      return "error";
  }
  return "unknown";
}

void EncodeControl(const ControlMessage& message,
                   std::vector<std::uint8_t>& out) {
  const std::size_t frame_start = out.size();
  PutVarint(out, message.correlation_id);
  out.push_back(static_cast<std::uint8_t>(message.op));
  PutVarint(out, message.worker_id);
  PutVarint(out, message.data_port);
  PutVarint(out, message.epoch);
  out.push_back(static_cast<std::uint8_t>(message.status));
  PutVarint(out, message.plan.epoch);
  PutVarint(out, message.plan.members.size());
  for (const PlanMember& member : message.plan.members) {
    PutVarint(out, member.worker_id);
    PutVarint(out, member.data_port);
  }
  PutString(out, message.message);
  wire::FinishFrame(out, frame_start, wire::FrameType::kControl);
}

bool DecodeControl(const std::uint8_t* payload, std::size_t size,
                   ControlMessage* message, std::string* error) {
  Reader reader{payload, size};
  std::uint8_t op = 0;
  std::uint8_t status = 0;
  std::uint64_t member_count = 0;
  if (!reader.Varint(&message->correlation_id) || !reader.Byte(&op)) {
    return Fail(error, "control: truncated header");
  }
  if (op < static_cast<std::uint8_t>(ControlOp::kRegister) ||
      op > static_cast<std::uint8_t>(ControlOp::kError)) {
    return Fail(error, "control: unknown op");
  }
  message->op = static_cast<ControlOp>(op);
  if (!reader.Varint(&message->worker_id) ||
      !reader.Varint(&message->data_port) || !reader.Varint(&message->epoch) ||
      !reader.Byte(&status)) {
    return Fail(error, "control: truncated fields");
  }
  if (status > static_cast<std::uint8_t>(AckStatus::kRejected)) {
    return Fail(error, "control: unknown ack status");
  }
  if (message->data_port > 0xffff) {
    return Fail(error, "control: data_port out of range");
  }
  message->status = static_cast<AckStatus>(status);
  if (!reader.Varint(&message->plan.epoch) || !reader.Varint(&member_count)) {
    return Fail(error, "control: truncated plan");
  }
  if (member_count > kMaxPlanMembers) {
    return Fail(error, "control: plan member count over cap");
  }
  message->plan.members.clear();
  message->plan.members.reserve(static_cast<std::size_t>(member_count));
  for (std::uint64_t i = 0; i < member_count; ++i) {
    PlanMember member;
    std::uint64_t port = 0;
    if (!reader.Varint(&member.worker_id) || !reader.Varint(&port)) {
      return Fail(error, "control: truncated plan member");
    }
    if (port > 0xffff) return Fail(error, "control: member port out of range");
    member.data_port = static_cast<std::uint16_t>(port);
    message->plan.members.push_back(member);
  }
  if (!reader.String(&message->message)) {
    return Fail(error, "control: bad message string");
  }
  if (reader.pos != reader.size) {
    return Fail(error, "control: trailing bytes");
  }
  return true;
}

// ---------------------------------------------------------------------------
// ControlChannel
// ---------------------------------------------------------------------------

ControlChannel::~ControlChannel() { Close(); }

bool ControlChannel::Connect(std::uint16_t port,
                             const wire::ConnectOptions& options,
                             std::string* error) {
  Close();
  fd_ = wire::ConnectLoopback(port, options, error);
  carry_.clear();
  return fd_ >= 0;
}

void ControlChannel::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  carry_.clear();
}

bool ControlChannel::Send(const ControlMessage& message, std::string* error) {
  if (fd_ < 0) return Fail(error, "control channel not connected");
  scratch_.clear();
  EncodeControl(message, scratch_);
  std::size_t off = 0;
  while (off < scratch_.size()) {
    // MSG_NOSIGNAL: a peer death mid-send is this channel's error, not a
    // process-wide SIGPIPE.
    const ssize_t w = ::send(fd_, scratch_.data() + off,
                             scratch_.size() - off, MSG_NOSIGNAL);
    if (w > 0) {
      off += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    Close();
    return Fail(error, "control send failed");
  }
  return true;
}

bool ControlChannel::Receive(ControlMessage* message, std::uint64_t timeout_us,
                             std::string* error, bool* timed_out) {
  if (timed_out != nullptr) *timed_out = false;
  if (fd_ < 0) return Fail(error, "control channel not connected");
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(timeout_us);
  while (true) {
    // Decode first: a complete frame may already sit in the carry.
    wire::FrameView frame;
    std::size_t consumed = 0;
    std::string frame_error;
    const wire::DecodeStatus status = wire::DecodeFrame(
        carry_.data(), carry_.size(), &frame, &consumed, &frame_error);
    if (status == wire::DecodeStatus::kMalformed) {
      Close();
      return Fail(error, "control: malformed frame");
    }
    if (status == wire::DecodeStatus::kOk) {
      bool ok = false;
      if (frame.type == wire::FrameType::kControl) {
        ok = DecodeControl(frame.payload, frame.payload_size, message, error);
      } else if (frame.type == wire::FrameType::kResponse) {
        // A data-plane peer that answered our control frame in-band:
        // surface it as a typed failure, not a hang.
        wire::WireResponse response;
        if (DecodeResponse(frame.payload, frame.payload_size, &response,
                           nullptr) &&
            response.status == wire::WireStatus::kUnsupportedFrame) {
          (void)Fail(error, "peer does not speak the control plane");
        } else {
          (void)Fail(error, "control: unexpected response frame");
        }
      } else {
        // Unknown or data frame on the control channel: skip it — the
        // same forward-compatibility stance as the data-plane client.
        carry_.erase(carry_.begin(),
                     carry_.begin() + static_cast<std::ptrdiff_t>(consumed));
        continue;
      }
      carry_.erase(carry_.begin(),
                   carry_.begin() + static_cast<std::ptrdiff_t>(consumed));
      return ok;
    }
    // kNeedMore: wait for bytes within the deadline.
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      if (timed_out != nullptr) *timed_out = true;
      return Fail(error, "control receive timed out");
    }
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    pollfd pfd{fd_, POLLIN, 0};
    const int rc =
        ::poll(&pfd, 1, static_cast<int>(left.count()) + 1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      Close();
      return Fail(error, "control poll failed");
    }
    if (rc == 0) {
      if (timed_out != nullptr) *timed_out = true;
      return Fail(error, "control receive timed out");
    }
    std::uint8_t chunk[kReadChunk];
    const ssize_t n = ::read(fd_, chunk, sizeof chunk);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      Close();
      return Fail(error, "control connection closed");
    }
    carry_.insert(carry_.end(), chunk, chunk + n);
  }
}

bool ControlChannel::Roundtrip(
    ControlMessage request, ControlMessage* reply, std::uint64_t timeout_us,
    std::string* error,
    const std::function<void(const ControlMessage&)>& on_push) {
  request.correlation_id = next_correlation_++;
  if (!Send(request, error)) return false;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(timeout_us);
  while (true) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return Fail(error, "control roundtrip timed out");
    const auto left =
        std::chrono::duration_cast<std::chrono::microseconds>(deadline - now);
    if (!Receive(reply, static_cast<std::uint64_t>(left.count()), error)) {
      return false;
    }
    if (reply->correlation_id == request.correlation_id) return true;
    if (on_push) on_push(*reply);
  }
}

}  // namespace mobivine::cluster
