// M-Cluster membership: the controller's pure worker-liveness state
// machine, driven entirely by an injected clock — no threads, no
// sockets, no wall time. The controller feeds it registrations,
// heartbeats, disconnects and periodic Tick()s; it answers with health
// transitions and a monotonically-epoched partition plan.
//
// Per-worker health walks alive -> suspect -> dead on missed heartbeats,
// the same shape as the gateway's CircuitBreaker (closed -> open ->
// half-open on a failure run, probed on a virtual clock): `suspect` is
// the breaker's open-but-probing middle state — the worker stays IN the
// plan (routing keeps working; a single missed beat must not churn every
// client's routing table), it is merely flagged for observability, and
// one heartbeat snaps it back to alive the way a half-open probe closes
// a breaker. Only `dead` (k consecutive misses) and an explicit
// leave/disconnect remove a member — those are the plan-changing
// transitions, and exactly those bump the epoch.
//
// Epoch contract (what the plan-routing tests pin):
//  * epoch 0 = no plan; the first join produces epoch 1;
//  * every member-set change bumps it by exactly 1;
//  * health flapping (alive <-> suspect) never bumps it;
//  * it never goes backwards, including across a worker's rejoin.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "cluster/plan.h"

namespace mobivine::cluster {

struct MembershipConfig {
  /// Expected heartbeat cadence; miss thresholds are multiples of it.
  std::uint64_t heartbeat_interval_us = 25'000;
  /// Consecutive missed intervals before a worker turns suspect…
  int suspect_after_misses = 2;
  /// …and before it is declared dead and dropped from the plan.
  int dead_after_misses = 8;
};

enum class WorkerHealth : std::uint8_t {
  kAlive,
  kSuspect,  ///< missing beats but still planned (breaker half-open idiom)
  kDead,     ///< missed out; removed from the plan
  kLeft,     ///< graceful leave or connection close; removed from the plan
};

[[nodiscard]] const char* ToString(WorkerHealth health);

enum class RegisterOutcome : std::uint8_t {
  kRejected,  ///< invalid worker id (0)
  kJoined,    ///< brand new member
  kRejoined,  ///< was dead/left; back in the plan (epoch bumps)
  kReplaced,  ///< live id re-registered (restart faster than detection):
              ///< new endpoint wins, epoch bumps so routers re-resolve
};

class Membership {
 public:
  explicit Membership(MembershipConfig config);

  /// A worker announced itself at `now_us`. Plan-changing outcomes
  /// (kJoined / kRejoined / kReplaced) bump the epoch.
  RegisterOutcome Register(std::uint64_t worker_id, std::uint16_t data_port,
                           std::uint64_t now_us);

  /// A heartbeat arrived. False when the worker is unknown or already
  /// dead/left — the sender must re-register (its death was already acted
  /// on; silently resurrecting it would skip the plan bump).
  bool Heartbeat(std::uint64_t worker_id, std::uint64_t now_us);

  /// Graceful removal (kLeave frame, or the registered connection
  /// closed). True when the plan changed (the worker was planned).
  bool Remove(std::uint64_t worker_id, WorkerHealth terminal);

  /// Sweep heartbeat deadlines at `now_us`: alive workers past the
  /// suspect threshold turn suspect, past the dead threshold die (and
  /// leave the plan). Returns true when the plan changed.
  bool Tick(std::uint64_t now_us);

  /// Current plan: alive + suspect members, sorted by id. Rebuilt on
  /// every epoch bump; cheap to copy (the controller encodes it into
  /// pushes while holding no locks here — Membership is single-thread).
  [[nodiscard]] const PartitionPlan& plan() const { return plan_; }

  [[nodiscard]] WorkerHealth health(std::uint64_t worker_id) const;
  [[nodiscard]] std::size_t alive_count() const;
  [[nodiscard]] std::size_t suspect_count() const;

 private:
  struct WorkerState {
    std::uint16_t data_port = 0;
    WorkerHealth health = WorkerHealth::kAlive;
    std::uint64_t last_heartbeat_us = 0;
  };

  void RebuildPlan();

  const MembershipConfig config_;
  std::unordered_map<std::uint64_t, WorkerState> workers_;
  PartitionPlan plan_;  ///< epoch 0 until the first join
};

}  // namespace mobivine::cluster
