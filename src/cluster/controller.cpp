#include "cluster/controller.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "support/logging.h"
#include "support/trace.h"

namespace mobivine::cluster {

namespace {

constexpr std::size_t kReadChunk = 16 * 1024;

void AddU64(std::atomic<std::uint64_t>& counter, std::uint64_t n = 1) {
  counter.fetch_add(n, std::memory_order_relaxed);
}

[[nodiscard]] std::uint64_t NowMicros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

struct Controller::Counters {
  std::atomic<std::uint64_t> epoch{0};
  std::atomic<std::uint64_t> workers_alive{0};
  std::atomic<std::uint64_t> workers_suspect{0};
  std::atomic<std::uint64_t> connections{0};
  std::atomic<std::uint64_t> registers{0};
  std::atomic<std::uint64_t> rejoins{0};
  std::atomic<std::uint64_t> replaces{0};
  std::atomic<std::uint64_t> heartbeats{0};
  std::atomic<std::uint64_t> plan_pushes{0};
  std::atomic<std::uint64_t> leaves{0};
  std::atomic<std::uint64_t> deaths{0};
  std::atomic<std::uint64_t> drains_sent{0};
  std::atomic<std::uint64_t> drain_acks{0};
  std::atomic<std::uint64_t> control_errors{0};
};

struct Controller::Conn {
  int fd = -1;
  std::vector<std::uint8_t> in;   ///< partial-frame carry
  std::vector<std::uint8_t> out;  ///< unsent encoded frames
  std::size_t out_off = 0;
  std::uint64_t worker_id = 0;  ///< nonzero after a successful kRegister
  bool subscribed = false;      ///< receives unsolicited kPlanPush
  bool closed = false;
};

Controller::Controller(ControllerConfig config)
    : config_(config),
      membership_(config.membership),
      stats_(std::make_shared<Counters>()) {}

Controller::~Controller() { Stop(); }

bool Controller::Start(std::string* error) {
  if (started_.exchange(true)) {
    if (error != nullptr) *error = "already started";
    return false;
  }
  listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = "socket() failed";
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    if (error != nullptr) {
      *error = std::string("bind failed: ") + std::strerror(errno);
    }
    return false;
  }
  if (::listen(listen_fd_, config_.listen_backlog) != 0) {
    if (error != nullptr) *error = "listen failed";
    return false;
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  stop_eventfd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (stop_eventfd_ < 0) {
    if (error != nullptr) *error = "eventfd failed";
    return false;
  }
  thread_ = std::thread([this] { Run(); });
  return true;
}

void Controller::Stop() {
  if (!started_.load(std::memory_order_relaxed)) return;
  if (stopping_.exchange(true)) return;
  if (stop_eventfd_ >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(stop_eventfd_, &one, sizeof one);
  }
  if (thread_.joinable()) thread_.join();
  for (auto& conn : conns_) {
    if (!conn->closed) ::close(conn->fd);
  }
  conns_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (stop_eventfd_ >= 0) {
    ::close(stop_eventfd_);
    stop_eventfd_ = -1;
  }
}

void Controller::Run() {
  support::trace::SetCurrentThreadName("cluster-ctrl");
  std::vector<pollfd> fds;
  std::uint64_t last_sweep_us = NowMicros();
  const std::uint64_t sweep_every_us =
      std::max<std::uint64_t>(config_.membership.heartbeat_interval_us / 2, 1);
  while (!stopping_.load(std::memory_order_relaxed)) {
    fds.clear();
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({stop_eventfd_, POLLIN, 0});
    for (const auto& conn : conns_) {
      short events = POLLIN;
      if (conn->out_off < conn->out.size()) events |= POLLOUT;
      fds.push_back({conn->fd, events, 0});
    }
    const int timeout_ms = static_cast<int>(
        std::max<std::uint64_t>(sweep_every_us / 1000, 1));
    const int n = ::poll(fds.data(), fds.size(), timeout_ms);
    if (n < 0 && errno != EINTR) {
      MOBIVINE_LOG_ERROR << "cluster: controller poll failed: "
                         << std::strerror(errno);
      break;
    }
    if ((fds[1].revents & POLLIN) != 0) break;  // Stop() woke us
    if ((fds[0].revents & POLLIN) != 0) AcceptNew();
    // fds[2..] align with the conns_ present when the pollfd array was
    // built; connections AcceptNew just appended are polled next round.
    for (std::size_t i = 0; i + 2 < fds.size(); ++i) {
      Conn& conn = *conns_[i];
      const short revents = fds[i + 2].revents;
      if (conn.closed) continue;
      if ((revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) {
        CloseConn(conn);
        continue;
      }
      if ((revents & POLLOUT) != 0 && !FlushConn(conn)) continue;
      if ((revents & POLLIN) != 0) HandleReadable(conn);
    }
    // Reap closed connections (kept in place during the event pass so
    // fds[] indices stay aligned).
    conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                [](const std::unique_ptr<Conn>& conn) {
                                  return conn->closed;
                                }),
                 conns_.end());
    const std::uint64_t now_us = NowMicros();
    if (now_us - last_sweep_us >= sweep_every_us) {
      last_sweep_us = now_us;
      if (membership_.Tick(now_us)) {
        // Count silence-detected deaths (connection-close deaths are
        // booked in CloseConn).
        AddU64(stats_->deaths);
        support::trace::Instant("cluster.worker_dead");
        BroadcastPlan();
      }
      stats_->epoch.store(membership_.plan().epoch,
                          std::memory_order_relaxed);
      stats_->workers_alive.store(membership_.alive_count(),
                                  std::memory_order_relaxed);
      stats_->workers_suspect.store(membership_.suspect_count(),
                                    std::memory_order_relaxed);
    }
  }
}

void Controller::AcceptNew() {
  while (true) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) break;  // EAGAIN
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conns_.push_back(std::move(conn));
    AddU64(stats_->connections);
  }
}

void Controller::CloseConn(Conn& conn) {
  if (conn.closed) return;
  conn.closed = true;
  ::close(conn.fd);
  stats_->connections.fetch_sub(1, std::memory_order_relaxed);
  if (conn.worker_id != 0) {
    // A registered worker's socket died without a kLeave: that is a
    // death, detected at kernel speed — remove it from the plan now
    // rather than waiting out the heartbeat sweep.
    const std::uint64_t worker_id = conn.worker_id;
    conn.worker_id = 0;
    if (membership_.Remove(worker_id, WorkerHealth::kDead)) {
      AddU64(stats_->deaths);
      support::trace::Instant(
          "cluster.worker_dead", "worker",
          static_cast<std::int64_t>(worker_id));
      stats_->epoch.store(membership_.plan().epoch,
                          std::memory_order_relaxed);
      BroadcastPlan();
    }
  }
}

bool Controller::FlushConn(Conn& conn) {
  while (conn.out_off < conn.out.size()) {
    // MSG_NOSIGNAL: an agent that died mid-push must read as EPIPE on
    // this connection, not SIGPIPE for the controller.
    const ssize_t w = ::send(conn.fd, conn.out.data() + conn.out_off,
                             conn.out.size() - conn.out_off, MSG_NOSIGNAL);
    if (w > 0) {
      conn.out_off += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    CloseConn(conn);
    return false;
  }
  conn.out.clear();
  conn.out_off = 0;
  return true;
}

void Controller::SendTo(Conn& conn, const ControlMessage& message) {
  if (conn.closed) return;
  if (message.op == ControlOp::kPlanPush) AddU64(stats_->plan_pushes);
  EncodeControl(message, conn.out);
  if (conn.out.size() - conn.out_off > config_.max_output_backlog) {
    // A control peer that stopped reading must not wedge the plane.
    CloseConn(conn);
    return;
  }
  (void)FlushConn(conn);
}

void Controller::BroadcastPlan() {
  ControlMessage push;
  push.op = ControlOp::kPlanPush;
  push.correlation_id = 0;  // unsolicited
  push.plan = membership_.plan();
  push.epoch = push.plan.epoch;
  support::trace::Instant("cluster.plan_push", "epoch",
                          static_cast<std::int64_t>(push.plan.epoch));
  for (auto& conn : conns_) {
    if (!conn->closed && conn->subscribed) SendTo(*conn, push);
  }
}

void Controller::HandleReadable(Conn& conn) {
  while (!conn.closed) {
    std::uint8_t chunk[kReadChunk];
    const ssize_t n = ::read(conn.fd, chunk, sizeof chunk);
    if (n > 0) {
      conn.in.insert(conn.in.end(), chunk, chunk + n);
      if (static_cast<std::size_t>(n) < sizeof chunk) break;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    CloseConn(conn);  // EOF or hard error
    return;
  }
  std::size_t offset = 0;
  while (!conn.closed) {
    wire::FrameView frame;
    std::size_t consumed = 0;
    std::string error;
    const wire::DecodeStatus status =
        wire::DecodeFrame(conn.in.data() + offset, conn.in.size() - offset,
                          &frame, &consumed, &error);
    if (status == wire::DecodeStatus::kNeedMore) break;
    if (status == wire::DecodeStatus::kMalformed) {
      AddU64(stats_->control_errors);
      MOBIVINE_LOG_DEBUG << "cluster: closing control peer: " << error;
      CloseConn(conn);
      return;
    }
    HandleFrame(conn, frame);
    offset += consumed;
  }
  if (offset > 0 && !conn.closed) {
    conn.in.erase(conn.in.begin(),
                  conn.in.begin() + static_cast<std::ptrdiff_t>(offset));
  }
}

void Controller::HandleFrame(Conn& conn, const wire::FrameView& frame) {
  if (frame.type == wire::FrameType::kControl) {
    ControlMessage message;
    std::string error;
    if (!DecodeControl(frame.payload, frame.payload_size, &message, &error)) {
      AddU64(stats_->control_errors);
      ControlMessage reply;
      reply.op = ControlOp::kError;
      (void)wire::PeekPayloadId(frame.payload, frame.payload_size,
                                &reply.correlation_id);
      reply.message = error;
      SendTo(conn, reply);
      return;
    }
    HandleControl(conn, message);
    return;
  }
  // The controller serves no data; answer kRequest in-band so a
  // misdirected data client gets a typed error, and tolerate anything
  // else (forward compatibility — same stance as the data plane).
  if (frame.type == wire::FrameType::kRequest) {
    AddU64(stats_->control_errors);
    wire::WireResponse response;
    (void)wire::PeekPayloadId(frame.payload, frame.payload_size,
                              &response.request_id);
    response.status = wire::WireStatus::kUnsupportedFrame;
    response.body = "controller serves control frames only";
    std::vector<std::uint8_t>& out = encode_scratch_;
    out.clear();
    wire::EncodeResponse(response, out);
    conn.out.insert(conn.out.end(), out.begin(), out.end());
    (void)FlushConn(conn);
  }
}

void Controller::HandleControl(Conn& conn, const ControlMessage& message) {
  support::trace::Span span("cluster.control");
  span.Tag("op", static_cast<std::int64_t>(message.op));
  const std::uint64_t now_us = NowMicros();
  switch (message.op) {
    case ControlOp::kRegister: {
      const RegisterOutcome outcome = membership_.Register(
          message.worker_id, static_cast<std::uint16_t>(message.data_port),
          now_us);
      ControlMessage ack;
      ack.op = ControlOp::kRegisterAck;
      ack.correlation_id = message.correlation_id;
      if (outcome == RegisterOutcome::kRejected) {
        ack.status = AckStatus::kRejected;
        ack.message = "worker_id must be nonzero";
        AddU64(stats_->control_errors);
        SendTo(conn, ack);
        return;
      }
      AddU64(stats_->registers);
      if (outcome == RegisterOutcome::kRejoined) AddU64(stats_->rejoins);
      if (outcome == RegisterOutcome::kReplaced) AddU64(stats_->replaces);
      conn.worker_id = message.worker_id;
      conn.subscribed = true;
      ack.plan = membership_.plan();
      ack.epoch = ack.plan.epoch;
      stats_->epoch.store(ack.plan.epoch, std::memory_order_relaxed);
      stats_->workers_alive.store(membership_.alive_count(),
                                  std::memory_order_relaxed);
      SendTo(conn, ack);
      // Everyone else learns about the join via an unsolicited push (the
      // joiner just got the plan in its ack).
      ControlMessage push;
      push.op = ControlOp::kPlanPush;
      push.plan = membership_.plan();
      push.epoch = push.plan.epoch;
      support::trace::Instant("cluster.plan_push", "epoch",
                              static_cast<std::int64_t>(push.plan.epoch));
      for (auto& other : conns_) {
        if (!other->closed && other->subscribed && other.get() != &conn) {
          SendTo(*other, push);
        }
      }
      return;
    }
    case ControlOp::kHeartbeat: {
      AddU64(stats_->heartbeats);
      const bool known = membership_.Heartbeat(message.worker_id, now_us);
      ControlMessage ack;
      ack.op = ControlOp::kHeartbeatAck;
      ack.correlation_id = message.correlation_id;
      ack.epoch = membership_.plan().epoch;
      // kRejected tells a zombie (declared dead while it was wedged) to
      // re-register instead of heartbeating into the void.
      ack.status = known ? AckStatus::kOk : AckStatus::kRejected;
      SendTo(conn, ack);
      return;
    }
    case ControlOp::kPlanGet: {
      conn.subscribed = true;  // plan watchers get future pushes too
      ControlMessage reply;
      reply.op = ControlOp::kPlanPush;
      reply.correlation_id = message.correlation_id;
      reply.plan = membership_.plan();
      reply.epoch = reply.plan.epoch;
      SendTo(conn, reply);
      return;
    }
    case ControlOp::kLeave: {
      AddU64(stats_->leaves);
      const std::uint64_t worker_id =
          message.worker_id != 0 ? message.worker_id : conn.worker_id;
      conn.worker_id = 0;  // the close that follows is not a death
      const bool changed = membership_.Remove(worker_id, WorkerHealth::kLeft);
      ControlMessage ack;
      ack.op = ControlOp::kLeaveAck;
      ack.correlation_id = message.correlation_id;
      ack.epoch = membership_.plan().epoch;
      SendTo(conn, ack);
      if (changed) {
        stats_->epoch.store(membership_.plan().epoch,
                            std::memory_order_relaxed);
        BroadcastPlan();
      }
      // Tell the leaver to drain: it already stopped being routed to by
      // the new plan; kDrain bounds the handover of in-flight work.
      ControlMessage drain;
      drain.op = ControlOp::kDrain;
      drain.epoch = membership_.plan().epoch;
      AddU64(stats_->drains_sent);
      SendTo(conn, drain);
      return;
    }
    case ControlOp::kDrainAck:
      AddU64(stats_->drain_acks);
      return;
    case ControlOp::kError:
      AddU64(stats_->control_errors);
      return;
    case ControlOp::kRegisterAck:
    case ControlOp::kHeartbeatAck:
    case ControlOp::kPlanPush:
    case ControlOp::kLeaveAck:
    case ControlOp::kDrain:
      // Server-to-peer ops arriving at the controller: a confused peer.
      AddU64(stats_->control_errors);
      return;
  }
}

ControllerStatsSnapshot Controller::Stats() const {
  ControllerStatsSnapshot snap;
  snap.epoch = stats_->epoch.load(std::memory_order_relaxed);
  snap.workers_alive = stats_->workers_alive.load(std::memory_order_relaxed);
  snap.workers_suspect =
      stats_->workers_suspect.load(std::memory_order_relaxed);
  snap.connections = stats_->connections.load(std::memory_order_relaxed);
  snap.registers = stats_->registers.load(std::memory_order_relaxed);
  snap.rejoins = stats_->rejoins.load(std::memory_order_relaxed);
  snap.replaces = stats_->replaces.load(std::memory_order_relaxed);
  snap.heartbeats = stats_->heartbeats.load(std::memory_order_relaxed);
  snap.plan_pushes = stats_->plan_pushes.load(std::memory_order_relaxed);
  snap.leaves = stats_->leaves.load(std::memory_order_relaxed);
  snap.deaths = stats_->deaths.load(std::memory_order_relaxed);
  snap.drains_sent = stats_->drains_sent.load(std::memory_order_relaxed);
  snap.drain_acks = stats_->drain_acks.load(std::memory_order_relaxed);
  snap.control_errors =
      stats_->control_errors.load(std::memory_order_relaxed);
  return snap;
}

support::MetricsRegistry::Registration Controller::RegisterMetrics(
    support::MetricsRegistry& registry, std::string prefix) const {
  return registry.Register(
      std::move(prefix), [this](support::MetricsSink& sink) {
        const ControllerStatsSnapshot snap = Stats();
        sink.Gauge("epoch", static_cast<double>(snap.epoch));
        sink.Gauge("workers_alive", static_cast<double>(snap.workers_alive));
        sink.Gauge("workers_suspect",
                   static_cast<double>(snap.workers_suspect));
        sink.Counter("connections", snap.connections);
        sink.Counter("registers", snap.registers);
        sink.Counter("rejoins", snap.rejoins);
        sink.Counter("replaces", snap.replaces);
        sink.Counter("heartbeats", snap.heartbeats);
        sink.Counter("plan_pushes", snap.plan_pushes);
        sink.Counter("leaves", snap.leaves);
        sink.Counter("deaths", snap.deaths);
        sink.Counter("drains_sent", snap.drains_sent);
        sink.Counter("drain_acks", snap.drain_acks);
        sink.Counter("control_errors", snap.control_errors);
      });
}

}  // namespace mobivine::cluster
