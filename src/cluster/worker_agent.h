// M-Cluster worker agent: the piece that turns a standalone gateway +
// wire server process into a cluster member.
//
// One background thread owns the control connection to the controller:
// it registers (blocking, inside Start), heartbeats on a fixed cadence,
// applies kPlanPush frames to an atomic plan snapshot, and — when the
// controller link dies — reconnects with backoff and re-registers under
// the same worker id (the controller books that as a rejoin/replace and
// bumps the epoch, which is exactly what re-routes clients back here).
//
// The data plane never blocks on any of this: the wire server's
// ownership filter calls Owns(client_id) on its loop threads, which is a
// mutex-guarded consistent-hash lookup against the last applied plan
// (control traffic is rare; the lock is uncontended in steady state).
//
// Graceful exit (SIGTERM path in cluster_worker): LeaveAndDrain() asks
// the agent thread to send kLeave; the controller drops us from the plan
// (clients re-route away), answers kLeaveAck then kDrain; the agent
// fences new traffic (Owns -> false, stale routers get kWrongWorker),
// waits for the gateway to go quiescent (Gateway::Drain), kDrainAcks and
// stops. In-flight work finishes; nothing is dropped on the floor.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "cluster/control.h"
#include "cluster/plan.h"
#include "gateway/gateway.h"

namespace mobivine::cluster {

struct WorkerAgentConfig {
  std::uint16_t controller_port = 0;
  std::uint64_t worker_id = 0;  ///< stable, >= 1
  std::uint64_t heartbeat_interval_us = 25'000;
  /// Bound on Gateway::Drain during the handover.
  std::uint64_t drain_timeout_us = 2'000'000;
  /// Dialing the controller (registration and reconnects).
  wire::ConnectOptions connect{.connect_timeout =
                                   std::chrono::microseconds(1'000'000),
                               .max_attempts = 40,
                               .initial_backoff =
                                   std::chrono::microseconds(25'000)};
};

struct WorkerAgentStats {
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t plan_updates = 0;
  std::uint64_t reconnects = 0;
};

class WorkerAgent {
 public:
  /// The gateway must outlive Stop() (the drain path polls its stats).
  WorkerAgent(gateway::Gateway& gateway, WorkerAgentConfig config);
  ~WorkerAgent();

  WorkerAgent(const WorkerAgent&) = delete;
  WorkerAgent& operator=(const WorkerAgent&) = delete;

  /// Connect to the controller, register (worker_id, data_port), apply
  /// the plan from the ack, start the heartbeat thread. Blocking; false
  /// with `error` when the controller is unreachable or rejected us.
  [[nodiscard]] bool Start(std::uint16_t data_port,
                           std::string* error = nullptr);

  /// Stop the agent thread and close the control connection. No leave is
  /// sent — the controller sees a connection close (== death). Use
  /// LeaveAndDrain() first for a graceful exit. Idempotent.
  void Stop();

  /// Graceful handover: kLeave -> fence -> Gateway::Drain -> kDrainAck.
  /// Blocks until the drain completes (or its timeout passes); returns
  /// whether the gateway actually went quiescent. The agent stops
  /// heartbeating; call Stop() afterwards as usual.
  bool LeaveAndDrain();

  /// The wire server's ownership filter (WireServerConfig::ownership):
  /// does this worker own `client_id` under the current plan? Always
  /// writes the current epoch to `*plan_epoch`. Thread-safe, called on
  /// wire loop threads. A worker with no plan yet (epoch 0) owns
  /// everything — a cluster worker before its first plan is just a
  /// standalone server. A draining worker owns nothing.
  [[nodiscard]] bool Owns(std::uint64_t client_id,
                          std::uint64_t* plan_epoch) const;

  [[nodiscard]] std::uint64_t plan_epoch() const {
    return plan_epoch_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }
  [[nodiscard]] WorkerAgentStats Stats() const;

 private:
  void Run();
  void ApplyPlan(const PartitionPlan& plan);
  /// Register over the (connected) channel; applies the acked plan.
  bool RegisterWithController(std::string* error);
  /// Executed on the agent thread when a leave was requested or a kDrain
  /// arrived: fence, drain the gateway, ack.
  void DrainNow();

  gateway::Gateway& gateway_;
  const WorkerAgentConfig config_;
  std::uint16_t data_port_ = 0;
  ControlChannel channel_;  ///< agent thread only (after Start returns)
  std::thread thread_;

  mutable std::mutex plan_mutex_;
  PartitionPlan plan_;
  HashRing ring_;
  std::atomic<std::uint64_t> plan_epoch_{0};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_{false};
  std::atomic<bool> leave_requested_{false};

  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;
  bool drain_done_ = false;
  bool drain_ok_ = false;

  std::atomic<std::uint64_t> heartbeats_sent_{0};
  std::atomic<std::uint64_t> plan_updates_{0};
  std::atomic<std::uint64_t> reconnects_{0};
};

}  // namespace mobivine::cluster
