// M-Cluster partition plans: who owns which client ids, as an epoch plus
// a member list, with ownership computed by a consistent-hash ring.
//
// A plan is deliberately tiny — (epoch, [(worker_id, data_port)...]) —
// because both sides recompute ownership deterministically from it: the
// controller never ships per-key assignments, and a worker and a client
// holding the same plan always agree on who owns a given client id. The
// epoch is the only coordination token: it increases exactly when the
// member set changes (join/leave/death), workers stamp it into
// kWrongWorker responses, and clients refresh until they hold at least
// the epoch a worker rejected them with.
//
// The ring hashes each member onto kVnodesPerMember points (splitmix64 of
// worker_id x vnode index); a client id is owned by the member whose
// point is the first at or clockwise after the id's hash. Virtual nodes
// keep the load split even-ish and — the property the membership unit
// test pins — make a single join/leave move only O(1/n) of the keyspace,
// never reshuffle it.
#pragma once

#include <cstdint>
#include <vector>

namespace mobivine::cluster {

/// splitmix64 finalizer: the repo's standard cheap mixer (same constants
/// as the test suites' SplitMix64 and support/fingerprint).
[[nodiscard]] constexpr std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

struct PlanMember {
  std::uint64_t worker_id = 0;  ///< stable, caller-chosen, >= 1
  std::uint16_t data_port = 0;  ///< the worker's WireServer (loopback)

  friend bool operator==(const PlanMember&, const PlanMember&) = default;
};

/// One partition plan. epoch == 0 means "no plan yet" (empty cluster or a
/// peer that has not registered); real plans start at epoch 1.
struct PartitionPlan {
  std::uint64_t epoch = 0;
  std::vector<PlanMember> members;  ///< sorted by worker_id (canonical)

  [[nodiscard]] bool empty() const { return members.empty(); }
  friend bool operator==(const PartitionPlan&, const PartitionPlan&) = default;
};

/// Consistent-hash ring over a plan's members. Build once per plan
/// (cheap: members * kVnodesPerMember points, sorted), then OwnerFor is
/// one binary search — it sits on the cluster client's per-request path.
class HashRing {
 public:
  static constexpr int kVnodesPerMember = 64;

  HashRing() = default;
  explicit HashRing(const PartitionPlan& plan) { Rebuild(plan); }

  void Rebuild(const PartitionPlan& plan);

  /// The worker_id owning `client_id`. Ring must be non-empty.
  [[nodiscard]] std::uint64_t OwnerFor(std::uint64_t client_id) const;

  [[nodiscard]] bool empty() const { return points_.empty(); }

 private:
  /// (point hash, worker_id), sorted by hash.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> points_;
};

}  // namespace mobivine::cluster
