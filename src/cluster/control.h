// M-Cluster control plane: the REGISTER/HEARTBEAT/PLAN/DRAIN frame
// family and a small blocking channel for speaking it.
//
// Control traffic rides the same M-Wire envelope as data (magic/version/
// type/varint-length/CRC — wire/protocol.h) under FrameType::kControl, so
// one socket layer, one fuzzer and one failure table cover both planes.
// A control payload is:
//
//     var  correlation_id    (0 on unsolicited pushes)
//     u8   op                (ControlOp)
//     var  worker_id
//     var  data_port
//     var  epoch
//     u8   status            (AckStatus)
//     var  member_count      then per member: var worker_id, var data_port
//     str  message           (varint length + bytes; diagnostics)
//
// Every op encodes the full field set (control frames are rare and tiny;
// uniformity beats per-op schemas), and the leading varint id keeps the
// kUnsupportedFrame convention intact: a data-only server answering a
// control frame in-band echoes an id the sender can correlate.
//
// Message flow (C = controller, W = worker agent, R = cluster client):
//
//     W -> C  kRegister(worker_id, data_port)      -> kRegisterAck(plan)
//     W -> C  kHeartbeat(worker_id, epoch)         -> kHeartbeatAck(epoch)
//     R -> C  kPlanGet                             -> kPlanPush(plan)
//     C -> *  kPlanPush(plan)      unsolicited on every epoch change
//     W -> C  kLeave(worker_id)                    -> kLeaveAck
//     C -> W  kDrain(epoch)        after a leave   -> kDrainAck(worker_id)
//     C -> *  kError(message)      unknown/invalid control op
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cluster/plan.h"
#include "wire/client.h"
#include "wire/protocol.h"

namespace mobivine::cluster {

enum class ControlOp : std::uint8_t {
  kRegister = 1,
  kRegisterAck = 2,
  kHeartbeat = 3,
  kHeartbeatAck = 4,
  kPlanGet = 5,
  kPlanPush = 6,  ///< also the kPlanGet reply; unsolicited => correlation 0
  kLeave = 7,
  kLeaveAck = 8,
  kDrain = 9,
  kDrainAck = 10,
  kError = 11,  ///< controller's in-band reply to an invalid control frame
};

[[nodiscard]] const char* ToString(ControlOp op);

enum class AckStatus : std::uint8_t {
  kOk = 0,
  kRejected = 1,  ///< e.g. register with worker_id 0
};

/// One control message, any direction. Unused fields stay zero/empty.
struct ControlMessage {
  std::uint64_t correlation_id = 0;
  ControlOp op = ControlOp::kError;
  std::uint64_t worker_id = 0;
  std::uint64_t data_port = 0;
  std::uint64_t epoch = 0;
  AckStatus status = AckStatus::kOk;
  PartitionPlan plan;
  std::string message;
};

/// Append one kControl frame carrying `message` to `out`.
void EncodeControl(const ControlMessage& message,
                   std::vector<std::uint8_t>& out);

/// Decode a kControl frame payload. False (with `error`) on any
/// violation — truncation, caps, an op byte outside the enum.
[[nodiscard]] bool DecodeControl(const std::uint8_t* payload,
                                 std::size_t size, ControlMessage* message,
                                 std::string* error);

/// A blocking control-plane socket: connect with wire::ConnectOptions
/// (bounded timeout + backoff), send messages whole, receive frames with
/// a poll() deadline. Single-threaded by design — each user (worker
/// agent, cluster client, test harness) owns one channel and serializes
/// its use; there is no background reader.
class ControlChannel {
 public:
  ControlChannel() = default;
  ~ControlChannel();

  ControlChannel(const ControlChannel&) = delete;
  ControlChannel& operator=(const ControlChannel&) = delete;

  [[nodiscard]] bool Connect(std::uint16_t port,
                             const wire::ConnectOptions& options,
                             std::string* error = nullptr);

  [[nodiscard]] bool Send(const ControlMessage& message,
                          std::string* error = nullptr);

  /// Block up to `timeout_us` for the next control frame (unsolicited
  /// pushes included — callers dispatch on op/correlation). False on
  /// timeout, transport death, or a non-control/undecodable frame; a
  /// timeout sets `*timed_out` true when given. A kResponse frame with
  /// status kUnsupportedFrame (a data-plane peer that speaks no control)
  /// also returns false with a descriptive error.
  [[nodiscard]] bool Receive(ControlMessage* message, std::uint64_t timeout_us,
                             std::string* error = nullptr,
                             bool* timed_out = nullptr);

  /// Request/response: send with a fresh nonzero correlation id, then
  /// receive until the reply with that id arrives or the deadline
  /// passes. Frames that are not the reply are handed to `on_push` (when
  /// set) — unsolicited kPlanPush frames must not be dropped mid-wait.
  [[nodiscard]] bool Roundtrip(
      ControlMessage request, ControlMessage* reply, std::uint64_t timeout_us,
      std::string* error = nullptr,
      const std::function<void(const ControlMessage&)>& on_push = nullptr);

  void Close();

  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  /// The raw fd, for callers that poll the channel alongside other work
  /// (the worker agent's heartbeat loop). -1 when closed.
  [[nodiscard]] int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::uint64_t next_correlation_ = 1;
  std::vector<std::uint8_t> carry_;    ///< partial-frame bytes between reads
  std::vector<std::uint8_t> scratch_;  ///< encode buffer, reused
};

}  // namespace mobivine::cluster
