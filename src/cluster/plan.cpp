#include "cluster/plan.h"

#include <algorithm>

namespace mobivine::cluster {

void HashRing::Rebuild(const PartitionPlan& plan) {
  points_.clear();
  points_.reserve(plan.members.size() *
                  static_cast<std::size_t>(kVnodesPerMember));
  for (const PlanMember& member : plan.members) {
    for (int vnode = 0; vnode < kVnodesPerMember; ++vnode) {
      // Two rounds so worker_id and vnode index both diffuse fully; a
      // single xor-then-mix leaves adjacent ids with correlated points.
      const std::uint64_t point =
          Mix64(Mix64(member.worker_id) ^ static_cast<std::uint64_t>(vnode));
      points_.emplace_back(point, member.worker_id);
    }
  }
  std::sort(points_.begin(), points_.end());
}

std::uint64_t HashRing::OwnerFor(std::uint64_t client_id) const {
  const std::uint64_t hash = Mix64(client_id);
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), hash,
      [](const auto& point, std::uint64_t value) { return point.first < value; });
  // Clockwise wrap: past the last point lands on the first.
  return it == points_.end() ? points_.front().second : it->second;
}

}  // namespace mobivine::cluster
