// M-Cluster controller: the membership + plan authority, one process per
// cluster.
//
// A single poll-loop thread ("cluster-ctrl") owns a loopback listener
// and every control connection. Workers register and heartbeat over
// FrameType::kControl; the Membership state machine (cluster/
// membership.h) turns those into health transitions on the wall clock,
// and every plan-changing transition — join, leave, death, replace —
// bumps the plan epoch and broadcasts a kPlanPush to every subscriber
// (registered workers and any client that sent kPlanGet). Routing is
// never proxied here: the controller hands out plans; request bytes flow
// client -> owning worker directly.
//
// Death detection is two-tier, both on the controller's clock:
//  * connection close of a registered worker => immediate death (the
//    kernel tells us first — a SIGKILLed worker is detected in one poll
//    round, long before its heartbeats would time out);
//  * heartbeat silence sweeps alive -> suspect -> dead at the
//    MembershipConfig thresholds (catches hangs, not just exits).
//
// Graceful handover: a worker's kLeave removes it from the plan, acks,
// then sends kDrain back on the same connection; the worker fences new
// traffic (ownership filter), drains its gateway, kDrainAcks and exits.
//
// Writes are never allowed to wedge the control plane: connection
// sockets are non-blocking with small per-connection output buffers
// (control frames are tiny); a peer that stops reading past the cap is
// dropped.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/control.h"
#include "cluster/membership.h"
#include "support/metrics.h"

namespace mobivine::cluster {

struct ControllerConfig {
  std::uint16_t port = 0;  ///< 0: kernel-assigned; read back via port()
  int listen_backlog = 64;
  MembershipConfig membership;
  /// Drop a control peer whose unread output backlog exceeds this.
  std::size_t max_output_backlog = 1u << 20;
};

/// Cross-thread-readable controller counters (relaxed atomics inside;
/// same contract as gateway::ShardStats / the wire counters).
struct ControllerStatsSnapshot {
  std::uint64_t epoch = 0;
  std::uint64_t workers_alive = 0;
  std::uint64_t workers_suspect = 0;
  std::uint64_t connections = 0;  ///< control connections currently open
  std::uint64_t registers = 0;    ///< kJoined + kRejoined + kReplaced
  std::uint64_t rejoins = 0;
  std::uint64_t replaces = 0;
  std::uint64_t heartbeats = 0;
  std::uint64_t plan_pushes = 0;  ///< kPlanPush frames sent (incl. replies)
  std::uint64_t leaves = 0;
  std::uint64_t deaths = 0;  ///< by silence sweep or connection close
  std::uint64_t drains_sent = 0;
  std::uint64_t drain_acks = 0;
  std::uint64_t control_errors = 0;  ///< undecodable/invalid control frames
};

class Controller {
 public:
  explicit Controller(ControllerConfig config = {});
  ~Controller();

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  /// Bind 127.0.0.1, listen, start the control loop. False on socket
  /// failure (`error` says why). Not restartable.
  [[nodiscard]] bool Start(std::string* error = nullptr);

  /// Close the listener and every control connection, join the loop.
  /// Idempotent; the destructor calls it.
  void Stop();

  [[nodiscard]] std::uint16_t port() const { return port_; }

  [[nodiscard]] ControllerStatsSnapshot Stats() const;

  /// Register as one M-Scope metrics source under `prefix` (the
  /// `cluster.` section in scripts/mscope_schema.json). Drop the
  /// registration before destroying the controller.
  [[nodiscard]] support::MetricsRegistry::Registration RegisterMetrics(
      support::MetricsRegistry& registry,
      std::string prefix = "cluster.") const;

 private:
  struct Conn;
  struct Counters;

  void Run();
  void AcceptNew();
  void HandleReadable(Conn& conn);
  void HandleFrame(Conn& conn, const wire::FrameView& frame);
  void HandleControl(Conn& conn, const ControlMessage& message);
  void SendTo(Conn& conn, const ControlMessage& message);
  void BroadcastPlan();
  void CloseConn(Conn& conn);
  /// Flush a connection's buffered output; false when the conn died.
  bool FlushConn(Conn& conn);

  const ControllerConfig config_;
  Membership membership_;
  std::shared_ptr<Counters> stats_;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::thread thread_;
  int listen_fd_ = -1;
  int stop_eventfd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::vector<std::uint8_t> encode_scratch_;
};

}  // namespace mobivine::cluster
