// M-Cluster worker process: gateway + wire server + worker agent.
//
//   cluster_worker --controller-port=P --worker-id=N [--shards=K] [--port=Q]
//
// Starts the usual standalone stack (an M-Gateway behind a WireServer),
// wires the server's ownership filter to a WorkerAgent, registers with
// the controller, then prints
//
//     PORT=<data port>
//     READY
//
// on stdout (the harness parses exactly these lines) and serves until
// SIGTERM. SIGTERM triggers the graceful path: leave the plan, fence,
// drain the gateway, ack, exit 0. SIGKILL (the harness's crash case)
// obviously skips all of that — the controller sees the control
// connection drop and declares the worker dead.
#include <signal.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "cluster/worker_agent.h"
#include "core/descriptor/proxy_descriptor.h"
#include "gateway/gateway.h"
#include "wire/server.h"

namespace {

volatile sig_atomic_t g_terminate = 0;

void OnSignal(int) { g_terminate = 1; }

std::uint64_t ParseFlag(int argc, char** argv, const char* name,
                        std::uint64_t fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtoull(argv[i] + prefix.size(), nullptr, 10);
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mobivine;

  const auto controller_port = static_cast<std::uint16_t>(
      ParseFlag(argc, argv, "controller-port", 0));
  const std::uint64_t worker_id = ParseFlag(argc, argv, "worker-id", 0);
  const int shards = static_cast<int>(ParseFlag(argc, argv, "shards", 4));
  const auto data_port =
      static_cast<std::uint16_t>(ParseFlag(argc, argv, "port", 0));
  if (controller_port == 0 || worker_id == 0) {
    std::fprintf(stderr,
                 "usage: cluster_worker --controller-port=P --worker-id=N "
                 "[--shards=K] [--port=Q]\n");
    return 2;
  }

  struct sigaction action {};
  action.sa_handler = OnSignal;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);

  static const core::DescriptorStore store =
      core::DescriptorStore::LoadDirectory(MOBIVINE_DESCRIPTOR_DIR);

  gateway::GatewayConfig gateway_config;
  gateway_config.shards = shards;
  gateway_config.store = &store;
  gateway::Gateway gateway(gateway_config);

  cluster::WorkerAgentConfig agent_config;
  agent_config.controller_port = controller_port;
  agent_config.worker_id = worker_id;
  cluster::WorkerAgent agent(gateway, agent_config);

  wire::WireServerConfig server_config;
  server_config.port = data_port;
  server_config.event_loops = 1;  // workers multiply; loops need not
  server_config.ownership = [&agent](std::uint64_t client_id,
                                     std::uint64_t* plan_epoch) {
    return agent.Owns(client_id, plan_epoch);
  };
  wire::WireServer server(gateway, server_config);

  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "wire server start failed: %s\n", error.c_str());
    return 1;
  }
  if (!agent.Start(server.port(), &error)) {
    std::fprintf(stderr, "worker agent start failed: %s\n", error.c_str());
    server.Stop();
    gateway.Stop();
    return 1;
  }

  std::printf("PORT=%u\nREADY\n", server.port());
  std::fflush(stdout);

  while (!g_terminate) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  // Graceful rotation: hand our key ranges back before going quiet.
  const bool drained = agent.LeaveAndDrain();
  agent.Stop();
  server.Stop();  // before gateway.Stop(): the wire shutdown contract
  gateway.Stop();
  return drained ? 0 : 3;
}
