#include "cluster/worker_agent.h"

#include <chrono>

#include "support/trace.h"

namespace mobivine::cluster {

namespace {

std::uint64_t NowMicros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

WorkerAgent::WorkerAgent(gateway::Gateway& gateway, WorkerAgentConfig config)
    : gateway_(gateway), config_(config) {}

WorkerAgent::~WorkerAgent() { Stop(); }

bool WorkerAgent::Start(std::uint16_t data_port, std::string* error) {
  if (thread_.joinable()) {
    if (error) *error = "worker agent already started";
    return false;
  }
  if (config_.worker_id == 0) {
    if (error) *error = "worker_id must be >= 1";
    return false;
  }
  data_port_ = data_port;
  if (!channel_.Connect(config_.controller_port, config_.connect, error)) {
    return false;
  }
  if (!RegisterWithController(error)) {
    channel_.Close();
    return false;
  }
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Run(); });
  return true;
}

void WorkerAgent::Stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  channel_.Close();
}

bool WorkerAgent::LeaveAndDrain() {
  if (!thread_.joinable()) return false;
  leave_requested_.store(true, std::memory_order_release);
  std::unique_lock<std::mutex> lock(drain_mutex_);
  // The agent thread notices the flag within one heartbeat interval; the
  // drain itself is bounded by drain_timeout_us. Pad the wait so a slow
  // drain reports failure rather than racing this timeout.
  const auto wait = std::chrono::microseconds(
      config_.drain_timeout_us + 4 * config_.heartbeat_interval_us +
      1'000'000);
  drain_cv_.wait_for(lock, wait, [this] { return drain_done_; });
  return drain_done_ && drain_ok_;
}

bool WorkerAgent::Owns(std::uint64_t client_id,
                       std::uint64_t* plan_epoch) const {
  if (plan_epoch) *plan_epoch = plan_epoch_.load(std::memory_order_acquire);
  if (draining_.load(std::memory_order_acquire)) return false;
  std::lock_guard<std::mutex> lock(plan_mutex_);
  // No plan yet: behave like the standalone server this process was
  // before it joined a cluster — refuse nothing.
  if (plan_.epoch == 0 || ring_.empty()) return true;
  return ring_.OwnerFor(client_id) == config_.worker_id;
}

WorkerAgentStats WorkerAgent::Stats() const {
  WorkerAgentStats stats;
  stats.heartbeats_sent = heartbeats_sent_.load(std::memory_order_relaxed);
  stats.plan_updates = plan_updates_.load(std::memory_order_relaxed);
  stats.reconnects = reconnects_.load(std::memory_order_relaxed);
  return stats;
}

void WorkerAgent::ApplyPlan(const PartitionPlan& plan) {
  std::lock_guard<std::mutex> lock(plan_mutex_);
  if (plan.epoch <= plan_.epoch) return;  // stale push; epochs only advance
  plan_ = plan;
  ring_.Rebuild(plan_);
  plan_epoch_.store(plan_.epoch, std::memory_order_release);
  plan_updates_.fetch_add(1, std::memory_order_relaxed);
  support::trace::Instant("cluster.plan_applied");
}

bool WorkerAgent::RegisterWithController(std::string* error) {
  ControlMessage request;
  request.op = ControlOp::kRegister;
  request.worker_id = config_.worker_id;
  request.data_port = data_port_;
  ControlMessage reply;
  const std::uint64_t timeout_us = 2'000'000;
  if (!channel_.Roundtrip(std::move(request), &reply, timeout_us, error)) {
    return false;
  }
  if (reply.op != ControlOp::kRegisterAck ||
      reply.status != AckStatus::kOk) {
    if (error) {
      *error = "controller rejected registration: " +
               (reply.message.empty() ? std::string(ToString(reply.op))
                                      : reply.message);
    }
    return false;
  }
  ApplyPlan(reply.plan);
  return true;
}

void WorkerAgent::Run() {
  support::trace::SetCurrentThreadName("cluster-agent");
  std::uint64_t next_heartbeat_us = NowMicros() + config_.heartbeat_interval_us;
  while (!stop_.load(std::memory_order_acquire)) {
    if (leave_requested_.exchange(false, std::memory_order_acq_rel)) {
      // Graceful handover: tell the controller first so the plan changes
      // (and clients re-route) while we still finish in-flight work.
      ControlMessage leave;
      leave.op = ControlOp::kLeave;
      leave.worker_id = config_.worker_id;
      ControlMessage reply;
      std::string error;
      const bool acked = channel_.Roundtrip(
          std::move(leave), &reply, 2'000'000, &error,
          [this](const ControlMessage& push) {
            if (push.op == ControlOp::kPlanPush) ApplyPlan(push.plan);
          });
      // Wait (briefly) for the controller's kDrain so the ack carries the
      // post-leave epoch; drain regardless — the gateway must go quiet
      // before the process exits even if the controller vanished.
      std::uint64_t drain_epoch = plan_epoch_.load(std::memory_order_acquire);
      if (acked) {
        const std::uint64_t deadline = NowMicros() + 1'000'000;
        ControlMessage incoming;
        while (NowMicros() < deadline) {
          bool timed_out = false;
          if (!channel_.Receive(&incoming, 50'000, &error, &timed_out)) {
            if (timed_out) continue;
            break;
          }
          if (incoming.op == ControlOp::kPlanPush) {
            ApplyPlan(incoming.plan);
          } else if (incoming.op == ControlOp::kDrain) {
            drain_epoch = incoming.epoch;
            break;
          }
        }
      }
      DrainNow();
      ControlMessage ack;
      ack.op = ControlOp::kDrainAck;
      ack.worker_id = config_.worker_id;
      ack.epoch = drain_epoch;
      if (channel_.connected()) (void)channel_.Send(ack);
      return;  // agent retires; Stop() joins us
    }

    if (!channel_.connected()) {
      // Controller link died: reconnect + re-register under the same id.
      // The controller books it as a rejoin (we were declared dead) or a
      // replace (we beat the detector); either bumps the epoch and
      // re-routes clients back here.
      std::string error;
      if (channel_.Connect(config_.controller_port, config_.connect,
                           &error) &&
          RegisterWithController(&error)) {
        reconnects_.fetch_add(1, std::memory_order_relaxed);
        support::trace::Instant("cluster.agent_reconnect");
        next_heartbeat_us = NowMicros() + config_.heartbeat_interval_us;
      } else {
        channel_.Close();
        std::this_thread::sleep_for(
            std::chrono::microseconds(config_.heartbeat_interval_us));
      }
      continue;
    }

    const std::uint64_t now = NowMicros();
    if (now >= next_heartbeat_us) {
      ControlMessage beat;
      beat.op = ControlOp::kHeartbeat;
      beat.worker_id = config_.worker_id;
      beat.epoch = plan_epoch_.load(std::memory_order_acquire);
      std::string error;
      if (!channel_.Send(beat, &error)) {
        channel_.Close();
        continue;
      }
      heartbeats_sent_.fetch_add(1, std::memory_order_relaxed);
      next_heartbeat_us = now + config_.heartbeat_interval_us;
    }

    // Sleep on the socket until the next beat is due; anything that
    // arrives meanwhile (plan pushes, heartbeat acks, a controller-
    // initiated drain) is handled inline.
    const std::uint64_t now2 = NowMicros();
    const std::uint64_t wait_us =
        next_heartbeat_us > now2 ? next_heartbeat_us - now2 : 1;
    ControlMessage incoming;
    std::string error;
    bool timed_out = false;
    if (!channel_.Receive(&incoming, wait_us, &error, &timed_out)) {
      if (!timed_out) channel_.Close();  // transport death => reconnect
      continue;
    }
    switch (incoming.op) {
      case ControlOp::kPlanPush:
        ApplyPlan(incoming.plan);
        break;
      case ControlOp::kHeartbeatAck:
        if (incoming.status == AckStatus::kRejected) {
          // The controller declared us dead (we're a zombie to it); a
          // plain heartbeat cannot resurrect us — re-register.
          std::string reg_error;
          if (!RegisterWithController(&reg_error)) channel_.Close();
        } else if (incoming.epoch >
                   plan_epoch_.load(std::memory_order_acquire)) {
          // We missed a push; ask for the current plan (the reply is a
          // kPlanPush handled on a later iteration).
          ControlMessage get;
          get.op = ControlOp::kPlanGet;
          get.worker_id = config_.worker_id;
          (void)channel_.Send(get, &error);
        }
        break;
      case ControlOp::kDrain: {
        // Controller-initiated drain (it processed our leave before we
        // asked, or an operator is rotating us out).
        DrainNow();
        ControlMessage ack;
        ack.op = ControlOp::kDrainAck;
        ack.worker_id = config_.worker_id;
        ack.epoch = incoming.epoch;
        (void)channel_.Send(ack, &error);
        return;
      }
      default:
        break;  // acks and errors we don't act on
    }
  }
}

void WorkerAgent::DrainNow() {
  // Fence first: Owns() now answers false, so the wire server turns new
  // requests away with kWrongWorker while the gateway finishes the rest.
  draining_.store(true, std::memory_order_release);
  support::trace::Instant("cluster.drain_begin");
  const bool ok =
      gateway_.Drain(std::chrono::microseconds(config_.drain_timeout_us));
  support::trace::Instant(ok ? "cluster.drain_done" : "cluster.drain_timeout");
  {
    std::lock_guard<std::mutex> lock(drain_mutex_);
    drain_done_ = true;
    drain_ok_ = ok;
  }
  drain_cv_.notify_all();
}

}  // namespace mobivine::cluster
