// M-Cluster controller process.
//
//   cluster_controller [--port=P]
//
// Starts the membership/plan authority, prints
//
//     PORT=<control port>
//     READY
//
// on stdout (the harness parses exactly these lines), and runs until
// SIGTERM/SIGINT. On exit it prints a one-line stats summary to stderr —
// handy when a harness run leaves a log behind.
#include <signal.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "cluster/controller.h"

namespace {

volatile sig_atomic_t g_terminate = 0;

void OnSignal(int) { g_terminate = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace mobivine;

  std::uint16_t port = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--port=", 7) == 0) {
      port = static_cast<std::uint16_t>(std::strtoul(argv[i] + 7, nullptr, 10));
    }
  }

  struct sigaction action {};
  action.sa_handler = OnSignal;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);

  cluster::ControllerConfig config;
  config.port = port;
  cluster::Controller controller(config);
  std::string error;
  if (!controller.Start(&error)) {
    std::fprintf(stderr, "controller start failed: %s\n", error.c_str());
    return 1;
  }

  std::printf("PORT=%u\nREADY\n", controller.port());
  std::fflush(stdout);

  while (!g_terminate) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  const cluster::ControllerStatsSnapshot stats = controller.Stats();
  controller.Stop();
  std::fprintf(stderr,
               "controller: epoch=%llu registers=%llu heartbeats=%llu "
               "pushes=%llu leaves=%llu deaths=%llu\n",
               static_cast<unsigned long long>(stats.epoch),
               static_cast<unsigned long long>(stats.registers),
               static_cast<unsigned long long>(stats.heartbeats),
               static_cast<unsigned long long>(stats.plan_pushes),
               static_cast<unsigned long long>(stats.leaves),
               static_cast<unsigned long long>(stats.deaths));
  return 0;
}
