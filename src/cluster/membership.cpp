#include "cluster/membership.h"

#include <algorithm>

namespace mobivine::cluster {

const char* ToString(WorkerHealth health) {
  switch (health) {
    case WorkerHealth::kAlive:
      return "alive";
    case WorkerHealth::kSuspect:
      return "suspect";
    case WorkerHealth::kDead:
      return "dead";
    case WorkerHealth::kLeft:
      return "left";
  }
  return "unknown";
}

Membership::Membership(MembershipConfig config) : config_(config) {}

RegisterOutcome Membership::Register(std::uint64_t worker_id,
                                     std::uint16_t data_port,
                                     std::uint64_t now_us) {
  if (worker_id == 0) return RegisterOutcome::kRejected;
  const auto it = workers_.find(worker_id);
  RegisterOutcome outcome = RegisterOutcome::kJoined;
  if (it != workers_.end()) {
    const bool was_planned = it->second.health == WorkerHealth::kAlive ||
                             it->second.health == WorkerHealth::kSuspect;
    // A live id re-registering is a restart that beat our failure
    // detector: latest wins (the old endpoint is gone), and the epoch
    // must bump even if the port happens to match — routers cache
    // connections per plan epoch and need the nudge to re-dial.
    outcome = was_planned ? RegisterOutcome::kReplaced
                          : RegisterOutcome::kRejoined;
  }
  workers_[worker_id] =
      WorkerState{data_port, WorkerHealth::kAlive, now_us};
  RebuildPlan();
  return outcome;
}

bool Membership::Heartbeat(std::uint64_t worker_id, std::uint64_t now_us) {
  const auto it = workers_.find(worker_id);
  if (it == workers_.end()) return false;
  WorkerState& worker = it->second;
  if (worker.health == WorkerHealth::kDead ||
      worker.health == WorkerHealth::kLeft) {
    return false;  // already removed from the plan: must re-register
  }
  // Suspect -> alive without touching the plan: the member never left it
  // (the half-open probe succeeded, in breaker terms).
  worker.health = WorkerHealth::kAlive;
  worker.last_heartbeat_us = now_us;
  return true;
}

bool Membership::Remove(std::uint64_t worker_id, WorkerHealth terminal) {
  const auto it = workers_.find(worker_id);
  if (it == workers_.end()) return false;
  WorkerState& worker = it->second;
  const bool planned = worker.health == WorkerHealth::kAlive ||
                       worker.health == WorkerHealth::kSuspect;
  worker.health = terminal == WorkerHealth::kLeft ? WorkerHealth::kLeft
                                                  : WorkerHealth::kDead;
  if (!planned) return false;
  RebuildPlan();
  return true;
}

bool Membership::Tick(std::uint64_t now_us) {
  const std::uint64_t suspect_after =
      config_.heartbeat_interval_us *
      static_cast<std::uint64_t>(config_.suspect_after_misses);
  const std::uint64_t dead_after =
      config_.heartbeat_interval_us *
      static_cast<std::uint64_t>(config_.dead_after_misses);
  bool plan_changed = false;
  for (auto& [worker_id, worker] : workers_) {
    if (worker.health == WorkerHealth::kDead ||
        worker.health == WorkerHealth::kLeft) {
      continue;
    }
    const std::uint64_t silent =
        now_us > worker.last_heartbeat_us ? now_us - worker.last_heartbeat_us
                                          : 0;
    if (silent >= dead_after) {
      worker.health = WorkerHealth::kDead;
      plan_changed = true;
    } else if (silent >= suspect_after) {
      worker.health = WorkerHealth::kSuspect;  // planned; no epoch change
    }
  }
  if (plan_changed) RebuildPlan();
  return plan_changed;
}

WorkerHealth Membership::health(std::uint64_t worker_id) const {
  const auto it = workers_.find(worker_id);
  return it == workers_.end() ? WorkerHealth::kLeft : it->second.health;
}

std::size_t Membership::alive_count() const {
  std::size_t n = 0;
  for (const auto& [id, worker] : workers_) {
    if (worker.health == WorkerHealth::kAlive) ++n;
  }
  return n;
}

std::size_t Membership::suspect_count() const {
  std::size_t n = 0;
  for (const auto& [id, worker] : workers_) {
    if (worker.health == WorkerHealth::kSuspect) ++n;
  }
  return n;
}

void Membership::RebuildPlan() {
  plan_.members.clear();
  for (const auto& [worker_id, worker] : workers_) {
    if (worker.health == WorkerHealth::kAlive ||
        worker.health == WorkerHealth::kSuspect) {
      plan_.members.push_back(PlanMember{worker_id, worker.data_port});
    }
  }
  std::sort(plan_.members.begin(), plan_.members.end(),
            [](const PlanMember& a, const PlanMember& b) {
              return a.worker_id < b.worker_id;
            });
  ++plan_.epoch;
}

}  // namespace mobivine::cluster
