// The Android (m5-rc15 era) exception set.
//
// Deliberately a DIFFERENT hierarchy from s60::* — same design note as
// src/s60/exceptions.h: the substrates mirror the 2009 platform APIs,
// heterogeneity included, because absorbing it is MobiVine's job.
#pragma once

#include <stdexcept>
#include <string>

namespace mobivine::android {

/// Base for everything thrown by the Android substrate.
class AndroidException : public std::runtime_error {
 public:
  explicit AndroidException(const std::string& what)
      : std::runtime_error(what) {}
};

/// java.lang.SecurityException (missing manifest permission).
class SecurityException : public AndroidException {
 public:
  explicit SecurityException(const std::string& what)
      : AndroidException(what) {}
};

/// java.lang.IllegalArgumentException
class IllegalArgumentException : public AndroidException {
 public:
  explicit IllegalArgumentException(const std::string& what)
      : AndroidException(what) {}
};

/// java.lang.IllegalStateException
class IllegalStateException : public AndroidException {
 public:
  explicit IllegalStateException(const std::string& what)
      : AndroidException(what) {}
};

/// java.lang.UnsupportedOperationException — thrown when code written for
/// one API level calls an entry point the running level removed (the
/// Intent-based addProximityAlert on Android 1.0).
class UnsupportedOperationException : public AndroidException {
 public:
  explicit UnsupportedOperationException(const std::string& what)
      : AndroidException(what) {}
};

/// android.os.RemoteException (binder failure talking to a system service).
class RemoteException : public AndroidException {
 public:
  explicit RemoteException(const std::string& what) : AndroidException(what) {}
};

/// java.io.IOException as surfaced by org.apache.http.
class ClientProtocolException : public AndroidException {
 public:
  explicit ClientProtocolException(const std::string& what)
      : AndroidException(what) {}
};

/// org.apache.http connect/read timeout.
class ConnectTimeoutException : public ClientProtocolException {
 public:
  explicit ConnectTimeoutException(const std::string& what)
      : ClientProtocolException(what) {}
};

}  // namespace mobivine::android
