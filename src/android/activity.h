// android.app.Activity analog: the deployment/lifecycle unit of an Android
// application (the S60 counterpart is MIDlet — a different base class and
// different lifecycle verbs, which is packaging fragmentation the paper's
// M-Plugin extensions deal with).
#pragma once

#include "android/android_platform.h"
#include "android/context.h"
#include "android/exceptions.h"

namespace mobivine::android {

class Activity {
 public:
  virtual ~Activity() = default;

  /// Lifecycle callbacks, 2009 names.
  virtual void onCreate() = 0;
  virtual void onStart() {}
  virtual void onPause() {}
  virtual void onDestroy() {}

  /// Activities ARE contexts on Android; here the application context is
  /// exposed through the same accessor shape.
  Context& getApplicationContext() {
    if (platform_ == nullptr) {
      throw IllegalStateException("Activity not attached to a platform");
    }
    return platform_->application_context();
  }

  AndroidPlatform& platform() {
    if (platform_ == nullptr) {
      throw IllegalStateException("Activity not attached to a platform");
    }
    return *platform_;
  }

 private:
  friend class ActivityManager;
  AndroidPlatform* platform_ = nullptr;
};

/// Drives Activity lifecycles (the slice of ActivityManagerService the
/// examples need).
class ActivityManager {
 public:
  explicit ActivityManager(AndroidPlatform& platform) : platform_(platform) {}

  void launch(Activity& activity) {
    activity.platform_ = &platform_;
    activity.onCreate();
    activity.onStart();
  }
  void pause(Activity& activity) { activity.onPause(); }
  void destroy(Activity& activity) { activity.onDestroy(); }

 private:
  AndroidPlatform& platform_;
};

}  // namespace mobivine::android
