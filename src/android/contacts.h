// android.provider.Contacts (the 2009, pre-ContactsContract provider) with
// a android.database.Cursor-style result — row/column iteration, typed
// getters, explicit close. A third PIM access shape next to J2ME's item
// lists and iPhone's AddressBook copies.
#pragma once

#include <string>
#include <vector>

namespace mobivine::android {

class AndroidPlatform;

/// android.database.Cursor-lite over contact rows.
class Cursor {
 public:
  /// Column indices (the provider's projection).
  static constexpr int COLUMN_ID = 0;
  static constexpr int COLUMN_DISPLAY_NAME = 1;
  static constexpr int COLUMN_NUMBER = 2;
  static constexpr int COLUMN_EMAIL = 3;

  int getCount() const { return static_cast<int>(rows_.size()); }
  /// Advance; returns false past the last row. Starts before the first.
  bool moveToNext();
  bool isClosed() const { return closed_; }
  void close() { closed_ = true; }

  /// Throws IllegalStateException when closed or not positioned on a row;
  /// IllegalArgumentException for a bad column.
  [[nodiscard]] long long getLong(int column) const;
  [[nodiscard]] std::string getString(int column) const;

 private:
  friend class ContactsProvider;
  struct Row {
    long long id;
    std::string display_name;
    std::string number;
    std::string email;
  };
  std::vector<Row> rows_;
  int position_ = -1;
  bool closed_ = false;
};

/// content://contacts/people access.
class ContactsProvider {
 public:
  explicit ContactsProvider(AndroidPlatform& platform) : platform_(platform) {}

  /// All people. Throws SecurityException without READ_CONTACTS.
  [[nodiscard]] Cursor query();
  /// Phone-number lookup (the Contacts.Phones filter URI).
  [[nodiscard]] Cursor queryByNumber(const std::string& number);

 private:
  Cursor Fill(const std::string& number_filter);
  AndroidPlatform& platform_;
};

}  // namespace mobivine::android
