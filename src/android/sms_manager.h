// android.telephony.gsm.SmsManager analog.
//
// Android's SMS contract vs J2ME's: sendTextMessage returns quickly after
// the framework submit and reports progress by firing the caller-supplied
// sent/delivered Intents (m5) with a result-code extra — there is no
// exception on radio failure, unlike S60's blocking send().
#pragma once

#include <memory>
#include <string>

#include "android/intent.h"

namespace mobivine::android {

class AndroidPlatform;

class SmsManager {
 public:
  /// Result codes carried in the "result" extra of the sent intent.
  static constexpr int RESULT_OK = -1;  // Activity.RESULT_OK
  static constexpr int RESULT_ERROR_GENERIC_FAILURE = 1;
  static constexpr int RESULT_ERROR_RADIO_OFF = 2;
  static constexpr int RESULT_ERROR_NULL_PDU = 3;
  static constexpr int RESULT_ERROR_NO_SERVICE = 4;

  explicit SmsManager(AndroidPlatform& platform) : platform_(platform) {}

  /// m5 signature. `sent_action` / `delivered_action`, when non-empty, are
  /// broadcast with extras {"result": int, "messageId": long} as the
  /// message progresses. Throws SecurityException (no SEND_SMS) and
  /// IllegalArgumentException (empty destination or text).
  /// Returns the framework message id.
  long long sendTextMessage(const std::string& destination_address,
                            const std::string& sc_address,
                            const std::string& text,
                            const std::string& sent_action,
                            const std::string& delivered_action);

  /// Messages split per GSM alphabet (the framework's divideMessage).
  int divideMessage(const std::string& text) const;

 private:
  AndroidPlatform& platform_;
};

}  // namespace mobivine::android
