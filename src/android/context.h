// android.content.Context analog.
//
// The application context is the handle through which 2009 Android code
// reaches everything: system services by name, receiver registration and
// intent broadcast. This "context-threading" requirement is one of the
// platform-mandated attributes MobiVine moves into the binding plane via
// setProperty("context", ...).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "android/intent.h"

namespace mobivine::android {

class AndroidPlatform;
class LocationManager;
class SmsManager;
class TelephonyManager;

/// Service-name constants (Context.LOCATION_SERVICE etc.).
inline constexpr const char* LOCATION_SERVICE = "location";
inline constexpr const char* TELEPHONY_SERVICE = "phone";

class Context {
 public:
  explicit Context(AndroidPlatform& platform) : platform_(platform) {}
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  AndroidPlatform& platform() { return platform_; }

  /// getSystemService: returns the raw service pointer (lifetime = the
  /// platform's), or nullptr for unknown names — Android's own contract.
  void* getSystemService(const std::string& name);

  /// Register a receiver for intents matching `filter`. The caller keeps
  /// ownership of the receiver and must unregister before destroying it.
  void registerReceiver(IntentReceiver* receiver, IntentFilter filter);
  void unregisterReceiver(IntentReceiver* receiver);
  std::size_t receiver_count() const { return receivers_.size(); }

  /// Broadcast: deliver `intent` to every matching receiver, asynchronously
  /// through the main-thread queue (one dispatch latency per receiver).
  void broadcastIntent(const Intent& intent);

 private:
  AndroidPlatform& platform_;
  struct Registration {
    IntentReceiver* receiver;
    IntentFilter filter;
  };
  std::vector<Registration> receivers_;
};

}  // namespace mobivine::android
