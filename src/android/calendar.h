// android.provider.Calendar (the 2009 semi-public provider) with a
// cursor-style result, mirroring the contacts provider's access shape.
#pragma once

#include <string>
#include <vector>

namespace mobivine::android {

class AndroidPlatform;

/// Cursor over event rows (projection: _id, title, dtstart, dtend,
/// eventLocation).
class EventCursor {
 public:
  static constexpr int COLUMN_ID = 0;
  static constexpr int COLUMN_TITLE = 1;
  static constexpr int COLUMN_DTSTART = 2;
  static constexpr int COLUMN_DTEND = 3;
  static constexpr int COLUMN_LOCATION = 4;

  int getCount() const { return static_cast<int>(rows_.size()); }
  bool moveToNext();
  bool isClosed() const { return closed_; }
  void close() { closed_ = true; }

  [[nodiscard]] long long getLong(int column) const;
  [[nodiscard]] std::string getString(int column) const;

 private:
  friend class CalendarProvider;
  struct Row {
    long long id;
    std::string title;
    long long dtstart;
    long long dtend;
    std::string location;
  };
  std::vector<Row> rows_;
  int position_ = -1;
  bool closed_ = false;
};

/// content://calendar/events access.
class CalendarProvider {
 public:
  explicit CalendarProvider(AndroidPlatform& platform) : platform_(platform) {}

  /// All events. Throws SecurityException without READ_CALENDAR.
  [[nodiscard]] EventCursor query();
  /// Events overlapping [from_ms, to_ms) — the Instances query.
  [[nodiscard]] EventCursor queryBetween(long long from_ms, long long to_ms);

 private:
  EventCursor Fill(long long from_ms, long long to_ms, bool bounded);
  AndroidPlatform& platform_;
};

}  // namespace mobivine::android
