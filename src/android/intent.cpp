#include "android/intent.h"

#include "android/context.h"

namespace mobivine::android {

std::shared_ptr<PendingIntent> PendingIntent::getBroadcast(Context& context,
                                                           int request_code,
                                                           Intent intent,
                                                           int flags) {
  (void)flags;  // FLAG_UPDATE_CURRENT etc. — no duplicate tracking modeled
  return std::shared_ptr<PendingIntent>(
      new PendingIntent(context, request_code, std::move(intent)));
}

void PendingIntent::send(const Intent& fill_in) const {
  Intent merged = intent_;
  // Merge fill-in extras (fill-in wins, matching Intent.fillIn semantics
  // for extras).
  for (const auto& [key, value] : fill_in.getExtras().entries()) {
    merged.extras().put(key, value);
  }
  context_->broadcastIntent(merged);
}

}  // namespace mobivine::android
