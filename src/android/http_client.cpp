#include "android/http_client.h"

#include "android/android_platform.h"
#include "android/exceptions.h"

namespace mobivine::android {

ApacheHttpResponse DefaultHttpClient::execute(const HttpUriRequest& request) {
  platform_.checkPermission(permissions::kInternet);
  auto url = device::ParseUrl(request.getURI());
  if (!url) {
    throw IllegalArgumentException("malformed URI: " + request.getURI());
  }

  auto& device = platform_.device();
  device.scheduler().AdvanceBy(
      platform_.cost().http_execute_framework.Sample(device.rng()));

  device::HttpRequest wire;
  wire.method = request.getMethod();
  wire.url = *url;
  for (const auto& [name, value] : request.headers().entries()) {
    wire.headers.Set(name, value);
  }
  if (const auto* post = dynamic_cast<const HttpPost*>(&request)) {
    wire.body = post->entity();
  }

  const device::NetResult result = device.network().BlockingSend(wire);
  switch (result.error) {
    case device::NetError::kHostUnreachable:
      throw ClientProtocolException("unable to resolve host: " + url->host);
    case device::NetError::kTimeout:
      throw ConnectTimeoutException("connect to " + url->host + " timed out");
    case device::NetError::kNone:
      break;
  }
  return ApacheHttpResponse(result.response);
}

}  // namespace mobivine::android
