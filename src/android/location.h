// android.location.Location analog. A flat record with Android's accessor
// names — intentionally shaped differently from s60::Location (no nested
// QualifiedCoordinates, milliseconds timestamp, provider string).
#pragma once

#include <string>

#include "sim/clock.h"

namespace mobivine::android {

class Location {
 public:
  Location() = default;
  explicit Location(std::string provider) : provider_(std::move(provider)) {}

  double getLatitude() const { return latitude_; }
  double getLongitude() const { return longitude_; }
  bool hasAltitude() const { return has_altitude_; }
  double getAltitude() const { return altitude_; }
  float getAccuracy() const { return accuracy_m_; }
  float getSpeed() const { return speed_mps_; }
  float getBearing() const { return bearing_deg_; }
  /// Milliseconds since the epoch of the simulation.
  long long getTime() const { return time_ms_; }
  const std::string& getProvider() const { return provider_; }

  void setLatitude(double v) { latitude_ = v; }
  void setLongitude(double v) { longitude_ = v; }
  void setAltitude(double v) {
    altitude_ = v;
    has_altitude_ = true;
  }
  void setAccuracy(float v) { accuracy_m_ = v; }
  void setSpeed(float v) { speed_mps_ = v; }
  void setBearing(float v) { bearing_deg_ = v; }
  void setTime(long long ms) { time_ms_ = ms; }

 private:
  std::string provider_ = "gps";
  double latitude_ = 0.0;
  double longitude_ = 0.0;
  double altitude_ = 0.0;
  bool has_altitude_ = false;
  float accuracy_m_ = 0.0f;
  float speed_mps_ = 0.0f;
  float bearing_deg_ = 0.0f;
  long long time_ms_ = 0;
};

}  // namespace mobivine::android
