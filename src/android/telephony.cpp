#include "android/telephony.h"

#include <algorithm>

#include "android/android_platform.h"
#include "android/exceptions.h"

namespace mobivine::android {

namespace {
int MapState(device::CallState state) {
  switch (state) {
    case device::CallState::kDialing:
    case device::CallState::kRinging:
    case device::CallState::kConnected:
      return PhoneStateListener::CALL_STATE_OFFHOOK;
    case device::CallState::kIdle:
    case device::CallState::kEnded:
    case device::CallState::kFailed:
      return PhoneStateListener::CALL_STATE_IDLE;
  }
  return PhoneStateListener::CALL_STATE_IDLE;
}
}  // namespace

bool TelephonyManager::call(const std::string& number) {
  platform_.checkPermission(permissions::kCallPhone);
  if (number.empty()) {
    throw IllegalArgumentException("phone number is empty");
  }
  auto& device = platform_.device();
  device.scheduler().AdvanceBy(
      platform_.cost().place_call.Sample(device.rng()));
  current_number_ = number;
  return device.modem().Dial(
      number, [this](device::CallState state) { NotifyListeners(state); });
}

void TelephonyManager::endCall() {
  platform_.device().modem().HangUp();
  current_number_.clear();
}

int TelephonyManager::getCallState() const {
  return MapState(platform_.device().modem().call_state());
}

void TelephonyManager::listen(PhoneStateListener* listener) {
  if (listener == nullptr) return;
  listeners_.push_back(listener);
}

void TelephonyManager::stopListening(PhoneStateListener* listener) {
  listeners_.erase(std::remove(listeners_.begin(), listeners_.end(), listener),
                   listeners_.end());
}

void TelephonyManager::NotifyListeners(device::CallState state) {
  const int mapped = MapState(state);
  for (PhoneStateListener* listener : listeners_) {
    listener->onCallStateChanged(mapped, current_number_);
  }
  if (detailed_listener_) detailed_listener_(state);
}

}  // namespace mobivine::android
