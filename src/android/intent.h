// android.content.Intent / IntentFilter / IntentReceiver / PendingIntent
// analogs.
//
// The Intent broadcast mechanism is Android's callback style circa 2009:
// code registers an IntentReceiver for an action string and system services
// deliver events as broadcast Intents. Android 1.0 replaced raw Intents in
// several system APIs with PendingIntent handles — the API evolution the
// maintenance experiment (E4) replays.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "android/bundle.h"

namespace mobivine::android {

class Context;

/// android.content.Intent
class Intent {
 public:
  Intent() = default;
  explicit Intent(std::string action) : action_(std::move(action)) {}

  const std::string& getAction() const { return action_; }
  void setAction(std::string action) { action_ = std::move(action); }

  Intent& putExtra(const std::string& key, bool value) {
    extras_.putBoolean(key, value);
    return *this;
  }
  Intent& putExtra(const std::string& key, int value) {
    extras_.putInt(key, value);
    return *this;
  }
  Intent& putExtra(const std::string& key, long long value) {
    extras_.putLong(key, value);
    return *this;
  }
  Intent& putExtra(const std::string& key, double value) {
    extras_.putDouble(key, value);
    return *this;
  }
  Intent& putExtra(const std::string& key, std::string value) {
    extras_.putString(key, std::move(value));
    return *this;
  }

  bool getBooleanExtra(const std::string& key, bool fallback) const {
    return extras_.getBoolean(key, fallback);
  }
  int getIntExtra(const std::string& key, int fallback) const {
    return extras_.getInt(key, fallback);
  }
  long long getLongExtra(const std::string& key, long long fallback) const {
    return extras_.getLong(key, fallback);
  }
  double getDoubleExtra(const std::string& key, double fallback) const {
    return extras_.getDouble(key, fallback);
  }
  std::string getStringExtra(const std::string& key) const {
    return extras_.getString(key);
  }

  const Bundle& getExtras() const { return extras_; }
  Bundle& extras() { return extras_; }

 private:
  std::string action_;
  Bundle extras_;
};

/// android.content.IntentFilter (action matching only, as the 2009 location
/// examples use).
class IntentFilter {
 public:
  IntentFilter() = default;
  explicit IntentFilter(std::string action) { addAction(std::move(action)); }

  void addAction(std::string action) { actions_.push_back(std::move(action)); }

  bool matches(const Intent& intent) const {
    for (const auto& action : actions_) {
      if (action == intent.getAction()) return true;
    }
    return false;
  }

  const std::vector<std::string>& actions() const { return actions_; }

 private:
  std::vector<std::string> actions_;
};

/// android.content.IntentReceiver (m5 name; later BroadcastReceiver).
class IntentReceiver {
 public:
  virtual ~IntentReceiver() = default;
  virtual void onReceiveIntent(Context& context, const Intent& intent) = 0;
};

/// android.app.PendingIntent (Android 1.0): an opaque handle the system
/// fires later. Only the broadcast flavor is modeled.
class PendingIntent {
 public:
  static std::shared_ptr<PendingIntent> getBroadcast(Context& context,
                                                     int request_code,
                                                     Intent intent, int flags);

  const Intent& intent() const { return intent_; }
  int request_code() const { return request_code_; }

  /// System-side: deliver the wrapped intent (with `fill_in` extras merged)
  /// as a broadcast through the owning context.
  void send(const Intent& fill_in) const;

 private:
  PendingIntent(Context& context, int request_code, Intent intent)
      : context_(&context),
        request_code_(request_code),
        intent_(std::move(intent)) {}

  Context* context_;
  int request_code_;
  Intent intent_;
};

}  // namespace mobivine::android
