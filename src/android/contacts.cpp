#include "android/contacts.h"

#include "android/android_platform.h"
#include "android/exceptions.h"

namespace mobivine::android {

bool Cursor::moveToNext() {
  if (closed_) throw IllegalStateException("cursor is closed");
  if (position_ + 1 >= static_cast<int>(rows_.size())) return false;
  ++position_;
  return true;
}

long long Cursor::getLong(int column) const {
  if (closed_) throw IllegalStateException("cursor is closed");
  if (position_ < 0 || position_ >= static_cast<int>(rows_.size())) {
    throw IllegalStateException("cursor not positioned on a row");
  }
  if (column != COLUMN_ID) {
    throw IllegalArgumentException("column " + std::to_string(column) +
                                   " is not a long column");
  }
  return rows_[position_].id;
}

std::string Cursor::getString(int column) const {
  if (closed_) throw IllegalStateException("cursor is closed");
  if (position_ < 0 || position_ >= static_cast<int>(rows_.size())) {
    throw IllegalStateException("cursor not positioned on a row");
  }
  const Row& row = rows_[position_];
  switch (column) {
    case COLUMN_ID:
      return std::to_string(row.id);
    case COLUMN_DISPLAY_NAME:
      return row.display_name;
    case COLUMN_NUMBER:
      return row.number;
    case COLUMN_EMAIL:
      return row.email;
    default:
      throw IllegalArgumentException("unknown column " +
                                     std::to_string(column));
  }
}

Cursor ContactsProvider::Fill(const std::string& number_filter) {
  platform_.checkPermission(permissions::kReadContacts);
  auto& device = platform_.device();
  device.scheduler().AdvanceBy(
      platform_.cost().contacts_query.Sample(device.rng()));
  Cursor cursor;
  for (const auto& record : device.contacts().All()) {
    if (!number_filter.empty() && record.phone_number != number_filter) {
      continue;
    }
    cursor.rows_.push_back({record.id, record.display_name,
                            record.phone_number, record.email});
  }
  return cursor;
}

Cursor ContactsProvider::query() { return Fill(""); }

Cursor ContactsProvider::queryByNumber(const std::string& number) {
  return Fill(number);
}

}  // namespace mobivine::android
