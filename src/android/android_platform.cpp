#include "android/android_platform.h"

#include "android/exceptions.h"
#include "android/location_manager.h"
#include "android/sms_manager.h"
#include "android/telephony.h"

namespace mobivine::android {

const char* ToString(ApiLevel level) {
  switch (level) {
    case ApiLevel::kM5:
      return "m5-rc15";
    case ApiLevel::k10:
      return "1.0";
  }
  return "?";
}

AndroidPlatform::AndroidPlatform(device::MobileDevice& device,
                                 ApiLevel api_level, AndroidApiCost cost)
    : device_(device), api_level_(api_level), cost_(cost) {
  context_ = std::make_unique<Context>(*this);
  location_manager_ = std::make_unique<LocationManager>(*this);
  sms_manager_ = std::make_unique<SmsManager>(*this);
  telephony_manager_ = std::make_unique<TelephonyManager>(*this);
}

AndroidPlatform::~AndroidPlatform() { *alive_ = false; }

void AndroidPlatform::grantPermission(const std::string& permission) {
  permissions_.insert(permission);
}

void AndroidPlatform::revokePermission(const std::string& permission) {
  permissions_.erase(permission);
}

bool AndroidPlatform::hasPermission(const std::string& permission) const {
  return permissions_.count(permission) > 0;
}

void AndroidPlatform::checkPermission(const std::string& permission) const {
  if (!hasPermission(permission)) {
    throw SecurityException("application lacks manifest permission: " +
                            permission);
  }
}

}  // namespace mobivine::android
