// The Android platform substrate (SDK m5-rc15, with a 1.0 variant for the
// maintenance experiment E4).
//
// Owns the application context, the system services and the virtual API
// cost table calibrated to Figure 10's "Without Proxy" Android column:
//   addProximityAlert 53.6 ms | getLocation 15.5 ms | sendSMS 52.7 ms.
#pragma once

#include <memory>
#include <string>
#include <unordered_set>

#include "android/context.h"
#include "device/mobile_device.h"
#include "sim/latency_model.h"

namespace mobivine::android {

class LocationManager;
class SmsManager;
class TelephonyManager;

/// Which SDK contract the platform enforces. kM5 accepts the Intent-based
/// addProximityAlert; k10 (Android 1.0) requires PendingIntent and rejects
/// the old entry point — the API break §5 "Maintenance" discusses.
enum class ApiLevel { kM5, k10 };

[[nodiscard]] const char* ToString(ApiLevel level);

/// Manifest permission strings.
namespace permissions {
inline constexpr const char* kFineLocation =
    "android.permission.ACCESS_FINE_LOCATION";
inline constexpr const char* kSendSms = "android.permission.SEND_SMS";
inline constexpr const char* kCallPhone = "android.permission.CALL_PHONE";
inline constexpr const char* kInternet = "android.permission.INTERNET";
inline constexpr const char* kReadContacts = "android.permission.READ_CONTACTS";
inline constexpr const char* kReadCalendar = "android.permission.READ_CALENDAR";
}  // namespace permissions

struct AndroidApiCost {
  // paper: addProximityAlert 53.6 ms (binder call + region-monitor arm)
  sim::LatencyModel add_proximity_alert =
      sim::LatencyModel::Normal(sim::SimTime::MillisF(53.6),
                                sim::SimTime::MillisF(2.5),
                                sim::SimTime::MillisF(30.0));
  // 3.5 framework + 12 low-power fix = 15.5 ms (paper: getLocation 15.5;
  // getCurrentLocation serves from the fast cell/cached path)
  sim::LatencyModel get_location_framework =
      sim::LatencyModel::Normal(sim::SimTime::MillisF(3.5),
                                sim::SimTime::MillisF(0.4),
                                sim::SimTime::MillisF(1.5));
  // paper: sendSMS 52.7 ms (blocking framework submit; radio is async)
  sim::LatencyModel send_sms =
      sim::LatencyModel::Normal(sim::SimTime::MillisF(52.7),
                                sim::SimTime::MillisF(2.0),
                                sim::SimTime::MillisF(30.0));
  sim::LatencyModel place_call =
      sim::LatencyModel::Normal(sim::SimTime::MillisF(45.0),
                                sim::SimTime::MillisF(3.0),
                                sim::SimTime::MillisF(20.0));
  sim::LatencyModel http_execute_framework =
      sim::LatencyModel::Normal(sim::SimTime::MillisF(8.0),
                                sim::SimTime::MillisF(1.0),
                                sim::SimTime::MillisF(4.0));
  /// content://contacts/people query (provider binder + cursor fill).
  sim::LatencyModel contacts_query =
      sim::LatencyModel::Normal(sim::SimTime::MillisF(18.0),
                                sim::SimTime::MillisF(1.5),
                                sim::SimTime::MillisF(9.0));
  /// content://calendar/events query.
  sim::LatencyModel calendar_query =
      sim::LatencyModel::Normal(sim::SimTime::MillisF(22.0),
                                sim::SimTime::MillisF(2.0),
                                sim::SimTime::MillisF(10.0));
  /// Broadcast queue dispatch latency per delivered intent.
  sim::SimTime broadcast_dispatch = sim::SimTime::MillisF(2.0);
  /// Period of the proximity region-monitor poll.
  sim::SimTime proximity_poll_interval = sim::SimTime::Millis(1000);
};

class AndroidPlatform {
 public:
  explicit AndroidPlatform(device::MobileDevice& device,
                           ApiLevel api_level = ApiLevel::kM5,
                           AndroidApiCost cost = {});
  ~AndroidPlatform();

  AndroidPlatform(const AndroidPlatform&) = delete;
  AndroidPlatform& operator=(const AndroidPlatform&) = delete;

  device::MobileDevice& device() { return device_; }
  const AndroidApiCost& cost() const { return cost_; }
  ApiLevel api_level() const { return api_level_; }
  Context& application_context() { return *context_; }

  // --- manifest permissions ------------------------------------------------
  void grantPermission(const std::string& permission);
  void revokePermission(const std::string& permission);
  bool hasPermission(const std::string& permission) const;
  /// Throws android::SecurityException when missing.
  void checkPermission(const std::string& permission) const;

  // --- services (also reachable via Context::getSystemService) ------------
  LocationManager& location_manager() { return *location_manager_; }
  TelephonyManager& telephony_manager() { return *telephony_manager_; }
  /// SmsManager.getDefault() analog.
  SmsManager& sms_manager() { return *sms_manager_; }

  /// Liveness token for callbacks that may outlive the platform in tests.
  std::shared_ptr<bool> alive_token() const { return alive_; }

 private:
  device::MobileDevice& device_;
  ApiLevel api_level_;
  AndroidApiCost cost_;
  std::unordered_set<std::string> permissions_;
  std::unique_ptr<Context> context_;
  std::unique_ptr<LocationManager> location_manager_;
  std::unique_ptr<SmsManager> sms_manager_;
  std::unique_ptr<TelephonyManager> telephony_manager_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace mobivine::android
