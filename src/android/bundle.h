// android.os.Bundle analog: the typed extras map carried by Intents.
#pragma once

#include <map>
#include <string>
#include <variant>

namespace mobivine::android {

class Bundle {
 public:
  using Value = std::variant<bool, int, long long, double, std::string>;

  void putBoolean(const std::string& key, bool value) { map_[key] = value; }
  void putInt(const std::string& key, int value) { map_[key] = value; }
  void putLong(const std::string& key, long long value) { map_[key] = value; }
  void putDouble(const std::string& key, double value) { map_[key] = value; }
  void putString(const std::string& key, std::string value) {
    map_[key] = std::move(value);
  }

  bool getBoolean(const std::string& key, bool fallback = false) const {
    return Get<bool>(key, fallback);
  }
  int getInt(const std::string& key, int fallback = 0) const {
    return Get<int>(key, fallback);
  }
  long long getLong(const std::string& key, long long fallback = 0) const {
    return Get<long long>(key, fallback);
  }
  double getDouble(const std::string& key, double fallback = 0.0) const {
    return Get<double>(key, fallback);
  }
  std::string getString(const std::string& key,
                        std::string fallback = "") const {
    return Get<std::string>(key, std::move(fallback));
  }

  bool containsKey(const std::string& key) const { return map_.count(key) > 0; }
  std::size_t size() const { return map_.size(); }

  /// Raw entries (used by Intent.fillIn-style merging and the JS bridge).
  const std::map<std::string, Value>& entries() const { return map_; }
  void put(const std::string& key, Value value) { map_[key] = std::move(value); }

 private:
  template <typename T>
  T Get(const std::string& key, T fallback) const {
    auto it = map_.find(key);
    if (it == map_.end()) return fallback;
    if (const T* value = std::get_if<T>(&it->second)) return *value;
    return fallback;  // Android returns the default on type mismatch
  }

  std::map<std::string, Value> map_;
};

}  // namespace mobivine::android
