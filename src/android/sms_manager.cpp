#include "android/sms_manager.h"

#include "android/android_platform.h"
#include "android/context.h"
#include "android/exceptions.h"

namespace mobivine::android {

int SmsManager::divideMessage(const std::string& text) const {
  return platform_.device().modem().SegmentCount(text);
}

long long SmsManager::sendTextMessage(const std::string& destination_address,
                                      const std::string& sc_address,
                                      const std::string& text,
                                      const std::string& sent_action,
                                      const std::string& delivered_action) {
  (void)sc_address;  // service-center override is accepted and ignored
  platform_.checkPermission(permissions::kSendSms);
  if (destination_address.empty()) {
    throw IllegalArgumentException("destination address is empty");
  }
  if (text.empty()) {
    throw IllegalArgumentException("message body is empty");
  }

  auto& device = platform_.device();
  // Blocking framework submit (Figure 10: 52.7 ms); radio transfer and the
  // progress broadcasts are asynchronous.
  device.scheduler().AdvanceBy(platform_.cost().send_sms.Sample(device.rng()));

  std::weak_ptr<bool> alive = platform_.alive_token();
  AndroidPlatform* platform = &platform_;
  auto broadcast = [alive, platform](const std::string& action, int result,
                                     long long message_id) {
    auto locked = alive.lock();
    if (!locked || !*locked || action.empty()) return;
    Intent intent(action);
    intent.putExtra("result", result);
    intent.putExtra("messageId", message_id);
    platform->application_context().broadcastIntent(intent);
  };

  const std::uint64_t id = device.modem().SendSms(
      destination_address, text,
      [broadcast, sent_action, delivered_action](
          const device::SmsResult& result) {
        switch (result.status) {
          case device::SmsStatus::kSent:
            broadcast(sent_action, RESULT_OK,
                      static_cast<long long>(result.message_id));
            break;
          case device::SmsStatus::kDelivered:
            broadcast(delivered_action, RESULT_OK,
                      static_cast<long long>(result.message_id));
            break;
          case device::SmsStatus::kFailedRadio:
            broadcast(sent_action, RESULT_ERROR_GENERIC_FAILURE,
                      static_cast<long long>(result.message_id));
            break;
          case device::SmsStatus::kFailedUnreachable:
            broadcast(sent_action, RESULT_ERROR_NO_SERVICE,
                      static_cast<long long>(result.message_id));
            break;
        }
      });
  return static_cast<long long>(id);
}

}  // namespace mobivine::android
